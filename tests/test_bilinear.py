"""Tests for bilinear algorithms: Strassen, Kronecker powers, classical."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bilinear import (
    STRASSEN,
    BilinearAlgorithm,
    classical,
    largest_strassen_level,
    strassen_power,
    verify_bilinear,
)
from repro.algebra.strassen import strassen_multiply


class TestStrassenBase:
    def test_shape(self):
        assert STRASSEN.d == 2
        assert STRASSEN.m == 7

    def test_sigma(self):
        assert STRASSEN.sigma == pytest.approx(math.log2(7))

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_correct_on_random_matrices(self, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(-100, 100, (6, 6), dtype=np.int64)
        t = rng.integers(-100, 100, (6, 6), dtype=np.int64)
        assert np.array_equal(STRASSEN.multiply(s, t), s @ t)


class TestKroneckerPowers:
    def test_level_zero_is_trivial(self):
        alg = strassen_power(0)
        assert alg.d == 1
        assert alg.m == 1

    def test_level_counts(self):
        for level in (1, 2, 3):
            alg = strassen_power(level)
            assert alg.d == 2**level
            assert alg.m == 7**level

    def test_power_cached(self):
        assert strassen_power(2) is strassen_power(2)

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_level2_correct(self, seed):
        rng = np.random.default_rng(seed)
        s = rng.integers(-50, 50, (8, 8), dtype=np.int64)
        t = rng.integers(-50, 50, (8, 8), dtype=np.int64)
        assert np.array_equal(strassen_power(2).multiply(s, t), s @ t)

    def test_level3_correct_once(self):
        verify_bilinear(strassen_power(3), trials=1, block=1)

    def test_compose_mixed(self):
        mixed = STRASSEN.compose(classical(3))
        assert mixed.d == 6
        assert mixed.m == 7 * 27
        verify_bilinear(mixed, trials=2, block=1)

    def test_negative_level_rejected(self):
        with pytest.raises(ValueError):
            strassen_power(-1)


class TestClassical:
    def test_counts(self):
        alg = classical(3)
        assert alg.d == 3
        assert alg.m == 27
        assert alg.sigma == pytest.approx(3.0)

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=4),
    )
    def test_correct(self, seed, d):
        rng = np.random.default_rng(seed)
        size = d * 2
        s = rng.integers(-30, 30, (size, size), dtype=np.int64)
        t = rng.integers(-30, 30, (size, size), dtype=np.int64)
        assert np.array_equal(classical(d).multiply(s, t), s @ t)

    def test_rejects_bad_d(self):
        with pytest.raises(ValueError):
            classical(0)


class TestLargestLevel:
    def test_thresholds(self):
        assert largest_strassen_level(1) == 0
        assert largest_strassen_level(6) == 0
        assert largest_strassen_level(7) == 1
        assert largest_strassen_level(48) == 1
        assert largest_strassen_level(49) == 2
        assert largest_strassen_level(343) == 3

    @given(st.integers(min_value=1, max_value=10**6))
    def test_level_is_maximal(self, n):
        level = largest_strassen_level(n)
        assert 7**level <= n
        assert 7 ** (level + 1) > n


class TestTensorValidation:
    def test_bad_alpha_shape_rejected(self):
        one = np.ones((1, 1, 1), dtype=np.int64)
        with pytest.raises(ValueError):
            BilinearAlgorithm(
                name="bad", d=2, m=1, alpha=one, beta=one, lam=one
            )

    def test_multiply_pads_odd_sizes(self):
        rng = np.random.default_rng(3)
        s = rng.integers(-10, 10, (5, 5), dtype=np.int64)
        t = rng.integers(-10, 10, (5, 5), dtype=np.int64)
        assert np.array_equal(STRASSEN.multiply(s, t), s @ t)

    def test_verify_catches_corruption(self):
        broken = BilinearAlgorithm(
            name="broken",
            d=2,
            m=7,
            alpha=STRASSEN.alpha.copy(),
            beta=STRASSEN.beta.copy(),
            lam=-STRASSEN.lam,
        )
        with pytest.raises(AssertionError):
            verify_bilinear(broken, trials=1)


class TestLocalRecursiveStrassen:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=40),
    )
    def test_matches_numpy(self, seed, size):
        rng = np.random.default_rng(seed)
        s = rng.integers(-40, 40, (size, size), dtype=np.int64)
        t = rng.integers(-40, 40, (size, size), dtype=np.int64)
        assert np.array_equal(strassen_multiply(s, t, cutoff=4), s @ t)

    def test_rejects_non_square(self):
        with pytest.raises(ValueError):
            strassen_multiply(np.ones((2, 3)), np.ones((2, 3)))
