"""Alpha-beta transport cost model riding the meter stack.

:class:`TransportMeter` is a :class:`~repro.clique.accounting.CostObserver`
that declares ``needs_traffic``: alongside every charged
:class:`~repro.clique.accounting.PhaseCost` it receives the structured
:class:`~repro.clique.accounting.PhaseTraffic` record -- the actual
per-piece ``(src, dst, widths)`` vectors and, in EXACT mode, the
materialised relay schedule.  It expands each phase into one or more
traffic *legs*, maps every leg onto the attached
:class:`~repro.netsim.topology.Topology`, and prices it with the classic
alpha-beta model:

* serialization: the bottleneck link drains its FIFO at line rate --
  ``max_link_words * word_bits / link_gbps`` (in microseconds);
* propagation: ``max_hops * link_latency_us`` (the alpha term, paid once
  per leg since transfers on a leg are concurrent);
* queueing: the bottleneck port's excess over a perfectly balanced drain,
  ``(max_link - mean_link) * word_bits / link_gbps`` -- already contained
  in the serialization term, reported separately as the load-imbalance
  share of the makespan.

Leg expansion mirrors how the collectives actually ship:

* ``broadcast``: one leg, node ``u`` sends its ``widths[u]`` words to all
  ``n - 1`` peers.
* ``send`` (direct ``send_array``): one leg of the literal pieces.
* ``route`` in FAST mode: the Lenzen routing closed form -- two balanced
  legs (sources spread their load evenly over all ``n`` relays, relays
  forward each destination's share), with fractional per-link loads.
* ``route`` in EXACT mode: one leg per materialised schedule round, each
  hop carrying exactly one word -- so the model sees precisely the
  schedule the simulator validated, and round-equivalent schedules with
  different relay placements get different makespans.

The meter is **purely observational**: it never touches values, rounds,
words, or any other observer's bill (property-tested per topology).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Iterable

import numpy as np

from repro.clique.accounting import PhaseCost, PhaseTraffic
from repro.netsim.topology import LegStats, Topology

#: Default word width (bits) when pricing schedules outside a clique.
DEFAULT_WORD_BITS = 64


def _serialization_us(words: float, word_bits: int, link_gbps: float) -> float:
    # words * word_bits = bits; / (Gbit/s * 1000) = microseconds.
    return words * word_bits / (link_gbps * 1000.0)


@dataclass(frozen=True)
class PhaseCompletion:
    """Modelled completion of one charged phase on the topology.

    ``makespan_us = serialization_us + latency_us``; ``queueing_us`` is the
    slice of the serialization term caused by link-load imbalance (the
    bottleneck port's excess over the mean active link).
    """

    phase: str
    primitive: str
    kind: str
    rounds: int
    words: int
    legs: int
    makespan_us: float
    serialization_us: float
    latency_us: float
    queueing_us: float
    max_link_words: float

    @property
    def utilisation(self) -> float:
        """Share of the phase makespan the bottleneck link spends sending."""
        if self.makespan_us <= 0.0:
            return 0.0
        return self.serialization_us / self.makespan_us

    def to_dict(self) -> dict[str, Any]:
        return {
            "phase": self.phase,
            "primitive": self.primitive,
            "kind": self.kind,
            "rounds": int(self.rounds),
            "words": int(self.words),
            "legs": int(self.legs),
            "makespan_us": float(self.makespan_us),
            "serialization_us": float(self.serialization_us),
            "latency_us": float(self.latency_us),
            "queueing_us": float(self.queueing_us),
            "max_link_words": float(self.max_link_words),
            "utilisation": float(self.utilisation),
        }


@dataclass
class CompletionReport:
    """Per-phase makespans plus the run-level summary the CLI prints."""

    topology: str
    n: int
    link_gbps: float
    link_latency_us: float
    word_bits: int
    phases: list[PhaseCompletion] = field(default_factory=list)

    @property
    def makespan_us(self) -> float:
        """Total modelled wall-clock (phases are sequential rounds)."""
        return sum(p.makespan_us for p in self.phases)

    @property
    def serialization_us(self) -> float:
        return sum(p.serialization_us for p in self.phases)

    @property
    def latency_us(self) -> float:
        return sum(p.latency_us for p in self.phases)

    @property
    def queueing_us(self) -> float:
        return sum(p.queueing_us for p in self.phases)

    @property
    def max_link_utilisation(self) -> float:
        """Highest per-phase bottleneck-link utilisation."""
        return max((p.utilisation for p in self.phases), default=0.0)

    @property
    def queueing_share(self) -> float:
        """Imbalance share: queueing delay over total modelled makespan."""
        total = self.makespan_us
        return self.queueing_us / total if total > 0.0 else 0.0

    def to_dict(self) -> dict[str, Any]:
        return {
            "topology": self.topology,
            "n": int(self.n),
            "link_gbps": float(self.link_gbps),
            "link_latency_us": float(self.link_latency_us),
            "word_bits": int(self.word_bits),
            "makespan_us": float(self.makespan_us),
            "serialization_us": float(self.serialization_us),
            "latency_us": float(self.latency_us),
            "queueing_us": float(self.queueing_us),
            "max_link_utilisation": float(self.max_link_utilisation),
            "queueing_share": float(self.queueing_share),
            "phases": [p.to_dict() for p in self.phases],
        }

    def table(self) -> str:
        """Human-readable per-phase completion table."""
        lines = [
            f"completion on {self.topology} (n={self.n}, "
            f"{self.link_gbps:g} Gbit/s links, "
            f"{self.link_latency_us:g} us hop latency)",
            f"{'phase':40s} {'kind':9s} {'makespan_us':>12s} "
            f"{'serial_us':>10s} {'queue_us':>9s} {'util':>5s}",
        ]
        for p in self.phases:
            lines.append(
                f"{p.phase:40s} {p.kind:9s} {p.makespan_us:12.2f} "
                f"{p.serialization_us:10.2f} {p.queueing_us:9.2f} "
                f"{p.utilisation:5.2f}"
            )
        lines.append(
            f"{'TOTAL':40s} {'':9s} {self.makespan_us:12.2f} "
            f"{self.serialization_us:10.2f} {self.queueing_us:9.2f} "
            f"{self.max_link_utilisation:5.2f}"
        )
        return "\n".join(lines)


class TransportMeter:
    """Meter-stack observer pricing every charged phase on a topology.

    Attach with ``clique.attach_cost_model(...)`` (or
    ``EngineSession(cost_model=...)``); it never alters the abstract bill.
    """

    #: Ask the stack for :class:`PhaseTraffic` routing metadata.
    needs_traffic = True

    def __init__(
        self,
        topology: Topology,
        *,
        link_gbps: float = 100.0,
        link_latency_us: float = 1.0,
        word_bits: int | None = None,
    ) -> None:
        if link_gbps <= 0.0:
            raise ValueError(f"link bandwidth must be positive, got {link_gbps}")
        if link_latency_us < 0.0:
            raise ValueError(f"negative link latency: {link_latency_us}")
        self.topology = topology
        self.link_gbps = float(link_gbps)
        self.link_latency_us = float(link_latency_us)
        self.word_bits = word_bits
        self.completions: list[PhaseCompletion] = []

    def bind(self, n: int, word_bits: int) -> None:
        """Adopt the clique's geometry at attach time.

        Called by ``CongestedClique.attach_cost_model``; the topology must
        have been built for the same host count.
        """
        if self.topology.n != n:
            raise ValueError(
                f"topology models {self.topology.n} hosts but the clique "
                f"has {n}"
            )
        if self.word_bits is None:
            self.word_bits = word_bits

    # -- observer protocol -------------------------------------------------

    def observe(self, cost: PhaseCost, traffic: PhaseTraffic | None = None) -> None:
        legs = list(self._legs(cost, traffic))
        word_bits = self.word_bits if self.word_bits is not None else DEFAULT_WORD_BITS
        ser = queue = lat = 0.0
        max_link = 0.0
        for leg in legs:
            ser += _serialization_us(leg.max_link_words, word_bits, self.link_gbps)
            queue += _serialization_us(
                leg.max_link_words - leg.mean_link_words, word_bits, self.link_gbps
            )
            lat += leg.max_hops * self.link_latency_us
            max_link = max(max_link, leg.max_link_words)
        self.completions.append(
            PhaseCompletion(
                phase=cost.phase,
                primitive=cost.primitive,
                kind=traffic.kind if traffic is not None else "uniform",
                rounds=cost.rounds,
                words=cost.words,
                legs=len(legs),
                makespan_us=ser + lat,
                serialization_us=ser,
                latency_us=lat,
                queueing_us=queue,
                max_link_words=max_link,
            )
        )

    # -- leg expansion -----------------------------------------------------

    def _legs(
        self, cost: PhaseCost, traffic: PhaseTraffic | None
    ) -> Iterable[LegStats]:
        topo = self.topology
        n = topo.n
        full = np.arange(n, dtype=np.int64)
        if traffic is None:
            # Charged without routing metadata (e.g. a hand-billed abstract
            # cost): conservatively model a uniform all-to-all of the
            # phase's total words.
            if cost.words <= 0:
                return []
            per_pair = cost.words / float(n * (n - 1))
            src = np.repeat(full, n)
            dst = np.tile(full, n)
            w = np.full(n * n, per_pair)
            return [topo.leg_stats(src, dst, w)]
        if traffic.kind == "broadcast":
            src = np.repeat(full, n)
            dst = np.tile(full, n)
            w = np.repeat(np.asarray(traffic.widths, dtype=np.float64), n)
            return [topo.leg_stats(src, dst, w)]
        if not traffic.relayed:
            return [topo.leg_stats(traffic.src, traffic.dst, traffic.widths)]
        if traffic.schedule is not None:
            # EXACT mode: price the materialised schedule round by round
            # (every hop carries one word), so relay placement matters.
            legs = []
            for round_hops in traffic.schedule.hops:
                if not round_hops:
                    continue
                hops = np.asarray(round_hops, dtype=np.int64)
                legs.append(
                    topo.leg_stats(
                        hops[:, 0], hops[:, 1], np.ones(len(hops))
                    )
                )
            return legs
        # FAST mode: Lenzen's oblivious two-phase routing in closed form.
        # Leg 1 -- every source spreads its outgoing load evenly over all
        # n relays; leg 2 -- every relay forwards each destination's share.
        src = np.asarray(traffic.src, dtype=np.int64)
        dst = np.asarray(traffic.dst, dtype=np.int64)
        widths = np.asarray(traffic.widths, dtype=np.float64)
        send_per = np.bincount(src, weights=widths, minlength=n)
        recv_per = np.bincount(dst, weights=widths, minlength=n)
        leg1 = topo.leg_stats(
            np.repeat(full, n), np.tile(full, n), np.repeat(send_per / n, n)
        )
        leg2 = topo.leg_stats(
            np.repeat(full, n), np.tile(full, n), np.tile(recv_per / n, n)
        )
        return [leg1, leg2]

    # -- reporting ---------------------------------------------------------

    @property
    def makespan_us(self) -> float:
        """Total modelled wall-clock across all observed phases."""
        return sum(p.makespan_us for p in self.completions)

    def reset(self) -> None:
        """Discard all observed completions."""
        self.completions.clear()

    def report(self) -> CompletionReport:
        """Snapshot the observed phases as a :class:`CompletionReport`."""
        word_bits = self.word_bits if self.word_bits is not None else DEFAULT_WORD_BITS
        return CompletionReport(
            topology=self.topology.name,
            n=self.topology.n,
            link_gbps=self.link_gbps,
            link_latency_us=self.link_latency_us,
            word_bits=word_bits,
            phases=list(self.completions),
        )


def schedule_makespan(
    schedule: Any,
    topology: Topology,
    *,
    link_gbps: float = 100.0,
    link_latency_us: float = 1.0,
    word_bits: int = DEFAULT_WORD_BITS,
) -> float:
    """Modelled makespan (us) of a materialised relay schedule.

    Prices each round's unit-word hops on ``topology`` exactly as the
    transport meter does in EXACT mode -- this is the objective the
    cost-aware relay-slot assignment in
    :func:`repro.clique.scheduling.relay_schedule` improves while keeping
    the round count bit-identical.
    """
    total = 0.0
    for round_hops in schedule.hops:
        if not round_hops:
            continue
        hops = np.asarray(round_hops, dtype=np.int64)
        leg = topology.leg_stats(hops[:, 0], hops[:, 1], np.ones(len(hops)))
        total += _serialization_us(leg.max_link_words, word_bits, link_gbps)
        total += leg.max_hops * link_latency_us
    return total


__all__ = [
    "DEFAULT_WORD_BITS",
    "PhaseCompletion",
    "CompletionReport",
    "TransportMeter",
    "schedule_makespan",
]
