"""Tests for the APSP family (Corollaries 6-8, Theorem 9)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INF
from repro.distances import (
    apsp_approx,
    apsp_bounded,
    apsp_exact,
    apsp_small_diameter,
    apsp_unweighted,
    reachability,
)
from repro.errors import NegativeCycleError
from repro.graphs import (
    Graph,
    apsp_reference,
    bfs_distances_reference,
    gnp_random_graph,
    grid_graph,
    random_weighted_digraph,
    random_weighted_graph,
    validate_routing_table,
)
from repro.runtime import make_clique, pad_matrix


class TestExactApsp:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_digraphs(self, seed):
        g = random_weighted_digraph(16, 0.3, 9, seed=seed)
        result = apsp_exact(g, with_routing_tables=False)
        assert np.array_equal(result.value, apsp_reference(g))

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_routing_tables_walk_correctly(self, seed):
        g = random_weighted_digraph(14, 0.35, 9, seed=seed)
        result = apsp_exact(g)
        assert np.array_equal(result.value, apsp_reference(g))
        assert validate_routing_table(g, result.value, result.extras["next_hop"])

    def test_undirected_weighted(self):
        g = random_weighted_graph(15, 0.4, 20, seed=2)
        result = apsp_exact(g)
        assert np.array_equal(result.value, apsp_reference(g))

    def test_negative_weights_no_cycle(self):
        g = Graph.from_weighted_edges(
            4, [(0, 1, 5), (1, 2, -2), (2, 3, 4), (0, 3, 10)], directed=True
        )
        result = apsp_exact(g)
        assert np.array_equal(result.value, apsp_reference(g))
        assert result.value[0, 3] == 7

    def test_negative_cycle_raises(self):
        g = Graph.from_weighted_edges(
            3, [(0, 1, 1), (1, 2, -5), (2, 0, 1)], directed=True
        )
        with pytest.raises(NegativeCycleError):
            apsp_exact(g)

    def test_disconnected_pairs_infinite(self):
        g = Graph.from_weighted_edges(4, [(0, 1, 3)], directed=True)
        result = apsp_exact(g, with_routing_tables=False)
        assert result.value[0, 1] == 3
        assert result.value[1, 0] >= INF
        assert result.value[2, 3] >= INF

    def test_grid_workload(self):
        g = grid_graph(3, 4, max_weight=9, seed=1)
        result = apsp_exact(g)
        assert np.array_equal(result.value, apsp_reference(g))
        assert validate_routing_table(g, result.value, result.extras["next_hop"])


class TestSeidel:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.1, max_value=0.6),
    )
    def test_random_graphs(self, seed, p):
        g = gnp_random_graph(18, p, seed=seed)
        result = apsp_unweighted(g)
        assert np.array_equal(result.value, bfs_distances_reference(g))

    def test_disconnected_graph(self):
        g = Graph.from_edges(6, [(0, 1), (1, 2), (3, 4)])
        result = apsp_unweighted(g)
        ref = bfs_distances_reference(g)
        assert np.array_equal(result.value, ref)
        assert result.value[0, 3] >= INF

    def test_path_graph_deep_recursion(self):
        n = 17
        g = Graph.from_edges(n, [(v, v + 1) for v in range(n - 1)])
        result = apsp_unweighted(g)
        assert np.array_equal(result.value, bfs_distances_reference(g))
        assert result.extras["levels"] >= 4  # diameter 16 -> ~log2 levels

    def test_complete_graph_one_level(self):
        n = 9
        g = Graph.from_edges(n, [(i, j) for i in range(n) for j in range(i + 1, n)])
        result = apsp_unweighted(g)
        assert result.extras["levels"] == 1

    def test_directed_rejected(self):
        g = gnp_random_graph(8, 0.3, seed=0, directed=True)
        with pytest.raises(ValueError):
            apsp_unweighted(g)


class TestBoundedApsp:
    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=12),
    )
    def test_cap_semantics(self, seed, cap):
        g = random_weighted_digraph(14, 0.4, 4, seed=seed)
        result = apsp_bounded(g, cap)
        ref = apsp_reference(g)
        want = np.where(ref <= cap, ref, INF)
        assert np.array_equal(result.value, want)

    def test_rejects_nonpositive_weights(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 0)], directed=True)
        with pytest.raises(ValueError):
            apsp_bounded(g, 5)

    def test_rejects_bad_cap(self):
        g = random_weighted_digraph(9, 0.4, 3, seed=1)
        clique = make_clique(g.n, "bilinear")
        from repro.distances.bounded import apsp_up_to

        with pytest.raises(ValueError):
            apsp_up_to(clique, pad_matrix(g.weight_matrix(), clique.n, fill=INF), 0)


class TestSmallDiameterApsp:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_exact_with_unknown_diameter(self, seed):
        g = random_weighted_digraph(14, 0.5, 3, seed=seed)
        result = apsp_small_diameter(g)
        assert np.array_equal(result.value, apsp_reference(g))

    def test_guess_close_to_diameter(self):
        g = random_weighted_digraph(16, 0.6, 3, seed=9)
        result = apsp_small_diameter(g)
        ref = apsp_reference(g)
        diameter = int(ref[ref < INF].max())
        guess = result.extras["diameter_guess"]
        assert guess >= diameter
        assert guess < 2 * max(1, diameter) + 2

    def test_reachability_matrix(self):
        g = Graph.from_edges(5, [(0, 1), (1, 2)], directed=True)
        clique = make_clique(g.n, "bilinear")
        reach = reachability(clique, pad_matrix(g.adjacency, clique.n))
        assert reach[0, 2] == 1
        assert reach[2, 0] == 0
        assert reach[3, 3] == 1


class TestApproxApsp:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_ratio_bound_holds(self, seed):
        g = random_weighted_digraph(14, 0.4, 30, seed=seed)
        result = apsp_approx(g, delta=0.25)
        ref = apsp_reference(g)
        finite = ref < INF
        assert np.array_equal(result.value >= INF, ~finite)
        assert (result.value[finite] >= ref[finite]).all()
        ratios = result.value[finite] / np.maximum(ref[finite], 1)
        assert ratios.max() <= result.extras["ratio_bound"] + 1e-9

    def test_tighter_delta_costs_more(self):
        g = random_weighted_digraph(16, 0.4, 20, seed=3)
        loose = apsp_approx(g, delta=0.5)
        tight = apsp_approx(g, delta=0.2)
        assert tight.rounds > loose.rounds
        assert tight.extras["ratio_bound"] < loose.extras["ratio_bound"]

    def test_zero_weights_allowed(self):
        g = Graph.from_weighted_edges(
            4, [(0, 1, 0), (1, 2, 5), (2, 3, 0)], directed=True
        )
        result = apsp_approx(g, delta=0.25)
        ref = apsp_reference(g)
        finite = ref < INF
        assert (result.value[finite] >= ref[finite]).all()

    def test_negative_weights_rejected(self):
        g = Graph.from_weighted_edges(3, [(0, 1, -2)], directed=True)
        with pytest.raises(ValueError):
            apsp_approx(g)
