"""Model-wide constants for the congested-clique reproduction.

The paper expresses its bounds in terms of two exponents:

* ``omega`` -- the (centralised) matrix multiplication exponent; the best bound
  cited by the paper is Le Gall's ``omega < 2.3728639``.
* ``rho`` -- the congested-clique matrix multiplication exponent; Theorem 1
  gives ``rho <= 1 - 2/omega < 0.15715``.

Our implementation instantiates Lemma 10 with recursive Strassen
(``sigma = log2(7)``), the standard practical stand-in for the galactic
asymptotic constructions, so the exponent actually achieved by the running
code is ``1 - 2/log2(7) ~ 0.2876``.  Both are exported so the analysis layer
can report "paper bound" and "implemented bound" side by side.
"""

from __future__ import annotations

import math

#: Best known centralised matrix multiplication exponent (Le Gall 2014),
#: as cited by the paper.
OMEGA_BEST: float = 2.3728639

#: The paper's distributed matmul exponent upper bound, ``1 - 2/omega``.
RHO_PAPER: float = 1.0 - 2.0 / OMEGA_BEST

#: Exponent of Strassen's bilinear algorithm: ``log2(7)``.
SIGMA_STRASSEN: float = math.log2(7.0)

#: Distributed exponent achieved by our running code (Lemma 10 with Strassen).
RHO_IMPLEMENTED: float = 1.0 - 2.0 / SIGMA_STRASSEN

#: Sentinel used for ``+infinity`` in integer tropical (min-plus) matrices.
#: Chosen so that ``INF + INF`` does not overflow ``int64``.
INF: int = 2**62

__all__ = [
    "OMEGA_BEST",
    "RHO_PAPER",
    "SIGMA_STRASSEN",
    "RHO_IMPLEMENTED",
    "INF",
]
