"""Centralised reference algorithms -- the test oracles.

Everything here runs on a single machine with full knowledge of the graph
(no simulation, no metering) and is implemented by a *different* method than
the distributed algorithms wherever possible (brute-force enumeration, BFS,
Floyd-Warshall), so agreement between the two is meaningful evidence of
correctness.
"""

from __future__ import annotations

import numpy as np

from repro.constants import INF
from repro.errors import NegativeCycleError
from repro.graphs.graphs import Graph


def triangle_count_reference(graph: Graph) -> int:
    """Triangles via the trace formula (Itai-Rodeh [42]); exact."""
    a = graph.adjacency
    cubed = a @ a @ a
    trace = int(np.trace(cubed))
    return trace // 3 if graph.directed else trace // 6


def count_cycles_brute(graph: Graph, k: int) -> int:
    """Count ``k``-cycles by path enumeration (small graphs only).

    Canonicalisation: enumerate paths starting at the cycle's smallest node;
    each undirected cycle is found twice (two directions), each directed
    cycle once.
    """
    if k < 3:
        raise ValueError(f"cycles need k >= 3, got {k}")
    adj_out = [set(np.nonzero(graph.adjacency[v])[0].tolist()) for v in range(graph.n)]
    count = 0

    def extend(start: int, path: list[int], visited: set[int]) -> None:
        nonlocal count
        last = path[-1]
        if len(path) == k:
            if start in adj_out[last]:
                count += 1
            return
        for nxt in adj_out[last]:
            if nxt > start and nxt not in visited:
                visited.add(nxt)
                path.append(nxt)
                extend(start, path, visited)
                path.pop()
                visited.remove(nxt)

    for start in range(graph.n):
        extend(start, [start], {start})
    return count if graph.directed else count // 2


def four_cycle_count_reference(graph: Graph) -> int:
    """Undirected 4-cycles via co-degree pairs; directed via enumeration."""
    if graph.directed:
        return count_cycles_brute(graph, 4)
    a = graph.adjacency
    codeg = a @ a
    np.fill_diagonal(codeg, 0)
    pairs = codeg * (codeg - 1) // 2
    # Each C4 is counted once per diagonal pair = twice in total.
    return int(np.triu(pairs, k=1).sum()) // 2


def has_k_cycle_reference(graph: Graph, k: int) -> bool:
    """Whether any ``k``-cycle exists (brute force)."""
    return count_cycles_brute(graph, k) > 0


def girth_reference(graph: Graph) -> int:
    """Exact girth; ``INF`` for acyclic graphs.

    Undirected: BFS from every node, shortest cycle through the root found
    when a non-tree edge closes at matching levels.  Directed: for every
    node, BFS distance back to itself through one outgoing step.
    """
    n = graph.n
    adj = [np.nonzero(graph.adjacency[v])[0].tolist() for v in range(n)]
    best = INF
    if graph.directed:
        for s in range(n):
            dist = _bfs(adj, s)
            for u in range(n):
                if dist[u] < INF and graph.adjacency[u, s]:
                    best = min(best, dist[u] + 1)
        return best
    for s in range(n):
        dist = [INF] * n
        parent = [-1] * n
        dist[s] = 0
        queue = [s]
        head = 0
        while head < len(queue):
            u = queue[head]
            head += 1
            for w in adj[u]:
                if dist[w] >= INF:
                    dist[w] = dist[u] + 1
                    parent[w] = u
                    queue.append(w)
                elif parent[u] != w:
                    # Closed walk: root->u tree path, edge (u, w), w->root.
                    # It contains a cycle of length <= dist[u] + dist[w] + 1,
                    # and for a root on a shortest cycle the bound is tight,
                    # so the global minimum is the exact girth.
                    best = min(best, dist[u] + dist[w] + 1)
        # Cycles through s are found exactly; cycles not through s are found
        # from their own BFS roots.
    return best


def _bfs(adj: list[list[int]], source: int) -> list[int]:
    dist = [INF] * len(adj)
    dist[source] = 0
    queue = [source]
    head = 0
    while head < len(queue):
        u = queue[head]
        head += 1
        for w in adj[u]:
            if dist[w] >= INF:
                dist[w] = dist[u] + 1
                queue.append(w)
    return dist


def bfs_distances_reference(graph: Graph) -> np.ndarray:
    """All-pairs unweighted distances via BFS from every node."""
    adj = [np.nonzero(graph.adjacency[v])[0].tolist() for v in range(graph.n)]
    return np.array([_bfs(adj, s) for s in range(graph.n)], dtype=np.int64)


def apsp_reference(graph: Graph) -> np.ndarray:
    """Floyd-Warshall over the weight matrix; raises on negative cycles."""
    dist = graph.weight_matrix().copy()
    n = graph.n
    for k in range(n):
        via = dist[:, k : k + 1] + dist[k : k + 1, :]
        finite = (dist[:, k : k + 1] < INF) & (dist[k : k + 1, :] < INF)
        candidate = np.where(finite, via, INF)
        dist = np.minimum(dist, candidate)
    if np.any(np.diag(dist) < 0):
        raise NegativeCycleError("graph contains a negative-weight cycle")
    return dist


def validate_routing_table(
    graph: Graph, dist: np.ndarray, next_hop: np.ndarray
) -> bool:
    """Walk every routing-table path and check it realises the distance."""
    w = graph.weight_matrix()
    n = graph.n
    for u in range(n):
        for v in range(n):
            if u == v:
                continue
            if dist[u, v] >= INF:
                continue
            cur = u
            total = 0
            hops = 0
            while cur != v:
                nxt = int(next_hop[cur, v])
                if not (0 <= nxt < n) or w[cur, nxt] >= INF:
                    return False
                total += int(w[cur, nxt])
                cur = nxt
                hops += 1
                if hops > n:
                    return False
            if total != dist[u, v]:
                return False
    return True


__all__ = [
    "triangle_count_reference",
    "count_cycles_brute",
    "four_cycle_count_reference",
    "has_k_cycle_reference",
    "girth_reference",
    "bfs_distances_reference",
    "apsp_reference",
    "validate_routing_table",
]
