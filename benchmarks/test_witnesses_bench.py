"""Witness-machinery benchmarks (§3.4, Lemma 21).

Measures the polylog(n)-products overhead of witness extraction on top of a
plain distance product, for both the distance and Boolean variants, and the
end-to-end cost of witness-backed routing tables on the ring engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique import CongestedClique
from repro.constants import INF
from repro.matmul.boolean_witnesses import find_boolean_witnesses
from repro.matmul.distance import distance_product_ring
from repro.matmul.witnesses import find_witnesses

from .conftest import run_once


def _instance(n: int, max_entry: int, seed: int):
    rng = np.random.default_rng(seed)
    s = rng.integers(0, max_entry + 1, (n, n), dtype=np.int64)
    t = rng.integers(0, max_entry + 1, (n, n), dtype=np.int64)
    s[rng.random((n, n)) < 0.2] = INF
    t[rng.random((n, n)) < 0.2] = INF
    return s, t


@pytest.mark.parametrize("n", [16, 25])
def test_distance_witness_overhead(benchmark, n):
    s, t = _instance(n, 4, n)

    def run():
        plain = CongestedClique(n)
        distance_product_ring(plain, s, t, 4)
        full = CongestedClique(n)

        def engine(a, b, phase):
            return distance_product_ring(full, a, b, 4, phase=phase)

        result = find_witnesses(full, s, t, engine, rng=np.random.default_rng(n))
        return plain.rounds, full.rounds, result.products_used

    plain_rounds, witness_rounds, products = run_once(benchmark, run)
    benchmark.extra_info["plain_rounds"] = plain_rounds
    benchmark.extra_info["witness_rounds"] = witness_rounds
    benchmark.extra_info["products_used"] = products
    # Lemma 21: a polylog(n) factor, not a polynomial one.
    assert witness_rounds < plain_rounds * 20 * max(1, int(np.log2(n)) ** 2)


@pytest.mark.parametrize("n", [16, 25])
def test_boolean_witnesses(benchmark, n):
    rng = np.random.default_rng(n)
    s = (rng.random((n, n)) < 0.4).astype(np.int64)
    t = (rng.random((n, n)) < 0.4).astype(np.int64)

    def run():
        clique = CongestedClique(n)
        product, result = find_boolean_witnesses(
            clique, s, t, rng=np.random.default_rng(n)
        )
        return clique.rounds, product, result

    rounds, product, result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    benchmark.extra_info["products_used"] = result.products_used
    assert np.array_equal(product, ((s @ t) > 0).astype(np.int64))
    assert result.resolved.all()
