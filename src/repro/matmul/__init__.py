"""Distributed matrix multiplication -- the paper's primary contribution.

Theorem 1 in code: :func:`semiring_matmul` (§2.1, ``O(n^{1/3})`` rounds over
any semiring) and :func:`bilinear_matmul` (§2.2 / Lemma 10,
``O(n^{1-2/sigma})`` rounds over rings).  On top of them, the distance
products of §3.3 (exact, Lemma 18 ring-embedded, Lemma 20 approximate) and
the §3.4 witness machinery.
"""

from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.distance import (
    RingDistanceSession,
    approx_distance_product,
    distance_product,
    distance_product_ring,
    scaling_levels,
)
from repro.matmul.exponent import (
    fit_exponent,
    predicted_bilinear_rounds,
    predicted_naive_rounds,
    predicted_semiring3d_rounds,
)
from repro.matmul.layout import CubeLayout, GridLayout, next_cube, next_square
from repro.matmul.boolean_witnesses import encode_boolean, find_boolean_witnesses
from repro.matmul.naive import broadcast_matmul
from repro.matmul.powers import closure, matrix_power
from repro.matmul.ringops import INTEGER_RING, POLYNOMIAL_RING
from repro.matmul.semiring3d import semiring_matmul
from repro.matmul.witnesses import WitnessResult, find_witnesses, unique_witnesses

__all__ = [
    "semiring_matmul",
    "bilinear_matmul",
    "default_algorithm",
    "broadcast_matmul",
    "distance_product",
    "distance_product_ring",
    "RingDistanceSession",
    "approx_distance_product",
    "scaling_levels",
    "find_witnesses",
    "unique_witnesses",
    "find_boolean_witnesses",
    "encode_boolean",
    "WitnessResult",
    "matrix_power",
    "closure",
    "CubeLayout",
    "GridLayout",
    "next_cube",
    "next_square",
    "INTEGER_RING",
    "POLYNOMIAL_RING",
    "predicted_semiring3d_rounds",
    "predicted_bilinear_rounds",
    "predicted_naive_rounds",
    "fit_exponent",
]
