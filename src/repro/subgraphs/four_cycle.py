"""Constant-round 4-cycle detection (paper Theorem 4, Lemmas 12-13).

A 4-cycle exists iff some pair ``x != z`` has two distinct 2-walks
``x - y - z``.  The algorithm:

1. Broadcast degrees (1 round).  Node ``x`` computes
   ``|P(x,*,*)| = sum_{y in N(x)} deg(y)``; if that reaches ``2n - 1`` the
   pigeonhole already certifies a 4-cycle -- stop.
2. Otherwise the total 2-walk volume is below ``2 n^2``, so the walks can be
   spread evenly: Lemma 12 packs disjoint tiles ``A(y) x B(y)`` of side
   ``f(y) >= deg(y)/8`` into a ``k x k`` square (all sides are powers of two
   and the total area fits, so a buddy allocator succeeds); every node can
   compute the packing locally from the public degree sequence.
3. Node ``y`` splits ``N(y)`` into chunks ``NA(y, a)`` / ``NB(y, b)`` of at
   most 8 ids, ships ``NA(y, a)`` to each ``a in A(y)`` (direct, <= 8 words
   per pair), and each ``a`` forwards to every ``b in B(y)`` (tiles are
   disjoint, so again <= 9 words per ordered pair): O(1) rounds.
4. Node ``b`` now knows ``N(y)`` for every ``y`` with ``b in B(y)`` and
   forms its walk bundle ``W(b)`` (Lemma 13: ``|W(b)| = O(n)``); the walks
   are routed to their left endpoints (load ``O(n)`` per node -> O(1)
   rounds), where the duplicate-pair check is local.

Total: O(1) rounds regardless of ``n`` -- the flattest row of Table 1.

Implementation note: the three exchanges (chunk shipping, chunk forwarding,
walk-bundle routing) run on the simulator's array-native fast path by
default (``engine="array"``): chunks travel as ``-1``-padded ``(p, 8)`` id
batches through :meth:`~repro.clique.model.CongestedClique.send_array` and
walks as ``(p, 2)`` batches through :meth:`~repro.clique.model.
CongestedClique.route_array`, with the honest tuple-path widths charged
explicitly.  The per-payload tuple formulation is retained under
``engine="tuple"`` as the round-accounting oracle (bit-identical charges,
equivalence-tested).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.clique.model import CongestedClique, ScheduleMode
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, or_broadcast

_CHUNK = 8
_PAD = -1  # chunk-slot filler in the padded array pieces (node ids are >= 0)


@dataclass(frozen=True)
class Tile:
    """A square tile ``A(y) x B(y)`` allocated to node ``y`` (Lemma 12)."""

    y: int
    row_start: int
    col_start: int
    side: int

    @property
    def rows(self) -> range:
        return range(self.row_start, self.row_start + self.side)

    @property
    def cols(self) -> range:
        return range(self.col_start, self.col_start + self.side)


def tile_side(degree: int) -> int:
    """Lemma 12 side ``f(y)``: ``deg/4`` rounded down to a power of two.

    Degrees below 4 get side 1 (they still satisfy ``f >= deg/8`` and the
    <=8-element chunk bound); isolated nodes get no tile.
    """
    if degree <= 0:
        return 0
    if degree < 4:
        return 1
    return 1 << ((degree // 4).bit_length() - 1)


def build_tiling(degrees: np.ndarray, n: int) -> list[Tile]:
    """Pack the tiles ``f(y) x f(y)`` disjointly into a ``k x k`` square.

    ``k`` is ``n`` rounded down to a power of two.  A buddy allocator over
    power-of-two squares: since the total area is at most ``n + n^2/8 <
    k^2`` (Lemma 12's counting argument plus the side-1 tiles), allocating
    largest-first never fails.  Deterministic, so every node computes the
    identical packing from the broadcast degree sequence.
    """
    k = 1 << (max(1, int(n)).bit_length() - 1)
    free: dict[int, list[tuple[int, int]]] = {k: [(0, 0)]}

    def allocate(side: int) -> tuple[int, int]:
        size = side
        while size <= k and not free.get(size):
            size *= 2
        if size > k:
            raise AssertionError(
                "Lemma 12 packing overflow -- degree volume bound violated"
            )
        while size > side:
            r, c = free[size].pop()
            half = size // 2
            free.setdefault(half, []).extend(
                [(r, c), (r, c + half), (r + half, c), (r + half, c + half)]
            )
            size = half
        return free[side].pop()

    order = sorted(
        (y for y in range(n) if degrees[y] > 0),
        key=lambda y: -tile_side(int(degrees[y])),
    )
    tiles = []
    for y in order:
        side = tile_side(int(degrees[y]))
        r, c = allocate(side)
        tiles.append(Tile(y=y, row_start=r, col_start=c, side=side))
    tiles.sort(key=lambda tile: tile.y)
    return tiles


def _chunks(items: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split ``items`` into ``parts`` chunks of size <= ceil(len/parts)."""
    return [chunk for chunk in np.array_split(items, parts)]


def _walk_check_array(
    clique: CongestedClique,
    graph: Graph,
    tiles: list[Tile],
    tile_of: dict[int, Tile],
) -> list[bool]:
    """Steps A/B + walk-bundle routing on the array-native fast path."""
    cn = clique.n
    empty_d = np.zeros(0, dtype=np.int64)
    empty_b = np.zeros((0, _CHUNK), dtype=np.int64)

    # Step A: y ships NA(y, a) to each a in A(y), as -1-padded (side, 8)
    # chunk pieces charged at the honest chunk length.
    dests = [empty_d] * cn
    blocks = [empty_b] * cn
    widths = [empty_d] * cn
    for tile in tiles:
        y = tile.y
        na = _chunks(graph.neighbors(y), tile.side)
        piece = np.full((tile.side, _CHUNK), _PAD, dtype=np.int64)
        w = np.empty(tile.side, dtype=np.int64)
        for idx, chunk in enumerate(na):
            piece[idx, : len(chunk)] = chunk
            w[idx] = max(1, len(chunk))
        dests[y] = np.arange(tile.row_start, tile.row_start + tile.side)
        blocks[y] = piece
        widths[y] = w
    inboxes = clique.send_array(
        dests, blocks, widths=widths, phase="c4/stepA", expect_max_pair=_CHUNK
    )

    # Step B: a forwards NA(y, a) to every b in B(y), tagged with y (the
    # sender is no longer y itself).  Tile disjointness guarantees <= one
    # chunk per ordered pair (a, b).
    dests = [empty_d] * cn
    blocks = [empty_b] * cn
    widths = [empty_d] * cn
    tags: list[np.ndarray] = [empty_d] * cn
    for a_node in range(cn):
        inbox = inboxes[a_node]
        if inbox.sources.shape[0] == 0:
            continue
        cols = [
            np.arange(
                tile_of[int(y)].col_start,
                tile_of[int(y)].col_start + tile_of[int(y)].side,
            )
            for y in inbox.sources
        ]
        sides = np.array([c.shape[0] for c in cols], dtype=np.int64)
        chunk_lens = (inbox.blocks != _PAD).sum(axis=1)
        dests[a_node] = np.concatenate(cols)
        blocks[a_node] = np.repeat(inbox.blocks, sides, axis=0)
        widths[a_node] = np.repeat(np.maximum(1, chunk_lens + 1), sides)
        tags[a_node] = np.repeat(inbox.sources, sides)
    inboxes = clique.send_array(
        dests,
        blocks,
        widths=widths,
        tags=tags,
        phase="c4/stepB",
        expect_max_pair=_CHUNK + 1,
    )

    # Node b reassembles N(y) per tile column and forms its walk bundle
    # W(b) = union over y of N(y) x {y} x NB(y, b).  Chunks arrive in
    # ascending forwarder (= chunk index) order, so every b reassembles the
    # identical N(y) ordering and the NB partition is consistent.
    walk_x: list[np.ndarray] = [empty_d] * cn
    walk_yz: list[np.ndarray] = [np.zeros((0, 2), dtype=np.int64)] * cn
    for b_node in range(cn):
        inbox = inboxes[b_node]
        if inbox.sources.shape[0] == 0:
            continue
        per_y: dict[int, list[np.ndarray]] = {}
        for idx in range(inbox.tags.shape[0]):
            chunk = inbox.blocks[idx]
            per_y.setdefault(int(inbox.tags[idx]), []).append(chunk[chunk != _PAD])
        xs: list[np.ndarray] = []
        yzs: list[np.ndarray] = []
        for y, pieces in per_y.items():
            neigh = np.concatenate(pieces)
            tile = tile_of[y]
            z_part = _chunks(neigh, tile.side)[b_node - tile.col_start]
            if neigh.size == 0 or z_part.size == 0:
                continue
            xs.append(np.repeat(neigh, z_part.size))
            yz = np.empty((neigh.size * z_part.size, 2), dtype=np.int64)
            yz[:, 0] = y
            yz[:, 1] = np.tile(z_part, neigh.size)
            yzs.append(yz)
        if xs:
            walk_x[b_node] = np.concatenate(xs)
            walk_yz[b_node] = np.concatenate(yzs)

    # Route every 2-walk (x, y, z) to its left endpoint x; per Lemma 13 the
    # send load is O(n) and (post-pigeonhole) the receive load is < 2n.
    ones = [np.ones(walk_x[b].shape[0], dtype=np.int64) for b in range(cn)]
    inboxes = clique.route_array(
        walk_x,
        walk_yz,
        widths=ones,
        phase="c4/gather-walks",
        expect_max_load=64 * cn,
    )
    found = []
    for x in range(cn):
        z_arr = inboxes[x].blocks[:, 1] if inboxes[x].blocks.shape[0] else empty_d
        z_arr = z_arr[z_arr != x]
        found.append(bool(np.unique(z_arr).shape[0] < z_arr.shape[0]))
    return found


def _walk_check_tuple(
    clique: CongestedClique,
    graph: Graph,
    tiles: list[Tile],
    tile_of: dict[int, Tile],
) -> list[bool]:
    """The retained per-payload tuple formulation of the walk phases.

    Charges bit-identical rounds to :func:`_walk_check_array`
    (equivalence-tested); kept as the round-accounting oracle.
    """
    cn = clique.n

    # Step A: y ships NA(y, a) to each a in A(y).
    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(cn)]
    for tile in tiles:
        y = tile.y
        neigh = graph.neighbors(y)
        na = _chunks(neigh, tile.side)
        for a_node, chunk in zip(tile.rows, na):
            outboxes[y].append((a_node, (y, chunk), max(1, len(chunk))))
    inboxes = clique.send(outboxes, phase="c4/stepA", expect_max_pair=_CHUNK)

    # Step B: a forwards NA(y, a) to every b in B(y).  Tile disjointness
    # guarantees <= one (y, chunk) per ordered pair (a, b).
    outboxes = [[] for _ in range(cn)]
    for a_node in range(cn):
        for _src, (y, chunk) in inboxes[a_node]:
            tile = tile_of[y]
            for b_node in tile.cols:
                outboxes[a_node].append((b_node, (y, chunk), max(1, len(chunk) + 1)))
    inboxes = clique.send(outboxes, phase="c4/stepB", expect_max_pair=_CHUNK + 1)

    # Node b reassembles N(y) per tile column and forms its walk bundle
    # W(b) = union over y of N(y) x {y} x NB(y, b).
    walks_by_b: list[list[tuple[int, int, int]]] = [[] for _ in range(cn)]
    for b_node in range(cn):
        per_y: dict[int, list[np.ndarray]] = {}
        for _src, (y, chunk) in inboxes[b_node]:
            per_y.setdefault(y, []).append(chunk)
        for y, pieces in per_y.items():
            neigh = np.concatenate([p for p in pieces if len(p)]) if pieces else []
            tile = tile_of[y]
            nb = _chunks(np.asarray(neigh, dtype=np.int64), tile.side)
            b_index = b_node - tile.col_start
            z_part = nb[b_index]
            for x in neigh:
                for z in z_part:
                    walks_by_b[b_node].append((int(x), y, int(z)))

    # Route every 2-walk (x, y, z) to its left endpoint x; per Lemma 13 the
    # send load is O(n) and (post-pigeonhole) the receive load is < 2n.
    outboxes = [
        [(x, (y, z), 1) for (x, y, z) in walks_by_b[b]] for b in range(cn)
    ]
    inboxes = clique.route(
        outboxes, phase="c4/gather-walks", expect_max_load=64 * cn
    )
    found = []
    for x in range(cn):
        endpoints: set[int] = set()
        hit = False
        for _src, (y, z) in inboxes[x]:
            if z == x:
                continue
            if z in endpoints:
                hit = True
                break
            endpoints.add(z)
        found.append(hit)
    return found


def detect_four_cycles(
    graph: Graph,
    *,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
    engine: str = "array",
) -> RunResult:
    """Theorem 4: 4-cycle existence in O(1) rounds.

    Args:
        engine: ``"array"`` (default) runs the three exchanges on the
            array-native fast path; ``"tuple"`` runs the retained
            per-payload formulation.  Both charge identical rounds.
    """
    if graph.directed:
        raise ValueError("Theorem 4 is stated for undirected graphs")
    if engine not in ("array", "tuple"):
        raise ValueError(f"unknown engine {engine!r}")
    n = graph.n
    clique = clique or CongestedClique(max(2, n), mode=mode)
    if clique.n < n:
        raise ValueError("clique too small for the graph")
    a = graph.adjacency
    degrees_local = [int(a[v].sum()) if v < n else 0 for v in range(clique.n)]

    # Phase 1: degree broadcast + pigeonhole test.
    received = clique.broadcast(degrees_local, words=1, phase="c4/degrees")
    degrees = np.array(received[0], dtype=np.int64)
    walk_volume = [
        int(degrees[graph.neighbors(x)].sum()) if x < n else 0
        for x in range(clique.n)
    ]
    overloaded = [vol >= 2 * n - 1 for vol in walk_volume]
    if or_broadcast(clique, overloaded, phase="c4/pigeonhole"):
        return RunResult(
            value=True,
            rounds=clique.rounds,
            clique_size=clique.n,
            meter=clique.meter,
            extras={"phase": "pigeonhole"},
        )

    # Phase 2: Lemma 12 tiling (local, from the public degree sequence).
    tiles = build_tiling(degrees[:n], n)
    tile_of = {tile.y: tile for tile in tiles}

    walk_check = _walk_check_array if engine == "array" else _walk_check_tuple
    found = walk_check(clique, graph, tiles, tile_of)
    verdict = or_broadcast(clique, found, phase="c4/verdict")
    return RunResult(
        value=verdict,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"phase": "tiling", "tiles": len(tiles)},
    )


__all__ = ["detect_four_cycles", "build_tiling", "tile_side", "Tile"]
