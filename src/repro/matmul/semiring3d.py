"""The 3D semiring matrix multiplication algorithm (paper §2.1, Theorem 1).

Computes ``P = S T`` over any semiring on a congested clique of ``n = q^3``
nodes in ``O(n^{1/3})`` rounds.  The ``n^3`` elementary products are viewed
as the cube ``V x V x V``, partitioned into ``n`` subcubes of side
``n^{2/3}``; node ``v = v1 v2 v3`` computes the block product

    ``P^{(v2)}[v1**, v3**] = S[v1**, v2**] . T[v2**, v3**]``

and the partial products are recombined with semiring addition.  The
communication pattern is oblivious (input-independent), matching the paper's
observation that the static routing of Dolev et al. suffices.

Input/output convention (paper §2): node ``v`` initially holds row ``v`` of
both ``S`` and ``T``, and finally holds row ``v`` of ``P``.  The simulator
passes full matrices for convenience, but every step below only touches the
rows a node legitimately owns or has received.

For selection semirings (min-plus, max-min) the algorithm optionally returns
a *witness matrix*: ``W[u, v]`` is an inner index attaining ``P[u, v]``,
which §3.3 turns into routing tables.  Witnesses ride along with the data
(doubling payload width) and fall out of the local block products for free,
exactly because the semiring engine takes arg-min locally.

Implementation notes:

* Both exchanges run on the simulator's **array-native fast path** with
  *planned delivery*
  (:meth:`~repro.clique.model.CongestedClique.route_array_take`): the
  charged round counts are bit-identical to the tuple formulation and to
  sort-based :meth:`~repro.clique.model.CongestedClique.route_array`
  delivery (see the equivalence tests), but inboxes are gathered by the
  plan's precomputed index vectors into per-session
  :class:`~repro.clique.arena.ExchangeArena` buffers -- no per-exchange
  argsort, no concatenated temporaries.
* The exchange pattern is input-independent, so every static index array
  (destinations, tags, per-node block bases, inbox composition, delivery
  gathers) is computed once per clique size and memoised in a
  :class:`CubePlan` -- repeated squarings (APSP, girth, closure) replan
  nothing.
* The ``n`` local block products of step 2 run as **one batched call** on
  the clique's :class:`~repro.clique.executor.LocalExecutor`, which the
  sharded backend partitions over node ranges; values (hence widths and
  rounds) are bit-identical across backends.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.algebra.semirings import (
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    pack_bool_rows,
    packed_words,
    unpack_bool_rows,
)
from repro.clique.arena import ExchangeArena
from repro.clique.messages import block_widths, words_for_value
from repro.clique.model import CongestedClique
from repro.matmul.layout import CubeLayout

#: Slack multiplier on the asserted per-node load bounds: the analysis bound
#: is 2 n^{4/3} *entries*; the width in words multiplies it, and padding can
#: add a little, so algorithms assert with a factor-4 safety margin (a true
#: implementation bug overshoots by far more).
_LOAD_SLACK = 4

@dataclass(frozen=True)
class CubePlan:
    """Input-independent schedule of one §2.1 product on an ``n``-clique.

    Everything here is a pure function of the clique size: destination
    arrays for both routed exchanges and the decode plan (which received
    piece is an S piece, where each node's block product sits in the global
    index space).  Memoised via :func:`cube_plan`, so an engine session's
    ``ceil(log n)`` squarings share one plan instead of replanning per
    call.
    """

    layout: CubeLayout
    #: first digit of every node id, ``(n,)``.
    v1_of: np.ndarray
    #: step-1 destinations, ``(n, 2 q^2)`` (S pieces then T pieces).
    dests1: np.ndarray
    #: step-1 decode plan: mask of S pieces in each node's sorted inbox,
    #: ``(n, 2 q^2)`` -- the communication pattern is oblivious, so
    #: receivers know statically which piece is which (no headers shipped,
    #: exactly as the analysis assumes).
    from_s: np.ndarray
    #: step-3 destinations, ``(n, q^2)``: row owners of each product row.
    dests3: np.ndarray
    #: global inner-index base of each node's block product, ``(n,)``.
    k_base: np.ndarray
    #: step-1 planned delivery gather, ``(2 n q^2,)``: flat sent-piece
    #: indices whose gather yields all S operand blocks (first half) then
    #: all T operand blocks (second half), each in ``(node, block-row)``
    #: order -- the delivery sort *composed with* the ``from_s`` decode, so
    #: arena delivery skips both the per-exchange argsort and the masked
    #: restack.  Delivery order is node-local, hence free in the model.
    take_st: np.ndarray
    #: step-3 planned delivery gather, ``(n q^2,)``: the stable
    #: by-destination order of the recombination exchange.
    take3: np.ndarray
    #: owner node of each ``take_st`` output slot, ``(2 n q^2,)`` -- shipped
    #: with the gather so the model can enforce receiver locality.
    owners_st: np.ndarray
    #: owner node of each ``take3`` output slot, ``(n q^2,)``.
    owners3: np.ndarray

    @property
    def q(self) -> int:
        return self.layout.q


@lru_cache(maxsize=None)
def cube_plan(n: int) -> CubePlan:
    """The memoised :class:`CubePlan` for a clique of ``n = q^3`` nodes."""
    layout = CubeLayout.for_clique(n)
    q = layout.q
    q2 = q * q
    ids = np.arange(n, dtype=np.int64)
    v1_of = ids // q2
    v2_of = (ids // q) % q
    # Node v sends S[v, u2**] to each u in v1** and T[v, w3**] to each w in
    # *v1* (i.e. w2 = v1); destinations in the tuple path's emission order
    # (S pieces by (u2, u3), then T pieces by (w1, w3)).
    s_dests = v1_of[:, None] * q2 + np.arange(q2, dtype=np.int64)[None, :]
    w1w3 = (
        np.arange(q, dtype=np.int64)[:, None] * q2
        + np.arange(q, dtype=np.int64)[None, :]
    ).reshape(-1)
    t_dests = (v1_of * q)[:, None] + w1w3[None, :]
    # Node u's inbox holds q^2 S pieces from the senders in u1** and q^2 T
    # pieces from the senders in u2**, sorted by (sender, emission order):
    # all S first when u1 < u2, all T first when u1 > u2, and S/T
    # alternating per sender when u1 == u2 (each sender emits its S piece
    # before its T piece).
    from_s = np.zeros((n, 2 * q2), dtype=bool)
    from_s[v1_of < v2_of, :q2] = True
    from_s[v1_of > v2_of, q2:] = True
    from_s[v1_of == v2_of, 0::2] = True
    dests1 = np.concatenate([s_dests, t_dests], axis=1)
    # Planned delivery gathers: the stable by-destination sort is a pure
    # function of the static destination arrays, so it is computed once
    # here instead of per exchange; composing it with the from_s decode
    # lets step 2 gather its S/T operand blocks straight out of the sent
    # batch (one np.take into an arena buffer).
    order1 = np.argsort(dests1.reshape(-1), kind="stable").reshape(n, 2 * q2)
    take_st = np.concatenate([order1[from_s], order1[~from_s]])
    inbox_owner = np.repeat(ids, q2)
    return CubePlan(
        layout=layout,
        v1_of=v1_of,
        dests1=dests1,
        from_s=from_s,
        # Step 3: node v holds P^{(v2)}[v1**, v3**] and returns row u's
        # slice to node u for each u in v1** -- the same id range as the
        # S-piece destinations.
        dests3=s_dests,
        k_base=v2_of * q2,
        take_st=take_st,
        take3=np.argsort(s_dests.reshape(-1), kind="stable"),
        owners_st=np.tile(inbox_owner, 2),
        owners3=inbox_owner,
    )


def semiring_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    with_witnesses: bool = False,
    phase: str = "semiring3d",
    arena: ExchangeArena | None = None,
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Multiply ``n x n`` matrices over a semiring in ``O(n^{1/3})`` rounds.

    Args:
        clique: an ``n``-node clique with ``n`` a perfect cube (pad with
            :func:`repro.matmul.layout.next_cube` otherwise).
        s: left operand, ``int64``, row ``v`` owned by node ``v``.
        t: right operand, same convention.
        semiring: the semiring to multiply over (default: integer ring --
            which §2.1 also covers, just without the §2.2 speedup).
        with_witnesses: if set (selection semirings only), also return the
            witness matrix ``W`` with ``P[u,v] = S[u, W[u,v]] (x) T[W[u,v], v]``.
        phase: cost-meter label prefix.
        arena: the :class:`~repro.clique.arena.ExchangeArena` holding this
            pipeline's send/recv buffers; engine sessions pass their
            per-session arena so repeated squarings reuse every buffer.
            ``None`` uses a fresh throwaway arena (identical results and
            charges, just per-call allocations).

    Returns:
        ``P``, or ``(P, W)`` when ``with_witnesses`` is set.
    """
    n = clique.n
    plan = cube_plan(n)
    q = plan.q
    s = np.ascontiguousarray(np.asarray(s, dtype=np.int64))
    t = np.ascontiguousarray(np.asarray(t, dtype=np.int64))
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n} matrices")
    if with_witnesses and not semiring.has_witnesses:
        raise ValueError(f"semiring {semiring.name} does not support witnesses")
    if arena is None:
        arena = ExchangeArena()
    word_bits = clique.word_bits
    q2 = q * q

    # ---------------- Step 1: distribute the entries. ------------------- #
    # Each node ships 2 q^2 submatrices of q^2 entries: 2 n^{4/3} words at
    # unit width.  All pieces are q^2-entry row slices, so the whole step is
    # one array-native routed exchange on the plan's static destinations.
    # The send batch is assembled by broadcast-assignment into one arena
    # buffer (no repeat/tile/concatenate temporaries).
    s3 = s.reshape(n, q, q2)  # s3[v, u2] = S[v, u2**]
    t3 = t.reshape(n, q, q2)  # t3[v, w3] = T[v, w3**]
    pieces = arena.buffer("cube/pieces", (n, 2 * q2, q2))
    # S pieces at row (u2 q + u3) = s3[v, u2]; T pieces at (w1 q + w3) =
    # t3[v, w3] -- the tuple path's emission order.
    pieces[:, :q2].reshape(n, q, q, q2)[:] = s3[:, :, None, :]
    pieces[:, q2:].reshape(n, q, q, q2)[:] = t3[:, None, :, :]

    # Honest per-piece widths: size * words-for-max-abs, per q^2-slice.
    widths = arena.buffer("cube/widths1", (n, 2 * q2))
    widths[:, :q2].reshape(n, q, q)[:] = block_widths(
        s3.reshape(n * q, q2), word_bits
    ).reshape(n, q)[:, :, None]
    widths[:, q2:].reshape(n, q, q)[:] = block_widths(
        t3.reshape(n * q, q2), word_bits
    ).reshape(n, q)[:, None, :]

    max_abs = max(
        int(np.max(np.abs(s))) if s.size else 0,
        int(np.max(np.abs(t))) if t.size else 0,
    )
    max_entry_words = words_for_value(max_abs, word_bits)
    # Planned delivery: one fused gather lands the operand blocks of step 2
    # directly (delivery sort composed with the from_s decode -- no inbox
    # restacking), charged exactly as route_array would charge.
    st_blocks = clique.route_array_take(
        plan.dests1,
        pieces,
        widths=widths,
        take=plan.take_st,
        out=arena.buffer("cube/st_blocks", (2 * n * q2, q2)),
        owners=plan.owners_st,
        phase=f"{phase}/step1-distribute",
        expect_max_load=_LOAD_SLACK * 2 * q2 * q2 * max_entry_words,
    )

    # ---------------- Step 2: local block products. --------------------- #
    # Node u = (u1, u2, u3) assembles S[u1**, u2**] and T[u2**, u3**].  The
    # inbox composition is the plan's static decode (exactly one S piece
    # from each of the q^2 senders in u1**, ascending -- i.e. already in
    # block-row order -- and one T piece from each sender in u2**), baked
    # into ``take_st`` above.  The n block products then run as one batched
    # executor call -- the unit of work the sharded backend partitions over
    # node ranges.
    s_blocks = st_blocks[: n * q2].reshape(n, q2, q2)
    t_blocks = st_blocks[n * q2 :].reshape(n, q2, q2)
    if with_witnesses:
        products, wit_blocks = clique.executor.semiring_products(
            semiring, s_blocks, t_blocks, with_witnesses=True
        )
        # Local inner index -> global node id, per block product (executor
        # results are freshly allocated, so in-place is safe).
        wit_blocks += plan.k_base[:, None, None]
    else:
        products = clique.executor.semiring_products(semiring, s_blocks, t_blocks)

    # ---------------- Step 3: distribute the partial products. ---------- #
    # Node v holds P^{(v2)}[v1**, v3**]; it sends row u's slice to node u
    # for each u in v1**.  n^{4/3} words each way (x2 with witnesses).
    witness_words = words_for_value(n, word_bits)
    row_widths = block_widths(products.reshape(n * q2, q2), word_bits).reshape(
        n, q2
    )
    if with_witnesses:
        # Ship each product row with its witness row as one (2, q^2) piece;
        # the witness half is charged at witness_words/entry.
        blocks3 = arena.buffer("cube/blocks3w", (n, q2, 2, q2))
        blocks3[:, :, 0] = products
        blocks3[:, :, 1] = wit_blocks
        widths3 = row_widths + q2 * witness_words
        recomb_key, recomb_shape = "cube/recombw", (n * q2, 2, q2)
    else:
        blocks3 = products
        widths3 = row_widths
        recomb_key, recomb_shape = "cube/recomb", (n * q2, q2)
    flat_recombined = clique.route_array_take(
        plan.dests3,
        blocks3,
        widths=widths3,
        take=plan.take3,
        out=arena.buffer(recomb_key, recomb_shape),
        owners=plan.owners3,
        phase=f"{phase}/step3-recombine",
        expect_max_load=_LOAD_SLACK
        * q2
        * q2
        * (max_entry_words + (witness_words if with_witnesses else 0)),
    )

    # ---------------- Step 4: assemble the result rows. ----------------- #
    # Node v receives exactly one piece from each sender u in v1**; sender
    # u = (u1, u2, u3) contributed the slot (w2 = u2, cols u3**), so the
    # ascending-source inbox *is* the (w2, u3) grid -- a reshape, no
    # scatter.  The q-way semiring reduction runs batched over all nodes,
    # in the same w2 order as the per-node loop (bit-identical values and
    # witness tie-breaks).
    recombined = flat_recombined.reshape((n, q2) + flat_recombined.shape[1:])
    if with_witnesses:
        rows = recombined[:, :, 0].reshape(n, q, n)
        row_wits = recombined[:, :, 1].reshape(n, q, n)
        acc, acc_w = rows[:, 0], row_wits[:, 0]
        for w2 in range(1, q):
            acc, acc_w = semiring.add_with_witness(
                acc, acc_w, rows[:, w2], row_wits[:, w2]
            )
        return acc, acc_w
    rows = recombined.reshape(n, q, n)
    acc = rows[:, 0]
    for w2 in range(1, q):
        acc = semiring.add(acc, rows[:, w2])
    return acc


# --------------------------------------------------------------------------- #
# Persistent packed Boolean pipeline (kernel generation 3)
# --------------------------------------------------------------------------- #
#
# A Boolean matrix on the cube layout decomposes into n * q pieces of q^2
# bits each -- node v's row is the q column slices S[v, u2**] -- and *every*
# payload the §2.1 pipeline ships is such a piece (step 1 ships the operand
# slices, step 3 ships product-row slices).  Bit-packing each piece
# independently (little-endian, zero-padded to whole uint64 words, see
# pack_bool_rows) therefore gives a representation that is **closed under
# the whole pipeline**: delivered step-1 blocks are exactly the packed
# operands of the Four-Russians kernel, the kernel's packed output rows are
# exactly the step-3 pieces, and the step-4 q-way Boolean reduction is a
# word-parallel bitwise OR.  A closure can stay packed across all
# ceil(log n) squarings and unpack once at the end.
#
# Charges are *bit-identical* to the unpacked path by construction, not by
# luck: the simulator charges a piece at ``entries x words_for_value(max
# |entry|)``, and for 0/1 data ``words_for_value`` is 1 word for the 0 and
# the 1 case alike (both encode in 2 bits), so every q^2-bit piece of the
# unpacked path bills exactly ``q^2`` words whatever its contents.  The
# packed path ships pw = ceil(q^2/64) words per piece but passes those same
# constant widths explicitly -- the meter sees the identical bill,
# phase-for-phase, while the simulator wall-clock moves 64x fewer payload
# words (the point of the exercise).  Equivalence (values, rounds, meters)
# is pinned in tests/test_kernel_gen2.py and test_kernel_gen3.py.


def pack_bool_matrix(matrix: np.ndarray, n: int) -> np.ndarray:
    """Pack an ``n x n`` 0/1 matrix into the cube-piece word layout.

    Returns ``(n, q, pw)`` ``int64``: row ``v``'s ``q`` column slices
    ``(matrix[v, u2**] > 0)``, each bit-packed to ``pw = ceil(q^2/64)``
    words.  Thresholding matches the engines' Boolean convention
    (entries ``> 0`` are edges).
    """
    plan = cube_plan(n)
    q = plan.q
    matrix = np.asarray(matrix)
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be {n} x {n}, got {matrix.shape}")
    return pack_bool_rows(matrix.reshape(n, q, q * q))


def unpack_bool_matrix(packed: np.ndarray, n: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_matrix`: the 0/1 ``int64`` matrix."""
    plan = cube_plan(n)
    q = plan.q
    if packed.shape != (n, q, packed_words(q * q)):
        raise ValueError(
            f"packed matrix must be {(n, q, packed_words(q * q))}, "
            f"got {packed.shape}"
        )
    return unpack_bool_rows(packed, q * q).reshape(n, n)


def boolean_matmul_packed(
    clique: CongestedClique,
    sp: np.ndarray,
    tp: np.ndarray,
    *,
    phase: str = "semiring3d",
    arena: ExchangeArena | None = None,
) -> np.ndarray:
    """One §2.1 Boolean product on *packed* operands, packed result.

    ``sp``/``tp`` are ``(n, q, pw)`` packed matrices
    (:func:`pack_bool_matrix`); the result is the freshly-allocated packed
    product.  The pipeline mirrors :func:`semiring_matmul` exchange for
    exchange -- same :class:`CubePlan` destinations, delivery gathers and
    owner vectors (the piece *count* is unchanged, only the trailing width
    shrinks to ``pw`` words), same phase labels, and explicitly-passed
    widths reproducing the unpacked path's constant ``q^2``-word charges --
    so rounds and meters are bit-identical while every shipped/gathered
    buffer is 64x smaller.
    """
    n = clique.n
    plan = cube_plan(n)
    q = plan.q
    q2 = q * q
    pw = packed_words(q2)
    sp = np.ascontiguousarray(np.asarray(sp, dtype=np.int64))
    tp = np.ascontiguousarray(np.asarray(tp, dtype=np.int64))
    if sp.shape != (n, q, pw) or tp.shape != (n, q, pw):
        raise ValueError(
            f"packed operands must be {(n, q, pw)}, got {sp.shape} x {tp.shape}"
        )
    if arena is None:
        arena = ExchangeArena()

    # Step 1: same destination/emission order as the unpacked path; the
    # pieces buffer just carries pw packed words per piece instead of q^2
    # entries.
    pieces = arena.buffer("cube/pieces_packed", (n, 2 * q2, pw))
    pieces[:, :q2].reshape(n, q, q, pw)[:] = sp[:, :, None, :]
    pieces[:, q2:].reshape(n, q, q, pw)[:] = tp[:, None, :, :]

    # The unpacked path's honest per-piece width is q^2 entries x
    # words_for_value(max |entry| in {0, 1}) = q^2 x 1 -- constant for 0/1
    # data -- so the packed path charges that same constant explicitly.
    widths = arena.buffer("cube/widths1_packed", (n, 2 * q2))
    widths[:] = q2
    st_blocks = clique.route_array_take(
        plan.dests1,
        pieces,
        widths=widths,
        take=plan.take_st,
        out=arena.buffer("cube/st_blocks_packed", (2 * n * q2, pw)),
        owners=plan.owners_st,
        phase=f"{phase}/step1-distribute",
        expect_max_load=_LOAD_SLACK * 2 * q2 * q2,
    )

    # Step 2: the delivered blocks are already the Four-Russians operands
    # (left rows packed along the inner dimension, right rows packed along
    # the output columns), so the batched products consume and produce
    # packed words directly -- no per-product pack/unpack.
    s_blocks = st_blocks[: n * q2].reshape(n, q2, pw)
    t_blocks = st_blocks[n * q2 :].reshape(n, q2, pw)
    products = clique.executor.boolean_packed_products(s_blocks, t_blocks, q2)

    # Step 3: product rows are q^2-bit pieces again; same constant charge.
    widths3 = arena.buffer("cube/widths3_packed", (n, q2))
    widths3[:] = q2
    flat_recombined = clique.route_array_take(
        plan.dests3,
        products,
        widths=widths3,
        take=plan.take3,
        out=arena.buffer("cube/recomb_packed", (n * q2, pw)),
        owners=plan.owners3,
        phase=f"{phase}/step3-recombine",
        expect_max_load=_LOAD_SLACK * q2 * q2,
    )

    # Step 4: the q-way Boolean reduction over w2 is a word-parallel OR;
    # the reduce allocates fresh output (arena buffers never escape).
    recombined = flat_recombined.reshape(n, q, q, pw)
    return np.bitwise_or.reduce(recombined, axis=1)


def strip_product_with_witness(
    dist_to_hubs: np.ndarray,
    hub_closure: np.ndarray,
    dist_from_hubs: np.ndarray,
    semiring: Semiring = MIN_PLUS,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Dirty-strip re-squaring kernel: ``(n,s) . (s,s) . (s,n)`` with witnesses.

    The strip-restricted product behind incremental closure maintenance
    (:func:`repro.serve.delta.apply_edge_updates`): for a dirty hub set
    ``D`` of size ``s``, the candidate improvements are

        ``C[a, b] = min over x, y in D of
        dist_to_hubs[a, x] + hub_closure[x, y] + dist_from_hubs[y, b]``

    computed as two rectangular selection-kernel calls (the witness kernels
    already handle ``(m, k) x (k, n)`` operands).  Returns ``(C, wx, wy)``
    where ``wy[a, b]`` is the exit-hub index attaining ``C[a, b]`` and
    ``wx[a, j]`` the entry-hub index attaining the left factor
    ``L[a, j] = min_x dist_to_hubs[a, x] + hub_closure[x, j]`` -- so the
    attaining pair for ``(a, b)`` is ``(wx[a, wy[a, b]], wy[a, b])``.

    Purely local compute: after the dirty hub closure and the ``s`` dirty
    distance rows have been broadcast, row ``a`` of both factors lives at
    node ``a``, so no exchange (and no round charge) happens here -- the
    delta layer bills the broadcasts.
    """
    if not semiring.has_witnesses:
        raise ValueError(f"semiring {semiring.name!r} has no witnesses")
    left, wx = semiring.matmul_with_witness(dist_to_hubs, hub_closure)
    cand, wy = semiring.matmul_with_witness(left, dist_from_hubs)
    return cand, wx, wy


__all__ = [
    "semiring_matmul",
    "CubePlan",
    "cube_plan",
    "boolean_matmul_packed",
    "pack_bool_matrix",
    "unpack_bool_matrix",
    "strip_product_with_witness",
]
