"""Tests for distance products: exact, Lemma 18 and Lemma 20."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import MIN_PLUS
from repro.clique import CongestedClique
from repro.constants import INF
from repro.matmul.distance import (
    approx_distance_product,
    distance_product,
    distance_product_ring,
    scaling_levels,
)


def _dist_matrix(rng, n, max_entry, inf_prob=0.2):
    mat = rng.integers(0, max_entry + 1, (n, n), dtype=np.int64)
    mat[rng.random((n, n)) < inf_prob] = INF
    return mat


class TestExactProduct:
    def test_matches_reference(self, rng):
        n = 27
        s = _dist_matrix(rng, n, 30)
        t = _dist_matrix(rng, n, 30)
        clique = CongestedClique(n)
        got = distance_product(clique, s, t)
        assert np.array_equal(got, MIN_PLUS.matmul(s, t))

    def test_witnesses(self, rng):
        n = 8
        s = _dist_matrix(rng, n, 10)
        t = _dist_matrix(rng, n, 10)
        clique = CongestedClique(n)
        product, witness = distance_product(clique, s, t, with_witnesses=True)
        for u in range(n):
            for v in range(n):
                if product[u, v] < INF:
                    k = int(witness[u, v])
                    assert s[u, k] + t[k, v] == product[u, v]


class TestLemma18:
    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=6),
    )
    def test_matches_reference(self, seed, max_entry):
        rng = np.random.default_rng(seed)
        n = 16
        s = _dist_matrix(rng, n, max_entry)
        t = _dist_matrix(rng, n, max_entry)
        clique = CongestedClique(n)
        got = distance_product_ring(clique, s, t, max_entry)
        assert np.array_equal(got, MIN_PLUS.matmul(s, t))

    def test_entries_above_bound_act_as_infinity(self, rng):
        n = 16
        s = np.full((n, n), 50, dtype=np.int64)  # above the bound 5
        t = np.full((n, n), 1, dtype=np.int64)
        clique = CongestedClique(n)
        got = distance_product_ring(clique, s, t, 5)
        assert np.all(got >= INF)

    def test_rounds_grow_with_entry_bound(self, rng):
        n = 16
        s = _dist_matrix(rng, n, 2)
        t = _dist_matrix(rng, n, 2)
        cheap = CongestedClique(n)
        distance_product_ring(cheap, s, t, 2)
        expensive = CongestedClique(n)
        distance_product_ring(expensive, s, t, 20)
        # Lemma 18 cost is O(M n^rho): the polynomial width shows directly.
        assert expensive.rounds > cheap.rounds

    def test_negative_bound_rejected(self, rng):
        clique = CongestedClique(16)
        mat = np.zeros((16, 16), dtype=np.int64)
        with pytest.raises(ValueError):
            distance_product_ring(clique, mat, mat, -1)


class TestScalingLevels:
    def test_small_bounds(self):
        assert scaling_levels(0, 0.25) == 1
        assert scaling_levels(1, 0.25) == 1

    def test_growth(self):
        assert scaling_levels(100, 0.25) > scaling_levels(10, 0.25)

    def test_delta_must_be_positive(self):
        with pytest.raises(ValueError):
            scaling_levels(10, 0.0)


class TestLemma20:
    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_approximation_guarantee(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        delta = 0.3
        s = _dist_matrix(rng, n, 150)
        t = _dist_matrix(rng, n, 150)
        clique = CongestedClique(n)
        approx = approx_distance_product(clique, s, t, delta)
        exact = MIN_PLUS.matmul(s, t)
        finite = exact < INF
        assert np.array_equal(approx >= INF, ~finite)
        assert (approx[finite] >= exact[finite]).all()
        # Lemma 20: P <= P~ <= (1 + delta) P (integer floor slack included).
        assert (
            approx[finite] <= np.floor((1 + delta) * exact[finite]) + 1
        ).all()

    def test_smaller_delta_costs_more_rounds(self, rng):
        n = 16
        s = _dist_matrix(rng, n, 60)
        t = _dist_matrix(rng, n, 60)
        loose = CongestedClique(n)
        approx_distance_product(loose, s, t, 0.5)
        tight = CongestedClique(n)
        approx_distance_product(tight, s, t, 0.15)
        assert tight.rounds > loose.rounds

    def test_exact_for_zero_matrices(self, rng):
        n = 16
        zeros = np.zeros((n, n), dtype=np.int64)
        clique = CongestedClique(n)
        approx = approx_distance_product(clique, zeros, zeros, 0.25)
        assert np.array_equal(approx, zeros)
