"""Round-count predictors and exponent fitting.

The simulator's round charges are deterministic closed forms of the layout
parameters and entry widths, so each algorithm's cost can be *predicted*
exactly and cross-checked against the metered run -- the strongest form of
"reproducing Table 1" available to a simulation: measured == predicted, and
predicted grows with the paper's exponent.

:func:`fit_exponent` estimates the empirical growth exponent of a rounds-vs-n
series by least squares in log-log space; the benchmark harness compares it
against the theoretical exponents in :mod:`repro.constants`.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.bilinear import BilinearAlgorithm
from repro.matmul.layout import CubeLayout, GridLayout


def _relay(load: int, n: int) -> int:
    return 0 if load <= 0 else 2 * math.ceil(load / n)


def predicted_semiring3d_rounds(
    n: int,
    *,
    entry_words_in: int = 1,
    entry_words_out: int | None = None,
    witness_words: int = 0,
) -> int:
    """Exact FAST-mode round count of :func:`repro.matmul.semiring3d.semiring_matmul`.

    ``entry_words_in`` is the word width of the widest input entry and
    ``entry_words_out`` of the widest partial-product entry (defaults to the
    input width, which holds e.g. for Boolean/min-plus data); pass
    ``witness_words=1`` when witnesses ride along.
    """
    layout = CubeLayout.for_clique(n)
    q = layout.q
    ew_out = entry_words_out if entry_words_out is not None else entry_words_in
    step1 = _relay(2 * q**4 * entry_words_in, n)
    step3 = _relay(q**4 * (ew_out + witness_words), n)
    return step1 + step3


def predicted_bilinear_rounds(
    n: int,
    algorithm: BilinearAlgorithm | None = None,
    *,
    d: int | None = None,
    m: int | None = None,
    entry_words_in: int = 1,
    entry_words_hat: int = 1,
    entry_words_prod: int = 1,
) -> int:
    """Exact FAST-mode round count of :func:`repro.matmul.bilinear_clique.bilinear_matmul`.

    The round count only depends on the algorithm's shape ``<d, .; m>``, so
    either pass an algorithm or its ``d``/``m`` directly -- the latter avoids
    materialising huge coefficient tensors when predicting at large ``n``.
    The three width parameters are the word widths of (a) input entries,
    (b) the encoded linear combinations of step 2, and (c) the block-product
    entries -- all ``1`` for small (e.g. 0/1) inputs at the default word size.
    """
    if algorithm is not None:
        d, m = algorithm.d, algorithm.m
    if d is None or m is None:
        raise ValueError("pass an algorithm or both d and m")
    layout = GridLayout.for_clique(n, d)
    q, d, c, mm = layout.q, layout.d, layout.c, layout.m_padded
    dc = d * c
    qc = q * c
    step1 = _relay(max(2 * mm * entry_words_in, 2 * dc * dc * entry_words_in), n)
    step3 = _relay(
        max(2 * m * c * c * entry_words_hat, 2 * qc * qc * entry_words_hat), n
    )
    step5 = _relay(
        max(qc * qc * entry_words_prod, m * c * c * entry_words_prod), n
    )
    step7 = _relay(
        max(dc * dc * entry_words_prod, q * dc * entry_words_prod), n
    )
    return step1 + step3 + step5 + step7


def predicted_naive_rounds(n: int, *, entry_words: int = 1) -> int:
    """Round count of the broadcast baseline: one row of ``T`` per node."""
    return n * entry_words


def fit_exponent(ns: list[int], values: list[float]) -> float:
    """Least-squares slope of ``log(values)`` against ``log(ns)``.

    The empirical growth exponent of a measured rounds-vs-n series; with
    fewer than two points the fit is undefined and ``nan`` is returned.
    """
    if len(ns) != len(values):
        raise ValueError("ns and values must have equal length")
    if len(ns) < 2:
        return float("nan")
    logs_n = np.log(np.asarray(ns, dtype=float))
    logs_v = np.log(np.maximum(np.asarray(values, dtype=float), 1e-9))
    slope, _intercept = np.polyfit(logs_n, logs_v, 1)
    return float(slope)


__all__ = [
    "predicted_semiring3d_rounds",
    "predicted_bilinear_rounds",
    "predicted_naive_rounds",
    "fit_exponent",
]
