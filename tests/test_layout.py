"""Tests for the §2.1/§2.2 index partitioning schemes."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import CliqueSizeError
from repro.matmul.layout import (
    CubeLayout,
    GridLayout,
    exact_cbrt,
    exact_sqrt,
    next_cube,
    next_square,
)


class TestRoots:
    @given(st.integers(min_value=1, max_value=500))
    def test_exact_cbrt_consistent(self, q):
        assert exact_cbrt(q**3) == q

    def test_non_cubes(self):
        assert exact_cbrt(10) is None
        assert exact_sqrt(10) is None

    @given(st.integers(min_value=1, max_value=10**5))
    def test_next_cube_properties(self, n):
        cube = next_cube(n)
        assert cube >= n
        assert exact_cbrt(cube) is not None
        q = exact_cbrt(cube)
        assert (q - 1) ** 3 < n

    @given(st.integers(min_value=1, max_value=10**6))
    def test_next_square_properties(self, n):
        square = next_square(n)
        assert square >= n
        assert exact_sqrt(square) is not None


class TestCubeLayout:
    def test_rejects_non_cube(self):
        with pytest.raises(CliqueSizeError):
            CubeLayout.for_clique(10)

    def test_digits_roundtrip(self):
        layout = CubeLayout.for_clique(27)
        for v in range(27):
            assert layout.node(*layout.digits(v)) == v

    def test_first_digit_sets_partition_everything(self):
        layout = CubeLayout.for_clique(64)
        seen = []
        for x in range(4):
            start, stop = layout.first_digit_range(x)
            seen.extend(range(start, stop))
        assert seen == list(range(64))

    def test_block_slice_matches_digits(self):
        layout = CubeLayout.for_clique(27)
        for x in range(3):
            ids = range(*layout.first_digit_range(x))
            for v in ids:
                assert layout.digits(v)[0] == x


class TestGridLayout:
    def test_rejects_non_square(self):
        with pytest.raises(CliqueSizeError):
            GridLayout.for_clique(10, 2)

    def test_rejects_oversized_d(self):
        with pytest.raises(CliqueSizeError):
            GridLayout.for_clique(16, 5)

    def test_padded_size_covers_n(self):
        for n, d in [(16, 2), (49, 4), (100, 4), (256, 8)]:
            layout = GridLayout.for_clique(n, d)
            assert layout.m_padded >= n
            assert layout.m_padded == layout.d * layout.q * layout.c

    def test_labels_unique(self):
        layout = GridLayout.for_clique(49, 4)
        labels = {layout.label(v) for v in range(49)}
        assert len(labels) == 49

    def test_label_roundtrip(self):
        layout = GridLayout.for_clique(36, 3)
        for v in range(36):
            assert layout.node_of_label(*layout.label(v)) == v

    def test_cell_axis_indices_partition_padded_range(self):
        layout = GridLayout.for_clique(49, 4)
        seen = np.concatenate(
            [layout.indices_of_cell_axis(x) for x in range(layout.q)]
        )
        assert sorted(seen.tolist()) == list(range(layout.m_padded))

    def test_row_position_consistent_with_cell_indices(self):
        layout = GridLayout.for_clique(49, 4)
        for x in range(layout.q):
            for r in layout.indices_of_cell_axis(x):
                _i, x1, _t = layout.row_position(int(r))
                assert x1 == x
