"""E4 -- Table 1 "4-cycle detection": Theorem 4's O(1) vs Dolev O(n^{1/2}).

The headline shape: our round count stays flat as n grows while the
baseline's climbs; both always agree with the brute-force oracle.
"""

from __future__ import annotations

import pytest

from repro.baselines import dolev_four_cycle_detect
from repro.graphs import bipartite_random_graph, four_cycle_count_reference
from repro.matmul.exponent import fit_exponent
from repro.subgraphs import detect_four_cycles

from .conftest import run_once

SIZES = [16, 36, 64, 100, 144, 196]


def _workload(n: int):
    # Constant average degree keeps C4 presence varied across sizes.
    return bipartite_random_graph(n, 4.0 / n, seed=n)


@pytest.mark.parametrize("n", SIZES)
def test_four_cycle_detection_theorem4(benchmark, n):
    g = _workload(n)

    def run():
        return detect_four_cycles(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == (four_cycle_count_reference(g) > 0)


@pytest.mark.parametrize("n", SIZES[:4])
def test_four_cycle_detection_dolev(benchmark, n):
    g = _workload(n)

    def run():
        return dolev_four_cycle_detect(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == (four_cycle_count_reference(g) > 0)


def test_flatness_vs_baseline_growth(benchmark):
    def run():
        ours, prior = [], []
        for n in SIZES[:4]:
            g = _workload(n)
            ours.append(detect_four_cycles(g).rounds)
            prior.append(dolev_four_cycle_detect(g).rounds)
        return ours, prior

    ours, prior = run_once(benchmark, run)
    benchmark.extra_info["our_rounds"] = ours
    benchmark.extra_info["dolev_rounds"] = prior
    our_exp = fit_exponent(SIZES[:4], ours)
    prior_exp = fit_exponent(SIZES[:4], prior)
    benchmark.extra_info["our_exponent"] = our_exp
    benchmark.extra_info["dolev_exponent"] = prior_exp
    assert our_exp < 0.2  # O(1): essentially flat
    assert prior_exp > our_exp
