"""Crossover estimation between round-complexity curves.

The Table 1 comparisons are exponent statements; at finite sizes the
constants decide who actually wins.  Given measured anchors
``(n0, rounds0)`` for two algorithms and their growth exponents, the
power-law extrapolation

    ``rounds_i(n) = rounds_i(n0) * (n / n0)^{e_i}``

crosses at ``n* = n0 * (r_slow/r_fast)^{1/(e_slow - e_fast)}`` (when the
asymptotically faster algorithm is behind at the anchor).  This module
makes the EXPERIMENTS.md crossover claims (e.g. matmul-based triangle
counting vs Dolev et al.) reproducible numbers rather than prose.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


@dataclass(frozen=True)
class CrossoverEstimate:
    """Extrapolated break-even size between two power-law round curves."""

    anchor_n: int
    fast_rounds_at_anchor: float
    slow_rounds_at_anchor: float
    fast_exponent: float
    slow_exponent: float

    @property
    def crossover_n(self) -> float:
        """The size where the asymptotically faster curve takes the lead.

        ``<= anchor_n`` when it already leads at the anchor; ``inf`` when
        the exponents do not order (no crossover).
        """
        gap = self.slow_exponent - self.fast_exponent
        if gap <= 0:
            return math.inf
        if self.fast_rounds_at_anchor <= self.slow_rounds_at_anchor:
            return float(self.anchor_n)
        ratio = self.fast_rounds_at_anchor / self.slow_rounds_at_anchor
        return self.anchor_n * ratio ** (1.0 / gap)


def crossover(
    anchor_n: int,
    fast_rounds: float,
    slow_rounds: float,
    fast_exponent: float,
    slow_exponent: float,
) -> CrossoverEstimate:
    """Build a :class:`CrossoverEstimate`; see the module docstring."""
    if anchor_n < 1 or fast_rounds <= 0 or slow_rounds <= 0:
        raise ValueError("anchor size and round counts must be positive")
    return CrossoverEstimate(
        anchor_n=anchor_n,
        fast_rounds_at_anchor=float(fast_rounds),
        slow_rounds_at_anchor=float(slow_rounds),
        fast_exponent=fast_exponent,
        slow_exponent=slow_exponent,
    )


def triangle_crossover_vs_dolev(
    anchor_n: int,
    our_rounds: float,
    dolev_rounds: float,
    *,
    rho: float,
) -> CrossoverEstimate:
    """The Table 1 triangle-counting break-even under a given exponent.

    Pass ``rho = RHO_IMPLEMENTED`` for the Strassen engine actually running
    in this repository, or ``rho = RHO_PAPER`` to see where the paper's
    Le Gall-based bound would overtake the same measured constants.
    """
    return crossover(anchor_n, our_rounds, dolev_rounds, rho, 1.0 / 3.0)


__all__ = ["CrossoverEstimate", "crossover", "triangle_crossover_vs_dolev"]
