"""The 3D semiring matrix multiplication algorithm (paper §2.1, Theorem 1).

Computes ``P = S T`` over any semiring on a congested clique of ``n = q^3``
nodes in ``O(n^{1/3})`` rounds.  The ``n^3`` elementary products are viewed
as the cube ``V x V x V``, partitioned into ``n`` subcubes of side
``n^{2/3}``; node ``v = v1 v2 v3`` computes the block product

    ``P^{(v2)}[v1**, v3**] = S[v1**, v2**] . T[v2**, v3**]``

and the partial products are recombined with semiring addition.  The
communication pattern is oblivious (input-independent), matching the paper's
observation that the static routing of Dolev et al. suffices.

Input/output convention (paper §2): node ``v`` initially holds row ``v`` of
both ``S`` and ``T``, and finally holds row ``v`` of ``P``.  The simulator
passes full matrices for convenience, but every step below only touches the
rows a node legitimately owns or has received.

For selection semirings (min-plus, max-min) the algorithm optionally returns
a *witness matrix*: ``W[u, v]`` is an inner index attaining ``P[u, v]``,
which §3.3 turns into routing tables.  Witnesses ride along with the data
(doubling payload width) and fall out of the local block products for free,
exactly because the semiring engine takes arg-min locally.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.messages import words_for_array, words_for_value
from repro.clique.model import CongestedClique
from repro.matmul.layout import CubeLayout

#: Slack multiplier on the asserted per-node load bounds: the analysis bound
#: is 2 n^{4/3} *entries*; the width in words multiplies it, and padding can
#: add a little, so algorithms assert with a factor-4 safety margin (a true
#: implementation bug overshoots by far more).
_LOAD_SLACK = 4


def semiring_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    with_witnesses: bool = False,
    phase: str = "semiring3d",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Multiply ``n x n`` matrices over a semiring in ``O(n^{1/3})`` rounds.

    Args:
        clique: an ``n``-node clique with ``n`` a perfect cube (pad with
            :func:`repro.matmul.layout.next_cube` otherwise).
        s: left operand, ``int64``, row ``v`` owned by node ``v``.
        t: right operand, same convention.
        semiring: the semiring to multiply over (default: integer ring --
            which §2.1 also covers, just without the §2.2 speedup).
        with_witnesses: if set (selection semirings only), also return the
            witness matrix ``W`` with ``P[u,v] = S[u, W[u,v]] (x) T[W[u,v], v]``.
        phase: cost-meter label prefix.

    Returns:
        ``P``, or ``(P, W)`` when ``with_witnesses`` is set.
    """
    n = clique.n
    layout = CubeLayout.for_clique(n)
    q = layout.q
    s = np.ascontiguousarray(np.asarray(s, dtype=np.int64))
    t = np.ascontiguousarray(np.asarray(t, dtype=np.int64))
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n} matrices")
    if with_witnesses and not semiring.has_witnesses:
        raise ValueError(f"semiring {semiring.name} does not support witnesses")
    word_bits = clique.word_bits
    q2 = q * q

    # ---------------- Step 1: distribute the entries. ------------------- #
    # Node v sends S[v, u2**] to each u in v1** and T[v, w3**] to each w in
    # *v1* (i.e. w2 = v1), so that node u assembles S[u1**, u2**] and
    # T[u2**, u3**].  Each node ships 2 q^2 submatrices of q^2 entries:
    # 2 n^{4/3} words at unit width.
    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(n)]
    for v in range(n):
        v1 = v // q2
        s_row = s[v]
        t_row = t[v]
        for u2 in range(q):
            piece = s_row[layout.block_slice(u2)]
            width = words_for_array(piece, word_bits)
            for u3 in range(q):
                u = layout.node(v1, u2, u3)
                outboxes[v].append((u, ("S", v, piece), width))
        for w1 in range(q):
            for w3 in range(q):
                w = layout.node(w1, v1, w3)
                piece = t_row[layout.block_slice(w3)]
                width = words_for_array(piece, word_bits)
                outboxes[v].append((w, ("T", v, piece), width))
    max_abs = max(
        int(np.max(np.abs(s))) if s.size else 0,
        int(np.max(np.abs(t))) if t.size else 0,
    )
    max_entry_words = words_for_value(max_abs, word_bits)
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step1-distribute",
        expect_max_load=_LOAD_SLACK * 2 * q2 * q2 * max_entry_words,
    )

    # ---------------- Step 2: local block products. --------------------- #
    s_blocks: list[np.ndarray] = []
    t_blocks: list[np.ndarray] = []
    for v in range(n):
        v1, v2, _v3 = layout.digits(v)
        s_block = semiring.zeros((q2, q2))
        t_block = semiring.zeros((q2, q2))
        s_base, _ = layout.first_digit_range(v1)
        t_base, _ = layout.first_digit_range(v2)
        for src, (kind, row, piece) in inboxes[v]:
            if kind == "S":
                s_block[row - s_base] = piece
            else:
                t_block[row - t_base] = piece
            assert src == row
        s_blocks.append(s_block)
        t_blocks.append(t_block)

    products: list[np.ndarray] = []
    witness_blocks: list[np.ndarray | None] = []
    for v in range(n):
        if with_witnesses:
            _, v2, _ = layout.digits(v)
            prod, wit = semiring.matmul_with_witness(s_blocks[v], t_blocks[v])
            k_base, _ = layout.first_digit_range(v2)
            witness_blocks.append(wit + k_base)  # local k -> global node id
        else:
            prod = semiring.matmul(s_blocks[v], t_blocks[v])
            witness_blocks.append(None)
        products.append(prod)

    # ---------------- Step 3: distribute the partial products. ---------- #
    # Node v holds P^{(v2)}[v1**, v3**]; it sends row u's slice to node u
    # for each u in v1**.  n^{4/3} words each way (x2 with witnesses).
    witness_words = words_for_value(n, word_bits)
    outboxes = [[] for _ in range(n)]
    for v in range(n):
        v1, v2, v3 = layout.digits(v)
        base, _ = layout.first_digit_range(v1)
        prod = products[v]
        wit = witness_blocks[v]
        for local_row in range(q2):
            u = base + local_row
            piece = prod[local_row]
            width = words_for_array(piece, word_bits)
            if with_witnesses:
                payload = (v2, v3, piece, wit[local_row])
                width += piece.size * witness_words
            else:
                payload = (v2, v3, piece, None)
            outboxes[v].append((u, payload, width))
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step3-recombine",
        expect_max_load=_LOAD_SLACK
        * q2
        * q2
        * (max_entry_words + (witness_words if with_witnesses else 0)),
    )

    # ---------------- Step 4: assemble the result rows. ----------------- #
    p = semiring.zeros((n, n))
    w_out = np.full((n, n), -1, dtype=np.int64) if with_witnesses else None
    for v in range(n):
        row = semiring.zeros((q, n))  # one slot per middle digit w2
        row_wit = np.zeros((q, n), dtype=np.int64) if with_witnesses else None
        for _src, (u2, u3, piece, wit_piece) in inboxes[v]:
            cols = layout.block_slice(u3)
            row[u2, cols] = piece
            if with_witnesses:
                row_wit[u2, cols] = wit_piece
        if with_witnesses:
            acc, acc_w = row[0], row_wit[0]
            for w2 in range(1, q):
                acc, acc_w = semiring.add_with_witness(
                    acc, acc_w, row[w2], row_wit[w2]
                )
            p[v] = acc
            w_out[v] = acc_w
        else:
            acc = row[0]
            for w2 in range(1, q):
                acc = semiring.add(acc, row[w2])
            p[v] = acc
    if with_witnesses:
        return p, w_out
    return p


__all__ = ["semiring_matmul"]
