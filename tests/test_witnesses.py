"""Tests for §3.4 witness detection (Lemma 21)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique import CongestedClique
from repro.constants import INF
from repro.errors import AlgorithmFailureError
from repro.matmul.distance import distance_product_ring
from repro.matmul.witnesses import find_witnesses, unique_witnesses


def _engine(clique, max_entry):
    def product(s, t, phase):
        return distance_product_ring(clique, s, t, max_entry, phase=phase)

    return product


def _random_instance(seed, n, max_entry, inf_prob=0.25):
    rng = np.random.default_rng(seed)
    s = rng.integers(0, max_entry + 1, (n, n), dtype=np.int64)
    t = rng.integers(0, max_entry + 1, (n, n), dtype=np.int64)
    s[rng.random((n, n)) < inf_prob] = INF
    t[rng.random((n, n)) < inf_prob] = INF
    return s, t


class TestFindWitnesses:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_all_witnesses_valid(self, seed):
        n, max_entry = 16, 5
        s, t = _random_instance(seed, n, max_entry)
        clique = CongestedClique(n)
        result = find_witnesses(
            clique, s, t, _engine(clique, max_entry), rng=np.random.default_rng(seed)
        )
        assert result.resolved.all()
        exact = MIN_PLUS.matmul(s, t)
        for u in range(n):
            for v in range(n):
                if exact[u, v] < INF:
                    w = int(result.witnesses[u, v])
                    assert w >= 0
                    assert s[u, w] + t[w, v] == exact[u, v]
                else:
                    assert result.witnesses[u, v] == -1

    def test_many_witness_instance(self):
        # All-zero matrices: every inner index is a witness for every pair,
        # which maximally stresses the sampling stage.
        n = 16
        s = np.zeros((n, n), dtype=np.int64)
        t = np.zeros((n, n), dtype=np.int64)
        clique = CongestedClique(n)
        result = find_witnesses(
            clique, s, t, _engine(clique, 1), rng=np.random.default_rng(0)
        )
        assert result.resolved.all()
        assert (result.witnesses >= 0).all()

    @staticmethod
    def _two_witness_instance(n: int):
        """Every pair has witnesses exactly {1, 2}.

        The bitwise OR of the witness indices is 3, which is *not* a
        witness, so the unique-extraction stage alone cannot resolve any
        pair -- the sampling stage (§3.4 general case) is forced to work.
        """
        s = np.full((n, n), 10, dtype=np.int64)
        t = np.full((n, n), 10, dtype=np.int64)
        s[:, 1] = s[:, 2] = 0
        t[1, :] = t[2, :] = 0
        return s, t

    def test_sampling_stage_resolves_two_witness_instance(self):
        n = 16
        s, t = self._two_witness_instance(n)
        clique = CongestedClique(n)
        result = find_witnesses(
            clique, s, t, _engine(clique, 10), rng=np.random.default_rng(0)
        )
        assert result.resolved.all()
        assert set(np.unique(result.witnesses)) <= {1, 2}

    def test_partial_mode_reports_gaps(self):
        n = 16
        s, t = self._two_witness_instance(n)
        clique = CongestedClique(n)
        result = find_witnesses(
            clique,
            s,
            t,
            _engine(clique, 10),
            rng=np.random.default_rng(0),
            trials_per_scale=0,
            on_failure="partial",
        )
        assert not result.resolved.all()

    def test_raises_when_budget_exhausted(self):
        n = 16
        s, t = self._two_witness_instance(n)
        clique = CongestedClique(n)
        with pytest.raises(AlgorithmFailureError):
            find_witnesses(
                clique,
                s,
                t,
                _engine(clique, 10),
                rng=np.random.default_rng(0),
                trials_per_scale=0,
            )

    def test_rounds_are_charged(self):
        n = 16
        s, t = _random_instance(5, n, 4)
        clique = CongestedClique(n)
        find_witnesses(clique, s, t, _engine(clique, 4), rng=np.random.default_rng(1))
        assert clique.rounds > 0
        assert clique.meter.payloads > 0


class TestUniqueWitnesses:
    def test_identity_instance_resolved_by_bits(self):
        # t = 0 diag, INF elsewhere: the only witness for (u, v) is v itself.
        n = 16
        rng = np.random.default_rng(3)
        s = rng.integers(0, 5, (n, n), dtype=np.int64)
        t = np.full((n, n), INF, dtype=np.int64)
        np.fill_diagonal(t, 0)
        clique = CongestedClique(n)
        engine = _engine(clique, 5)
        p = engine(s, t, "full")
        candidates, used = unique_witnesses(clique, s, t, p, engine)
        assert used >= 1
        for u in range(n):
            for v in range(n):
                if p[u, v] < INF:
                    assert candidates[u, v] == v
