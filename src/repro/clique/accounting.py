"""Round/message/word accounting for the congested-clique simulator.

The congested clique charges one synchronous *round* for every node sending
one ``O(log n)``-bit message to every other node.  The unit of accounting is
the *word*: a payload of ``w`` words from ``u`` to ``v`` occupies the directed
link ``(u, v)`` for ``w`` rounds if sent directly, and contributes ``w`` to
``u``'s send load and ``v``'s receive load if relayed.

Every communication primitive charges exactly one :class:`PhaseCost` to the
meter, so an algorithm's total round count decomposes into a per-phase
breakdown that mirrors the step structure of the paper's algorithm
descriptions (e.g. "Step 1: Distributing the entries").
"""

from __future__ import annotations

from dataclasses import dataclass, field


@dataclass(frozen=True)
class PhaseCost:
    """Cost of one communication phase (one primitive invocation).

    Attributes:
        phase: human-readable phase label, e.g. ``"semiring3d/step1"``.
        primitive: which primitive charged this cost (``broadcast``, ``send``,
            ``route``, ...).
        rounds: synchronous rounds consumed by the phase.
        words: total words shipped across all links during the phase.
        payloads: number of logical payload messages (one payload may span
            many words).
        max_send_words: maximum, over nodes, of words sent by that node.
        max_recv_words: maximum, over nodes, of words received by that node.
    """

    phase: str
    primitive: str
    rounds: int
    words: int
    payloads: int
    max_send_words: int
    max_recv_words: int


@dataclass
class CostMeter:
    """Accumulates :class:`PhaseCost` records for one simulation run."""

    phases: list[PhaseCost] = field(default_factory=list)

    def charge(self, cost: PhaseCost) -> None:
        """Record the cost of one completed phase."""
        if cost.rounds < 0:
            raise ValueError(f"negative round charge: {cost!r}")
        self.phases.append(cost)

    @property
    def rounds(self) -> int:
        """Total rounds across all phases charged so far."""
        return sum(p.rounds for p in self.phases)

    @property
    def words(self) -> int:
        """Total words shipped across all phases charged so far."""
        return sum(p.words for p in self.phases)

    @property
    def payloads(self) -> int:
        """Total logical payload messages across all phases."""
        return sum(p.payloads for p in self.phases)

    @property
    def max_node_load(self) -> int:
        """Largest per-node send or receive load seen in any single phase."""
        if not self.phases:
            return 0
        return max(max(p.max_send_words, p.max_recv_words) for p in self.phases)

    def reset(self) -> None:
        """Discard all recorded phases."""
        self.phases.clear()

    def snapshot(self) -> int:
        """Return the current number of recorded phases.

        Use together with :meth:`rounds_since` to measure a sub-computation:

        >>> meter = CostMeter()
        >>> mark = meter.snapshot()
        >>> # ... run something that charges the meter ...
        >>> meter.rounds_since(mark)
        0
        """
        return len(self.phases)

    def rounds_since(self, mark: int) -> int:
        """Rounds charged since a :meth:`snapshot` mark."""
        return sum(p.rounds for p in self.phases[mark:])

    def words_since(self, mark: int) -> int:
        """Words charged since a :meth:`snapshot` mark."""
        return sum(p.words for p in self.phases[mark:])

    def by_phase_prefix(self) -> dict[str, int]:
        """Aggregate rounds by the phase-label prefix before the first ``/``.

        The matmul algorithms label their phases ``"<algo>/<step>"``; this
        groups the step costs back into per-algorithm totals.
        """
        out: dict[str, int] = {}
        for p in self.phases:
            key = p.phase.split("/", 1)[0]
            out[key] = out.get(key, 0) + p.rounds
        return out

    def report(self) -> str:
        """Human-readable per-phase cost table."""
        lines = [
            f"{'phase':40s} {'prim':10s} {'rounds':>8s} {'words':>12s} "
            f"{'maxsend':>9s} {'maxrecv':>9s}"
        ]
        for p in self.phases:
            lines.append(
                f"{p.phase:40s} {p.primitive:10s} {p.rounds:8d} {p.words:12d} "
                f"{p.max_send_words:9d} {p.max_recv_words:9d}"
            )
        lines.append(f"{'TOTAL':40s} {'':10s} {self.rounds:8d} {self.words:12d}")
        return "\n".join(lines)


__all__ = ["PhaseCost", "CostMeter"]
