"""Bottleneck (widest-path) APSP -- a semiring-engine extension.

Theorem 1 is stated "over semirings"; the paper exercises it on min-plus
and Boolean. This module exercises the generality on a third instance, the
**max-min (bottleneck) semiring**: the widest-path value

    ``B[u, v] = max over u->v paths of (min edge capacity on the path)``

is the ``n``-th power of the capacity matrix over ``(max, min)``, computed
by the same iterated squaring as Corollary 6 in ``O(n^{1/3} log n)``
rounds, witnesses included (so bottleneck routing tables fall out the same
way shortest-path ones do).

This is exactly the kind of "other problems" the conclusion section
predicts the technique extends to; it doubles as an ablation that the §2.1
engine has no min-plus specific assumptions baked in.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import MAX_MIN
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.engine import EngineSession, default_steps
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, make_clique, pad_matrix

#: Self-capacity: a node can keep its own flow without a bottleneck.
SELF_CAPACITY = INF


def capacity_matrix(graph: Graph) -> np.ndarray:
    """The bottleneck analogue of the §3.3 weight matrix.

    ``C[u, v]`` is the edge capacity (edge weight), ``-INF`` for non-edges
    (the max-min additive identity) and ``+INF`` on the diagonal.
    """
    cap = np.full((graph.n, graph.n), -INF, dtype=np.int64)
    edge = graph.adjacency == 1
    if graph.weights is not None:
        cap[edge] = graph.weights[edge]
    else:
        cap[edge] = 1
    np.fill_diagonal(cap, SELF_CAPACITY)
    return cap


def bottleneck_reference(graph: Graph) -> np.ndarray:
    """Centralised widest-path oracle (Floyd-Warshall over (max, min))."""
    cap = capacity_matrix(graph)
    n = graph.n
    for k in range(n):
        via = np.minimum(cap[:, k : k + 1], cap[k : k + 1, :])
        cap = np.maximum(cap, via)
    return cap


def apsp_bottleneck(
    graph: Graph,
    *,
    with_routing_tables: bool = False,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """All-pairs widest paths in ``O(n^{1/3} log n)`` rounds.

    ``value[u, v]`` is the best achievable bottleneck capacity from ``u``
    to ``v`` (``-INF`` if unreachable, ``+INF`` on the diagonal).  With
    ``with_routing_tables``, ``extras["next_hop"]`` routes along a widest
    path, built from the engine's native argmax witnesses exactly as in
    Corollary 6.
    """
    n = graph.n
    clique = clique or make_clique(n, "semiring", mode=mode)
    session = EngineSession(clique, "semiring", MAX_MIN)
    cap = pad_matrix(capacity_matrix(graph), clique.n, fill=-INF)
    # pad_matrix zeroes the padded diagonal; bottleneck padding wants the
    # identity capacity there, which zero also satisfies (padded nodes have
    # no edges, so their rows never influence real entries).
    next_hop = None
    if with_routing_tables:
        next_hop = np.full((clique.n, clique.n), -1, dtype=np.int64)
        rows, cols = np.nonzero(cap > -INF)
        next_hop[rows, cols] = cols

    # The same session closure as Corollary 6, over (max, min): the engine's
    # argmax witnesses drive the routing-table updates.
    iterations = default_steps(n)
    cap = session.closure(
        cap,
        steps=iterations,
        with_witnesses=with_routing_tables,
        next_hop=next_hop,
        phase="bottleneck",
        step_label="square",
    )

    extras: dict[str, object] = {"squarings": iterations}
    if with_routing_tables:
        hop_view = next_hop[:n, :n].copy()
        np.fill_diagonal(hop_view, -1)
        extras["next_hop"] = hop_view
    return RunResult(
        value=cap[:n, :n],
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras=extras,
    )


def validate_bottleneck_routing(
    graph: Graph, widths: np.ndarray, next_hop: np.ndarray
) -> bool:
    """Walk every routed widest path and check it realises the bottleneck."""
    cap = capacity_matrix(graph)
    n = graph.n
    for u in range(n):
        for v in range(n):
            if u == v or widths[u, v] <= -INF:
                continue
            cur = u
            bottleneck = INF
            hops = 0
            while cur != v:
                nxt = int(next_hop[cur, v])
                if not (0 <= nxt < n) or cap[cur, nxt] <= -INF:
                    return False
                bottleneck = min(bottleneck, int(cap[cur, nxt]))
                cur = nxt
                hops += 1
                if hops > n:
                    return False
            if bottleneck != widths[u, v]:
                return False
    return True


__all__ = [
    "apsp_bottleneck",
    "bottleneck_reference",
    "capacity_matrix",
    "validate_bottleneck_routing",
]
