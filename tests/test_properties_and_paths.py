"""Tests for diameter/radius properties and k-path detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances import (
    diameter_approx,
    diameter_exact,
    diameter_reference,
    diameter_unweighted,
)
from repro.graphs import (
    Graph,
    cycle_graph,
    gnp_random_graph,
    planted_cycle_graph,
    random_tree,
    random_weighted_digraph,
)
from repro.subgraphs import detect_k_path


class TestDiameter:
    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_exact_matches_reference(self, seed):
        g = random_weighted_digraph(14, 0.4, 9, seed=seed)
        result = diameter_exact(g)
        diameter, radius = diameter_reference(g)
        assert result.value == diameter
        assert result.extras["radius"] == radius

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_unweighted_matches_reference(self, seed):
        g = gnp_random_graph(18, 0.25, seed=seed)
        result = diameter_unweighted(g)
        diameter, radius = diameter_reference(g)
        assert result.value == diameter
        assert result.extras["radius"] == radius

    def test_cycle_eccentricities(self):
        g = cycle_graph(8)
        result = diameter_unweighted(g)
        assert result.value == 4
        assert result.extras["radius"] == 4
        assert (result.extras["eccentricities"] == 4).all()

    def test_path_graph(self):
        n = 9
        g = Graph.from_edges(n, [(v, v + 1) for v in range(n - 1)])
        result = diameter_unweighted(g)
        assert result.value == n - 1
        assert result.extras["radius"] == (n - 1 + 1) // 2

    def test_approx_diameter_overestimates_within_bound(self):
        g = random_weighted_digraph(14, 0.4, 20, seed=4)
        result = diameter_approx(g, delta=0.3)
        diameter, _ = diameter_reference(g)
        assert diameter <= result.value <= result.extras["ratio_bound"] * diameter

    def test_costs_one_round_more_than_apsp(self):
        from repro.distances import apsp_unweighted

        g = gnp_random_graph(16, 0.3, seed=1)
        apsp = apsp_unweighted(g)
        diam = diameter_unweighted(g)
        assert diam.rounds == apsp.rounds + 1


class TestKPathDetection:
    @pytest.mark.slow
    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=3, max_value=5),
    )
    def test_completeness_on_long_path_graphs(self, seed, k):
        # A planted cycle of length >= k contains a k-node path.
        g = planted_cycle_graph(16, max(k, 3) + 1, seed=seed, extra_edge_prob=0.3)
        result = detect_k_path(g, k, trials=60, rng=np.random.default_rng(seed))
        assert result.value

    def test_soundness_short_components(self):
        # Three disjoint edges: longest simple path has 2 nodes.
        g = Graph.from_edges(6, [(0, 1), (2, 3), (4, 5)])
        result = detect_k_path(g, 3, trials=15)
        assert not result.value

    def test_star_has_three_paths_not_four(self):
        g = Graph.from_edges(6, [(0, v) for v in range(1, 6)])
        assert detect_k_path(g, 3, trials=40, rng=np.random.default_rng(1)).value
        assert not detect_k_path(g, 4, trials=15).value

    def test_tree_paths(self):
        g = random_tree(14, seed=3)
        # A 14-node tree always has a 3-node path.
        assert detect_k_path(g, 3, trials=40, rng=np.random.default_rng(2)).value

    def test_k_validation(self):
        with pytest.raises(ValueError):
            detect_k_path(cycle_graph(5), 1)

    def test_rounds_charged(self):
        g = planted_cycle_graph(16, 5, seed=1, extra_edge_prob=0.4)
        result = detect_k_path(g, 4, trials=2, rng=np.random.default_rng(0))
        assert result.rounds > 0
