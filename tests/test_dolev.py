"""Tests for the Dolev-Lenzen-Peled prior-work baselines."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import dolev_four_cycle_detect, dolev_triangle_count
from repro.graphs import (
    cycle_graph,
    four_cycle_count_reference,
    gnp_random_graph,
    random_tree,
    triangle_count_reference,
    windmill_graph,
)


class TestDolevTriangles:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=6, max_value=30),
    )
    def test_counts_match_oracle(self, seed, n):
        g = gnp_random_graph(n, 0.35, seed=seed)
        assert dolev_triangle_count(g).value == triangle_count_reference(g)

    def test_triangle_free(self):
        assert dolev_triangle_count(random_tree(20, 1)).value == 0

    def test_windmill(self):
        assert dolev_triangle_count(windmill_graph(21)).value == 10

    def test_directed_rejected(self):
        g = gnp_random_graph(9, 0.3, seed=0, directed=True)
        with pytest.raises(ValueError):
            dolev_triangle_count(g)

    def test_rounds_grow_like_cube_root(self):
        rounds = []
        for n in (27, 64, 125):
            g = gnp_random_graph(n, 0.3, seed=n)
            rounds.append(dolev_triangle_count(g).rounds)
        # Growth clearly sublinear but positive.
        assert rounds[-1] > rounds[0]
        assert rounds[-1] / rounds[0] < (125 / 27)


class TestDolevFourCycle:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.03, max_value=0.4),
    )
    def test_detection_matches_oracle(self, seed, p):
        g = gnp_random_graph(18, p, seed=seed)
        want = four_cycle_count_reference(g) > 0
        assert dolev_four_cycle_detect(g).value == want

    def test_negative_families(self):
        for g in (random_tree(30, 2), windmill_graph(25), cycle_graph(9)):
            assert not dolev_four_cycle_detect(g).value

    def test_positive(self):
        assert dolev_four_cycle_detect(cycle_graph(4)).value

    def test_theorem4_beats_dolev_in_rounds(self):
        from repro.subgraphs import detect_four_cycles

        g = gnp_random_graph(100, 0.05, seed=5)
        ours = detect_four_cycles(g)
        prior = dolev_four_cycle_detect(g)
        assert ours.value == prior.value
        assert ours.rounds < prior.rounds
