"""Tests for the §2.2 fast bilinear clique matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bilinear import classical, strassen_power
from repro.clique import CongestedClique, ScheduleMode
from repro.errors import CliqueSizeError
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.exponent import predicted_bilinear_rounds
from repro.matmul.ringops import POLYNOMIAL_RING


class TestCorrectness:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_strassen_on_49(self, seed):
        rng = np.random.default_rng(seed)
        n = 49
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(bilinear_matmul(clique, s, t), s @ t)

    @pytest.mark.parametrize("n", [16, 25, 36, 64, 100])
    def test_various_square_sizes(self, n, rng):
        s = rng.integers(-5, 6, (n, n), dtype=np.int64)
        t = rng.integers(-5, 6, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(bilinear_matmul(clique, s, t), s @ t)

    def test_classical_algorithm_ablation(self, rng):
        n = 64
        s = rng.integers(-5, 6, (n, n), dtype=np.int64)
        t = rng.integers(-5, 6, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(bilinear_matmul(clique, s, t, classical(4)), s @ t)

    def test_trivial_algorithm_level0(self, rng):
        n = 4
        s = rng.integers(-3, 4, (n, n), dtype=np.int64)
        t = rng.integers(-3, 4, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(
            bilinear_matmul(clique, s, t, strassen_power(0)), s @ t
        )

    def test_wide_entries(self, rng):
        n = 16
        s = rng.integers(-(2**30), 2**30, (n, n), dtype=np.int64)
        t = rng.integers(-100, 100, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(bilinear_matmul(clique, s, t), s @ t)


class TestPolynomialRing:
    def test_poly_product(self, rng):
        from repro.algebra.polynomial import (
            decode_minplus,
            encode_minplus,
            poly_matmul,
        )

        n = 16
        s = rng.integers(0, 4, (n, n), dtype=np.int64)
        t = rng.integers(0, 4, (n, n), dtype=np.int64)
        es = encode_minplus(s, 3, 4)
        et = encode_minplus(t, 3, 4)
        clique = CongestedClique(n)
        got = bilinear_matmul(clique, es, et, ring=POLYNOMIAL_RING)
        assert np.array_equal(got, poly_matmul(es, et))
        assert np.array_equal(decode_minplus(got), decode_minplus(poly_matmul(es, et)))


class TestCosts:
    @pytest.mark.parametrize("n", [16, 49, 100, 144])
    def test_rounds_match_predictor_for_binary_inputs(self, n, rng):
        s = rng.integers(0, 2, (n, n), dtype=np.int64)
        t = rng.integers(0, 2, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        alg = default_algorithm(n)
        bilinear_matmul(clique, s, t, alg)
        assert clique.rounds == predicted_bilinear_rounds(n, alg)

    def test_strassen_exponent_beats_classical(self):
        """The Lemma 10 trade-off: Strassen's exponent wins asymptotically.

        Level quantisation means classical can win at small n (its d jumps
        in steps of 1 rather than factors of 2), so the comparison uses the
        exact round predictors over a geometric sweep and checks the fitted
        growth exponents -- the claim Table 1 actually makes.
        """
        from repro.matmul.exponent import fit_exponent

        sizes = [49**2, 49**3, 49**4]
        strassen_rounds = []
        classical_rounds = []
        for n in sizes:
            level = 0
            while 7 ** (level + 1) <= n:
                level += 1
            strassen_rounds.append(
                predicted_bilinear_rounds(n, d=2**level, m=7**level)
            )
            d = int(round(n ** (1 / 3)))
            while d**3 > n:
                d -= 1
            classical_rounds.append(predicted_bilinear_rounds(n, d=d, m=d**3))
        strassen_exp = fit_exponent(sizes, strassen_rounds)
        classical_exp = fit_exponent(sizes, classical_rounds)
        assert strassen_exp < classical_exp
        assert strassen_rounds[-1] < classical_rounds[-1]

    def test_exact_mode_agrees(self, rng):
        n = 16
        s = rng.integers(0, 3, (n, n), dtype=np.int64)
        t = rng.integers(0, 3, (n, n), dtype=np.int64)
        p_fast = bilinear_matmul(CongestedClique(n, mode=ScheduleMode.FAST), s, t)
        p_exact = bilinear_matmul(CongestedClique(n, mode=ScheduleMode.EXACT), s, t)
        assert np.array_equal(p_fast, p_exact)


class TestValidation:
    def test_non_square_clique_rejected(self, rng):
        clique = CongestedClique(10)
        mat = rng.integers(0, 2, (10, 10), dtype=np.int64)
        with pytest.raises(CliqueSizeError):
            bilinear_matmul(clique, mat, mat)

    def test_oversized_algorithm_rejected(self, rng):
        clique = CongestedClique(16)
        mat = rng.integers(0, 2, (16, 16), dtype=np.int64)
        with pytest.raises(CliqueSizeError):
            bilinear_matmul(clique, mat, mat, strassen_power(2))  # m = 49 > 16

    def test_wrong_shape_rejected(self, rng):
        clique = CongestedClique(16)
        with pytest.raises(ValueError):
            bilinear_matmul(
                clique,
                rng.integers(0, 2, (8, 8), dtype=np.int64),
                rng.integers(0, 2, (8, 8), dtype=np.int64),
            )
