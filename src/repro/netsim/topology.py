"""Explicit network topologies under the congested-clique collectives.

The abstract model charges synchronous rounds; a real deployment of the
same collectives pays serialization and propagation on concrete links.
Each :class:`Topology` here maps one *leg* of traffic -- explicit
``(src, dst, words)`` piece vectors -- onto its directed links and reports
the bottleneck/mean link loads and the hop count, which the
:class:`~repro.netsim.transport.TransportMeter` turns into alpha-beta
completion times.

Three families (the classic CCL-simulator trio):

* :class:`FullBisection` -- every ordered pair has a dedicated link
  (a non-blocking crossbar); the bottleneck is the heaviest pair, one hop.
* :class:`Ring` -- ``2n`` directed links (one clockwise, one
  counter-clockwise per adjacent pair); messages take the shorter
  direction and a link carries every message routed across it.
* :class:`FatTree` -- ``k`` pods of hosts under edge switches with a
  non-blocking core, 2:1 oversubscribed pod uplinks; intra-pod traffic is
  2 hops, inter-pod 4, and the bottleneck is a host port or a pod uplink.

For all-to-all-style collective traffic the bottleneck loads order as
full-bisection <= fat-tree <= ring (per-pair share <= per-host share <=
ring-cut share for ``n >= 16``), which is the makespan ordering the gated
``netsim`` bench section asserts.

Topologies also expose the two hooks the round-equivalent schedule
optimisations key off: :meth:`Topology.distance_matrix` (hop distances,
used by the cost-aware relay-slot assignment in
:func:`repro.clique.scheduling.relay_schedule`) and
:attr:`Topology.group_size` (the locality-group width the sharded
executor's placement hint aligns node ranges to).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class LegStats:
    """Link-level load summary of one traffic leg on a topology.

    Attributes:
        max_link_words: heaviest directed-link load, in words (may be
            fractional for balanced-spread relay legs).
        mean_link_words: mean load over the *active* links (the perfectly
            balanced FIFO drain time; the bottleneck's excess over it is
            the leg's queueing delay).
        active_links: number of links carrying any traffic.
        max_hops: longest path, in hops, among the leg's messages.
    """

    max_link_words: float
    mean_link_words: float
    active_links: int
    max_hops: int


_EMPTY = LegStats(0.0, 0.0, 0, 0)


def _summary(loads: np.ndarray, max_hops: int) -> LegStats:
    active = loads[loads > 0]
    if active.size == 0:
        return _EMPTY
    return LegStats(
        max_link_words=float(active.max()),
        mean_link_words=float(active.mean()),
        active_links=int(active.size),
        max_hops=int(max_hops),
    )


class Topology:
    """Interface: map one traffic leg to per-link loads.

    Subclasses set ``kind`` (the ``--topology`` spec family) and implement
    :meth:`leg_stats` and :meth:`distance_matrix`.
    """

    kind = "abstract"

    def __init__(self, n: int) -> None:
        if n < 2:
            raise ValueError(f"a topology needs >= 2 hosts, got {n}")
        self.n = n

    #: Locality-group width for the sharded executor's placement hint
    #: (``None``: no locality structure worth aligning to).
    group_size: int | None = None

    @property
    def name(self) -> str:
        """Spec-style name (``full`` / ``ring`` / ``fat-tree:k``)."""
        return self.kind

    @property
    def cache_key(self) -> str:
        """Distinguishes schedule-cache entries across topologies."""
        return f"{self.name}/{self.n}"

    def leg_stats(
        self, src: np.ndarray, dst: np.ndarray, widths: np.ndarray
    ) -> LegStats:
        """Link loads of one leg of ``(src, dst, widths)`` messages.

        Self-addressed pieces (``src == dst``) traverse no wire and are
        ignored; ``widths`` may be fractional (balanced relay spreading).
        """
        raise NotImplementedError

    def distance_matrix(self) -> np.ndarray:
        """``(n, n)`` hop distances between hosts (0 on the diagonal)."""
        raise NotImplementedError

    def describe(self) -> str:  # pragma: no cover - cosmetic
        return f"{self.name} over {self.n} hosts"

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(n={self.n})"

    @staticmethod
    def _off_wire(
        src: np.ndarray, dst: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        src = np.asarray(src, dtype=np.int64)
        dst = np.asarray(dst, dtype=np.int64)
        widths = np.asarray(widths, dtype=np.float64)
        keep = (src != dst) & (widths > 0)
        return src[keep], dst[keep], widths[keep]


class FullBisection(Topology):
    """Non-blocking crossbar: one dedicated link per ordered host pair."""

    kind = "full"

    def leg_stats(self, src, dst, widths) -> LegStats:
        src, dst, widths = self._off_wire(src, dst, widths)
        if src.size == 0:
            return _EMPTY
        n = self.n
        loads = np.zeros(n * n, dtype=np.float64)
        np.add.at(loads, src * n + dst, widths)
        return _summary(loads, max_hops=1)

    def distance_matrix(self) -> np.ndarray:
        d = np.ones((self.n, self.n), dtype=np.int64)
        np.fill_diagonal(d, 0)
        return d


class Ring(Topology):
    """Bidirectional ring: ``2n`` directed links, shortest-direction routing.

    A message from ``u`` to ``v`` takes the clockwise chain of links when
    ``(v - u) mod n <= n/2`` (ties clockwise) and the counter-clockwise
    chain otherwise, loading every link it crosses.  Link loads are
    computed with wrap-around difference arrays -- ``O(P + n)`` per leg.
    """

    kind = "ring"

    @staticmethod
    def _chain_loads(n: int, start: np.ndarray, length: np.ndarray,
                     widths: np.ndarray) -> np.ndarray:
        """Loads on links ``start, start+1, ..., start+length-1 (mod n)``."""
        diff = np.zeros(2 * n, dtype=np.float64)
        np.add.at(diff, start, widths)
        np.subtract.at(diff, start + length, widths)
        pref = np.cumsum(diff)
        return pref[:n] + pref[n:]

    def leg_stats(self, src, dst, widths) -> LegStats:
        src, dst, widths = self._off_wire(src, dst, widths)
        if src.size == 0:
            return _EMPTY
        n = self.n
        d_cw = (dst - src) % n
        cw = d_cw <= n - d_cw
        # Clockwise link i carries i -> i+1; a cw message from u of hop
        # count d loads links u .. u+d-1.  Counter-clockwise is the same
        # chain in mirrored coordinates (link j carries j+1 -> j, loaded
        # starting at dst when walking the mirror image).
        loads_cw = self._chain_loads(n, src[cw], d_cw[cw], widths[cw])
        loads_ccw = self._chain_loads(
            n, dst[~cw], (n - d_cw[~cw]), widths[~cw]
        )
        hops = np.minimum(d_cw, n - d_cw)
        return _summary(
            np.concatenate([loads_cw, loads_ccw]), max_hops=int(hops.max())
        )

    def distance_matrix(self) -> np.ndarray:
        idx = np.arange(self.n, dtype=np.int64)
        d_cw = (idx[None, :] - idx[:, None]) % self.n
        return np.minimum(d_cw, self.n - d_cw)


class FatTree(Topology):
    """``k``-pod fat-tree with 2:1 oversubscribed pod uplinks.

    Hosts sit in ``k`` pods of ``ceil(n/k)`` under non-blocking edge
    switches; the core is non-blocking, but each pod owns only
    ``max(1, hosts_per_pod // 2)`` up/down links to it (the classic 2:1
    oversubscription), shared by ECMP-balanced inter-pod traffic.  Links
    modelled: per-host up/down ports and per-pod up/down core links.
    Intra-pod messages take 2 hops (host-edge-host), inter-pod 4
    (host-edge-core-edge-host).
    """

    kind = "fat-tree"

    def __init__(self, n: int, k: int = 4) -> None:
        super().__init__(n)
        if k < 1:
            raise ValueError(f"a fat-tree needs >= 1 pod, got k={k}")
        self.k = min(k, n)
        self.hosts_per_pod = math.ceil(n / self.k)
        self.uplinks = max(1, self.hosts_per_pod // 2)
        self.group_size = self.hosts_per_pod

    @property
    def name(self) -> str:
        return f"fat-tree:{self.k}"

    def _pod(self, hosts: np.ndarray) -> np.ndarray:
        return hosts // self.hosts_per_pod

    def leg_stats(self, src, dst, widths) -> LegStats:
        src, dst, widths = self._off_wire(src, dst, widths)
        if src.size == 0:
            return _EMPTY
        n, k = self.n, self.k
        host_up = np.zeros(n, dtype=np.float64)
        host_down = np.zeros(n, dtype=np.float64)
        np.add.at(host_up, src, widths)
        np.add.at(host_down, dst, widths)
        src_pod = self._pod(src)
        dst_pod = self._pod(dst)
        inter = src_pod != dst_pod
        pod_up = np.zeros(k, dtype=np.float64)
        pod_down = np.zeros(k, dtype=np.float64)
        np.add.at(pod_up, src_pod[inter], widths[inter])
        np.add.at(pod_down, dst_pod[inter], widths[inter])
        # ECMP balance: each pod's aggregate spreads evenly over its
        # uplinks; every uplink is its own FIFO port.
        per_uplink = np.concatenate([pod_up, pod_down]) / self.uplinks
        loads = np.concatenate(
            [host_up, host_down, np.repeat(per_uplink, self.uplinks)]
        )
        return _summary(loads, max_hops=4 if bool(inter.any()) else 2)

    def distance_matrix(self) -> np.ndarray:
        pods = self._pod(np.arange(self.n, dtype=np.int64))
        d = np.where(pods[None, :] == pods[:, None], 2, 4).astype(np.int64)
        np.fill_diagonal(d, 0)
        return d

    @property
    def cache_key(self) -> str:
        return f"{self.name}/{self.n}"


#: ``--topology`` spec family -> class (specs: ``full``, ``ring``,
#: ``fat-tree[:k]``).
TOPOLOGY_KINDS = {
    FullBisection.kind: FullBisection,
    Ring.kind: Ring,
    FatTree.kind: FatTree,
}


def parse_topology(spec: str, n: int) -> Topology:
    """Build the topology named by a ``--topology`` spec for ``n`` hosts.

    Accepted specs: ``full`` (also ``full-bisection``), ``ring``,
    ``fat-tree`` (4 pods) or ``fat-tree:k``.
    """
    spec = spec.strip().lower()
    if spec in ("full", "full-bisection"):
        return FullBisection(n)
    if spec == "ring":
        return Ring(n)
    if spec == "fat-tree":
        return FatTree(n)
    if spec.startswith("fat-tree:"):
        try:
            k = int(spec.split(":", 1)[1])
        except ValueError:
            raise ValueError(f"bad fat-tree pod count in {spec!r}") from None
        return FatTree(n, k)
    raise ValueError(
        f"unknown topology {spec!r} (choose full, ring, or fat-tree[:k])"
    )


__all__ = [
    "LegStats",
    "Topology",
    "FullBisection",
    "Ring",
    "FatTree",
    "TOPOLOGY_KINDS",
    "parse_topology",
]
