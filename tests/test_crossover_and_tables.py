"""Tests for crossover extrapolation and witness-backed routing tables."""

from __future__ import annotations

import math

import numpy as np
import pytest

from repro.analysis.crossover import crossover, triangle_crossover_vs_dolev
from repro.constants import INF, RHO_IMPLEMENTED, RHO_PAPER
from repro.distances.bounded import apsp_up_to
from repro.graphs import (
    apsp_reference,
    random_weighted_digraph,
    validate_routing_table,
)
from repro.runtime import make_clique, pad_matrix


class TestCrossover:
    def test_already_ahead_at_anchor(self):
        est = crossover(100, fast_rounds=10, slow_rounds=20,
                        fast_exponent=0.3, slow_exponent=0.5)
        assert est.crossover_n == 100

    def test_behind_at_anchor_extrapolates(self):
        # fast is 2x behind with a 0.1 exponent edge: crossover at 2^10 x.
        est = crossover(100, fast_rounds=20, slow_rounds=10,
                        fast_exponent=0.2, slow_exponent=0.3)
        assert est.crossover_n == pytest.approx(100 * 2**10)

    def test_no_exponent_gap_means_no_crossover(self):
        est = crossover(100, 20, 10, 0.3, 0.3)
        assert math.isinf(est.crossover_n)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            crossover(0, 1, 1, 0.1, 0.2)
        with pytest.raises(ValueError):
            crossover(10, 0, 1, 0.1, 0.2)

    def test_triangle_crossover_reproduces_experiments_claims(self):
        """The EXPERIMENTS.md numbers: ~3e5 (Strassen) and ~2e3 (Le Gall)."""
        # Anchors from the measured Table 1 sweep at n = 196.
        strassen = triangle_crossover_vs_dolev(
            196, our_rounds=109, dolev_rounds=69, rho=RHO_IMPLEMENTED
        )
        le_gall = triangle_crossover_vs_dolev(
            196, our_rounds=109, dolev_rounds=69, rho=RHO_PAPER
        )
        assert 5e4 < strassen.crossover_n < 5e6
        assert 5e2 < le_gall.crossover_n < 5e4
        assert le_gall.crossover_n < strassen.crossover_n


class TestWitnessBackedRoutingTables:
    """§3.3 + §3.4 composition: routing tables on the *ring* engine."""

    @pytest.mark.parametrize("seed", [0, 1])
    def test_lemma19_tables_walk_correctly(self, seed):
        g = random_weighted_digraph(16, 0.5, 3, seed=seed)
        clique = make_clique(g.n, "bilinear")
        w = pad_matrix(g.weight_matrix(), clique.n, fill=INF)
        cap = 12
        dist, next_hop = apsp_up_to(
            clique,
            w,
            cap,
            with_routing_tables=True,
            witness_rng=np.random.default_rng(seed),
        )
        ref = apsp_reference(g)
        want = np.where(ref <= cap, ref, INF)
        assert np.array_equal(dist[: g.n, : g.n], want)
        assert validate_routing_table(
            g, dist[: g.n, : g.n], next_hop[: g.n, : g.n]
        )

    def test_table_entries_reset_for_capped_pairs(self):
        g = random_weighted_digraph(16, 0.3, 4, seed=3)
        clique = make_clique(g.n, "bilinear")
        w = pad_matrix(g.weight_matrix(), clique.n, fill=INF)
        dist, next_hop = apsp_up_to(clique, w, 2, with_routing_tables=True)
        unreachable = dist >= INF
        assert (next_hop[unreachable] == -1).all()

    def test_witness_tables_cost_more_than_plain(self):
        g = random_weighted_digraph(16, 0.5, 3, seed=1)
        w_matrix = g.weight_matrix()
        plain = make_clique(g.n, "bilinear")
        apsp_up_to(plain, pad_matrix(w_matrix, plain.n, fill=INF), 8)
        with_tables = make_clique(g.n, "bilinear")
        apsp_up_to(
            with_tables,
            pad_matrix(w_matrix, with_tables.n, fill=INF),
            8,
            with_routing_tables=True,
        )
        assert with_tables.rounds > plain.rounds
