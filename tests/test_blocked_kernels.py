"""Property tests: blocked semiring kernels vs the retained cube oracle.

The blocked kernels (tiled / column-wise accumulators, plus the min-plus
penalty-encoded fast path) must agree *bit for bit* -- values and witnesses
-- with ``reference_matmul`` / ``cube_matmul_with_witness``, the seed's
cube-materialising kernel kept as an independent oracle.  Matrices include
``INF`` / ``-INF`` saturation, negative entries, near-``INF`` finite
entries (which force the exact fallback), and non-square blocks.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    get_block_tile,
    reference_matmul,
    saturating_add,
    set_block_tile,
)
from repro.constants import INF

SELECTION = (MIN_PLUS, MAX_MIN)


def _random_block(rng, semiring, shape, *, boundary: bool):
    if semiring is BOOLEAN:
        return (rng.random(shape) < 0.5).astype(np.int64)
    if semiring is MIN_PLUS:
        mat = rng.integers(-40, 200, shape, dtype=np.int64)
        mat[rng.random(shape) < 0.25] = INF
        if boundary:
            # Near-INF finite entries exercise the exact (non-penalty) path.
            mat[rng.random(shape) < 0.15] = INF - 1
            mat[rng.random(shape) < 0.1] = (1 << 59) + 7
        return mat
    if semiring is MAX_MIN:
        mat = rng.integers(-200, 200, shape, dtype=np.int64)
        mat[rng.random(shape) < 0.15] = -INF
        mat[rng.random(shape) < 0.1] = INF
        return mat
    return rng.integers(-50, 50, shape, dtype=np.int64)


class TestBlockedVsReference:
    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_all_semirings_match_reference(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = (int(v) for v in rng.integers(1, 14, 3))
        boundary = bool(rng.random() < 0.4)
        for semiring in ALL_SEMIRINGS:
            x = _random_block(rng, semiring, (m, k), boundary=boundary)
            y = _random_block(rng, semiring, (k, n), boundary=boundary)
            assert np.array_equal(
                semiring.matmul(x, y), reference_matmul(semiring, x, y)
            ), semiring.name

    @settings(max_examples=40, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_witnesses_match_cube_kernel(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = (int(v) for v in rng.integers(1, 14, 3))
        boundary = bool(rng.random() < 0.4)
        for semiring in SELECTION:
            x = _random_block(rng, semiring, (m, k), boundary=boundary)
            y = _random_block(rng, semiring, (k, n), boundary=boundary)
            p_cube, w_cube = semiring.cube_matmul_with_witness(x, y)
            p_blk, w_blk = semiring.matmul_with_witness(x, y)
            assert np.array_equal(p_cube, p_blk), semiring.name
            assert np.array_equal(w_cube, w_blk), semiring.name
            # The witness must actually attain the product value.
            rows = np.arange(m)[:, None]
            cols = np.arange(n)[None, :]
            attained = saturating_add(x[rows, w_blk], y[w_blk, cols]) \
                if semiring is MIN_PLUS else np.minimum(x[rows, w_blk], y[w_blk, cols])
            assert np.array_equal(attained, p_blk), semiring.name

    @pytest.mark.parametrize("tile", [1, 2, 3, 7, 64, 1024])
    def test_every_tile_size_agrees(self, tile):
        rng = np.random.default_rng(tile)
        for semiring in SELECTION:
            x = _random_block(rng, semiring, (9, 25), boundary=False)
            y = _random_block(rng, semiring, (25, 6), boundary=False)
            expected = reference_matmul(semiring, x, y)
            assert np.array_equal(semiring.matmul(x, y, tile=tile), expected)
            p, _ = semiring.matmul_with_witness(x, y, tile=tile)
            assert np.array_equal(p, expected)

    def test_empty_inner_dimension(self):
        x = np.zeros((3, 0), dtype=np.int64)
        y = np.zeros((0, 4), dtype=np.int64)
        for semiring in SELECTION:
            product = semiring.matmul(x, y)
            assert product.shape == (3, 4)
            assert np.all(product == semiring.zero_value)

    def test_shape_mismatch_raises(self):
        x = np.zeros((3, 4), dtype=np.int64)
        y = np.zeros((5, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            MIN_PLUS.matmul(x, y)

    def test_plus_times_is_plain_matmul(self):
        rng = np.random.default_rng(0)
        x = rng.integers(-9, 9, (7, 5), dtype=np.int64)
        y = rng.integers(-9, 9, (5, 8), dtype=np.int64)
        assert np.array_equal(PLUS_TIMES.matmul(x, y), x @ y)


class TestSaturatingAdd:
    """Regression tests at the INF boundary (int64 overflow exposure)."""

    def test_inf_plus_inf_saturates_without_overflow(self):
        a = np.array([INF, INF, INF], dtype=np.int64)
        b = np.array([INF, 0, -5], dtype=np.int64)
        with np.errstate(over="raise"):
            out = saturating_add(a, b)
        assert np.array_equal(out, np.array([INF, INF, INF], dtype=np.int64))

    def test_infinite_operand_dominates_negative_addend(self):
        # INF + (-5) must stay INF, not become a huge finite distance.
        assert saturating_add(np.int64(INF), np.int64(-5)) == INF
        assert saturating_add(np.int64(-5), np.int64(INF)) == INF

    def test_near_inf_finite_sums_clip_at_inf(self):
        a = np.array([INF - 1, INF - 1], dtype=np.int64)
        b = np.array([INF - 1, 0], dtype=np.int64)
        out = saturating_add(a, b)
        assert out[0] == INF  # (INF-1) + (INF-1) saturates
        assert out[1] == INF - 1  # still finite: below the sentinel

    def test_finite_arithmetic_untouched(self):
        a = np.array([3, -7, 0], dtype=np.int64)
        b = np.array([4, 2, -1], dtype=np.int64)
        assert np.array_equal(saturating_add(a, b), np.array([7, -5, -1]))

    def test_minplus_product_at_inf_boundary_matches_cube(self):
        # A matrix full of INF and INF-1 forces the exact fallback path and
        # must still agree with the cube oracle entry for entry.
        x = np.array([[INF, INF - 1], [0, INF]], dtype=np.int64)
        y = np.array([[INF, 1], [INF - 1, INF]], dtype=np.int64)
        p_cube, w_cube = MIN_PLUS.cube_matmul_with_witness(x, y)
        p_blk, w_blk = MIN_PLUS.matmul_with_witness(x, y)
        assert np.array_equal(p_cube, p_blk)
        assert np.array_equal(w_cube, w_blk)
        assert np.array_equal(MIN_PLUS.matmul(x, y), p_cube)
        # Fully unreachable rows stay saturated.
        assert p_blk[0, 0] == INF and w_blk[0, 0] == 0

    def test_unreachable_entries_stay_unreachable_through_squaring(self):
        dist = np.full((4, 4), INF, dtype=np.int64)
        np.fill_diagonal(dist, 0)
        dist[0, 1] = 3
        squared = MIN_PLUS.matmul(dist, dist)
        assert squared[0, 1] == 3
        assert squared[2, 3] == INF
        assert squared[0, 2] == INF


class TestTileConfig:
    def test_set_block_tile_roundtrip(self):
        old = set_block_tile(17)
        try:
            assert get_block_tile() == 17
        finally:
            set_block_tile(old)
        assert get_block_tile() == old

    def test_rejects_nonpositive_tile(self):
        with pytest.raises(ValueError):
            set_block_tile(0)

    @pytest.mark.parametrize("tile", [0, -1])
    def test_per_call_tile_validated(self, tile):
        x = np.zeros((2, 3), dtype=np.int64)
        y = np.zeros((3, 2), dtype=np.int64)
        for semiring in SELECTION:
            with pytest.raises(ValueError):
                semiring.matmul(x, y, tile=tile)
            with pytest.raises(ValueError):
                semiring.matmul_with_witness(x, y, tile=tile)
