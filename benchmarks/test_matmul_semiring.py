"""E1 -- Table 1 "matrix multiplication (semiring)": O(n^{1/3}) rounds.

Sweeps perfect-cube clique sizes, records measured rounds (which must equal
the closed-form predictor exactly) and compares against the naive O(n)
broadcast baseline.  Also ablates FAST vs EXACT scheduling.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique import CongestedClique, ScheduleMode
from repro.matmul.exponent import fit_exponent, predicted_semiring3d_rounds
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import semiring_matmul

from .conftest import run_once

SIZES = [27, 64, 125, 216]


def _inputs(n: int):
    rng = np.random.default_rng(n)
    return (
        rng.integers(-9, 10, (n, n), dtype=np.int64),
        rng.integers(-9, 10, (n, n), dtype=np.int64),
    )


@pytest.mark.parametrize("n", SIZES)
def test_semiring3d_rounds(benchmark, n):
    s, t = _inputs(n)

    def run():
        clique = CongestedClique(n)
        semiring_matmul(clique, s, t)
        return clique.rounds

    rounds = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    benchmark.extra_info["predicted_rounds"] = predicted_semiring3d_rounds(n)
    assert rounds == predicted_semiring3d_rounds(n)


@pytest.mark.parametrize("n", [27, 64, 125])
def test_naive_baseline_rounds(benchmark, n):
    s, t = _inputs(n)

    def run():
        clique = CongestedClique(n)
        broadcast_matmul(clique, s, t)
        return clique.rounds

    rounds = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    # The 3D algorithm must beat the naive baseline beyond tiny sizes.
    assert predicted_semiring3d_rounds(n) < rounds or n < 27


def test_semiring3d_exponent(benchmark):
    def run():
        rounds = []
        for n in SIZES:
            s, t = _inputs(n)
            clique = CongestedClique(n)
            semiring_matmul(clique, s, t)
            rounds.append(clique.rounds)
        return fit_exponent(SIZES, rounds)

    exponent = run_once(benchmark, run)
    benchmark.extra_info["fitted_exponent"] = exponent
    benchmark.extra_info["paper_exponent"] = 1 / 3
    assert 0.2 < exponent < 0.45


def test_exact_schedule_ablation(benchmark):
    """DESIGN.md ablation 1: the materialised schedule vs the closed form."""
    n = 27
    s, t = _inputs(n)

    def run():
        fast = CongestedClique(n, mode=ScheduleMode.FAST)
        semiring_matmul(fast, s, t)
        exact = CongestedClique(n, mode=ScheduleMode.EXACT)
        semiring_matmul(exact, s, t)
        return fast.rounds, exact.rounds

    fast_rounds, exact_rounds = run_once(benchmark, run)
    benchmark.extra_info["fast_rounds"] = fast_rounds
    benchmark.extra_info["exact_rounds"] = exact_rounds
    assert exact_rounds <= 2 * fast_rounds + 4
