"""Engine sessions: one binding of (clique, matmul method, algebra).

Every §3 algorithm in the paper is "repeated squaring over a semiring"; an
:class:`EngineSession` packages that pattern once for all of them.  A
session binds

* a **clique** (the metered simulator, including its local-compute
  executor -- serial or sharded),
* a **matmul method** (``"bilinear"`` §2.2, ``"semiring"`` §2.1,
  ``"naive"`` baseline), and
* an **algebra** -- a :class:`~repro.algebra.semirings.Semiring` or, for raw
  §2.2 ring products (the Lemma 18 embedding), a
  :class:`~repro.matmul.ringops.RingOps`

and exposes ``multiply`` / ``square`` / ``power`` / ``closure``.  Binding
happens once: the bilinear algorithm (encode/decode tensors), the engine's
layout and routing plans (:func:`~repro.matmul.semiring3d.cube_plan`,
:func:`~repro.matmul.bilinear_clique.grid_plan`) and the executor's worker
pool are all resolved/warmed at construction and shared by every product
the session runs -- ``ceil(log n)`` squarings replan nothing.

Binding rules mirror Theorem 1: any semiring runs on the §2.1/naive
engines; the §2.2 engine needs a ring, so it accepts ``PLUS_TIMES``
directly, implements ``BOOLEAN`` by integer product + threshold (Corollary
2's reduction), and rejects selection semirings (use the Lemma 18/20
embeddings in :mod:`repro.matmul.distance` instead).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Any, Callable

import numpy as np

from repro.algebra.bilinear import BilinearAlgorithm
from repro.algebra.semirings import BOOLEAN, PLUS_TIMES, Semiring
from repro.clique.accounting import CostMeter
from repro.clique.arena import ExchangeArena
from repro.clique.executor import LocalExecutor, make_executor
from repro.clique.model import CongestedClique, ScheduleMode
from repro.matmul.bilinear_clique import (
    bilinear_matmul,
    default_algorithm,
    grid_plan,
)
from repro.matmul.layout import next_cube, next_square
from repro.matmul.naive import broadcast_matmul
from repro.matmul.ringops import RingOps
from repro.matmul.semiring3d import (
    boolean_matmul_packed,
    cube_plan,
    pack_bool_matrix,
    semiring_matmul,
    unpack_bool_matrix,
)

#: The three matmul engines sessions (and applications) can run on.
MATMUL_METHODS = ("bilinear", "semiring", "naive")


@dataclass
class ResidentClosure:
    """Selection-semiring closure state held resident by a session.

    The packed-Boolean analogue for distances (kernel generation 3's
    leftover): ``dist`` and its routing table stay inside the session
    between squarings instead of being re-routed from the caller's matrix
    each ``square``.  ``dist`` and ``next_hop`` are session-owned arrays
    updated in place by :meth:`EngineSession.resident_square`; read them
    freely, but mutate them only through the session (or
    :func:`repro.serve.delta.apply_edge_updates`, which bills its strip
    products on the same meter).

    ``next_hop`` uses the *working* convention of
    :func:`repro.distances.apsp.apsp_exact`: ``next_hop[u, u] == u`` so
    witness merges can route through the endpoint itself; consumers that
    want the external ``-1``-diagonal view copy and fix it up.
    """

    dist: np.ndarray
    next_hop: np.ndarray
    #: Squarings applied since seeding (full or delta).
    squarings: int = 0
    #: Bumped by every mutation after seeding (squarings, delta updates).
    generation: int = 0


class EngineBindingError(ValueError):
    """An (algebra, method) combination Theorem 1 does not support."""


def required_clique_size(n: int, method: str) -> int:
    """Smallest clique size ``>= n`` on which ``method`` can run."""
    if method == "semiring":
        return next_cube(n)
    if method == "bilinear":
        return next_square(n)
    if method == "naive":
        return n
    raise ValueError(f"unknown matmul method {method!r}")


def default_steps(n: int) -> int:
    """The ``ceil(log2 n)`` squaring count every closure loop uses."""
    return max(1, math.ceil(math.log2(max(2, n))))


def make_clique(
    n: int,
    method: str = "bilinear",
    *,
    mode: ScheduleMode = ScheduleMode.FAST,
    word_bits: int | None = None,
    shards: int = 1,
    threads: int = 1,
    fault_plan=None,
    fault_tolerance: int | None = None,
    fault_scheme: str = "replicate",
    cost_model=None,
) -> CongestedClique:
    """A clique sized for an ``n``-node problem under ``method``.

    ``shards > 1`` attaches a sharded local-compute executor
    (:class:`~repro.clique.executor.ShardedExecutor`); ``threads > 1``
    additionally runs each executor's kernel tiles on a threaded tile
    backend (:mod:`repro.algebra.backends`), composing with shards (each
    shard worker runs its own tile pool).  Neither affects round charges,
    only the simulator's wall clock.

    ``fault_plan`` (a :class:`~repro.faults.FaultPlan`) installs a seeded
    adversary over the array collectives; ``fault_tolerance`` additionally
    selects the encoded robust collectives sized to survive that many
    corrupt relays per exchange, with ``fault_scheme`` choosing the code:
    ``"replicate"`` (:class:`~repro.faults.RobustClique`, ``2t + 1``
    copies) or ``"coded"`` (:class:`~repro.faults.CodedClique`,
    Reed-Solomon striping at overhead toward ``n / (n - 2t)``).  A plan
    without a tolerance is the *unprotected* wrapper
    (:class:`~repro.faults.FaultyClique`) -- useful only to demonstrate
    silent corruption.  With neither, the plain fault-free model is
    returned, untouched.

    ``cost_model`` attaches a transport cost model (a
    :class:`~repro.netsim.CostModelSpec` or ready observer; see
    :meth:`~repro.clique.model.CongestedClique.attach_cost_model`) after
    the clique -- fault layer included -- is built.  Purely observational:
    values, rounds, words and meters are bit-identical with or without it.
    """
    size = required_clique_size(n, method)
    if not 1 <= shards <= size:
        raise ValueError(
            f"shards must be in [1, clique size {size}], got {shards}"
        )
    from repro.faults import FAULT_SCHEMES

    if fault_scheme not in FAULT_SCHEMES:
        raise ValueError(
            f"unknown fault scheme {fault_scheme!r}; choose from "
            f"{sorted(FAULT_SCHEMES)}"
        )
    if fault_plan is not None or fault_tolerance is not None:
        from repro.faults import FaultyClique

        if fault_tolerance is not None:
            clique = FAULT_SCHEMES[fault_scheme](
                size,
                plan=fault_plan,
                tolerance=fault_tolerance,
                mode=mode,
                word_bits=word_bits,
                executor=make_executor(shards, threads),
            )
        else:
            clique = FaultyClique(
                size,
                plan=fault_plan,
                mode=mode,
                word_bits=word_bits,
                executor=make_executor(shards, threads),
            )
    else:
        clique = CongestedClique(
            size,
            mode=mode,
            word_bits=word_bits,
            executor=make_executor(shards, threads),
        )
    if cost_model is not None:
        clique.attach_cost_model(cost_model)
    return clique


class EngineSession:
    """One bound squaring pipeline: clique + method + algebra.

    Args:
        clique: the simulator to run on (its ``executor`` attribute decides
            serial vs sharded local compute).
        method: one of :data:`MATMUL_METHODS`.
        algebra: a :class:`~repro.algebra.semirings.Semiring` (default: the
            integer ring) or a :class:`~repro.matmul.ringops.RingOps` for
            raw bilinear ring products.
        algorithm: bilinear algorithm override (default: deepest Strassen
            power fitting the clique); ignored by the other engines.
        cost_model: optional transport cost model
            (:class:`~repro.netsim.CostModelSpec` or ready observer) to
            attach to the clique -- purely observational; read the
            resulting completion report via :attr:`transport`.
        packed_closure: keep Boolean closures on the §2.1 engine in uint64
            bit-packed form *across* squarings (kernel generation 3),
            unpacking once at the end.  Values, rounds, and meters are
            bit-identical to the unpacked loop (the packed payloads charge
            the same constant per-piece widths); disable only to measure
            the per-product packing baseline.

    Sessions are context managers: ``with open_session(...) as session``
    deterministically closes the executor (sharded worker pools and their
    shared-memory segments) and releases the arena's buffers on exit --
    including on error paths such as
    :class:`~repro.faults.FaultToleranceExceeded`.
    """

    def __init__(
        self,
        clique: CongestedClique,
        method: str = "bilinear",
        algebra: Semiring | RingOps = PLUS_TIMES,
        *,
        algorithm: BilinearAlgorithm | None = None,
        cost_model=None,
        packed_closure: bool = True,
    ) -> None:
        if method not in MATMUL_METHODS:
            raise ValueError(
                f"unknown matmul method {method!r} (choose from {MATMUL_METHODS})"
            )
        if cost_model is not None:
            clique.attach_cost_model(cost_model)
        self.clique = clique
        self.method = method
        self.algebra = algebra
        self.packed_closure = bool(packed_closure)
        self.algorithm: BilinearAlgorithm | None = None
        self._boolean_via_ring = False
        self._ring: RingOps | None = None
        #: Per-session exchange arena: the engines' send/recv buffers are
        #: preallocated once (sized by the CubePlan/GridPlan exchange
        #: shapes) and reused by every product the session runs, so the
        #: ceil(log n) squarings of a closure stop re-allocating them.
        #: Results returned by products are always freshly allocated; see
        #: repro.clique.arena for the aliasing rules.
        self.arena = ExchangeArena()
        #: Persistent selection-semiring closure state (see
        #: :class:`ResidentClosure`); ``None`` until :meth:`seed_resident`.
        self._resident: ResidentClosure | None = None

        if isinstance(algebra, RingOps):
            if method != "bilinear":
                raise EngineBindingError(
                    f"raw ring products ({algebra.name}) need the bilinear "
                    f"engine, not {method!r}"
                )
            self._ring = algebra
        elif isinstance(algebra, Semiring):
            if method == "bilinear":
                if algebra is BOOLEAN:
                    # Corollary 2: Boolean product = integer product of the
                    # 0/1 matrices + threshold.
                    self._boolean_via_ring = True
                elif not algebra.is_ring:
                    raise EngineBindingError(
                        f"the bilinear engine needs a ring; semiring "
                        f"{algebra.name!r} runs on the semiring/naive engines "
                        f"(or via the Lemma 18/20 embeddings)"
                    )
        else:
            raise TypeError(f"algebra must be a Semiring or RingOps, got {algebra!r}")

        # Resolve the bound engine once: bilinear algorithm + engine plans
        # are materialised here, so every later product is replanning-free.
        if method == "bilinear":
            self.algorithm = algorithm or default_algorithm(clique.n)
            grid_plan(clique.n, self.algorithm.d)
        elif method == "semiring":
            cube_plan(clique.n)

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #

    @property
    def n(self) -> int:
        return self.clique.n

    @property
    def rounds(self) -> int:
        """Total rounds charged on the bound clique so far."""
        return self.clique.rounds

    @property
    def meter(self) -> CostMeter:
        return self.clique.meter

    @property
    def transport(self):
        """The attached transport cost model, or ``None``."""
        return self.clique.transport

    @property
    def executor(self) -> LocalExecutor:
        return self.clique.executor

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        algebra = getattr(self.algebra, "name", self.algebra)
        return (
            f"EngineSession(n={self.n}, method={self.method!r}, "
            f"algebra={algebra!r}, executor={self.executor.name})"
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #

    def close(self) -> None:
        """Release session resources deterministically.

        Terminates the executor's worker pool and unlinks its shared-memory
        segments (a no-op for the serial executor) and drops the arena's
        buffers.  Idempotent; the clique and its meter stay readable.
        """
        self.clique.executor.close()
        self.arena.release()
        self._resident = None

    def __enter__(self) -> "EngineSession":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Products
    # ------------------------------------------------------------------ #

    def multiply(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        with_witnesses: bool = False,
        phase: str = "session/multiply",
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """One distributed product in the bound algebra.

        With ``with_witnesses`` (selection semirings on the semiring/naive
        engines only) also returns the witness matrix of §3.3.
        """
        if self._ring is not None:
            if with_witnesses:
                raise EngineBindingError(
                    "ring products have no native witnesses (use the §3.4 "
                    "witness machinery in repro.matmul.witnesses)"
                )
            return bilinear_matmul(
                self.clique, x, y, self.algorithm, ring=self._ring, phase=phase,
                arena=self.arena,
            )
        semiring: Semiring = self.algebra  # type: ignore[assignment]
        if self._boolean_via_ring:
            # Boolean on the fast engine: threshold the integer product.
            if with_witnesses:
                raise EngineBindingError(
                    "the bilinear engine has no native witnesses (Lemma 21 "
                    "recovers them; see repro.matmul.witnesses)"
                )
            xb = (np.asarray(x) > 0).astype(np.int64)
            yb = (np.asarray(y) > 0).astype(np.int64)
            product = bilinear_matmul(
                self.clique, xb, yb, self.algorithm, phase=phase,
                arena=self.arena,
            )
            return (product > 0).astype(np.int64)
        if semiring is BOOLEAN:
            x = (np.asarray(x) > 0).astype(np.int64)
            y = (np.asarray(y) > 0).astype(np.int64)
        if with_witnesses and not semiring.has_witnesses:
            raise EngineBindingError(
                f"semiring {semiring.name!r} does not support witnesses"
            )
        if self.method == "bilinear":
            return bilinear_matmul(
                self.clique, x, y, self.algorithm, phase=phase, arena=self.arena
            )
        if self.method == "semiring":
            return semiring_matmul(
                self.clique, x, y, semiring,
                with_witnesses=with_witnesses, phase=phase, arena=self.arena,
            )
        return broadcast_matmul(
            self.clique, x, y, semiring,
            with_witnesses=with_witnesses, phase=phase,
        )

    def square(
        self,
        x: np.ndarray,
        *,
        with_witnesses: bool = False,
        phase: str = "session/square",
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """``x . x`` in the bound algebra."""
        return self.multiply(x, x, with_witnesses=with_witnesses, phase=phase)

    # ------------------------------------------------------------------ #
    # Iterated squaring
    # ------------------------------------------------------------------ #

    def power(
        self,
        matrix: np.ndarray,
        exponent: int,
        *,
        phase: str = "matrix-power",
    ) -> np.ndarray:
        """``matrix^exponent`` by binary exponentiation, ``O(log k)`` products.

        ``exponent = 0`` returns the multiplicative identity pattern of the
        bound semiring (1-diagonal for plus-times/Boolean, 0-diagonal /
        zero-elsewhere for min-plus style selection semirings).
        """
        if self._ring is not None:
            raise EngineBindingError(
                "power/closure need a semiring binding (identity and "
                "addition semantics); raw ring sessions only multiply"
            )
        semiring: Semiring = self.algebra  # type: ignore[assignment]
        if exponent < 0:
            raise ValueError(f"exponent must be >= 0, got {exponent}")
        n = self.n
        matrix = np.asarray(matrix, dtype=np.int64)
        if matrix.shape != (n, n):
            raise ValueError(f"matrix must be {n} x {n}")
        if exponent == 0:
            identity = semiring.zeros((n, n))
            np.fill_diagonal(identity, semiring.one_value)
            return identity
        result: np.ndarray | None = None
        base = matrix
        e = exponent
        step = 0
        while e:
            if e & 1:
                result = (
                    base
                    if result is None
                    else self.multiply(result, base, phase=f"{phase}/mul{step}")
                )
            e >>= 1
            if e:
                base = self.square(base, phase=f"{phase}/sq{step}")
            step += 1
        assert result is not None
        return result

    def closure(
        self,
        matrix: np.ndarray,
        *,
        steps: int | None = None,
        with_witnesses: bool = False,
        next_hop: np.ndarray | None = None,
        absorb: str = "accum",
        on_step: Callable[[int, np.ndarray], np.ndarray | None] | None = None,
        phase: str = "closure",
        step_label: str = "sq",
    ) -> np.ndarray:
        """Iterated squaring to a fixed point: the shared §3 closure loop.

        After ``t`` steps the accumulator covers all walks of length
        ``<= 2^t`` (paper eq. (4) generalised to any semiring); ``steps``
        defaults to ``ceil(log2 n)``, reaching the full closure.

        Args:
            matrix: the ``n x n`` seed (adjacency / weight / capacity).
            steps: number of squarings (default :func:`default_steps`).
            with_witnesses: selection semirings only -- merge with the
                engine's witness matrices and maintain ``next_hop`` routing
                tables exactly as Corollary 6 does.
            next_hop: routing table updated in place (required with
                ``with_witnesses``); row ``u`` of the table is node-local
                state, so the update costs no communication.
            absorb: ``"accum"`` merges ``B <- B^2 (+) B`` (the distance/
                reachability recurrences); ``"matrix"`` merges
                ``B <- B^2 (+) A`` (the generic closure of
                :func:`repro.matmul.powers.closure`).
            on_step: optional per-step hook ``(step, accum) -> accum | None``
                (negative-cycle detection, capping); a non-``None`` return
                replaces the accumulator.
            phase: cost-meter label prefix; squaring ``i`` is charged as
                ``{phase}/{step_label}{i}``.
        """
        if self._ring is not None:
            raise EngineBindingError(
                "power/closure need a semiring binding (identity and "
                "addition semantics); raw ring sessions only multiply"
            )
        if absorb not in ("accum", "matrix"):
            raise ValueError(f"absorb must be 'accum' or 'matrix', got {absorb!r}")
        if with_witnesses and absorb != "accum":
            raise ValueError(
                "the witness closure merges against the accumulator only "
                "(absorb='accum'); no witness exists for re-absorbed seed "
                "entries"
            )
        if with_witnesses and next_hop is None:
            raise ValueError("with_witnesses closure needs a next_hop table")
        semiring: Semiring = self.algebra  # type: ignore[assignment]
        base = np.asarray(matrix, dtype=np.int64)
        accum = base
        steps = default_steps(self.n) if steps is None else steps
        if (
            self.packed_closure
            and steps > 0
            and self.method == "semiring"
            and semiring is BOOLEAN
            and not with_witnesses
            and on_step is None
        ):
            return self._closure_packed(
                base,
                steps=steps,
                absorb=absorb,
                phase=phase,
                step_label=step_label,
            )
        for step in range(steps):
            step_phase = f"{phase}/{step_label}{step}"
            if with_witnesses:
                squared, witness = self.square(
                    accum, with_witnesses=True, phase=step_phase
                )
                improved = semiring.improves(squared, accum)
                rows, cols = np.nonzero(improved)
                mids = witness[rows, cols]
                next_hop[rows, cols] = next_hop[rows, mids]
                accum = np.where(improved, squared, accum)
            else:
                squared = self.square(accum, phase=step_phase)
                accum = semiring.add(
                    squared, accum if absorb == "accum" else base
                )
            if on_step is not None:
                replaced = on_step(step, accum)
                if replaced is not None:
                    accum = replaced
        return accum

    def _closure_packed(
        self,
        base: np.ndarray,
        *,
        steps: int,
        absorb: str,
        phase: str,
        step_label: str,
    ) -> np.ndarray:
        """Boolean closure kept bit-packed across squarings (§2.1 engine).

        The seed is packed once, every squaring runs the fully-packed
        pipeline (:func:`~repro.matmul.semiring3d.boolean_matmul_packed`),
        the per-step absorb is a word-parallel OR, and the accumulator is
        unpacked exactly once at the end.  Bit-identical to the unpacked
        loop: ``BOOLEAN.add`` thresholds its operands, so OR-ing packed
        0/1 data commutes with packing, and the packed pipeline charges the
        unpacked path's exact phase costs.  Dispatched from
        :meth:`closure`; the per-product baseline is reachable with
        ``packed_closure=False``.
        """
        n = self.n
        base_p = pack_bool_matrix(base, n)
        accum_p = base_p
        for step in range(steps):
            squared = boolean_matmul_packed(
                self.clique,
                accum_p,
                accum_p,
                phase=f"{phase}/{step_label}{step}",
                arena=self.arena,
            )
            # absorb: B <- B^2 OR B ("accum") or B^2 OR A ("matrix");
            # `squared` is freshly allocated, never an arena buffer.
            np.bitwise_or(
                squared,
                accum_p if absorb == "accum" else base_p,
                out=squared,
            )
            accum_p = squared
        return unpack_bool_matrix(accum_p, n)

    # ------------------------------------------------------------------ #
    # Persistent selection-semiring state (resident min-plus closures)
    # ------------------------------------------------------------------ #

    @property
    def resident(self) -> ResidentClosure | None:
        """The resident closure state, or ``None`` before seeding."""
        return self._resident

    def seed_resident(
        self, matrix: np.ndarray, *, next_hop: np.ndarray | None = None
    ) -> ResidentClosure:
        """Install ``matrix`` (and routing table) as resident session state.

        Selection semirings with witnesses on the semiring/naive engines
        only -- the same binding rule as ``closure(with_witnesses=True)``.
        The matrix is copied into a session-owned ``n x n`` int64 buffer;
        when ``next_hop`` is omitted, the default routing seed of
        :func:`repro.distances.apsp.apsp_exact` is built (finite
        off-diagonal entries route to their column, the diagonal to
        itself).  Pass ``next_hop`` to restore previously closed state
        (e.g. re-hydrating a serve artifact for delta updates); it is
        copied too.  Replaces any prior resident state.
        """
        if self._ring is not None:
            raise EngineBindingError(
                "resident closures need a semiring binding; raw ring "
                "sessions only multiply"
            )
        semiring: Semiring = self.algebra  # type: ignore[assignment]
        if not semiring.has_witnesses:
            raise EngineBindingError(
                f"resident state needs a selection semiring with witnesses; "
                f"{semiring.name!r} has none"
            )
        if self.method == "bilinear":
            raise EngineBindingError(
                "the bilinear engine has no native witnesses; resident "
                "state runs on the semiring/naive engines"
            )
        n = self.n
        dist = np.array(matrix, dtype=np.int64, copy=True)
        if dist.shape != (n, n):
            raise ValueError(f"matrix must be {n} x {n}, got {dist.shape}")
        if next_hop is None:
            hops = np.full((n, n), -1, dtype=np.int64)
            edge_rows, edge_cols = np.nonzero(
                semiring.improves(dist, semiring.zeros((n, n)))
            )
            hops[edge_rows, edge_cols] = edge_cols
            np.fill_diagonal(hops, np.arange(n))
        else:
            hops = np.array(next_hop, dtype=np.int64, copy=True)
            if hops.shape != (n, n):
                raise ValueError(f"next_hop must be {n} x {n}, got {hops.shape}")
        self._resident = ResidentClosure(dist=dist, next_hop=hops)
        return self._resident

    def resident_square(self, *, phase: str = "resident/square") -> bool:
        """One witness squaring of the resident state, merged in place.

        Runs the exact step of the ``with_witnesses`` closure loop --
        square, arg-select witness merge, routing-table gather -- against
        the resident arrays, so the round/word charges are bit-identical
        to :meth:`closure` feeding the same matrix.  Returns whether any
        entry improved (the fixed-point signal delta maintenance uses).
        """
        state = self._resident
        if state is None:
            raise RuntimeError("no resident state; call seed_resident first")
        semiring: Semiring = self.algebra  # type: ignore[assignment]
        squared, witness = self.square(
            state.dist, with_witnesses=True, phase=phase
        )
        improved = semiring.improves(squared, state.dist)
        rows, cols = np.nonzero(improved)
        mids = witness[rows, cols]
        state.next_hop[rows, cols] = state.next_hop[rows, mids]
        np.copyto(state.dist, squared, where=improved)
        state.squarings += 1
        state.generation += 1
        return bool(rows.size)

    def resident_closure(
        self,
        *,
        steps: int | None = None,
        on_step: Callable[[int, np.ndarray], np.ndarray | None] | None = None,
        phase: str = "closure",
        step_label: str = "sq",
    ) -> np.ndarray:
        """Square the resident state to closure; returns the resident matrix.

        The loop, phase labels and witness merges match
        ``closure(with_witnesses=True, ...)`` step for step, so rounds and
        meters are bit-identical -- only the accumulator's home differs
        (session-resident instead of caller-owned).  The returned array *is*
        ``self.resident.dist``; copy before mutating outside the session.
        """
        state = self._resident
        if state is None:
            raise RuntimeError("no resident state; call seed_resident first")
        steps = default_steps(self.n) if steps is None else steps
        for step in range(steps):
            self.resident_square(phase=f"{phase}/{step_label}{step}")
            if on_step is not None:
                replaced = on_step(step, state.dist)
                if replaced is not None:
                    np.copyto(state.dist, replaced)
        return state.dist

    def drop_resident(self) -> None:
        """Release the resident closure state (idempotent)."""
        self._resident = None


def open_session(
    n: int,
    method: str = "bilinear",
    algebra: Semiring | RingOps = PLUS_TIMES,
    *,
    clique: CongestedClique | None = None,
    algorithm: BilinearAlgorithm | None = None,
    shards: int = 1,
    threads: int = 1,
    mode: ScheduleMode = ScheduleMode.FAST,
    word_bits: int | None = None,
    packed_closure: bool = True,
    fault_plan=None,
    fault_tolerance: int | None = None,
    fault_scheme: str = "replicate",
    cost_model=None,
) -> EngineSession:
    """Build a session (and its clique/executor) for an ``n``-node problem.

    The clique is sized by :func:`required_clique_size` for the method; pass
    an explicit ``clique`` to share one simulator (and its meter) across
    several sessions, as the multi-product algorithms (Seidel, girth) do.

    Args:
        shards: local-compute worker processes; ``1`` keeps the serial
            executor.  Must satisfy ``1 <= shards <= clique size``
            (a shard owns a non-empty node range).
        threads: kernel-tile threads per executor (``1`` keeps serial
            tiles); composes with ``shards``.
        packed_closure: see :class:`EngineSession`.
        fault_plan / fault_tolerance / fault_scheme: see
            :func:`make_clique` -- only valid when the session builds the
            clique (an explicit ``clique`` already fixed its fault layer).
        cost_model: transport cost model to attach (see
            :func:`make_clique`); valid with an explicit ``clique`` too --
            attaching is always observational.
    """
    if clique is None:
        clique = make_clique(
            n,
            method,
            mode=mode,
            word_bits=word_bits,
            shards=shards,
            threads=threads,
            fault_plan=fault_plan,
            fault_tolerance=fault_tolerance,
            fault_scheme=fault_scheme,
            cost_model=cost_model,
        )
        cost_model = None
    elif fault_plan is not None or fault_tolerance is not None:
        raise ValueError(
            "pass fault_plan/fault_tolerance only when the session builds "
            "the clique (the given clique already has its fault layer)"
        )
    elif shards != 1 and shards != clique.executor.shards:
        raise ValueError(
            "pass shards= only when the session builds the clique "
            "(the given clique already has an executor)"
        )
    elif threads != 1 and threads != clique.executor.threads:
        raise ValueError(
            "pass threads= only when the session builds the clique "
            "(the given clique already has an executor)"
        )
    return EngineSession(
        clique, method, algebra, algorithm=algorithm,
        cost_model=cost_model, packed_closure=packed_closure,
    )


__all__ = [
    "EngineSession",
    "EngineBindingError",
    "ResidentClosure",
    "open_session",
    "make_clique",
    "required_clique_size",
    "default_steps",
    "MATMUL_METHODS",
]
