"""Analysis layer: Table 1 regeneration, exponent fits, §4 lower bounds."""

from repro.analysis.crossover import (
    CrossoverEstimate,
    crossover,
    triangle_crossover_vs_dolev,
)
from repro.analysis.loads import PhaseLoad, format_load_report, load_report
from repro.analysis.lower_bounds import (
    LowerBoundCheck,
    check_meter_against_floor,
    rounds_floor_from_words,
    semiring_words_floor,
    strassen_like_words_floor,
)
from repro.analysis.table1 import ProblemReport, format_table1, run_table1

__all__ = [
    "ProblemReport",
    "run_table1",
    "format_table1",
    "PhaseLoad",
    "load_report",
    "format_load_report",
    "CrossoverEstimate",
    "crossover",
    "triangle_crossover_vs_dolev",
    "LowerBoundCheck",
    "check_meter_against_floor",
    "semiring_words_floor",
    "strassen_like_words_floor",
    "rounds_floor_from_words",
]
