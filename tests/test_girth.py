"""Tests for Theorem 15 (undirected girth) and Corollary 16 (directed)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INF
from repro.distances import (
    default_cycle_length_cutoff,
    edge_threshold,
    girth_directed,
    girth_undirected,
)
from repro.graphs import (
    Graph,
    cycle_graph,
    cycle_with_trees,
    dense_small_girth_graph,
    girth_reference,
    gnp_random_graph,
    random_tree,
)


class TestUndirectedGirth:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=3, max_value=9),
    )
    def test_sparse_branch_exact(self, seed, g_target):
        graph = cycle_with_trees(24, g_target, seed=seed)
        result = girth_undirected(graph)
        assert result.value == g_target
        assert result.extras["branch"] == "sparse"

    def test_acyclic_graph(self):
        result = girth_undirected(random_tree(20, seed=1))
        assert result.value >= INF

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_dense_branch_matches_reference(self, seed):
        # p = 0.8 keeps the edge count above the Lemma 14 threshold for all
        # seeds, pinning the run to the colour-coding branch.
        graph = gnp_random_graph(16, 0.8, seed=seed)
        result = girth_undirected(
            graph, trials_per_k=20, rng=np.random.default_rng(seed)
        )
        assert result.value == girth_reference(graph)
        assert result.extras["branch"].startswith("dense")

    def test_forced_dense_branch_via_cutoff(self):
        # A tiny cutoff drops the edge threshold below m, forcing the
        # colour-coding branch even on a moderate graph.
        graph = gnp_random_graph(16, 0.5, seed=3)
        result = girth_undirected(
            graph, cutoff=4, trials_per_k=25, rng=np.random.default_rng(0)
        )
        assert result.value == girth_reference(graph)

    def test_directed_input_rejected(self):
        g = gnp_random_graph(8, 0.3, seed=0, directed=True)
        with pytest.raises(ValueError):
            girth_undirected(g)

    def test_cutoff_default_formula(self):
        assert default_cycle_length_cutoff(0.2876) == 9
        assert default_cycle_length_cutoff(1.0 / 3.0) == 8

    def test_edge_threshold_monotone_in_n(self):
        assert edge_threshold(100, 8) > edge_threshold(50, 8)


class TestDirectedGirth:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=3, max_value=16))
    def test_directed_cycle_exact(self, k):
        result = girth_directed(cycle_graph(k, directed=True))
        assert result.value == k

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_digraphs_match_reference(self, seed):
        g = gnp_random_graph(14, 0.15, seed=seed, directed=True)
        result = girth_directed(g)
        assert result.value == girth_reference(g)

    def test_mutual_edge_girth_two(self):
        g = Graph.from_edges(5, [(0, 1), (1, 0), (2, 3)], directed=True)
        assert girth_directed(g).value == 2

    def test_acyclic_digraph(self):
        adj = np.triu(gnp_random_graph(12, 0.4, seed=2).adjacency)
        g = Graph(n=12, adjacency=adj, directed=True)
        result = girth_directed(g)
        assert result.value >= INF

    def test_undirected_input_rejected(self):
        with pytest.raises(ValueError):
            girth_directed(cycle_graph(5))

    def test_products_logarithmic(self):
        g = cycle_graph(15, directed=True)
        result = girth_directed(g)
        # Doubling + binary search: O(log n) Boolean products.
        assert result.extras["boolean_products"] <= 12
