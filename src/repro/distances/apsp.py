"""Exact weighted APSP via iterated distance-product squaring (Corollary 6).

``W^n`` over the min-plus semiring holds all shortest-path distances; it is
reached with ``ceil(log2 n)`` squarings, each an ``O(n^{1/3})``-round
semiring product (Theorem 1), for ``O(n^{1/3} log n)`` rounds in total (the
``dlog M / log ne`` width factor is metered automatically from the entry
magnitudes).

Routing tables (§3.3 "constructing routing tables"): the semiring engine
returns witness matrices for free (local arg-min), and the table is updated
by ``R[u, v] <- R[u, Q[u, v]]`` whenever the squaring improves a distance --
a purely node-local update, since row ``u`` of ``R``, ``Q`` and the new
distances all live at node ``u``.

Negative integer weights are allowed (Table 1: weights in
``{0, +-1, ..., +-M}``); a negative-weight cycle is reported via
:class:`~repro.errors.NegativeCycleError` when a diagonal entry drops below
zero.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.errors import NegativeCycleError
from repro.graphs.graphs import Graph
from repro.matmul.distance import distance_product
from repro.runtime import RunResult, make_clique, pad_matrix


def apsp_exact(
    graph: Graph,
    *,
    with_routing_tables: bool = True,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 6: exact APSP (+ routing tables) for integer weights.

    Returns distances (``value``), with ``extras["next_hop"]`` holding the
    routing table when requested: ``next_hop[u, v]`` is the first hop of a
    shortest ``u -> v`` path (``-1`` if unreachable or ``u == v``).
    """
    n = graph.n
    clique = clique or make_clique(n, "semiring", mode=mode)
    dist = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)
    next_hop = None
    if with_routing_tables:
        next_hop = np.full((clique.n, clique.n), -1, dtype=np.int64)
        edge_rows, edge_cols = np.nonzero(dist < INF)
        next_hop[edge_rows, edge_cols] = edge_cols
        np.fill_diagonal(next_hop, np.arange(clique.n))

    iterations = max(1, math.ceil(math.log2(max(2, n))))
    for step in range(iterations):
        if with_routing_tables:
            squared, witness = distance_product(
                clique, dist, dist, with_witnesses=True, phase=f"apsp/square{step}"
            )
            improved = squared < dist
            rows, cols = np.nonzero(improved)
            mids = witness[rows, cols]
            next_hop[rows, cols] = next_hop[rows, mids]
            dist = np.where(improved, squared, dist)
        else:
            squared = distance_product(
                clique, dist, dist, with_witnesses=False, phase=f"apsp/square{step}"
            )
            dist = np.minimum(dist, squared)
        if np.any(np.diag(dist) < 0):
            raise NegativeCycleError("negative-weight cycle detected during squaring")

    value = dist[:n, :n]
    extras: dict[str, object] = {"squarings": iterations}
    if with_routing_tables:
        hop_view = next_hop[:n, :n].copy()
        np.fill_diagonal(hop_view, -1)
        extras["next_hop"] = hop_view
    return RunResult(
        value=value,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras=extras,
    )


__all__ = ["apsp_exact"]
