"""E10 -- Table 1 "(1+o(1))-approximate APSP" (Theorem 9).

Measures both sides of the trade: the realised approximation ratio (always
within the proven (1+delta)^{ceil(log n)} bound, usually far better) and
the round cost as delta tightens -- DESIGN.md ablation 5.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import INF
from repro.distances import apsp_approx
from repro.graphs import apsp_reference, random_weighted_digraph

from .conftest import run_once


def _measured_ratio(value, ref):
    finite = ref < INF
    if not finite.any():
        return 1.0
    return float(np.max(value[finite] / np.maximum(ref[finite], 1)))


@pytest.mark.parametrize("n", [16, 25])
def test_apsp_approx(benchmark, n):
    g = random_weighted_digraph(n, 0.4, 20, seed=n)
    ref = apsp_reference(g)

    def run():
        return apsp_approx(g, delta=0.3)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    ratio = _measured_ratio(result.value, ref)
    benchmark.extra_info["measured_ratio"] = ratio
    benchmark.extra_info["ratio_bound"] = result.extras["ratio_bound"]
    assert ratio <= result.extras["ratio_bound"] + 1e-9
    finite = ref < INF
    assert (result.value[finite] >= ref[finite]).all()


@pytest.mark.parametrize("delta", [0.5, 0.3, 0.15])
def test_delta_sweep(benchmark, delta):
    """Accuracy/rounds trade-off of Lemma 20 (smaller delta = more rounds)."""
    n = 16
    g = random_weighted_digraph(n, 0.4, 20, seed=3)
    ref = apsp_reference(g)

    def run():
        return apsp_approx(g, delta=delta)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["delta"] = delta
    benchmark.extra_info["measured_ratio"] = _measured_ratio(result.value, ref)
