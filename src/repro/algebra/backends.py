"""Kernel execution backends: how the batched tile kernels spend their CPU.

Kernel generation 3 (see DESIGN.md) separates *what* a kernel computes from
*where its tiles run*.  The packed witness kernels
(:meth:`~repro.algebra.semirings._SelectionSemiring._packed_fold`) and the
bit-packed Boolean kernels already decompose their work into independent
cache-sized tiles -- disjoint batch/column ranges writing disjoint output
slices -- so scheduling those tiles is an orthogonal choice:

* :class:`SerialBackend` -- today's behaviour: tiles run in order on the
  calling thread.
* :class:`ThreadedBackend` -- tiles fan out over a persistent
  :class:`~concurrent.futures.ThreadPoolExecutor`.  The tile bodies are
  NumPy ufunc sweeps on large int64 arrays, which release the GIL, so plain
  threads scale without multiprocessing's copy/pickle overhead.  While tile
  threads are in flight any BLAS pool is capped at one thread via
  ``threadpoolctl`` (when installed) so tile threads and BLAS threads never
  oversubscribe the machine; without ``threadpoolctl`` the cap is skipped --
  harmless for the packed kernels, which never call BLAS.
* ``"numba"`` -- an *optional* compiled variant behind the same registry:
  resolving it without the ``numba`` package raises a clear
  :class:`KernelBackendError` (nothing in this repository requires numba;
  when present, the backend schedules exactly like the threaded one and
  additionally advertises :attr:`KernelBackend.compiled` so kernels may
  choose jitted tile bodies).

Backends are deterministic by construction: every tile writes a disjoint
output slice and no kernel merges across tiles in scheduling order, so
serial and threaded runs are **bit-identical** (equivalence-tested in
``tests/test_kernel_gen3.py``).  The scheduling choice can never change
values, witnesses, or the simulator's round/load charges.

Resolution order for the process default: the ``REPRO_KERNEL_BACKEND``
environment variable (``serial``, ``threaded``, ``threaded:N``, ``numba``)
else ``serial``.  Executors pass their backend down per call, so
``--threads`` on the CLI composes with ``--shards`` (each shard worker runs
its own tile backend).
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from contextlib import nullcontext
from typing import Callable, Sequence

try:  # optional: honest BLAS/tile-thread interplay when available
    from threadpoolctl import threadpool_limits as _threadpool_limits
except ImportError:  # pragma: no cover - depends on the environment
    _threadpool_limits = None

HAVE_THREADPOOLCTL = _threadpool_limits is not None

try:  # optional: compiled tile bodies when available
    import numba as _numba  # noqa: F401
except ImportError:  # pragma: no cover - depends on the environment
    _numba = None

HAVE_NUMBA = _numba is not None


class KernelBackendError(ValueError):
    """An unknown or unavailable kernel backend was requested."""


def tile_ranges(total: int, parts: int) -> list[tuple[int, int]]:
    """Partition ``range(total)`` into ``<= parts`` contiguous tile ranges.

    The ranges are *balanced* (sizes differ by at most one), *gap-free* and
    *non-overlapping*, and empty ranges are dropped -- so degenerate shapes
    (``total < parts``, ``total == 0``) yield fewer (or zero) ranges rather
    than empty ones.  This is the single splitter behind both the sharded
    executor's node ranges (:func:`repro.clique.executor.shard_ranges`) and
    the threaded backend's tile ranges; both are property-tested in
    ``tests/test_kernel_gen3.py``.
    """
    if total < 0 or parts < 1:
        raise ValueError(f"need total >= 0 and parts >= 1, got {total}/{parts}")
    parts = min(parts, total) or 1
    bounds = [total * i // parts for i in range(parts + 1)]
    return [
        (bounds[i], bounds[i + 1])
        for i in range(parts)
        if bounds[i + 1] > bounds[i]
    ]


class KernelBackend:
    """Interface: run a batch of independent tile tasks.

    A *task* is a zero-argument callable writing a disjoint slice of a
    preallocated output; :meth:`run` returns once every task has finished,
    re-raising the first exception.  ``threads`` is the scheduling width a
    kernel should split its work for (``1`` means do not bother splitting).
    """

    name = "abstract"
    threads = 1
    #: whether kernels may choose compiled (jitted) tile bodies.
    compiled = False

    @property
    def spec(self) -> str:
        """Picklable registry spec resolving back to an equivalent backend."""
        return self.name if self.threads == 1 else f"{self.name}:{self.threads}"

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        raise NotImplementedError

    def limit_blas(self):
        """Context manager capping BLAS pools while tile threads run."""
        return nullcontext()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(threads={self.threads})"


class SerialBackend(KernelBackend):
    """Tiles run in order on the calling thread (the default)."""

    name = "serial"
    threads = 1

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        for task in tasks:
            task()


class ThreadedBackend(KernelBackend):
    """Tiles fan out over a persistent thread pool.

    The pool is created lazily on first use and shared by every kernel call
    through this backend instance (instances themselves are shared via
    :func:`get_backend`'s per-thread-count cache, so a session's
    ``ceil(log n)`` squarings never re-spawn threads).  ``close`` exists for
    tests; idle pooled threads cost nothing, so process lifetime is fine.
    """

    name = "threaded"

    def __init__(self, threads: int) -> None:
        if threads < 1:
            raise KernelBackendError(f"threads must be >= 1, got {threads}")
        self.threads = int(threads)
        self._pool: ThreadPoolExecutor | None = None

    def _ensure_pool(self) -> ThreadPoolExecutor:
        if self._pool is None:
            self._pool = ThreadPoolExecutor(
                max_workers=self.threads, thread_name_prefix="repro-tile"
            )
        return self._pool

    def close(self) -> None:
        if self._pool is not None:
            self._pool.shutdown(wait=True)
            self._pool = None

    def limit_blas(self):
        if _threadpool_limits is None:
            return nullcontext()
        return _threadpool_limits(limits=1)

    def run(self, tasks: Sequence[Callable[[], None]]) -> None:
        tasks = list(tasks)
        if len(tasks) <= 1 or self.threads <= 1:
            for task in tasks:
                task()
            return
        # Cap BLAS for the duration: tile threads own the cores.  The tile
        # bodies themselves are BLAS-free, so this only matters when a
        # caller overlaps kernels with BLAS work on other threads.
        with self.limit_blas():
            pool = self._ensure_pool()
            futures = [pool.submit(task) for task in tasks]
            for future in futures:
                future.result()


class NumbaBackend(ThreadedBackend):
    """Optional compiled-tile variant; requires the ``numba`` package."""

    name = "numba"
    compiled = True

    def __init__(self, threads: int) -> None:
        if not HAVE_NUMBA:
            raise KernelBackendError(
                "backend 'numba' requires the optional numba package "
                "(not installed); use 'serial' or 'threaded'"
            )
        super().__init__(threads)


#: Backend factories by registry name; each takes a thread count.
_FACTORIES: dict[str, Callable[[int], KernelBackend]] = {
    "serial": lambda threads: SerialBackend(),
    "threaded": ThreadedBackend,
    "numba": NumbaBackend,
}

#: Shared instances per (name, threads): kernels resolve specs on every
#: call, so caching keeps thread pools persistent across calls.
_INSTANCES: dict[tuple[str, int], KernelBackend] = {}

_SERIAL = SerialBackend()
_INSTANCES[("serial", 1)] = _SERIAL


def _default_spec() -> str:
    return os.environ.get("REPRO_KERNEL_BACKEND", "serial")


_default: str = _default_spec()


def _reset_pools_after_fork() -> None:
    """Drop inherited thread pools in forked children.

    A ``ThreadPoolExecutor``'s worker threads do not survive ``fork``: the
    child inherits the pool object (via the shared ``_INSTANCES`` cache)
    with its work queue intact but no threads draining it, so the first
    ``run`` would block forever.  Fork-started shard workers therefore
    start with a clean slate and lazily build their own pools.
    """
    for backend in _INSTANCES.values():
        if isinstance(backend, ThreadedBackend):
            backend._pool = None


if hasattr(os, "register_at_fork"):  # pragma: no branch - POSIX only
    os.register_at_fork(after_in_child=_reset_pools_after_fork)


def set_default_backend(spec: "str | int | KernelBackend | None") -> str:
    """Set the process-default backend spec; returns the previous spec."""
    global _default
    previous = _default
    _default = get_backend(spec).spec
    return previous


def get_default_backend() -> KernelBackend:
    """The process-default backend (``REPRO_KERNEL_BACKEND`` or serial)."""
    return get_backend(_default)


def get_backend(spec: "str | int | KernelBackend | None" = None) -> KernelBackend:
    """Resolve a backend spec to a (shared) :class:`KernelBackend`.

    Accepted specs: ``None`` (the process default), a backend instance
    (returned as-is), an ``int`` thread count (``1`` -> serial, ``N > 1``
    -> ``threaded:N``), or a registry string ``"serial"``, ``"threaded"``
    (thread count = ``os.cpu_count()``), ``"threaded:N"``, ``"numba[:N]"``.
    """
    if spec is None:
        spec = _default
    if isinstance(spec, KernelBackend):
        return spec
    if isinstance(spec, int):
        if spec < 1:
            raise KernelBackendError(f"thread count must be >= 1, got {spec}")
        spec = "serial" if spec == 1 else f"threaded:{spec}"
    name, _, count = str(spec).partition(":")
    if name not in _FACTORIES:
        raise KernelBackendError(
            f"unknown kernel backend {name!r} (known: {sorted(_FACTORIES)})"
        )
    if count:
        try:
            threads = int(count)
        except ValueError:
            raise KernelBackendError(
                f"bad thread count in backend spec {spec!r}"
            ) from None
    else:
        threads = 1 if name == "serial" else (os.cpu_count() or 1)
    if threads < 1:
        raise KernelBackendError(f"thread count must be >= 1, got {threads}")
    if name == "serial":
        threads = 1
    key = (name, threads)
    backend = _INSTANCES.get(key)
    if backend is None:
        backend = _FACTORIES[name](threads)
        _INSTANCES[key] = backend
    return backend


def backend_info() -> dict:
    """Environment facts the perf report records next to threaded rows."""
    return {
        "cpus": os.cpu_count() or 1,
        "default_backend": _default,
        "threadpoolctl": HAVE_THREADPOOLCTL,
        "numba": HAVE_NUMBA,
    }


__all__ = [
    "KernelBackend",
    "KernelBackendError",
    "SerialBackend",
    "ThreadedBackend",
    "NumbaBackend",
    "get_backend",
    "get_default_backend",
    "set_default_backend",
    "backend_info",
    "tile_ranges",
    "HAVE_NUMBA",
    "HAVE_THREADPOOLCTL",
]
