"""Tests for the schedule machinery: Koenig colouring and relay schedules.

These certify the routing theorem the whole paper leans on: any demand with
per-node load ``L`` is deliverable in ``O(L / n)`` rounds, via an explicit
schedule that never ships two words across one ordered pair in a round.
"""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.scheduling import (
    broadcast_rounds,
    colour_into_matchings,
    direct_rounds,
    relay_rounds_fast,
    relay_schedule,
    validate_matchings,
    validate_relay_schedule,
)
from repro.errors import ScheduleValidationError
from tests.conftest import random_demand


def _max_load(demand: dict[tuple[int, int], int], n: int) -> int:
    send = [0] * n
    recv = [0] * n
    for (u, v), c in demand.items():
        send[u] += c
        recv[v] += c
    return max(max(send, default=0), max(recv, default=0))


class TestDirectRounds:
    def test_empty(self):
        assert direct_rounds({}) == 0

    def test_max_pair(self):
        assert direct_rounds({(0, 1): 3, (2, 3): 7}) == 7


class TestRelayRoundsFast:
    def test_zero_load(self):
        assert relay_rounds_fast(0, 8) == 0

    def test_formula(self):
        assert relay_rounds_fast(8, 8) == 2
        assert relay_rounds_fast(9, 8) == 4
        assert relay_rounds_fast(17, 8) == 6

    def test_single_node_rejected(self):
        with pytest.raises(ValueError):
            relay_rounds_fast(5, 1)


class TestColouring:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=3, max_value=10))
    def test_random_demands_colour_properly(self, seed, n):
        rng = np.random.default_rng(seed)
        demand = random_demand(rng, n)
        matchings = colour_into_matchings(demand, n)
        validate_matchings(matchings, demand)

    def test_matching_count_within_2x_of_degree(self):
        rng = np.random.default_rng(0)
        for trial in range(10):
            n = 8
            demand = random_demand(rng, n)
            if not demand:
                continue
            matchings = colour_into_matchings(demand, n)
            max_deg = _max_load(demand, n)
            assert len(matchings) <= 2 * max_deg

    def test_single_heavy_pair(self):
        demand = {(0, 1): 40}
        matchings = colour_into_matchings(demand, 4)
        validate_matchings(matchings, demand)
        assert len(matchings) >= 40  # a pair's words must use distinct classes

    def test_permutation_demand_is_one_matching(self):
        n = 6
        demand = {(u, (u + 1) % n): 1 for u in range(n)}
        matchings = colour_into_matchings(demand, n)
        validate_matchings(matchings, demand)
        assert len(matchings) == 1

    def test_empty_demand(self):
        assert colour_into_matchings({}, 5) == []

    def test_validation_rejects_bad_matchings(self):
        with pytest.raises(ScheduleValidationError):
            validate_matchings([[(0, 1), (0, 2)]], {(0, 1): 1, (0, 2): 1})

    def test_validation_rejects_incomplete_cover(self):
        with pytest.raises(ScheduleValidationError):
            validate_matchings([[(0, 1)]], {(0, 1): 2})


class TestRelaySchedule:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=3, max_value=9))
    def test_schedule_is_legal_and_bounded(self, seed, n):
        rng = np.random.default_rng(seed)
        demand = random_demand(rng, n)
        if not demand:
            return
        schedule = relay_schedule(demand, n)
        validate_relay_schedule(schedule)
        fast = relay_rounds_fast(_max_load(demand, n), n)
        # Power-of-two padding costs at most a factor 2 plus one batch.
        assert schedule.rounds <= 2 * fast + 2
        assert schedule.rounds >= 2  # at least one two-round batch

    def test_all_to_one_demand(self):
        n = 8
        demand = {(u, 0): 4 for u in range(1, n)}
        schedule = relay_schedule(demand, n)
        validate_relay_schedule(schedule)
        # Receive load 28 -> fast bound 2*ceil(28/8)=8; schedule within 2x+2.
        assert schedule.rounds <= 18

    def test_self_hops_are_elided(self):
        demand = {(0, 1): 1, (1, 0): 1}
        schedule = relay_schedule(demand, 4)
        for hop_list in schedule.hops:
            for u, v in hop_list:
                assert u != v


class TestBroadcastRounds:
    def test_empty(self):
        assert broadcast_rounds([]) == 0

    def test_max_width(self):
        assert broadcast_rounds([1, 5, 2]) == 5

    def test_relay_vs_lower_bound(self):
        # The relay schedule can never beat the bandwidth floor ceil(L/n).
        rng = np.random.default_rng(7)
        for _ in range(5):
            n = 7
            demand = random_demand(rng, n)
            if not demand:
                continue
            schedule = relay_schedule(demand, n)
            assert schedule.rounds >= math.ceil(_max_load(demand, n) / n)


class TestDisjointRelays:
    """PR 6 satellite: relay assignment for replication-coded exchanges."""

    @settings(max_examples=40, deadline=None)
    @given(
        pieces=st.integers(min_value=0, max_value=200),
        n=st.integers(min_value=3, max_value=40),
        salt=st.integers(min_value=0, max_value=1000),
        data=st.data(),
    )
    def test_rows_are_pairwise_distinct_relays(self, pieces, n, salt, data):
        from repro.clique.scheduling import disjoint_relays

        copies = data.draw(st.integers(min_value=1, max_value=n))
        relays = disjoint_relays(pieces, copies, n, salt=salt)
        assert relays.shape == (pieces, copies)
        assert relays.dtype == np.int64
        if pieces:
            assert int(relays.min()) >= 0 and int(relays.max()) < n
            # Each piece's copy set must be c *distinct* relays, else a
            # single corrupt node could own two votes on the same piece.
            sorted_rows = np.sort(relays, axis=1)
            assert np.all(sorted_rows[:, 1:] != sorted_rows[:, :-1])

    def test_deterministic_in_inputs(self):
        from repro.clique.scheduling import disjoint_relays

        assert np.array_equal(
            disjoint_relays(17, 3, 11, salt=5), disjoint_relays(17, 3, 11, salt=5)
        )

    def test_load_is_balanced(self):
        from repro.clique.scheduling import disjoint_relays

        # n pieces, 1 copy: the stride walk must not pile onto few relays.
        n = 16
        relays = disjoint_relays(n, 1, n).reshape(-1)
        counts = np.bincount(relays, minlength=n)
        assert counts.max() <= 2
