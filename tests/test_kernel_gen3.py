"""Kernel generation 3: threaded tile backends + persistent packed closures.

Three invariants pin the third kernel wave to the retained oracles:

* **Scheduling is invisible.**  Every tile backend (serial, threaded, any
  thread count) produces bit-identical values and witnesses for every
  batched kernel -- tiles write disjoint output slices and no kernel merges
  in scheduling order -- and the shared range splitter behind shard ranges
  and tile ranges is balanced, gap-free and non-overlapping on every shape
  (property-tested).
* **Packing is invisible.**  The fully-packed Boolean §2.1 pipeline and the
  persistent packed closure charge the *same phases* (rounds, words,
  payloads, per-node loads) as the unpacked path and return the same
  matrices, across densities, sizes, absorb modes, shards x threads
  combinations, and with robust (fault-injected) collectives layered on
  top.
* **Lifecycle is deterministic.**  Engine sessions close their executor and
  arena on context exit; thread pools survive being inherited through
  ``fork`` (the sharded executor's start method).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.backends import (
    HAVE_NUMBA,
    KernelBackendError,
    SerialBackend,
    ThreadedBackend,
    backend_info,
    get_backend,
    get_default_backend,
    set_default_backend,
    tile_ranges,
)
from repro.algebra.semirings import (
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    pack_bool_rows,
    packed_words,
    unpack_bool_rows,
)
from repro.clique.executor import (
    SERIAL_EXECUTOR,
    SerialExecutor,
    ShardedExecutor,
    make_executor,
    shard_ranges,
)
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.engine import EngineSession, make_clique, open_session
from repro.matmul.semiring3d import (
    boolean_matmul_packed,
    pack_bool_matrix,
    semiring_matmul,
    unpack_bool_matrix,
)


def _phases(clique):
    return [
        (p.phase, p.primitive, p.rounds, p.words, p.payloads,
         p.max_send_words, p.max_recv_words)
        for p in clique.meter.phases
    ]


# --------------------------------------------------------------------- #
# Backend registry
# --------------------------------------------------------------------- #


class TestBackendRegistry:
    def test_specs_resolve_and_cache(self):
        serial = get_backend("serial")
        assert isinstance(serial, SerialBackend)
        assert serial.threads == 1 and serial.spec == "serial"
        assert get_backend("serial") is serial
        assert get_backend(1) is serial

        threaded = get_backend("threaded:3")
        assert isinstance(threaded, ThreadedBackend)
        assert threaded.threads == 3 and threaded.spec == "threaded:3"
        assert get_backend("threaded:3") is threaded
        assert get_backend(3) is threaded
        assert get_backend(threaded) is threaded

    def test_bare_threaded_uses_cpu_count(self):
        import os

        backend = get_backend("threaded")
        assert backend.threads == (os.cpu_count() or 1)

    def test_serial_ignores_thread_count(self):
        assert get_backend("serial:7").threads == 1

    def test_default_backend_roundtrip(self):
        previous = set_default_backend("threaded:2")
        try:
            assert get_default_backend().spec == "threaded:2"
            assert get_backend(None) is get_backend("threaded:2")
        finally:
            set_default_backend(previous)
        assert get_default_backend().spec == previous

    def test_bad_specs_rejected(self):
        with pytest.raises(KernelBackendError):
            get_backend("vectorised")
        with pytest.raises(KernelBackendError):
            get_backend("threaded:zero")
        with pytest.raises(KernelBackendError):
            get_backend("threaded:0")
        with pytest.raises(KernelBackendError):
            get_backend(0)

    def test_numba_backend_gated_on_availability(self):
        if HAVE_NUMBA:  # pragma: no cover - environment-dependent
            assert get_backend("numba:2").compiled
        else:
            with pytest.raises(KernelBackendError, match="numba"):
                get_backend("numba:2")

    def test_backend_info_shape(self):
        info = backend_info()
        assert set(info) == {"cpus", "default_backend", "threadpoolctl", "numba"}
        assert info["cpus"] >= 1

    def test_run_propagates_task_errors(self):
        def boom():
            raise RuntimeError("tile failed")

        backend = ThreadedBackend(2)
        try:
            with pytest.raises(RuntimeError, match="tile failed"):
                backend.run([boom, boom])
        finally:
            backend.close()


# --------------------------------------------------------------------- #
# Range splitters (shards and tiles share one implementation)
# --------------------------------------------------------------------- #


class TestRangeSplitters:
    @settings(max_examples=200, deadline=None)
    @given(
        st.integers(min_value=0, max_value=500),
        st.integers(min_value=1, max_value=40),
    )
    def test_balanced_gapfree_nonoverlapping(self, total, parts):
        ranges = tile_ranges(total, parts)
        assert ranges == shard_ranges(total, parts)
        # Gap-free and non-overlapping: ranges chain exactly over [0, total).
        cursor = 0
        for lo, hi in ranges:
            assert lo == cursor and hi > lo
            cursor = hi
        assert cursor == total or (total == 0 and ranges == [])
        # Balanced: sizes differ by at most one.
        if ranges:
            sizes = [hi - lo for lo, hi in ranges]
            assert max(sizes) - min(sizes) <= 1
            assert len(ranges) == min(parts, total)

    def test_degenerate_shapes(self):
        assert tile_ranges(0, 5) == []
        assert tile_ranges(1, 8) == [(0, 1)]
        assert tile_ranges(3, 8) == [(0, 1), (1, 2), (2, 3)]
        with pytest.raises(ValueError):
            tile_ranges(-1, 2)
        with pytest.raises(ValueError):
            tile_ranges(5, 0)
        with pytest.raises(ValueError):
            shard_ranges(5, 0)


# --------------------------------------------------------------------- #
# Threaded tiles == serial tiles, bit for bit
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def threaded2():
    backend = get_backend("threaded:2")
    yield backend
    # Shared registry instance: leave it cached, just drop its pool.
    backend.close()


class TestThreadedKernelEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_boolean_packed_batch(self, threaded2, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(2, 8))
        m, k, n = (int(rng.integers(1, 40)) for _ in range(3))
        x = (rng.random((batch, m, k)) < 0.25).astype(np.int64)
        y = (rng.random((batch, k, n)) < 0.25).astype(np.int64)
        serial = BOOLEAN.packed_matmul_batch(x, y)
        threaded = BOOLEAN.packed_matmul_batch(x, y, backend=threaded2)
        assert np.array_equal(serial, threaded)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_selection_witness_batch(self, threaded2, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(2, 8))
        m, k, n = (int(rng.integers(1, 12)) for _ in range(3))
        for semiring in (MIN_PLUS, MAX_MIN):
            x = rng.integers(-50, 50, (batch, m, k), dtype=np.int64)
            y = rng.integers(-50, 50, (batch, k, n), dtype=np.int64)
            if semiring is MIN_PLUS:
                x[rng.random(x.shape) < 0.3] = INF
                y[rng.random(y.shape) < 0.3] = INF
            sp, sw = semiring.matmul_batch_with_witness(x, y)
            tp, tw = semiring.matmul_batch_with_witness(x, y, backend=threaded2)
            assert np.array_equal(sp, tp), semiring.name
            assert np.array_equal(sw, tw), semiring.name

    def test_single_big_block_column_split(self, threaded2):
        """batch == 1 forces the column split path (threads over output
        columns); values and witnesses must still match serial exactly."""
        rng = np.random.default_rng(3)
        x = rng.integers(0, 100, (1, 64, 64), dtype=np.int64)
        y = rng.integers(0, 100, (1, 64, 64), dtype=np.int64)
        sp, sw = MIN_PLUS.matmul_batch_with_witness(x, y)
        tp, tw = MIN_PLUS.matmul_batch_with_witness(x, y, backend=threaded2)
        assert np.array_equal(sp, tp) and np.array_equal(sw, tw)

    def test_serial_executor_with_thread_backend(self, threaded2):
        rng = np.random.default_rng(5)
        x = (rng.random((6, 16, 16)) < 0.3).astype(np.int64)
        y = (rng.random((6, 16, 16)) < 0.3).astype(np.int64)
        ref = SERIAL_EXECUTOR.semiring_products(BOOLEAN, x, y)
        got = SerialExecutor(threaded2).semiring_products(BOOLEAN, x, y)
        assert np.array_equal(ref, got)

    def test_thread_pools_survive_fork(self, threaded2):
        """Regression: a forked shard worker inherits the parent's cached
        thread backends; their pools have no threads in the child and must
        be rebuilt, not blocked on."""
        rng = np.random.default_rng(9)
        # Exercise the parent's pool so there is live pool state to inherit.
        xw = pack_bool_rows((rng.random((4, 8, 16)) < 0.4).astype(np.int64))
        yw = pack_bool_rows((rng.random((4, 16, 16)) < 0.4).astype(np.int64))
        BOOLEAN.packed_words_matmul_batch(xw, yw, 16, backend=threaded2)
        with ShardedExecutor(2, backend="threaded:2") as sharded:
            lefts = pack_bool_rows((rng.random((4, 8, 16)) < 0.4).astype(np.int64))
            rights = pack_bool_rows((rng.random((4, 16, 16)) < 0.4).astype(np.int64))
            got = sharded.boolean_packed_products(lefts, rights, 16)
            ref = SERIAL_EXECUTOR.boolean_packed_products(lefts, rights, 16)
            assert np.array_equal(got, ref)


# --------------------------------------------------------------------- #
# Pre-packed Boolean kernel and the packed §2.1 pipeline
# --------------------------------------------------------------------- #


class TestPackedWordsKernel:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_pack_roundtrip(self, seed):
        rng = np.random.default_rng(seed)
        shape = tuple(int(rng.integers(1, 20)) for _ in range(2))
        bits = int(rng.integers(0, 200))
        x = (rng.random(shape + (bits,)) < 0.4).astype(np.int64)
        words = pack_bool_rows(x)
        assert words.shape == shape + (packed_words(bits),)
        assert np.array_equal(unpack_bool_rows(words, bits), x)

    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_packed_in_packed_out_matches_cube(self, seed):
        rng = np.random.default_rng(seed)
        batch = int(rng.integers(1, 5))
        m, k, n = (int(rng.integers(1, 50)) for _ in range(3))
        x = (rng.random((batch, m, k)) < 0.3).astype(np.int64)
        y = (rng.random((batch, k, n)) < 0.3).astype(np.int64)
        packed = BOOLEAN.packed_words_matmul_batch(
            pack_bool_rows(x), pack_bool_rows(y), k
        )
        want = np.stack([BOOLEAN.cube_matmul(x[b], y[b]) for b in range(batch)])
        # The packed result *is* the packed truth -- products compose
        # without unpacking.
        assert np.array_equal(packed, pack_bool_rows(want))
        assert np.array_equal(unpack_bool_rows(packed, n), want)

    def test_composes_across_repeated_squarings(self):
        rng = np.random.default_rng(17)
        a = (rng.random((1, 24, 24)) < 0.1).astype(np.int64)
        packed = pack_bool_rows(a)
        dense = a
        for _ in range(3):
            packed = BOOLEAN.packed_words_matmul_batch(packed, packed, 24)
            dense = np.stack([BOOLEAN.cube_matmul(dense[0], dense[0])])
            assert np.array_equal(packed, pack_bool_rows(dense))


class TestPackedPipeline:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_unpacked_pipeline_exactly(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.choice([8, 27, 64]))
        density = float(rng.choice([0.02, 0.2, 0.8]))
        s = (rng.random((n, n)) < density).astype(np.int64)
        t = (rng.random((n, n)) < density).astype(np.int64)
        ref_clique = CongestedClique(n)
        ref = semiring_matmul(ref_clique, s, t, BOOLEAN)
        packed_clique = CongestedClique(n)
        pp = boolean_matmul_packed(
            packed_clique, pack_bool_matrix(s, n), pack_bool_matrix(t, n)
        )
        assert np.array_equal(unpack_bool_matrix(pp, n), ref)
        assert np.array_equal(pp, pack_bool_matrix(ref, n))
        assert ref_clique.rounds == packed_clique.rounds
        assert _phases(ref_clique) == _phases(packed_clique)

    def test_matrix_pack_roundtrip_and_shapes(self):
        rng = np.random.default_rng(2)
        n = 27
        m = (rng.random((n, n)) < 0.3).astype(np.int64)
        assert np.array_equal(unpack_bool_matrix(pack_bool_matrix(m, n), n), m)
        with pytest.raises(ValueError):
            pack_bool_matrix(m[:-1], n)
        with pytest.raises(ValueError):
            unpack_bool_matrix(np.zeros((n, 3, 99), dtype=np.int64), n)

    def test_rejects_misshapen_operands(self):
        clique = CongestedClique(8)
        good = pack_bool_matrix(np.eye(8, dtype=np.int64), 8)
        with pytest.raises(ValueError):
            boolean_matmul_packed(clique, good[:, :1], good)


# --------------------------------------------------------------------- #
# Persistent packed closures through the session
# --------------------------------------------------------------------- #


def _closure_pair(n, matrix, *, absorb="accum", steps=None, **kwargs):
    with open_session(n, "semiring", BOOLEAN, **kwargs) as packed:
        pc = packed.closure(matrix, absorb=absorb, steps=steps)
        packed_rounds = packed.rounds
        packed_phases = _phases(packed.clique)
    with open_session(n, "semiring", BOOLEAN, packed_closure=False) as plain:
        uc = plain.closure(matrix, absorb=absorb, steps=steps)
        plain_rounds = plain.rounds
        plain_phases = _phases(plain.clique)
    return pc, uc, (packed_rounds, packed_phases), (plain_rounds, plain_phases)


class TestPackedClosure:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matches_unpacked_closure_and_reference(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.choice([8, 27]))
        density = float(rng.choice([0.02, 0.1, 0.5]))
        a = (rng.random((n, n)) < density).astype(np.int64)
        for absorb in ("accum", "matrix"):
            pc, uc, (pr, pp), (ur, up) = _closure_pair(n, a, absorb=absorb)
            assert np.array_equal(pc, uc), absorb
            assert pr == ur and pp == up, absorb

    def test_large_size_straddles_dispatch_thresholds(self):
        """n=64 closures put q^2 = 256-bit pieces through the packed kernel
        (above the byte-chunk boundary) -- values and meters still match."""
        rng = np.random.default_rng(23)
        a = (rng.random((64, 64)) < 0.05).astype(np.int64)
        pc, uc, (pr, pp), (ur, up) = _closure_pair(64, a)
        assert np.array_equal(pc, uc)
        assert pr == ur and pp == up

    def test_closure_reaches_transitive_closure(self):
        rng = np.random.default_rng(4)
        n = 27
        a = (rng.random((n, n)) < 0.08).astype(np.int64)
        with open_session(n, "semiring", BOOLEAN) as session:
            closed = session.closure(a)
        reach = a.astype(bool)
        for _ in range(n):
            reach = reach | (reach @ reach)
        assert np.array_equal(closed, reach.astype(np.int64))

    def test_nonbinary_seed_thresholded_like_unpacked(self):
        rng = np.random.default_rng(6)
        n = 8
        a = rng.integers(0, 5, (n, n), dtype=np.int64)
        pc, uc, (pr, pp), (ur, up) = _closure_pair(n, a, absorb="matrix")
        assert np.array_equal(pc, uc)
        assert pr == ur and pp == up

    def test_zero_steps_returns_seed_unchanged(self):
        a = np.zeros((8, 8), dtype=np.int64)
        a[0, 1] = 5
        with open_session(8, "semiring", BOOLEAN) as session:
            out = session.closure(a, steps=0)
        assert np.array_equal(out, a)

    def test_on_step_hook_disables_packed_path(self):
        """The packed loop cannot surface intermediate accumulators, so a
        hook must fall back to the unpacked loop -- and still see 0/1
        accumulators each step."""
        rng = np.random.default_rng(8)
        n = 8
        a = (rng.random((n, n)) < 0.3).astype(np.int64)
        seen = []
        with open_session(n, "semiring", BOOLEAN) as session:
            hooked = session.closure(
                a, on_step=lambda step, accum: seen.append(step) or None
            )
        with open_session(n, "semiring", BOOLEAN) as session:
            plain = session.closure(a)
        assert seen == list(range(len(seen))) and len(seen) >= 1
        assert np.array_equal(hooked, plain)

    @pytest.mark.parametrize("shards,threads", [(1, 2), (2, 1), (2, 2)])
    def test_shards_threads_combinations(self, shards, threads):
        rng = np.random.default_rng(shards * 10 + threads)
        n = 8
        a = (rng.random((n, n)) < 0.3).astype(np.int64)
        with open_session(
            n, "semiring", BOOLEAN, shards=shards, threads=threads
        ) as session:
            assert session.executor.threads == threads
            got = session.closure(a)
            got_rounds = session.rounds
            got_phases = _phases(session.clique)
        with open_session(n, "semiring", BOOLEAN) as session:
            ref = session.closure(a)
            assert np.array_equal(got, ref)
            assert got_rounds == session.rounds
            assert got_phases == _phases(session.clique)

    def test_robust_collectives_on_packed_closure(self):
        """--faults layered on top: the packed closure through replication-
        coded collectives equals the fault-free oracle, packed and
        unpacked alike."""
        from repro.faults import FaultPlan

        rng = np.random.default_rng(31)
        n = 8
        a = (rng.random((n, n)) < 0.3).astype(np.int64)
        plan = FaultPlan(t=1, seed=5, kind="flip")
        robust = make_clique(n, "semiring", fault_plan=plan, fault_tolerance=1)
        with EngineSession(robust, "semiring", BOOLEAN) as session:
            got = session.closure(a)
            assert robust.faults_injected > 0
        with open_session(n, "semiring", BOOLEAN) as session:
            ref = session.closure(a)
        with open_session(n, "semiring", BOOLEAN, packed_closure=False) as session:
            unpacked_ref = session.closure(a)
        assert np.array_equal(got, ref)
        assert np.array_equal(got, unpacked_ref)


# --------------------------------------------------------------------- #
# Deterministic lifecycle
# --------------------------------------------------------------------- #


class TestSessionLifecycle:
    def test_context_manager_closes_executor_and_arena(self):
        with open_session(8, "semiring", BOOLEAN, shards=2) as session:
            sharded = session.executor
            assert isinstance(sharded, ShardedExecutor)
            a = (np.random.default_rng(0).random((8, 8)) < 0.4).astype(np.int64)
            session.closure(a)
            assert len(session.arena) > 0
            assert sharded._pool is not None
        assert sharded._pool is None
        assert len(session.arena) == 0 and session.arena.nbytes() == 0

    def test_close_is_idempotent_and_meter_survives(self):
        session = open_session(8, "semiring", BOOLEAN)
        a = np.eye(8, dtype=np.int64)
        session.closure(a, steps=1)
        rounds = session.rounds
        session.close()
        session.close()
        assert session.rounds == rounds  # meter still readable

    def test_arena_release_allows_reuse(self):
        from repro.clique.arena import ExchangeArena

        arena = ExchangeArena()
        buf = arena.buffer("x", (4, 4))
        buf[:] = 3
        arena.release()
        assert len(arena) == 0
        fresh = arena.buffer("x", (4, 4))
        assert not fresh.any()  # re-zeroed after release

    def test_make_executor_threads(self):
        assert make_executor(1, 1) is SERIAL_EXECUTOR
        threaded = make_executor(1, 2)
        assert isinstance(threaded, SerialExecutor)
        assert threaded.threads == 2
        sharded = make_executor(2, 2)
        try:
            assert isinstance(sharded, ShardedExecutor)
            assert sharded.threads == 2 and sharded.shards == 2
        finally:
            sharded.close()
        with pytest.raises(ValueError):
            make_executor(1, 0)

    def test_open_session_rejects_threads_with_explicit_clique(self):
        clique = CongestedClique(8)
        with pytest.raises(ValueError, match="threads"):
            open_session(8, "semiring", BOOLEAN, clique=clique, threads=2)
