"""(2k-1)-spanners on the congested clique (Baswana--Sen via Parter--Yogev).

Parter--Yogev (arXiv:1805.05404) observe that the congested clique runs
graph-sparsification routines whose per-round work is *dense linear
algebra*: one cluster-growing round of the classic Baswana--Sen
``(2k-1)``-spanner reduces to "every vertex learns its cheapest edge into
every current cluster", which is exactly a min-plus product of the live
weight matrix with a cluster-membership matrix.  This module implements
that formulation on the repo's session API:

* each of the ``k`` cluster-growing levels runs **one min-plus witness
  product** on a bound :class:`~repro.engine.EngineSession` -- ``D[v, c]``
  is the cheapest surviving edge from ``v`` into cluster ``c`` and the
  witness names the neighbour attaining it (the engines' §3.3 arg-min);
* re-clustering decisions are broadcast (one word per node, one round) and
  edge retirement is symmetrised by a **one-round dense transpose
  exchange** of the per-row keep masks, so both endpoints of a retired
  edge drop it -- no per-payload tuple outboxes anywhere;
* every exchange runs with the engines' layout-derived load bounds and the
  usual round/meter accounting.

The returned subgraph is a spanner with multiplicative stretch ``2k - 1``
and expected size ``O(k n^{1 + 1/k})``.  Sampling uses the standard
shared-randomness convention (the seed is a public parameter), resolved
through :func:`repro.runtime.resolve_rng`.

A centralised oracle (:func:`baswana_sen_reference`) executes the same
decision code on locally computed products; the equivalence suite pins the
distributed run edge-for-edge against it.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import MIN_PLUS
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, make_clique, pad_matrix, resolve_rng


def _membership(center: np.ndarray, size: int) -> np.ndarray:
    """The min-plus cluster-membership encode: ``M[u, c] = 0`` iff ``u in c``.

    Every row is node-local (``u`` knows its own centre); the full matrix
    exists only as the simulator's operand convention.
    """
    m = np.full((size, size), INF, dtype=np.int64)
    clustered = np.nonzero(center >= 0)[0]
    m[clustered, center[clustered]] = 0
    return m


def _level_decisions(
    dist: np.ndarray,
    wit: np.ndarray,
    center: np.ndarray,
    sampled: np.ndarray,
    n: int,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """One Baswana--Sen level, as pure row-local decisions.

    Node ``v`` reads only row ``v`` of ``dist``/``wit`` (its cluster
    distances and arg-min neighbours), the globally known ``center`` vector
    and the shared sampling coins.  Returns the new centre vector, the
    per-row edge keep mask (``keep[v, u] = 0`` retires edge ``(v, u)``
    from ``v``'s side) and the per-row added spanner edges.
    """
    size = dist.shape[0]
    new_center = center.copy()
    keep = np.ones((size, size), dtype=np.int64)
    added = np.zeros((size, size), dtype=np.int64)
    for v in range(n):
        c_own = center[v]
        if c_own < 0 or sampled[c_own]:
            # Unclustered vertices are done; sampled clusters persist as-is.
            continue
        row = dist[v]
        adjacent = np.nonzero(row < INF)[0]
        if adjacent.size == 0:
            new_center[v] = -1
            continue
        sampled_adjacent = adjacent[sampled[adjacent]]
        if sampled_adjacent.size == 0:
            # No sampled neighbour: one spoke per adjacent cluster, then v
            # retires all its edges and leaves the clustering.
            added[v, wit[v, adjacent]] = 1
            keep[v, :] = 0
            new_center[v] = -1
        else:
            # Join the nearest sampled cluster (ties: smallest centre id --
            # argmin picks the first of the ascending candidate ids).
            best = sampled_adjacent[int(np.argmin(row[sampled_adjacent]))]
            d_star = row[best]
            added[v, wit[v, best]] = 1
            new_center[v] = best
            # One spoke to every strictly closer cluster, then retire the
            # edges into those clusters and into the joined one.  Ties at
            # d_star (other than `best`) keep their edges and are handled
            # at a later level -- retiring them without a spoke would break
            # the stretch argument.
            closer = adjacent[row[adjacent] < d_star]
            added[v, wit[v, closer]] = 1
            retired_clusters = np.concatenate([closer, [best]])
            keep[v, np.isin(center, retired_clusters)] = 0
    return new_center, keep, added


def _final_decisions(
    dist: np.ndarray, wit: np.ndarray, center: np.ndarray, n: int
) -> np.ndarray:
    """The closing phase: one spoke per adjacent surviving cluster."""
    size = dist.shape[0]
    added = np.zeros((size, size), dtype=np.int64)
    for v in range(n):
        adjacent = np.nonzero(dist[v] < INF)[0]
        adjacent = adjacent[adjacent != center[v]]
        added[v, wit[v, adjacent]] = 1
    return added


def _live_weights(graph: Graph, size: int) -> np.ndarray:
    """The §3.3 weight matrix with an ``INF`` diagonal (edges only)."""
    live = pad_matrix(graph.weight_matrix(), size, fill=INF)
    np.fill_diagonal(live, INF)
    return live


def build_spanner(
    graph: Graph,
    k: int,
    *,
    method: str = "semiring",
    clique: CongestedClique | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """A ``(2k-1)``-spanner via ``k`` session-product cluster-growing levels.

    Args:
        graph: undirected input (weighted or unit weights).
        k: stretch parameter; the result has multiplicative stretch
            ``2k - 1`` and expected ``O(k n^{1+1/k})`` edges.
        method: a selection-semiring engine (``"semiring"`` or ``"naive"``);
            the bilinear engine cannot run min-plus (Theorem 1).
        rng / seed: shared sampling randomness, resolved by
            :func:`repro.runtime.resolve_rng` (deterministic by default).

    Returns:
        ``value``: the symmetric ``(n, n)`` 0/1 spanner adjacency;
        ``extras``: stretch bound, sampling probability, per-level edge
        counts and the level count.
    """
    if graph.directed:
        raise ValueError("spanners are defined for undirected graphs")
    if k < 1:
        raise ValueError(f"stretch parameter k must be >= 1, got {k}")
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    session = EngineSession(clique, method, MIN_PLUS)
    rng = resolve_rng(rng, seed)
    size = clique.n

    live = _live_weights(graph, size)
    center = np.concatenate(
        [np.arange(n, dtype=np.int64), np.full(size - n, -1, dtype=np.int64)]
    )
    spanner = np.zeros((size, size), dtype=np.int64)
    p = float(n) ** (-1.0 / k) if k > 1 else 1.0
    per_level: list[int] = []

    for level in range(1, k):
        # Shared coins decide which of the previous level's clusters
        # survive; only ids that are currently centres matter, but drawing
        # one coin per node keeps the stream independent of the cluster
        # structure (and identical to the reference oracle's).
        sampled = rng.random(n) < p
        dist, wit = session.multiply(
            live,
            _membership(center, size),
            with_witnesses=True,
            phase=f"spanner/level{level}/cluster-dist",
        )
        center, keep, added = _level_decisions(dist, wit, center, sampled, n)
        spanner |= added
        per_level.append(int(added.sum()))
        # Re-clustering verdicts are row-local; one word per node announces
        # them (one round).
        clique.broadcast(
            [int(c) for c in center],
            words=1,
            phase=f"spanner/level{level}/recluster",
        )
        # Symmetric retirement: an edge survives only if *both* endpoints
        # keep it.  One dense one-round exchange ships the keep columns.
        keep_t = clique.transpose_array(
            keep, words_per_entry=1, phase=f"spanner/level{level}/retire"
        )
        live = np.where((keep & keep_t) > 0, live, INF)

    # Closing phase: every vertex connects to each adjacent surviving
    # cluster of the final clustering.
    dist, wit = session.multiply(
        live,
        _membership(center, size),
        with_witnesses=True,
        phase=f"spanner/level{k}/cluster-dist",
    )
    added = _final_decisions(dist, wit, center, n)
    spanner |= added
    per_level.append(int(added.sum()))

    # The spanner was accumulated as row-marks (v marked (v, u)); one more
    # dense one-round exchange hands every mark to the other endpoint.
    spanner |= clique.transpose_array(
        spanner, words_per_entry=1, phase="spanner/symmetrise"
    )
    value = spanner[:n, :n]
    return RunResult(
        value=value,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={
            "k": k,
            "stretch_bound": 2 * k - 1,
            "sampling_p": p,
            "levels": k,
            "spanner_edges": int(value.sum()) // 2,
            "edges_marked_per_level": per_level,
        },
    )


def baswana_sen_reference(
    graph: Graph,
    k: int,
    *,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
) -> np.ndarray:
    """Centralised oracle: identical decisions, locally computed products.

    Consumes the shared randomness exactly as :func:`build_spanner` does
    (one ``rng.random(n)`` draw per growing level), so for equal seeds the
    distributed run must match it edge-for-edge.
    """
    if graph.directed:
        raise ValueError("spanners are defined for undirected graphs")
    if k < 1:
        raise ValueError(f"stretch parameter k must be >= 1, got {k}")
    n = graph.n
    rng = resolve_rng(rng, seed)
    live = _live_weights(graph, n)
    center = np.arange(n, dtype=np.int64)
    spanner = np.zeros((n, n), dtype=np.int64)
    p = float(n) ** (-1.0 / k) if k > 1 else 1.0
    for _ in range(1, k):
        sampled = rng.random(n) < p
        dist, wit = MIN_PLUS.matmul_with_witness(live, _membership(center, n))
        center, keep, added = _level_decisions(dist, wit, center, sampled, n)
        spanner |= added
        live = np.where((keep & keep.T) > 0, live, INF)
    dist, wit = MIN_PLUS.matmul_with_witness(live, _membership(center, n))
    spanner |= _final_decisions(dist, wit, center, n)
    return spanner | spanner.T


def spanner_stretch(graph: Graph, spanner_adjacency: np.ndarray) -> float:
    """The worst per-edge multiplicative stretch of a spanner (oracle).

    ``max`` over edges ``(u, v)`` of ``dist_S(u, v) / w(u, v)``; a valid
    ``(2k-1)``-spanner stays at or below ``2k - 1``.  Uses the repo's
    centralised APSP oracle on the spanner subgraph.
    """
    from repro.graphs.reference import apsp_reference

    n = graph.n
    spanner_adjacency = (np.asarray(spanner_adjacency) > 0).astype(np.int64)
    weights = None
    if graph.weights is not None:
        weights = np.where(spanner_adjacency > 0, graph.weights, 0)
    sub = Graph(
        n=n, adjacency=spanner_adjacency, directed=False, weights=weights
    )
    dist = apsp_reference(sub)
    w = graph.weight_matrix()
    us, vs = np.nonzero(graph.adjacency)
    if us.size == 0:
        return 1.0
    return float(np.max(dist[us, vs] / w[us, vs]))


__all__ = ["build_spanner", "baswana_sen_reference", "spanner_stretch"]
