"""Fault injection + encoded-exchange robustness suite (PR 6).

Pins the three invariants of :mod:`repro.faults`:

1. **Pure interception**: with no plan installed (or ``t = 0``) the
   :class:`~repro.faults.FaultyClique` wrapper is bit-identical to the base
   model -- values, rounds, and per-phase meters.
2. **Silent corruption exists without the code**: an unprotected faulty
   clique really does deliver wrong words (the failure mode the robust
   layer closes), and a corrupted ``route_array_take`` still never writes
   outside its planned caller-buffer slice (arena no-escape).
3. **No silent wrong answers, ever**: under any in-budget plan a robust
   run equals the fault-free oracle edge-for-edge; beyond budget it equals
   the oracle or raises :class:`~repro.errors.FaultToleranceExceeded` --
   a seed sweep across all three fault kinds demonstrates zero silent
   corruptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique.model import CongestedClique
from repro.clique.scheduling import disjoint_relays
from repro.engine.session import EngineSession, make_clique
from repro.errors import CliqueModelError, FaultToleranceExceeded
from repro.faults import (
    FAULT_SCHEMES,
    CodedClique,
    FaultKind,
    FaultPlan,
    FaultyClique,
    RobustClique,
    corrupt_pieces,
    decode_stripes,
    encode_stripes,
    flip_masks,
    majority_decode,
    stripe_plan,
)
from repro.graphs import apsp_reference, random_weighted_digraph
from repro.runtime import pad_matrix

ALL_KINDS = ["flip", "drop", "crash"]
ALL_KINDS_WITH_BYZANTINE = ALL_KINDS + ["byzantine"]
ALL_SCHEMES = ["replicate", "coded"]


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(t=-1)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            FaultPlan(t=1, kind="gamma-ray")

    def test_rejects_bad_crash_window(self):
        with pytest.raises(ValueError, match="crash window"):
            FaultPlan(t=1, kind="crash", crash_window=0)

    def test_string_kind_coerced(self):
        assert FaultPlan(t=1, kind="drop").kind is FaultKind.DROP

    def test_corrupt_nodes_deterministic(self):
        plan = FaultPlan(t=2, seed=5)
        a = plan.corrupt_nodes(16, exchange_id=3)
        b = FaultPlan(t=2, seed=5).corrupt_nodes(16, exchange_id=3)
        assert np.array_equal(a, b)

    def test_corrupt_nodes_redrawn_per_exchange(self):
        plan = FaultPlan(t=3, seed=0)
        sets = [tuple(plan.corrupt_nodes(32, e)) for e in range(8)]
        assert len(set(sets)) > 1, "a mobile adversary must move"

    def test_budget_respected(self):
        plan = FaultPlan(t=2, seed=1)
        for e in range(10):
            nodes = plan.corrupt_nodes(16, e)
            assert nodes.size <= 2
            assert np.all((0 <= nodes) & (nodes < 16))
            assert np.unique(nodes).size == nodes.size

    def test_zero_budget_is_null_plan(self):
        assert FaultPlan(t=0).corrupt_nodes(16, 0).size == 0

    def test_crash_sets_are_monotone(self):
        plan = FaultPlan(t=3, seed=2, kind="crash", crash_window=6)
        previous: set[int] = set()
        for e in range(12):
            nodes = set(int(v) for v in plan.corrupt_nodes(16, e))
            assert previous <= nodes, "a crashed node never comes back"
            previous = nodes
        assert previous, "every crash time lies inside the window"
        assert len(previous) <= 3


class TestFlipMasks:
    def test_nonzero_and_pairwise_distinct(self):
        masks = flip_masks(np.arange(1024))
        assert np.all(masks != 0)
        assert np.unique(masks).size == masks.size


class TestDisjointRelays:
    def test_copies_are_pairwise_distinct_relays(self):
        relays = disjoint_relays(50, 5, 16, salt=3)
        assert relays.shape == (50, 5)
        assert np.all((0 <= relays) & (relays < 16))
        for row in relays:
            assert np.unique(row).size == 5

    def test_pure_function_of_inputs(self):
        assert np.array_equal(
            disjoint_relays(9, 3, 8, salt=1), disjoint_relays(9, 3, 8, salt=1)
        )

    def test_salt_varies_assignment(self):
        a = disjoint_relays(40, 3, 16, salt=0)
        b = disjoint_relays(40, 3, 16, salt=1)
        assert not np.array_equal(a, b), "retries must re-route"

    def test_validation(self):
        with pytest.raises(ValueError, match="copies"):
            disjoint_relays(4, 5, 4)
        with pytest.raises(ValueError, match="copies"):
            disjoint_relays(4, 0, 4)
        with pytest.raises(ValueError, match="n >= 1"):
            disjoint_relays(4, 1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            disjoint_relays(-1, 1, 4)


# --------------------------------------------------------------------- #
# corrupt_pieces
# --------------------------------------------------------------------- #


class TestCorruptPieces:
    def _blocks(self, p=12, w=5, seed=0):
        return np.random.default_rng(seed).integers(
            -99, 99, (p, w), dtype=np.int64
        )

    def test_null_plan_returns_input_uncopied(self):
        blocks = self._blocks()
        out, hit, dropped = corrupt_pieces(FaultPlan(t=0), 0, 8, blocks)
        assert out is blocks
        assert not hit.any() and not dropped.any()

    def test_flip_hits_match_relay_assignment(self):
        blocks = self._blocks()
        plan = FaultPlan(t=2, seed=3, kind="flip")
        out, hit, dropped = corrupt_pieces(plan, 7, 8, blocks)
        relays = disjoint_relays(12, 1, 8, salt=7).reshape(-1)
        corrupt = set(int(v) for v in plan.corrupt_nodes(8, 7))
        assert np.array_equal(hit, np.array([r in corrupt for r in relays]))
        assert not dropped.any()
        # Flips are XOR masks: corrupted words differ, clean words match.
        assert np.array_equal(out[~hit], blocks[~hit])
        assert np.all(out[hit] != blocks[hit])
        # Input is never mutated in place.
        assert np.array_equal(blocks, self._blocks())

    def test_drop_marks_known_erasures(self):
        blocks = self._blocks()
        out, hit, dropped = corrupt_pieces(
            FaultPlan(t=3, seed=1, kind="drop"), 0, 8, blocks
        )
        assert np.array_equal(hit, dropped)
        assert hit.any()
        assert not out[hit].any(), "dropped pieces are zeroed"

    def test_self_addressed_pieces_skip_transit(self):
        blocks = self._blocks()
        skip = np.ones(blocks.shape[0], dtype=bool)
        out, hit, _ = corrupt_pieces(
            FaultPlan(t=8, seed=0), 0, 8, blocks, skip=skip
        )
        assert out is blocks and not hit.any()

    def test_replication_degree_must_divide(self):
        with pytest.raises(ValueError, match="multiple"):
            corrupt_pieces(FaultPlan(t=1), 0, 8, self._blocks(p=10), copies=3)


# --------------------------------------------------------------------- #
# Majority decode
# --------------------------------------------------------------------- #


class TestMajorityDecode:
    def test_clean_unanimity_decodes(self):
        pieces = np.arange(12, dtype=np.int64).reshape(4, 3)
        copies = np.repeat(pieces[:, None, :], 3, axis=1)
        decoded, ok = majority_decode(copies, np.ones((4, 3), bool), 2)
        assert np.array_equal(decoded, pieces)
        assert ok.all()

    def test_minority_corruption_outvoted(self):
        truth = np.full((2, 4), 7, dtype=np.int64)
        copies = np.repeat(truth[:, None, :], 3, axis=1)
        copies[0, 1] = -1  # one corrupt copy of piece 0
        decoded, ok = majority_decode(copies, np.ones((2, 3), bool), 2)
        assert np.array_equal(decoded, truth)
        assert ok.all()

    def test_erasures_neither_vote_nor_win(self):
        truth = np.full((1, 2), 9, dtype=np.int64)
        copies = np.repeat(truth[:, None, :], 3, axis=1)
        copies[0, 0] = 0  # dropped copy, zeroed in transit
        valid = np.array([[False, True, True]])
        decoded, ok = majority_decode(copies, valid, 2)
        assert np.array_equal(decoded, truth) and ok.all()

    def test_lost_majority_fails_loudly(self):
        # 1 valid copy left < threshold 2: detection, not a wrong answer.
        copies = np.zeros((1, 3, 2), dtype=np.int64)
        valid = np.array([[True, False, False]])
        _, ok = majority_decode(copies, valid, 2)
        assert not ok.any()

    def test_distinct_corruptions_cannot_fake_support(self):
        # Two corrupt copies with *different* wrong values (the flip-mask
        # guarantee): the truth keeps its threshold-1 support, nothing else
        # reaches 2, so the piece fails instead of decoding wrong.
        copies = np.array([[[5], [17], [23]]], dtype=np.int64)
        decoded, ok = majority_decode(copies, np.ones((1, 3), bool), 2)
        assert not ok.any()

    def test_validation(self):
        with pytest.raises(ValueError, match="stack"):
            majority_decode(np.zeros(3), np.ones((1, 3), bool), 1)
        with pytest.raises(ValueError, match="validity"):
            majority_decode(np.zeros((2, 3, 1)), np.ones((3, 2), bool), 1)
        with pytest.raises(ValueError, match="threshold"):
            majority_decode(np.zeros((2, 3, 1)), np.ones((2, 3), bool), 0)


# --------------------------------------------------------------------- #
# FaultyClique: pure interception
# --------------------------------------------------------------------- #


def _run_collectives(clique: CongestedClique, seed: int = 0) -> list[np.ndarray]:
    """One fixed workload touching every intercepted collective."""
    n = clique.n
    rng = np.random.default_rng(seed)
    results: list[np.ndarray] = []

    rows = rng.integers(-9, 9, (n, 4), dtype=np.int64)
    results.append(clique.broadcast_rows(rows, phase="t/bcast"))

    dests = [np.arange(n, dtype=np.int64) for _ in range(n)]
    blocks = [rng.integers(-9, 9, (n, 3), dtype=np.int64) for _ in range(n)]
    inboxes = clique.route_array(dests, blocks, phase="t/route")
    results.extend(inbox.blocks for inbox in inboxes)

    flat = clique.route_array(dests, blocks, phase="t/route-flat", flat=True)
    results.append(flat.blocks)

    take = np.arange(n * n, dtype=np.intp)
    owners = np.tile(np.arange(n, dtype=np.int64), n)
    results.append(
        clique.route_array_take(
            dests, blocks, take=take, owners=owners, phase="t/take"
        ).copy()
    )

    sends = [rng.integers(-9, 9, (n, 2), dtype=np.int64) for _ in range(n)]
    results.extend(
        inbox.blocks
        for inbox in clique.send_array(dests, sends, phase="t/send")
    )

    held = [rng.integers(-9, 9, (2, 3), dtype=np.int64) for _ in range(n)]
    results.append(clique.allgather_rows(held, phase="t/gather"))

    grid = rng.integers(-9, 9, (n, n, 2), dtype=np.int64)
    results.append(clique.scatter_blocks(grid, phase="t/scatter"))
    return results


class TestFaultyCliquePureInterception:
    @pytest.mark.parametrize("plan", [None, FaultPlan(t=0, seed=3)])
    def test_no_plan_bit_identical(self, plan):
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=plan)
        for a, b in zip(_run_collectives(base), _run_collectives(faulty)):
            assert np.array_equal(a, b)
        assert base.meter.phases == faulty.meter.phases
        assert faulty.faults_injected == 0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_charge_path_untouched_by_corruption(self, kind):
        """The adversary corrupts contents, never the bill."""
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=FaultPlan(t=2, seed=1, kind=kind))
        _run_collectives(base)
        _run_collectives(faulty)
        assert base.meter.phases == faulty.meter.phases

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_silent_corruption_demonstrated(self, kind):
        """Without the code, corrupt relays silently change deliveries."""
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=FaultPlan(t=2, seed=1, kind=kind))
        clean = _run_collectives(base)
        tampered = _run_collectives(faulty)
        assert faulty.faults_injected > 0
        assert any(
            not np.array_equal(a, b) for a, b in zip(clean, tampered)
        ), "an unprotected exchange must actually corrupt"

    def test_tuple_primitives_not_intercepted(self):
        """The tuple paths stay exact -- interception covers array collectives."""
        faulty = FaultyClique(5, plan=FaultPlan(t=5, seed=0))
        received = faulty.broadcast(list(range(5)), phase="t/tuple")
        assert received[0] == list(range(5))
        assert faulty.faults_injected == 0


class TestArenaNoEscapeUnderFaults:
    """Satellite: a corrupted ``route_array_take`` must never write outside
    its planned caller-buffer slice (the arena aliasing rule holds under
    interception, not just on the clean path)."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize(
        "clique_factory",
        [
            lambda plan: FaultyClique(6, plan=plan),
            lambda plan: RobustClique(6, plan=plan, tolerance=1),
        ],
        ids=["faulty", "robust"],
    )
    def test_corrupted_take_stays_inside_planned_slice(
        self, kind, clique_factory
    ):
        n = 6
        clique = clique_factory(FaultPlan(t=2, seed=4, kind=kind))
        rng = np.random.default_rng(2)
        dests = [np.arange(n, dtype=np.int64) for _ in range(n)]
        blocks = [rng.integers(-9, 9, (n, 3), dtype=np.int64) for _ in range(n)]
        take = np.arange(n * n, dtype=np.intp)
        pad = 7
        sentinel = np.int64(-123456789)
        backing = np.full((n * n + 2 * pad, 3), sentinel, dtype=np.int64)
        out = backing[pad : pad + n * n]
        clique.route_array_take(dests, blocks, take=take, out=out, phase="t")
        assert np.all(backing[:pad] == sentinel), "wrote before the slice"
        assert np.all(backing[pad + n * n :] == sentinel), "wrote after the slice"

    def test_faulty_take_still_validates_before_charging(self):
        clique = FaultyClique(4, plan=FaultPlan(t=1, seed=0))
        rng = np.random.default_rng(0)
        dests = [np.arange(4, dtype=np.int64) for _ in range(4)]
        blocks = [rng.integers(-9, 9, (4, 2), dtype=np.int64) for _ in range(4)]
        with pytest.raises(CliqueModelError, match="out of range"):
            clique.route_array_take(
                dests, blocks, take=np.array([99], dtype=np.intp)
            )
        assert clique.rounds == 0, "rejected delivery must not charge"


# --------------------------------------------------------------------- #
# RobustClique: encoded exchanges
# --------------------------------------------------------------------- #


class TestRobustCliqueConstruction:
    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError, match="tolerance"):
            RobustClique(8, tolerance=0)

    def test_replication_needs_enough_relays(self):
        with pytest.raises(CliqueModelError, match="pairwise-distinct relays"):
            RobustClique(4, tolerance=2)  # 2*2+1 = 5 > 4 nodes

    def test_retry_budget_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retry budget"):
            RobustClique(8, tolerance=1, max_retries=-1)

    def test_make_clique_wiring(self):
        plain = make_clique(8, "naive")
        assert type(plain) is CongestedClique
        faulty = make_clique(8, "naive", fault_plan=FaultPlan(t=1))
        assert type(faulty) is FaultyClique
        robust = make_clique(8, "naive", fault_tolerance=2)
        assert isinstance(robust, RobustClique)
        assert robust.copies == 5 and robust.plan is None


class TestRobustCollectivesInBudget:
    """Every encoded collective decodes the exact fault-free contents
    under an in-budget adversary of every kind."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_collectives_decode_exactly(self, kind, seed):
        base = CongestedClique(6)
        robust = RobustClique(
            6, plan=FaultPlan(t=1, seed=seed, kind=kind), tolerance=1
        )
        for a, b in zip(_run_collectives(base), _run_collectives(robust)):
            assert np.array_equal(a, b)

    def test_abstract_meter_equals_fault_free_bill(self):
        """Meter separation: the abstract meter is phase-for-phase the
        fault-free oracle's meter; the actual meter bills the redundancy."""
        base = CongestedClique(6)
        robust = RobustClique(6, plan=FaultPlan(t=1, seed=0), tolerance=1)
        _run_collectives(base)
        _run_collectives(robust)
        assert robust.abstract_meter.phases == base.meter.phases
        assert robust.meter.rounds > robust.abstract_meter.rounds
        assert robust.overhead_factor > 1.0

    def test_no_plan_still_bills_redundancy(self):
        base = CongestedClique(6)
        robust = RobustClique(6, tolerance=1)
        for a, b in zip(_run_collectives(base), _run_collectives(robust)):
            assert np.array_equal(a, b)
        assert robust.abstract_meter.phases == base.meter.phases
        assert robust.meter.rounds > base.meter.rounds

    def test_take_validation_precedes_charges_on_both_meters(self):
        robust = RobustClique(6, tolerance=1)
        rng = np.random.default_rng(0)
        dests = [np.arange(6, dtype=np.int64) for _ in range(6)]
        blocks = [rng.integers(-9, 9, (6, 2), dtype=np.int64) for _ in range(6)]
        with pytest.raises(CliqueModelError, match="addressed to another"):
            robust.route_array_take(
                dests,
                blocks,
                take=np.arange(36, dtype=np.intp),
                owners=np.zeros(36, dtype=np.int64),
            )
        assert robust.meter.rounds == 0
        assert robust.abstract_meter.rounds == 0


class TestDetectRetryDegrade:
    def test_beyond_budget_retry_succeeds_through_fresh_relays(self):
        # Deterministic anchor: t=2 > tolerance 1, seed 0 needs exactly one
        # re-ship before every piece regains its majority.
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=2, seed=0, kind="flip"),
            tolerance=1,
            max_retries=3,
        )
        out = clique.broadcast_rows(rows.copy())
        assert np.array_equal(out, rows)
        assert clique.retries == 1
        assert clique.decode_failures == 0

    def test_exhausted_retries_degrade_loudly(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=3, seed=0, kind="flip"),
            tolerance=1,
            max_retries=0,
        )
        with pytest.raises(FaultToleranceExceeded, match="support threshold"):
            clique.broadcast_rows(rows.copy())
        assert clique.decode_failures == 1

    def test_error_names_phase_and_budget(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=3, seed=0, kind="flip"),
            tolerance=1,
            max_retries=0,
        )
        with pytest.raises(FaultToleranceExceeded) as excinfo:
            clique.broadcast_rows(rows.copy(), phase="mst/labels")
        message = str(excinfo.value)
        assert "mst/labels" in message
        assert "t=3" in message and "flip" in message


# --------------------------------------------------------------------- #
# End to end: no silent wrong answers, ever
# --------------------------------------------------------------------- #


def _minplus_closure(clique: CongestedClique, weights: np.ndarray, n: int):
    session = EngineSession(clique, "semiring", MIN_PLUS)
    padded = pad_matrix(weights, clique.n, fill=MIN_PLUS.zero_value)
    np.fill_diagonal(padded, 0)
    return session.closure(padded)[:n, :n]


class TestRobustClosureProperty:
    N = 16

    @pytest.fixture(scope="class")
    def workload(self):
        graph = random_weighted_digraph(self.N, 0.35, 9, seed=0)
        weights = graph.weight_matrix()
        oracle = apsp_reference(graph)
        return weights, oracle

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_in_budget_closure_equals_oracle(self, workload, kind, seed):
        weights, oracle = workload
        clique = make_clique(
            self.N,
            "semiring",
            fault_plan=FaultPlan(t=1, seed=seed, kind=kind),
            fault_tolerance=1,
        )
        assert np.array_equal(_minplus_closure(clique, weights, self.N), oracle)
        assert clique.faults_injected > 0, "the adversary must have fired"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_beyond_budget_never_silently_corrupts(self, workload, kind):
        """The headline seed-sweep: an adversary over budget (t=3 against
        tolerance 1, no retries) either loses anyway -- the answer equals
        the oracle bit-for-bit -- or the run raises.  Wrong answers: zero."""
        weights, oracle = workload
        raised = 0
        for seed in range(6):
            clique = make_clique(
                self.N,
                "semiring",
                fault_plan=FaultPlan(t=3, seed=seed, kind=kind),
                fault_tolerance=1,
            )
            clique.max_retries = 0
            try:
                result = _minplus_closure(clique, weights, self.N)
            except FaultToleranceExceeded:
                raised += 1
            else:
                assert np.array_equal(result, oracle), (
                    f"SILENT CORRUPTION at seed={seed} kind={kind}"
                )
        if kind == "flip":
            assert raised > 0, "the sweep should exercise the degrade arm"

    def test_fault_free_workloads_unchanged(self, workload):
        """Equivalence re-run: the interception seams leave the plain
        model's values, rounds, and meters bit-identical."""
        weights, oracle = workload
        plain = make_clique(self.N, "semiring")
        assert type(plain) is CongestedClique
        result = _minplus_closure(plain, weights, self.N)
        assert np.array_equal(result, oracle)
        twin = make_clique(self.N, "semiring")
        _minplus_closure(twin, weights, self.N)
        assert plain.meter.phases == twin.meter.phases


# --------------------------------------------------------------------- #
# Byzantine adversaries (PR 9)
# --------------------------------------------------------------------- #


class TestByzantinePlan:
    def test_fixed_set_for_every_exchange(self):
        plan = FaultPlan(t=3, seed=4, kind="byzantine")
        first = plan.corrupt_nodes(16, 0)
        assert first.size == 3
        for e in range(1, 12):
            assert np.array_equal(plan.corrupt_nodes(16, e), first)

    def test_deterministic_in_seed(self):
        a = FaultPlan(t=2, seed=7, kind="byzantine").corrupt_nodes(24, 5)
        b = FaultPlan(t=2, seed=7, kind="byzantine").corrupt_nodes(24, 5)
        assert np.array_equal(a, b)

    def test_salt_differs_from_crash_draw(self):
        """A shared seed must not make the Byzantine set equal the crash
        schedule's node set (independent salts)."""
        differs = False
        for seed in range(8):
            byz = set(
                int(v)
                for v in FaultPlan(
                    t=4, seed=seed, kind="byzantine"
                ).corrupt_nodes(32, 0)
            )
            crash_plan = FaultPlan(t=4, seed=seed, kind="crash", crash_window=1)
            crash = set(int(v) for v in crash_plan.corrupt_nodes(32, 10**6))
            if byz != crash:
                differs = True
        assert differs

    def test_budget_respected(self):
        nodes = FaultPlan(t=5, seed=0, kind="byzantine").corrupt_nodes(8, 3)
        assert nodes.size == 5
        assert np.unique(nodes).size == nodes.size
        assert np.all((0 <= nodes) & (nodes < 8))

    def test_rejects_negative_seed(self):
        with pytest.raises(ValueError, match="seed"):
            FaultPlan(t=1, seed=-3)

    def test_byzantine_corrupts_values_not_drops(self):
        """Byzantine relays flip words (arbitrary-value corruption), they
        do not produce known erasures."""
        plan = FaultPlan(t=2, seed=0, kind="byzantine")
        blocks = np.arange(60, dtype=np.int64).reshape(20, 3)
        tampered, hit, dropped = corrupt_pieces(plan, 0, 10, blocks)
        assert hit.any()
        assert not dropped.any()
        assert not np.array_equal(tampered, blocks)


# --------------------------------------------------------------------- #
# GF(2^16) Reed-Solomon striping (PR 9 tentpole, unit level)
# --------------------------------------------------------------------- #


class TestStripePlan:
    def test_relay_budget_always_respected(self):
        for n in (4, 16, 64, 216):
            for t in (1, 2, 3):
                if 2 * t + 1 > n:
                    continue
                for width in (0, 1, 2, n // 2, n, 3 * n):
                    plan = stripe_plan(width, n, t)
                    assert plan.m <= n
                    assert plan.k + 2 * t == plan.m

    def test_rate_beats_replication_for_wide_pieces(self):
        for n, t in [(16, 1), (16, 2), (64, 2), (216, 2)]:
            plan = stripe_plan(n, n, t)
            coded_words = plan.m * plan.stripe_words
            assert coded_words < (2 * t + 1) * n, (
                "striping a width-n piece must ship fewer words than "
                "replicating it"
            )

    def test_degenerate_single_word_matches_replication(self):
        plan = stripe_plan(1, 16, 1)
        assert plan.k == 1 and plan.m == 3 and plan.stripe_words == 1

    def test_refuses_impossible_budget(self):
        with pytest.raises(ValueError, match="data stripes"):
            stripe_plan(8, 4, 2)  # n - 2t = 0
        with pytest.raises(ValueError, match="tolerance"):
            stripe_plan(8, 16, 0)


class TestStripeCoding:
    @pytest.mark.parametrize(
        "n,t,pieces,width",
        [(16, 1, 7, 16), (16, 2, 5, 16), (64, 2, 6, 64), (16, 1, 3, 1),
         (16, 2, 4, 2), (12, 1, 5, 40)],
    )
    def test_clean_round_trip_is_bit_exact(self, n, t, pieces, width):
        rng = np.random.default_rng(0)
        plan = stripe_plan(width, n, t)
        blocks = rng.integers(-(2**62), 2**62, (pieces, width), dtype=np.int64)
        stripes = encode_stripes(blocks, plan)
        decoded, ok = decode_stripes(
            stripes, np.zeros(pieces * plan.m, dtype=bool), plan
        )
        assert ok.all()
        assert np.array_equal(decoded[:, :width], blocks)

    @pytest.mark.parametrize("t", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_corrects_t_corrupted_stripes(self, t, seed):
        n, pieces, width = 16, 9, 16
        rng = np.random.default_rng(seed)
        plan = stripe_plan(width, n, t)
        blocks = rng.integers(-(2**62), 2**62, (pieces, width), dtype=np.int64)
        tam = encode_stripes(blocks, plan).reshape(pieces, plan.m, -1).copy()
        for i in range(pieces):
            for j in rng.choice(plan.m, size=t, replace=False):
                tam[i, j] ^= np.int64(rng.integers(1, 2**62))
        decoded, ok = decode_stripes(
            tam.reshape(pieces * plan.m, -1),
            np.zeros(pieces * plan.m, dtype=bool),
            plan,
        )
        assert ok.all()
        assert np.array_equal(decoded[:, :width], blocks)

    @pytest.mark.parametrize("t", [1, 2])
    def test_recovers_2t_known_erasures(self, t):
        n, pieces, width = 16, 6, 16
        rng = np.random.default_rng(1)
        plan = stripe_plan(width, n, t)
        blocks = rng.integers(-(2**62), 2**62, (pieces, width), dtype=np.int64)
        tam = encode_stripes(blocks, plan).reshape(pieces, plan.m, -1).copy()
        dropped = np.zeros((pieces, plan.m), dtype=bool)
        for i in range(pieces):
            holes = rng.choice(plan.m, size=2 * t, replace=False)
            dropped[i, holes] = True
            tam[i, holes] = 0
        decoded, ok = decode_stripes(
            tam.reshape(pieces * plan.m, -1), dropped.reshape(-1), plan
        )
        assert ok.all()
        assert np.array_equal(decoded[:, :width], blocks)

    @pytest.mark.parametrize("t", [1, 2])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_beyond_budget_never_silently_wrong(self, t, seed):
        """More corruption than the code's distance covers: decoding must
        flag the piece, never certify a wrong word."""
        n, pieces, width = 16, 8, 16
        rng = np.random.default_rng(seed)
        plan = stripe_plan(width, n, t)
        blocks = rng.integers(-(2**62), 2**62, (pieces, width), dtype=np.int64)
        tam = encode_stripes(blocks, plan).reshape(pieces, plan.m, -1).copy()
        errors = min(2 * t + 1, plan.m)
        for i in range(pieces):
            for j in rng.choice(plan.m, size=errors, replace=False):
                tam[i, j] ^= np.int64(rng.integers(1, 2**62))
        decoded, ok = decode_stripes(
            tam.reshape(pieces * plan.m, -1),
            np.zeros(pieces * plan.m, dtype=bool),
            plan,
        )
        wrong = ~(decoded[:, :width] == blocks).all(axis=1)
        assert not (ok & wrong).any(), "certified a corrupted piece"

    def test_too_many_erasures_flagged(self):
        plan = stripe_plan(16, 16, 1)  # 2t = 2 parity stripes
        blocks = np.arange(3 * 16, dtype=np.int64).reshape(3, 16)
        stripes = encode_stripes(blocks, plan).reshape(3, plan.m, -1)
        dropped = np.zeros((3, plan.m), dtype=bool)
        dropped[:, :3] = True  # 3 erasures > 2t
        stripes = stripes.copy()
        stripes[dropped] = 0
        _, ok = decode_stripes(
            stripes.reshape(3 * plan.m, -1), dropped.reshape(-1), plan
        )
        assert not ok.any()

    def test_zero_width_pieces(self):
        plan = stripe_plan(0, 16, 1)
        blocks = np.zeros((4, 0), dtype=np.int64)
        stripes = encode_stripes(blocks, plan)
        decoded, ok = decode_stripes(
            stripes, np.zeros(4 * plan.m, dtype=bool), plan
        )
        assert ok.all() and decoded.shape == (4, 0)


# --------------------------------------------------------------------- #
# CodedClique: Reed-Solomon encoded collectives
# --------------------------------------------------------------------- #


class TestCodedCliqueConstruction:
    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError, match="tolerance"):
            CodedClique(8, tolerance=0)

    def test_striping_needs_enough_relays(self):
        with pytest.raises(CliqueModelError, match="pairwise-distinct relays"):
            CodedClique(4, tolerance=2)  # needs 2*2+1 = 5 > 4 nodes

    def test_refusal_names_the_budget(self):
        for cls in (RobustClique, CodedClique):
            with pytest.raises(CliqueModelError) as excinfo:
                cls(6, tolerance=3)  # needs 7 relays on 6 nodes
            message = str(excinfo.value)
            assert "7" in message and "6" in message, (
                f"{cls.__name__} refusal must name the relay budget"
            )

    def test_scheme_registry_and_make_clique(self):
        assert set(FAULT_SCHEMES) == {"replicate", "coded"}
        coded = make_clique(8, "naive", fault_tolerance=1, fault_scheme="coded")
        assert isinstance(coded, CodedClique)
        assert coded.scheme == "coded"
        rep = make_clique(8, "naive", fault_tolerance=1)
        assert isinstance(rep, RobustClique)
        assert rep.scheme == "replicate"
        with pytest.raises(ValueError, match="fault scheme"):
            make_clique(8, "naive", fault_tolerance=1, fault_scheme="carrier")


class TestEncodedSchemesInBudget:
    """Both schemes decode every collective exactly under every in-budget
    adversary kind, Byzantine included -- the scheme x kind x seed matrix."""

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("kind", ALL_KINDS_WITH_BYZANTINE)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_collectives_decode_exactly(self, scheme, kind, seed):
        base = CongestedClique(8)
        clique = FAULT_SCHEMES[scheme](
            8, plan=FaultPlan(t=1, seed=seed, kind=kind), tolerance=1
        )
        for a, b in zip(_run_collectives(base), _run_collectives(clique)):
            assert np.array_equal(a, b)
        assert clique.abstract_meter.phases == base.meter.phases

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_byzantine_adversary_actually_fires(self, scheme):
        clique = FAULT_SCHEMES[scheme](
            8, plan=FaultPlan(t=2, seed=0, kind="byzantine"), tolerance=2
        )
        base = CongestedClique(8)
        for a, b in zip(_run_collectives(base), _run_collectives(clique)):
            assert np.array_equal(a, b)
        assert clique.faults_injected > 0

    def test_coded_degrade_message_names_certification(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = CodedClique(
            10,
            plan=FaultPlan(t=4, seed=0, kind="flip"),
            tolerance=1,
            max_retries=0,
        )
        with pytest.raises(FaultToleranceExceeded, match="Reed-Solomon"):
            clique.broadcast_rows(rows.copy())
        assert clique.decode_failures == 1


class TestSchemeOverheadComparison:
    """Acceptance: at t = 1 and t = 2 the coded scheme's overhead factor is
    strictly below replication's on the same closure workload."""

    N = 16

    @pytest.mark.parametrize("t", [1, 2])
    def test_coded_strictly_cheaper_than_replication(self, t):
        graph = random_weighted_digraph(self.N, 0.35, 9, seed=0)
        weights = graph.weight_matrix()
        oracle = apsp_reference(graph)
        factors = {}
        for scheme in ALL_SCHEMES:
            clique = make_clique(
                self.N,
                "semiring",
                fault_plan=FaultPlan(t=t, seed=0, kind="flip"),
                fault_tolerance=t,
                fault_scheme=scheme,
            )
            assert np.array_equal(_minplus_closure(clique, weights, self.N), oracle)
            assert clique.abstract_meter.rounds > 0
            factors[scheme] = clique.overhead_factor
        assert factors["coded"] < factors["replicate"], factors
        assert factors["replicate"] >= 2 * t + 1 - 0.5  # sanity anchor


# --------------------------------------------------------------------- #
# FaultPlan edge cases (PR 9 satellites)
# --------------------------------------------------------------------- #


class TestFaultPlanEdgeCases:
    def test_t_zero_plan_is_exact_noop(self):
        """A t=0 plan through make_clique is bit-identical to the plain
        model: values, rounds, and per-phase meters."""
        base = make_clique(8, "naive")
        nulled = make_clique(8, "naive", fault_plan=FaultPlan(t=0, seed=9))
        assert type(base) is CongestedClique
        for a, b in zip(_run_collectives(base), _run_collectives(nulled)):
            assert np.array_equal(a, b)
        assert base.meter.phases == nulled.meter.phases
        assert base.meter.rounds == nulled.meter.rounds
        assert nulled.faults_injected == 0

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_tolerance_beyond_relays_refused_cleanly(self, scheme):
        """t >= available relays: construction refuses with the budget in
        the message, before any exchange is attempted or charged."""
        with pytest.raises(CliqueModelError, match="pairwise-distinct relays"):
            FAULT_SCHEMES[scheme](5, tolerance=4)

    def test_crash_schedule_shared_across_sessions(self):
        """Crash-stop is monotone and a pure function of the plan seed, so
        multiple sessions sharing one plan agree on who crashed -- and each
        decodes the oracle answer independently."""
        plan = FaultPlan(t=2, seed=3, kind="crash", crash_window=4)
        previous: set[int] = set()
        for e in range(10):
            nodes = set(int(v) for v in plan.corrupt_nodes(12, e))
            assert previous <= nodes
            previous = nodes
        assert previous, "the window guarantees every crash bites"

        base = CongestedClique(12)
        oracle = _run_collectives(base)
        for scheme in ALL_SCHEMES:
            for _session_index in range(2):
                clique = FAULT_SCHEMES[scheme](12, plan=plan, tolerance=2)
                for a, b in zip(oracle, _run_collectives(clique)):
                    assert np.array_equal(a, b)
        # The shared plan's schedule was not mutated by either session.
        assert set(int(v) for v in plan.corrupt_nodes(12, 9)) == previous

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    def test_fresh_session_overhead_factor_is_one(self, scheme):
        """Satellite: no exchanges yet -> overhead 1.0, not a zero division."""
        clique = FAULT_SCHEMES[scheme](8, tolerance=1)
        assert clique.abstract_meter.rounds == 0
        assert clique.overhead_factor == 1.0


# --------------------------------------------------------------------- #
# End to end: both schemes, all kinds, no silent wrong answers
# --------------------------------------------------------------------- #


class TestEncodedClosureProperty:
    N = 16

    @pytest.fixture(scope="class")
    def workload(self):
        graph = random_weighted_digraph(self.N, 0.35, 9, seed=0)
        weights = graph.weight_matrix()
        oracle = apsp_reference(graph)
        return weights, oracle

    @pytest.mark.parametrize("scheme", ALL_SCHEMES)
    @pytest.mark.parametrize("kind", ALL_KINDS_WITH_BYZANTINE)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_in_budget_closure_equals_oracle(self, workload, scheme, kind, seed):
        weights, oracle = workload
        clique = make_clique(
            self.N,
            "semiring",
            fault_plan=FaultPlan(t=1, seed=seed, kind=kind),
            fault_tolerance=1,
            fault_scheme=scheme,
        )
        assert np.array_equal(_minplus_closure(clique, weights, self.N), oracle)
        assert clique.faults_injected > 0, "the adversary must have fired"
        assert clique.decode_failures == 0

    @pytest.mark.parametrize("kind", ALL_KINDS_WITH_BYZANTINE)
    def test_coded_beyond_budget_never_silently_corrupts(self, workload, kind):
        """The PR 6 headline sweep, re-run against the coded scheme: an
        over-budget adversary (t=3 against tolerance 1, no retries) either
        loses anyway or the run raises.  Wrong answers: zero."""
        weights, oracle = workload
        raised = 0
        for seed in range(6):
            clique = make_clique(
                self.N,
                "semiring",
                fault_plan=FaultPlan(t=3, seed=seed, kind=kind),
                fault_tolerance=1,
                fault_scheme="coded",
            )
            clique.max_retries = 0
            try:
                result = _minplus_closure(clique, weights, self.N)
            except FaultToleranceExceeded:
                raised += 1
            else:
                assert np.array_equal(result, oracle), (
                    f"SILENT CORRUPTION at seed={seed} kind={kind}"
                )
        if kind in ("flip", "byzantine"):
            assert raised > 0, "the sweep should exercise the degrade arm"


class TestOpenSessionFaultPassthrough:
    def test_session_builds_fault_layer(self):
        from repro.engine.session import open_session

        with open_session(
            8,
            "naive",
            fault_plan=FaultPlan(t=1, seed=0, kind="byzantine"),
            fault_tolerance=1,
            fault_scheme="coded",
        ) as session:
            assert isinstance(session.clique, CodedClique)
            assert session.clique.plan.kind is FaultKind.BYZANTINE

    def test_explicit_clique_refuses_fault_args(self):
        from repro.engine.session import open_session

        clique = CongestedClique(8)
        with pytest.raises(ValueError, match="fault"):
            open_session(8, "naive", clique=clique, fault_tolerance=1)
