"""Network cost models under the congested-clique collectives (PR 10).

The abstract simulator bills synchronous rounds; this package prices the
*same* exchanges on an explicit topology -- full-bisection, ring, or
k-ary fat-tree -- as a strictly observational second meter hanging off
the :class:`~repro.clique.accounting.MeterStack`.  Attaching a cost model
never changes values, rounds, words, or per-phase meters (property-tested
per topology); it only adds a :class:`CompletionReport` of per-phase
makespans, link utilisation, and queueing share.

Typical use::

    from repro.netsim import CostModelSpec

    clique = make_clique(n, "semiring", cost_model=CostModelSpec("ring"))
    ...  # run any workload
    print(clique.transport.report().table())

or via the CLI: ``--topology {full,ring,fat-tree:k}`` with
``--link-gbps`` / ``--link-latency-us`` on matmul / apsp / mst /
build-artifact.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.netsim.topology import (
    FatTree,
    FullBisection,
    LegStats,
    Ring,
    Topology,
    TOPOLOGY_KINDS,
    parse_topology,
)
from repro.netsim.transport import (
    DEFAULT_WORD_BITS,
    CompletionReport,
    PhaseCompletion,
    TransportMeter,
    schedule_makespan,
)


@dataclass(frozen=True)
class CostModelSpec:
    """Declarative cost-model recipe, resolved against a clique's size.

    ``CongestedClique.attach_cost_model`` (and the ``cost_model=``
    keywords on ``make_clique`` / ``EngineSession`` / ``open_session``)
    accept either a ready observer or one of these specs; a spec is built
    into a :class:`TransportMeter` via :meth:`build` once the clique size
    is known.

    Attributes:
        topology: a ``--topology`` spec string -- ``full``, ``ring``, or
            ``fat-tree[:k]``.
        link_gbps: per-link bandwidth (Gbit/s).
        link_latency_us: per-hop propagation delay (microseconds).
    """

    topology: str = "full"
    link_gbps: float = 100.0
    link_latency_us: float = 1.0

    def build(self, n: int, word_bits: int) -> TransportMeter:
        """Resolve the spec into a transport meter for an ``n``-clique."""
        return TransportMeter(
            parse_topology(self.topology, n),
            link_gbps=self.link_gbps,
            link_latency_us=self.link_latency_us,
            word_bits=word_bits,
        )


__all__ = [
    "LegStats",
    "Topology",
    "FullBisection",
    "Ring",
    "FatTree",
    "TOPOLOGY_KINDS",
    "parse_topology",
    "DEFAULT_WORD_BITS",
    "PhaseCompletion",
    "CompletionReport",
    "TransportMeter",
    "schedule_makespan",
    "CostModelSpec",
]
