"""Command-line interface: ``python -m repro <command> ...``.

Gives the reproduction a shell-first surface, so the headline experiments
can be run without writing Python:

* ``table1`` -- the consolidated measured Table 1;
* ``matmul`` -- one distributed product on a chosen engine, with the
  per-phase round bill;
* ``triangles`` / ``four-cycles`` -- subgraph counting/detection on a
  generated workload, against the Dolev baseline;
* ``apsp`` -- a chosen APSP variant on a random weighted digraph;
* ``girth`` -- girth of a generated graph;
* ``spanner`` -- a Baswana-Sen ``(2k-1)``-spanner via session products;
* ``mst`` -- the Jurdzinski-Nowicki O(1)-round MST skeleton;
* ``build-artifact`` / ``query`` / ``update`` / ``serve`` -- the serving
  layer: square a graph to a memory-mapped closure artifact once, then
  answer distance/path queries (point, batched, or over TCP) and apply
  incremental edge updates with zero full rebuilds.

All workloads are seeded and printed with their parameters, so every
invocation is reproducible.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np


def _cmd_table1(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.analysis import format_table1, run_table1

    reports = run_table1(scale="full" if args.full else "quick", seed=args.seed)
    print(format_table1(reports))
    return 0


def _make_clique(parser: argparse.ArgumentParser, args: argparse.Namespace, n: int):
    """Build the (possibly sharded, possibly robust) clique, or die with usage.

    Centralises the ``--engine`` / ``--shards`` / ``--threads`` wiring: the
    clique is sized for the chosen engine and carries the serial or sharded
    local-compute executor (and its kernel tile backend) the engine
    sessions run on.  ``--faults T`` additionally installs a seeded
    adversary corrupting up to ``T`` relay nodes per exchange *and* the
    encoded robust collectives (``--fault-scheme``: replication or
    Reed-Solomon striping) sized to survive it -- the run then either
    matches the fault-free oracle exactly or dies with
    ``FaultToleranceExceeded``, never silently wrong.

    Every clique built here is recorded on ``args`` so :func:`main` can
    close its executor (sharded worker pools, shared-memory segments)
    deterministically -- including on the error exits
    (``FaultToleranceExceeded``, failed verifications).
    """
    from repro.runtime import make_clique

    shards = getattr(args, "shards", 1)
    threads = getattr(args, "threads", 1)
    fault_plan = None
    fault_tolerance = None
    if getattr(args, "faults", 0):
        from repro.faults import FaultPlan

        fault_plan = FaultPlan(
            t=args.faults, seed=args.fault_seed, kind=args.fault_kind
        )
        fault_tolerance = args.fault_tolerance or args.faults
    cost_model = None
    if getattr(args, "topology", None):
        from repro.netsim import CostModelSpec

        cost_model = CostModelSpec(
            topology=args.topology,
            link_gbps=args.link_gbps,
            link_latency_us=args.link_latency_us,
        )
    try:
        clique = make_clique(
            n,
            args.engine,
            shards=shards,
            threads=threads,
            fault_plan=fault_plan,
            fault_tolerance=fault_tolerance,
            fault_scheme=getattr(args, "fault_scheme", "replicate"),
            cost_model=cost_model,
        )
    except ValueError as exc:
        parser.error(str(exc))
    getattr(args, "_cliques", []).append(clique)
    return clique


def _print_fault_summary(args: argparse.Namespace, clique) -> None:
    """One line of adversary + redundancy accounting for ``--faults`` runs."""
    if not getattr(args, "faults", 0):
        return
    print(
        f"faults: kind={args.fault_kind} t={args.faults} "
        f"seed={args.fault_seed} scheme={clique.scheme} "
        f"injected={clique.faults_injected} "
        f"retries={clique.retries} | encoded rounds={clique.meter.rounds} "
        f"vs abstract {clique.abstract_meter.rounds} "
        f"(overhead {clique.overhead_factor:.2f}x, "
        f"{clique.redundancy_note()})"
    )


def _print_completion_report(args: argparse.Namespace, clique) -> None:
    """The modelled transport completion table for ``--topology`` runs."""
    transport = getattr(clique, "transport", None)
    if transport is None or getattr(args, "json", False):
        return
    print(transport.report().table())


def _print_json_summary(args: argparse.Namespace, clique) -> None:
    """``--json``: the machine-readable meter/fault/completion payload."""
    if not getattr(args, "json", False):
        return
    import json

    payload = {"n": clique.n, "meter": clique.meter.to_dict()}
    if getattr(args, "faults", 0):
        payload["faults"] = {
            "scheme": clique.scheme,
            "kind": args.fault_kind,
            "t": args.faults,
            "seed": args.fault_seed,
            "injected": clique.faults_injected,
            "retries": clique.retries,
            "overhead_factor": clique.overhead_factor,
            "abstract_meter": clique.abstract_meter.to_dict(),
        }
    transport = getattr(clique, "transport", None)
    if transport is not None:
        payload["completion"] = transport.report().to_dict()
    print(json.dumps(payload))


def _cmd_matmul(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.runtime import EngineSession, pad_matrix

    rng = np.random.default_rng(args.seed)
    n = args.n
    s = rng.integers(-9, 10, (n, n), dtype=np.int64)
    t = rng.integers(-9, 10, (n, n), dtype=np.int64)
    clique = _make_clique(parser, args, n)
    session = EngineSession(clique, args.engine)
    sp, tp = pad_matrix(s, clique.n), pad_matrix(t, clique.n)
    product = session.multiply(sp, tp, phase="cli/matmul")
    ok = np.array_equal(product[:n, :n], s @ t)
    if not getattr(args, "json", False):
        print(f"engine={args.engine} n={n} clique={clique.n} "
              f"shards={clique.executor.shards} "
              f"rounds={clique.rounds} correct={ok}")
        _print_fault_summary(args, clique)
        print(clique.meter.report())
    _print_completion_report(args, clique)
    _print_json_summary(args, clique)
    return 0 if ok else 1


def _cmd_triangles(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.baselines import dolev_triangle_count
    from repro.graphs import gnp_random_graph, triangle_count_reference
    from repro.subgraphs import count_triangles

    g = gnp_random_graph(args.n, args.p, seed=args.seed)
    clique = _make_clique(parser, args, args.n)
    ours = count_triangles(g, method=args.engine, clique=clique)
    print(f"G(n={args.n}, p={args.p}) seed={args.seed}: "
          f"{ours.value} triangles in {ours.rounds} rounds "
          f"({args.engine} engine, clique {ours.clique_size})")
    if args.baseline:
        prior = dolev_triangle_count(g)
        print(f"Dolev et al. baseline: {prior.value} triangles in "
              f"{prior.rounds} rounds")
    ok = ours.value == triangle_count_reference(g)
    print(f"verified against centralised oracle: {ok}")
    return 0 if ok else 1


def _cmd_four_cycles(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.baselines import dolev_four_cycle_detect
    from repro.graphs import bipartite_random_graph, four_cycle_count_reference
    from repro.subgraphs import detect_four_cycles

    g = bipartite_random_graph(args.n, args.degree / args.n, seed=args.seed)
    ours = detect_four_cycles(g)
    print(f"bipartite(n={args.n}, avg_deg~{args.degree}) seed={args.seed}: "
          f"C4 present={ours.value} in {ours.rounds} rounds "
          f"(Theorem 4, branch={ours.extras['phase']})")
    if args.baseline:
        prior = dolev_four_cycle_detect(g)
        print(f"Dolev et al. baseline: {prior.value} in {prior.rounds} rounds")
    ok = ours.value == (four_cycle_count_reference(g) > 0)
    print(f"verified against centralised oracle: {ok}")
    return 0 if ok else 1


def _cmd_apsp(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.distances import apsp_approx, apsp_exact, apsp_unweighted
    from repro.graphs import (
        apsp_reference,
        gnp_random_graph,
        random_weighted_digraph,
    )

    # Resolve the engine/variant binding before touching any simulator:
    # exact APSP multiplies over min-plus, which the bilinear engine cannot
    # (Theorem 1 restricts it to rings); the approximate variant *is* the
    # bilinear ring embedding, so it accepts no other engine.
    defaults = {"exact": "semiring", "unweighted": "bilinear", "approx": "bilinear"}
    engine = args.engine or defaults[args.variant]
    if args.variant == "exact" and engine == "bilinear":
        parser.error(
            "apsp --variant exact needs a selection-semiring engine "
            "(--engine semiring or naive); the bilinear engine only "
            "multiplies over rings (use --variant approx for Lemma 20)"
        )
    if args.variant == "approx" and engine != "bilinear":
        parser.error(
            "apsp --variant approx runs on the bilinear ring engine only "
            "(drop --engine or pass --engine bilinear)"
        )
    args.engine = engine
    clique = _make_clique(parser, args, args.n)

    if args.variant == "unweighted":
        g = gnp_random_graph(args.n, 0.25, seed=args.seed)
        result = apsp_unweighted(g, method=engine, clique=clique)
    elif args.variant == "approx":
        g = random_weighted_digraph(args.n, 0.35, args.max_weight, seed=args.seed)
        result = apsp_approx(g, delta=args.delta, clique=clique)
    else:
        g = random_weighted_digraph(args.n, 0.35, args.max_weight, seed=args.seed)
        result = apsp_exact(g, method=engine, clique=clique)
    json_mode = getattr(args, "json", False)
    if not json_mode:
        print(f"APSP variant={args.variant} n={args.n}: {result.rounds} rounds "
              f"on a {result.clique_size}-node clique")
        _print_fault_summary(args, clique)
    reference = apsp_reference(g)
    if args.variant == "approx":
        from repro.constants import INF

        finite = reference < INF
        ratio = float(
            np.max(result.value[finite] / np.maximum(reference[finite], 1))
        ) if finite.any() else 1.0
        if not json_mode:
            print(f"measured ratio {ratio:.4f} "
                  f"(bound {result.extras['ratio_bound']:.4f})")
        ok = ratio <= result.extras["ratio_bound"] + 1e-9
    else:
        ok = np.array_equal(result.value, reference)
        if not json_mode:
            print(f"exact match with Floyd-Warshall oracle: {ok}")
    _print_completion_report(args, clique)
    _print_json_summary(args, clique)
    return 0 if ok else 1


def _cmd_girth(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.distances import girth_directed, girth_undirected
    from repro.graphs import (
        cycle_with_trees,
        dense_small_girth_graph,
        girth_reference,
        gnp_random_graph,
    )

    if args.family == "sparse":
        g = cycle_with_trees(args.n, girth=args.girth, seed=args.seed)
    elif args.family == "dense":
        g = dense_small_girth_graph(args.n, seed=args.seed)
    else:
        g = gnp_random_graph(args.n, 0.15, seed=args.seed, directed=True)
    rng = np.random.default_rng(args.seed)
    clique = _make_clique(parser, args, args.n)
    if g.directed:
        result = girth_directed(g, method=args.engine, clique=clique)
        branch = "directed"
    else:
        result = girth_undirected(
            g, method=args.engine, clique=clique,
            trials_per_k=args.trials, rng=rng,
        )
        branch = result.extras["branch"]
    ok = result.value == girth_reference(g)
    print(f"family={args.family} n={args.n}: girth={result.value} "
          f"[{result.rounds} rounds, branch={branch}, verified={ok}]")
    return 0 if ok else 1


def _require_selection_engine(
    parser: argparse.ArgumentParser, args: argparse.Namespace, command: str
) -> None:
    """Die with usage when a min-plus workload is pointed at bilinear."""
    if args.engine == "bilinear":
        parser.error(
            f"{command} runs min-plus session products, which need a "
            "selection-semiring engine (--engine semiring or naive); the "
            "bilinear engine only multiplies over rings (Theorem 1)"
        )


def _cmd_spanner(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.graphs import random_weighted_graph
    from repro.spanning import build_spanner, spanner_stretch

    _require_selection_engine(parser, args, "spanner")
    g = random_weighted_graph(args.n, args.p, args.max_weight, seed=args.seed)
    clique = _make_clique(parser, args, args.n)
    result = build_spanner(
        g, args.k, method=args.engine, clique=clique, seed=args.seed
    )
    stretch = spanner_stretch(g, result.value)
    bound = result.extras["stretch_bound"]
    ok = stretch <= bound + 1e-9
    print(
        f"G(n={args.n}, p={args.p}) seed={args.seed}: "
        f"({2 * args.k - 1})-spanner with {result.extras['spanner_edges']} "
        f"of {g.edge_count} edges in {result.rounds} rounds "
        f"({args.engine} engine, clique {result.clique_size}, "
        f"shards={clique.executor.shards})"
    )
    print(f"measured stretch {stretch:.4f} (bound {bound}) verified={ok}")
    return 0 if ok else 1


def _cmd_mst(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.graphs import random_weighted_graph
    from repro.spanning import minimum_spanning_forest, mst_reference

    _require_selection_engine(parser, args, "mst")
    g = random_weighted_graph(args.n, args.p, args.max_weight, seed=args.seed)
    clique = _make_clique(parser, args, args.n)
    result = minimum_spanning_forest(
        g,
        method=args.engine,
        clique=clique,
        seed=args.seed,
        boruvka_phases=args.phases,
    )
    edges, weight = mst_reference(g)
    ok = result.extras["edges"] == edges
    if not getattr(args, "json", False):
        print(
            f"G(n={args.n}, p={args.p}) seed={args.seed}: MSF weight "
            f"{result.extras['weight']} ({len(result.extras['edges'])} edges) "
            f"in {result.rounds} rounds ({args.engine} engine, clique "
            f"{result.clique_size}, shards={clique.executor.shards}, "
            f"{result.extras['phases']} phases, "
            f"{result.extras['flight_survivors']} F-light survivors)"
        )
        print(
            f"exact match with Kruskal oracle (weight {weight}): {ok}"
        )
        _print_fault_summary(args, clique)
    _print_completion_report(args, clique)
    _print_json_summary(args, clique)
    return 0 if ok else 1


def _cmd_build_artifact(
    args: argparse.Namespace, parser: argparse.ArgumentParser
) -> int:
    from repro.algebra.semirings import MIN_PLUS
    from repro.graphs import random_weighted_digraph, random_weighted_graph
    from repro.runtime import EngineSession
    from repro.serve import ClosureArtifact

    _require_selection_engine(parser, args, "build-artifact")
    generator = random_weighted_digraph if args.directed else random_weighted_graph
    g = generator(args.n, args.p, args.max_weight, seed=args.seed)
    clique = _make_clique(parser, args, args.n)
    session = EngineSession(clique, args.engine, MIN_PLUS)
    # A degraded build (FaultToleranceExceeded) still writes its refusal
    # manifest, then propagates to main()'s exit-2 path.
    artifact = ClosureArtifact.build(session, g, args.out)
    if not getattr(args, "json", False):
        print(
            f"artifact {args.out}: n={artifact.n} clique={clique.n} "
            f"rounds={artifact.rounds} generation={artifact.generation} "
            f"graph={artifact.graph_hash[:12]} ({args.engine} engine, "
            f"shards={clique.executor.shards})"
        )
        _print_fault_summary(args, clique)
    _print_completion_report(args, clique)
    _print_json_summary(args, clique)
    return 0


def _open_artifact(args: argparse.Namespace, *, writable: bool = False):
    """Open the artifact or return an exit code (degraded propagates)."""
    from repro.serve import ArtifactError, ClosureArtifact

    try:
        return ClosureArtifact.open(args.artifact, writable=writable)
    except ArtifactError as exc:
        # Version/hash/layout mismatch: a usage-level refusal, distinct
        # from the degraded-build exit 2 (FaultToleranceExceeded), which
        # propagates to main().
        print(f"cannot open artifact: {exc}", file=sys.stderr)
        return None


def _cmd_query(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.constants import INF
    from repro.serve import QueryEngine

    artifact = _open_artifact(args)
    if artifact is None:
        return 1
    engine = QueryEngine(artifact)
    d = engine.dist(args.u, args.v)
    shown = "inf" if d >= INF else d
    print(
        f"artifact n={artifact.n} generation={artifact.generation}: "
        f"dist({args.u}, {args.v}) = {shown}"
    )
    if args.path:
        path = engine.path(args.u, args.v)
        print(
            "path: " + (" -> ".join(str(x) for x in path) if path else "(unreachable)")
        )
    if args.ecc:
        ecc = engine.ecc(args.u)
        print(f"ecc({args.u}) = {'inf' if ecc >= INF else ecc}")
    return 0


def _cmd_update(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    from repro.algebra.semirings import MIN_PLUS
    from repro.errors import NegativeCycleError
    from repro.runtime import EngineSession
    from repro.serve import apply_edge_updates

    _require_selection_engine(parser, args, "update")
    artifact = _open_artifact(args, writable=True)
    if artifact is None:
        return 1
    clique = _make_clique(parser, args, artifact.n)
    session = EngineSession(clique, args.engine, MIN_PLUS)
    dist, next_hop = artifact.resident_arrays(clique.n)
    session.seed_resident(dist, next_hop=next_hop)
    weights = artifact.padded_weights(clique.n)
    try:
        report = apply_edge_updates(
            session,
            weights,
            args.edge,
            artifact=artifact,
            force_rebuild=args.rebuild,
        )
    except NegativeCycleError as exc:
        print(f"update rejected: {exc}", file=sys.stderr)
        return 1
    print(
        f"update mode={report.mode} edges={report.updates} "
        f"dirty={report.dirty} rounds={report.rounds} "
        f"improved={report.improved if report.improved >= 0 else 'n/a'} "
        f"generation={report.generation}"
        + (f" ({report.rebuild_reason})" if report.rebuild_reason else "")
    )
    _print_fault_summary(args, clique)
    return 0


def _cmd_serve(args: argparse.Namespace, parser: argparse.ArgumentParser) -> int:
    import asyncio

    from repro.serve import BatchingServer, QueryEngine

    artifact = _open_artifact(args)
    if artifact is None:
        return 1
    engine = QueryEngine(artifact)

    async def run() -> None:
        server = BatchingServer(
            engine,
            window=args.window,
            max_requests=args.max_requests or None,
        )
        host, port = await server.start(args.host, args.port)
        print(
            f"serving {args.artifact} (n={engine.n}, "
            f"generation={artifact.generation}) on {host}:{port}",
            flush=True,
        )
        if server.max_requests is None:
            await asyncio.Event().wait()  # forever; Ctrl-C to stop
        else:
            await server.done.wait()
            await server.close()
            stats = server.stats
            print(
                f"served {stats.requests} requests in {stats.batches} "
                f"batches (largest {stats.largest_batch})"
            )

    asyncio.run(run())
    return 0


def _edge_type(value: str) -> tuple[int, int, int]:
    """Argparse type for ``--edge u,v,w`` (``w = inf`` deletes the edge)."""
    from repro.constants import INF

    parts = value.split(",")
    if len(parts) != 3:
        raise argparse.ArgumentTypeError(
            f"--edge wants 'u,v,weight', got {value!r}"
        )
    try:
        u, v = int(parts[0]), int(parts[1])
        w = INF if parts[2].strip().lower() == "inf" else int(parts[2])
    except ValueError:
        raise argparse.ArgumentTypeError(
            f"--edge wants integer endpoints and an integer (or 'inf') "
            f"weight, got {value!r}"
        )
    return u, v, w


def _shards_type(value: str) -> int:
    """Argparse type for ``--shards``: a positive worker count.

    The lower bound is enforced here, at parse time, for every subcommand
    (``--shards 0`` or a negative count can never be valid); the upper
    bound (``shards <= clique size``) needs the problem size, so
    :func:`_make_clique` enforces it as soon as the clique is built --
    still before any simulation runs.
    """
    try:
        shards = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid shard count {value!r}")
    if shards < 1:
        raise argparse.ArgumentTypeError(
            f"--shards must be >= 1 (and <= the clique size), got {shards}"
        )
    return shards


def _threads_type(value: str) -> int:
    """Argparse type for ``--threads``: a positive kernel-tile thread count."""
    try:
        threads = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid thread count {value!r}")
    if threads < 1:
        raise argparse.ArgumentTypeError(
            f"--threads must be >= 1, got {threads}"
        )
    return threads


def _phases_type(value: str) -> int:
    """Argparse type for ``mst --phases``: a non-negative phase count."""
    try:
        phases = int(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid phase count {value!r}")
    if phases < 0:
        raise argparse.ArgumentTypeError(
            f"--phases must be >= 0, got {phases}"
        )
    return phases


def _nonneg_fault_int(flag: str, noun: str):
    """Argparse type factory for the non-negative fault integers.

    Same parse-time treatment as ``--shards``: a value that can never be
    valid (negative budget, tolerance, or seed) dies as a usage error in
    every subcommand, not as a traceback deep inside an exchange.
    """

    def parse(value: str) -> int:
        try:
            parsed = int(value)
        except ValueError:
            raise argparse.ArgumentTypeError(f"invalid {noun} {value!r}")
        if parsed < 0:
            raise argparse.ArgumentTypeError(
                f"{flag} must be >= 0 ({noun}), got {parsed}"
            )
        return parsed

    return parse


_faults_type = _nonneg_fault_int("--faults", "corrupt relays per exchange")
_fault_tolerance_type = _nonneg_fault_int(
    "--fault-tolerance", "tolerated corrupt relays"
)
_fault_seed_type = _nonneg_fault_int("--fault-seed", "adversary seed")


def _add_fault_flags(p: argparse.ArgumentParser) -> None:
    """The ``--faults`` / ``--fault-scheme`` / ``--fault-seed`` / ``--fault-kind`` group.

    ``--faults T`` runs the workload on encoded robust collectives against
    a seeded adversary corrupting up to ``T`` relay nodes in every array
    exchange.  ``--fault-scheme`` picks the code: ``replicate`` ships
    ``2T + 1`` copies over disjoint relays (supported-majority decode);
    ``coded`` stripes each piece as ``k`` data + ``2T`` Reed-Solomon
    parity stripes over GF(2^16), dropping the overhead from ``2T + 1``
    toward ``n / (n - 2T)``.  Either way the answer is guaranteed to equal
    the fault-free oracle or the run dies with ``FaultToleranceExceeded``
    -- never a silent wrong answer.  The redundancy is billed honestly and
    reported next to the abstract (fault-free) meter.
    """
    p.add_argument(
        "--faults",
        type=_faults_type,
        default=0,
        metavar="T",
        help="tolerate up to T corrupt relay nodes per exchange via "
        "encoded collectives (default: 0, fault-free model)",
    )
    p.add_argument(
        "--fault-tolerance",
        type=_fault_tolerance_type,
        default=0,
        metavar="T",
        help="size the code for T corrupt relays instead of matching "
        "--faults; under-provisioning (T < --faults) demos the "
        "detect-retry-degrade path (default: match --faults)",
    )
    p.add_argument(
        "--fault-scheme",
        choices=["replicate", "coded"],
        default="replicate",
        help="redundancy code: (2T+1)-way replication or GF(2^16) "
        "Reed-Solomon striping (default: %(default)s)",
    )
    p.add_argument(
        "--fault-seed",
        type=_fault_seed_type,
        default=0,
        help="seed of the deterministic adversary (default: %(default)s)",
    )
    p.add_argument(
        "--fault-kind",
        choices=["flip", "drop", "crash", "byzantine"],
        default="flip",
        help="corruption behaviour: word flips, per-exchange message "
        "drops, monotone crash-stop, or a fixed byzantine node set "
        "corrupting every exchange it relays (default: %(default)s)",
    )


def _add_engine_flags(
    p: argparse.ArgumentParser,
    *,
    default: str | None = "bilinear",
) -> None:
    """The shared ``--engine`` / ``--shards`` / ``--threads`` trio.

    ``--shards N`` runs the simulator's local block products on ``N`` worker
    processes (shared-memory sharded executor); ``--threads T`` runs each
    worker's kernel tiles on a ``T``-thread tile backend (kernel generation
    3), so the two compose to up to ``N x T`` busy cores.  Answers and
    round charges are identical to the serial default, only wall clock
    changes.  ``N`` must not exceed the clique size (each shard owns a
    node range).
    """
    p.add_argument(
        "--engine",
        choices=["semiring", "bilinear", "naive"],
        default=default,
        help="matmul engine the session binds (default: %(default)s)",
    )
    p.add_argument(
        "--shards",
        type=_shards_type,
        default=1,
        metavar="N",
        help="local-compute worker processes, 1 <= N <= clique size "
        "(default: serial; the naive engine's single block product "
        "has nothing to shard)",
    )
    p.add_argument(
        "--threads",
        type=_threads_type,
        default=1,
        metavar="T",
        help="kernel-tile threads per worker (default: serial tiles; "
        "composes with --shards, so keep N*T within the machine)",
    )


def _link_gbps_type(value: str) -> float:
    """Argparse type for ``--link-gbps``: a positive bandwidth."""
    try:
        gbps = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid bandwidth {value!r}")
    if gbps <= 0:
        raise argparse.ArgumentTypeError(f"--link-gbps must be > 0, got {gbps}")
    return gbps


def _link_latency_type(value: str) -> float:
    """Argparse type for ``--link-latency-us``: a non-negative delay."""
    try:
        latency = float(value)
    except ValueError:
        raise argparse.ArgumentTypeError(f"invalid latency {value!r}")
    if latency < 0:
        raise argparse.ArgumentTypeError(
            f"--link-latency-us must be >= 0, got {latency}"
        )
    return latency


def _add_netsim_flags(p: argparse.ArgumentParser) -> None:
    """The ``--topology`` / ``--link-gbps`` / ``--link-latency-us`` group.

    ``--topology`` attaches a transport cost model (:mod:`repro.netsim`)
    as a second, purely observational meter: the workload's answers,
    rounds, words and per-phase meters are bit-identical with or without
    it; the run additionally prints a completion report (per-phase
    alpha-beta makespan, bottleneck-link utilisation, queueing share) for
    the chosen topology.  ``--json`` emits the meter + fault + completion
    summaries as one machine-readable JSON object instead of tables.
    """
    p.add_argument(
        "--topology",
        default=None,
        metavar="{full,ring,fat-tree:k}",
        help="model transport on this topology and print the completion "
        "report (default: no cost model)",
    )
    p.add_argument(
        "--link-gbps",
        type=_link_gbps_type,
        default=100.0,
        metavar="G",
        help="modelled per-link bandwidth in Gbit/s (default: %(default)s)",
    )
    p.add_argument(
        "--link-latency-us",
        type=_link_latency_type,
        default=1.0,
        metavar="US",
        help="modelled per-hop latency in microseconds (default: %(default)s)",
    )
    p.add_argument(
        "--json",
        action="store_true",
        help="emit the meter/fault/completion summaries as JSON",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Algebraic Methods in the Congested Clique -- reproduction CLI",
    )
    parser.add_argument("--seed", type=int, default=0)
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("table1", help="print the consolidated measured Table 1")
    p.add_argument("--full", action="store_true")
    p.set_defaults(func=_cmd_table1, parser=p)

    p = sub.add_parser("matmul", help="one distributed matrix product")
    p.add_argument("n", type=int)
    _add_engine_flags(p)
    _add_fault_flags(p)
    _add_netsim_flags(p)
    p.set_defaults(func=_cmd_matmul, parser=p)

    p = sub.add_parser("triangles", help="triangle counting on G(n, p)")
    p.add_argument("n", type=int)
    p.add_argument("--p", type=float, default=0.3)
    _add_engine_flags(p)
    p.add_argument("--baseline", action="store_true", help="also run Dolev et al.")
    p.set_defaults(func=_cmd_triangles, parser=p)

    p = sub.add_parser("four-cycles", help="O(1)-round 4-cycle detection")
    p.add_argument("n", type=int)
    p.add_argument("--degree", type=float, default=4.0)
    p.add_argument("--baseline", action="store_true")
    p.set_defaults(func=_cmd_four_cycles, parser=p)

    p = sub.add_parser("apsp", help="all-pairs shortest paths")
    p.add_argument("n", type=int)
    p.add_argument(
        "--variant", choices=["exact", "unweighted", "approx"], default="exact"
    )
    p.add_argument("--max-weight", type=int, default=9)
    p.add_argument("--delta", type=float, default=0.3)
    # Engine default depends on the variant (exact -> semiring,
    # unweighted/approx -> bilinear); resolved in _cmd_apsp.
    _add_engine_flags(p, default=None)
    _add_fault_flags(p)
    _add_netsim_flags(p)
    p.set_defaults(func=_cmd_apsp, parser=p)

    p = sub.add_parser("girth", help="girth computation")
    p.add_argument("n", type=int)
    p.add_argument(
        "--family", choices=["sparse", "dense", "directed"], default="sparse"
    )
    p.add_argument("--girth", type=int, default=7)
    p.add_argument("--trials", type=int, default=10)
    _add_engine_flags(p)
    p.set_defaults(func=_cmd_girth, parser=p)

    p = sub.add_parser(
        "spanner", help="a (2k-1)-spanner via session cluster-growing"
    )
    p.add_argument("n", type=int)
    p.add_argument("--k", type=int, default=2, help="stretch parameter")
    p.add_argument("--p", type=float, default=0.35)
    p.add_argument("--max-weight", type=int, default=30)
    _add_engine_flags(p, default="semiring")
    p.set_defaults(func=_cmd_spanner, parser=p)

    p = sub.add_parser(
        "mst", help="minimum spanning forest (O(1)-round KKT skeleton)"
    )
    p.add_argument("n", type=int)
    p.add_argument("--p", type=float, default=0.3)
    p.add_argument("--max-weight", type=int, default=50)
    p.add_argument(
        "--phases",
        type=_phases_type,
        default=2,
        help="Boruvka phases before sampling (>= 0)",
    )
    _add_engine_flags(p, default="semiring")
    _add_fault_flags(p)
    _add_netsim_flags(p)
    p.set_defaults(func=_cmd_mst, parser=p)

    p = sub.add_parser(
        "build-artifact",
        help="square a seeded random graph to closure and materialise it "
        "as a memory-mapped serving artifact",
    )
    p.add_argument("n", type=int)
    p.add_argument("out", help="artifact directory to create/overwrite")
    p.add_argument("--p", type=float, default=0.25)
    p.add_argument("--max-weight", type=int, default=50)
    p.add_argument("--directed", action="store_true")
    _add_engine_flags(p, default="semiring")
    _add_fault_flags(p)
    _add_netsim_flags(p)
    p.set_defaults(func=_cmd_build_artifact, parser=p)

    p = sub.add_parser(
        "query",
        help="answer one distance/path query from an artifact "
        "(zero engine work)",
    )
    p.add_argument("artifact", help="artifact directory")
    p.add_argument("u", type=int)
    p.add_argument("v", type=int)
    p.add_argument("--path", action="store_true", help="also reconstruct a path")
    p.add_argument("--ecc", action="store_true", help="also print ecc(u)")
    p.set_defaults(func=_cmd_query, parser=p)

    p = sub.add_parser(
        "update",
        help="apply edge updates to an artifact (dirty-strip delta "
        "re-squaring; full rebuild only on weight increases)",
    )
    p.add_argument("artifact", help="artifact directory (rewritten in place)")
    p.add_argument(
        "--edge",
        type=_edge_type,
        action="append",
        required=True,
        metavar="U,V,W",
        help="edge update (repeatable); weight 'inf' deletes the edge",
    )
    p.add_argument(
        "--rebuild",
        action="store_true",
        help="force the full-rebuild arm (baseline for the delta bill)",
    )
    _add_engine_flags(p, default="semiring")
    _add_fault_flags(p)
    p.set_defaults(func=_cmd_update, parser=p)

    p = sub.add_parser(
        "serve",
        help="serve an artifact's queries over TCP/JSON-lines with "
        "windowed micro-batching",
    )
    p.add_argument("artifact", help="artifact directory")
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=0, help="0 picks a free port")
    p.add_argument(
        "--window",
        type=float,
        default=0.001,
        help="batching window in seconds (default: %(default)s)",
    )
    p.add_argument(
        "--max-requests",
        type=int,
        default=0,
        help="exit after N requests (0 = serve forever); the smoke-test hook",
    )
    p.set_defaults(func=_cmd_serve, parser=p)
    return parser


def main(argv: list[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    args._cliques = []
    from repro.errors import FaultToleranceExceeded

    try:
        return args.func(args, args.parser)
    except FaultToleranceExceeded as exc:
        # The degrade arm of detect-retry-degrade: an adversary beyond the
        # encoded budget stops the run loudly -- never a silent wrong answer.
        print(f"fault tolerance exceeded: {exc}", file=sys.stderr)
        return 2
    finally:
        # Close every executor the run built (sharded worker pools and
        # their shared-memory segments) even on the error exits, so no
        # command can leak a pool past its own lifetime.
        for clique in args._cliques:
            clique.executor.close()


if __name__ == "__main__":  # pragma: no cover - exercised via __main__
    sys.exit(main())
