"""E5 -- Table 1 "4-cycle counting": O(n^rho) via the trace formula."""

from __future__ import annotations

import pytest

from repro.graphs import four_cycle_count_reference, gnp_random_graph
from repro.matmul.exponent import fit_exponent
from repro.subgraphs import count_five_cycles, count_four_cycles

from .conftest import run_once

SIZES = [16, 49, 100, 196]


@pytest.mark.parametrize("n", SIZES)
def test_four_cycle_counting(benchmark, n):
    g = gnp_random_graph(n, 0.3, seed=7 * n)

    def run():
        return count_four_cycles(g, method="bilinear")

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == four_cycle_count_reference(g)


def test_four_cycle_counting_exponent(benchmark):
    def run():
        return [
            count_four_cycles(
                gnp_random_graph(n, 0.3, seed=7 * n), method="bilinear"
            ).rounds
            for n in SIZES
        ]

    rounds = run_once(benchmark, run)
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["fitted_exponent"] = fit_exponent(SIZES, rounds)
    assert fit_exponent(SIZES, rounds) < 0.8


@pytest.mark.parametrize("n", [16, 49])
def test_five_cycle_counting_extension(benchmark, n):
    """The k=5 trace-formula extension (paper: 'similar formulas exist')."""
    from repro.graphs import count_cycles_brute

    g = gnp_random_graph(n, 0.25, seed=n)

    def run():
        return count_five_cycles(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    if n <= 16:
        assert result.value == count_cycles_brute(g, 5)
