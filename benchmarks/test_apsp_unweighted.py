"""E11 -- Table 1 "unweighted undirected APSP": Seidel in O~(n^rho)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import apsp_unweighted
from repro.graphs import bfs_distances_reference, gnp_random_graph
from repro.matmul.exponent import fit_exponent

from .conftest import run_once

SIZES = [16, 49, 100, 196]


@pytest.mark.parametrize("n", SIZES)
def test_seidel_apsp(benchmark, n):
    g = gnp_random_graph(n, 0.2, seed=n)

    def run():
        return apsp_unweighted(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["levels"] = result.extras["levels"]
    assert np.array_equal(result.value, bfs_distances_reference(g))


def test_seidel_exponent(benchmark):
    def run():
        return [
            apsp_unweighted(gnp_random_graph(n, 0.2, seed=n)).rounds
            for n in SIZES
        ]

    rounds = run_once(benchmark, run)
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["fitted_exponent"] = fit_exponent(SIZES, rounds)
    assert fit_exponent(SIZES, rounds) < 1.0


@pytest.mark.parametrize("engine", ["bilinear", "semiring"])
def test_engine_ablation(benchmark, engine):
    """DESIGN.md ablation 3: Seidel on the fast vs the 3D engine."""
    n = 49 if engine == "bilinear" else 64
    g = gnp_random_graph(n, 0.2, seed=1)

    def run():
        return apsp_unweighted(g, method=engine)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["engine"] = engine
    assert np.array_equal(result.value, bfs_distances_reference(g))
