"""Capped-degree integer polynomial matrices for the Lemma 18 embedding.

Lemma 18 embeds the distance product of matrices with entries in
``{0, ..., M} + {inf}`` into a product over the polynomial ring ``Z[X]``:
entry ``w`` becomes the monomial ``X^w`` (``inf`` becomes the zero
polynomial), the matrices are multiplied over ``Z[X]``, and each distance is
recovered as the degree of the lowest non-zero monomial of the corresponding
product entry.  All polynomials involved have degree at most ``2 M``, so we
represent a polynomial matrix as an ``(r, c, D)`` coefficient tensor with
``D = 2 M + 1`` and no truncation is ever needed.

Coefficients count the number of inner indices attaining each sum, so they
are bounded by ``n`` and never cancel -- which is exactly why the recovery in
Lemma 18 is sound even when the product is computed by a ring algorithm such
as Strassen (which does subtract intermediate values but produces the exact
product).
"""

from __future__ import annotations

import numpy as np

from repro.constants import INF


def encode_minplus(matrix: np.ndarray, max_entry: int, degree: int) -> np.ndarray:
    """Encode a distance matrix as a polynomial coefficient tensor.

    Entry ``w <= max_entry`` becomes ``X^w``; entries ``> max_entry``
    (including the ``INF`` sentinel) become the zero polynomial.  The trailing
    axis has size ``degree`` (callers pass ``2 * max_entry + 1`` so products
    fit exactly).
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    if degree < max_entry + 1:
        raise ValueError(f"degree {degree} cannot hold entries up to {max_entry}")
    out = np.zeros(matrix.shape + (degree,), dtype=np.int64)
    finite = (matrix >= 0) & (matrix <= max_entry)
    rows, cols = np.nonzero(finite)
    out[rows, cols, matrix[rows, cols]] = 1
    return out


def poly_matmul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Product of polynomial matrices: matrix product with convolution entries.

    ``a`` is ``(r, k, Da)`` and ``b`` is ``(k, c, Db)``; the result is
    ``(r, c, Da + Db - 1)``.  Implemented as one integer matrix product per
    output degree, which keeps everything inside NumPy.
    """
    da = a.shape[2]
    db = b.shape[2]
    out = np.zeros((a.shape[0], b.shape[1], da + db - 1), dtype=np.int64)
    for i in range(da):
        ai = a[:, :, i]
        if not ai.any():
            continue
        for j in range(db):
            bj = b[:, :, j]
            if not bj.any():
                continue
            out[:, :, i + j] += ai @ bj
    return out


def poly_matmul_batch(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Batched :func:`poly_matmul`: ``(B, r, k, Da) x (B, k, c, Db)``.

    One *batched* integer GEMM per degree pair (the batch axis rides through
    ``np.matmul``), instead of a Python loop of per-block products.  The
    zero-coefficient skip tests the whole batch slice, so a skipped pair is
    zero in every block -- values are identical to stacking
    :func:`poly_matmul` per block.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    da = a.shape[3]
    db = b.shape[3]
    out = np.zeros(
        (a.shape[0], a.shape[1], b.shape[2], da + db - 1), dtype=np.int64
    )
    for i in range(da):
        ai = a[:, :, :, i]
        if not ai.any():
            continue
        for j in range(db):
            bj = b[:, :, :, j]
            if not bj.any():
                continue
            out[:, :, :, i + j] += np.matmul(ai, bj)
    return out


def decode_minplus(poly: np.ndarray) -> np.ndarray:
    """Recover distances: the lowest degree with a non-zero coefficient.

    Entries whose polynomial is identically zero decode to
    :data:`~repro.constants.INF`.
    """
    nonzero = poly != 0
    has_any = nonzero.any(axis=2)
    first = np.argmax(nonzero, axis=2)
    return np.where(has_any, first, INF).astype(np.int64)


def poly_entry_degree(poly: np.ndarray) -> int:
    """The trailing-axis length of a polynomial tensor (its capped degree)."""
    return int(poly.shape[2])


__all__ = [
    "encode_minplus",
    "poly_matmul",
    "poly_matmul_batch",
    "decode_minplus",
    "poly_entry_degree",
]
