"""Witnesses for Boolean matrix products (§3.4's closing remark).

The paper: "While we have stated it for the distance product, it should be
noted that the same techniques also work for the Boolean semiring matrix
product."  This module makes that remark executable by the standard
encoding: a 0/1 matrix ``B`` becomes the distance matrix ``enc(B)`` with
``0`` where ``B = 1`` and ``inf`` elsewhere; then

    ``(S . T)[u, v] = 1  iff  (enc(S) * enc(T))[u, v] = 0``

and a distance-product witness is precisely a Boolean witness (an inner
index ``k`` with ``S[u, k] = T[k, v] = 1``).  The whole Lemma 21 machinery
(unique extraction + sampling + distributed validation) is reused verbatim
through :func:`repro.matmul.witnesses.find_witnesses` -- including its
array-native validation exchanges and the array-native §2.2 engine
underneath, so Boolean witness searches never build per-payload tuple
outboxes either.
"""

from __future__ import annotations

import numpy as np

from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.matmul.distance import distance_product_ring
from repro.matmul.witnesses import WitnessResult, find_witnesses


def encode_boolean(matrix: np.ndarray) -> np.ndarray:
    """0/1 matrix -> distance matrix (1 -> 0, 0 -> inf)."""
    matrix = np.asarray(matrix)
    return np.where(matrix > 0, 0, INF).astype(np.int64)


def find_boolean_witnesses(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    *,
    rng: np.random.Generator | None = None,
    trials_per_scale: int | None = None,
    on_failure: str = "raise",
    phase: str = "bool-witness",
) -> tuple[np.ndarray, WitnessResult]:
    """Boolean product + witness matrix via the Lemma 21 reduction.

    Returns ``(product, witnesses)`` where ``product`` is the 0/1 Boolean
    product and ``witnesses.witnesses[u, v]`` is an index ``k`` with
    ``S[u, k] = T[k, v] = 1`` wherever ``product[u, v] = 1`` (and ``-1``
    where the product is 0).  Products run through the Lemma 18 engine with
    ``max_entry = 0`` -- a single-coefficient polynomial, i.e. the Boolean
    case costs no width blow-up, matching the paper's accounting.
    """
    es = encode_boolean(s)
    et = encode_boolean(t)

    def engine(a: np.ndarray, b: np.ndarray, sub_phase: str) -> np.ndarray:
        return distance_product_ring(clique, a, b, 0, phase=sub_phase)

    product_dist = engine(es, et, f"{phase}/full")
    result = find_witnesses(
        clique,
        es,
        et,
        engine,
        p=product_dist,
        rng=rng,
        trials_per_scale=trials_per_scale,
        on_failure=on_failure,
        phase=phase,
    )
    product = (product_dist < INF).astype(np.int64)
    return product, result


__all__ = ["find_boolean_witnesses", "encode_boolean"]
