"""O(1)-round MST skeleton on the session API (Jurdzinski--Nowicki).

Jurdzinski--Nowicki (arXiv:1707.08484) compute an MST in O(1) congested-
clique rounds by combining Boruvka-style component contraction with the
Karger--Klein--Tarjan (KKT) sampling lemma: sample the surviving edges,
build a forest ``F`` of the sample, discard the *F-heavy* edges (heaviest
on a cycle, hence provably not in the MST), and finish on the few
survivors.  This module implements that skeleton as a first-class consumer
of the repo's engine sessions:

* **Component contraction via the components session** -- labels are the
  algebraic route of :mod:`repro.distances.components`: a Boolean
  transitive closure on the forest adjacency through a bound
  :class:`~repro.engine.EngineSession`, each vertex labelling itself with
  the smallest id it reaches (one one-word broadcast announces labels to
  neighbours).
* **Boruvka steps as min-plus contraction products** -- the cheapest edge
  between every pair of components is the two-sided min-plus product
  ``Mᵀ (x) W (x) M`` of the encoded weight matrix with the membership
  matrix, run as two session products.  Edge identities ride inside the
  values: weights are *encoded* with their endpoint pair
  (``w·S² + lo·S + hi``), the same fold-the-tag-into-the-operand trick the
  packed witness kernels use, which also makes the edge order strict and
  the MST unique -- simultaneous per-component minima can never close a
  cycle.
* **F-light filtering as a collective exchange** -- each vertex filters
  its incident surviving edges against the globally known sample forest
  (row-local compute), and the light survivors are replicated by one
  :meth:`~repro.clique.model.CongestedClique.allgather_rows` --
  ``O(R / n)`` rounds, constant while the KKT bound keeps ``R = O(n)``.

The *skeleton* caveat, kept honest: the label closure and the contraction
products are charged at their full metered cost (they scale with ``n``;
Jurdzinski--Nowicki replace them with O(1)-round sketching), while the
Boruvka candidate broadcasts, the label announcements and the F-light
gather are the constant-round pieces -- ``extras["phase_rounds"]`` splits
the bill so the tests can pin exactly those phases constant across sizes.

Every product runs through ``EngineSession`` (arena-backed exchanges, no
tuple outboxes); randomness resolves via :func:`repro.runtime.resolve_rng`
(shared-seed convention).  The output is the unique MST under the encoded
order, so the distributed run is edge-identical to the centralised Kruskal
oracle (:func:`mst_reference`) -- sampling can only change the
intermediate forest, never the answer.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import BOOLEAN, MIN_PLUS
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.distances.bounded import reachability
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, make_clique, resolve_rng

#: Word width for a broadcast Boruvka candidate record ``(has, b, enc)``:
#: two id-sized fields plus a two-word encoded weight.  Fixed (rather than
#: magnitude-derived) so candidate rounds are constant across sizes.
_CANDIDATE_WORDS = 4

#: Words per gathered F-light edge record (one encoded weight).
_RECORD_WORDS = 2


def encode_weights(graph: Graph, size: int | None = None) -> np.ndarray:
    """Weights encoded with their endpoints: ``w·S² + lo·S + hi``.

    ``S = size`` (default ``graph.n``).  The encode is symmetric, strictly
    totally ordered (distinct per edge, lexicographic ``(w, lo, hi)``) and
    order-preserving on weights, so the MST under it is unique and its
    weight equals the ordinary MST weight.  Non-edges and the diagonal are
    ``INF``; entries stay far below ``INF`` (``w <= 2^40`` at ``S <= 2048``
    keeps the encode within ``int64``).
    """
    n = graph.n
    size = n if size is None else size
    w = graph.weight_matrix()
    edge = graph.adjacency > 0
    if np.any(edge & (w < 0)):
        raise ValueError("the MST encode needs non-negative edge weights")
    # The encode must stay strictly below INF (entries at or past it would
    # silently read as non-edges) and inside int64.
    max_weight = int(w[edge].max()) if edge.any() else 0
    if (max_weight + 1) * size * size >= INF:
        raise ValueError(
            f"edge weight {max_weight} too large to encode at size {size} "
            f"(needs (w + 1) * size^2 < 2^62)"
        )
    enc = np.full((size, size), INF, dtype=np.int64)
    us, vs = np.nonzero(graph.adjacency)
    lo = np.minimum(us, vs)
    hi = np.maximum(us, vs)
    enc[us, vs] = w[us, vs] * size * size + lo * size + hi
    return enc


def decode_edge(enc: int, size: int) -> tuple[int, int, int]:
    """Invert :func:`encode_weights` for one entry: ``(weight, lo, hi)``."""
    return int(enc) // (size * size), (int(enc) % (size * size)) // size, int(
        enc
    ) % size


def _forest_path_max(edges: list[int], size: int) -> np.ndarray:
    """Max encoded weight on the forest path between every pair.

    ``out[u, v] = -1`` when no path exists (and on the diagonal); otherwise
    the largest encoded edge weight on the unique ``u``--``v`` path.  Pure
    node-local compute in the model: the forest is globally known (all its
    edges were broadcast), so each node evaluates its own row for free.
    """
    adjacency: list[list[tuple[int, int]]] = [[] for _ in range(size)]
    for enc in edges:
        _, lo, hi = decode_edge(enc, size)
        adjacency[lo].append((hi, enc))
        adjacency[hi].append((lo, enc))
    out = np.full((size, size), -1, dtype=np.int64)
    for source in range(size):
        stack = [source]
        seen = {source}
        while stack:
            node = stack.pop()
            for neighbour, enc in adjacency[node]:
                if neighbour in seen:
                    continue
                seen.add(neighbour)
                out[source, neighbour] = max(out[source, node], enc)
                stack.append(neighbour)
    return out


def _kruskal(encs, n: int, size: int) -> list[int]:
    """Kruskal under the encoded strict order (local union-find)."""
    parent = list(range(n))

    def find(x: int) -> int:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    chosen: list[int] = []
    for enc in sorted(set(int(e) for e in encs)):
        _, lo, hi = decode_edge(enc, size)
        root_lo, root_hi = find(lo), find(hi)
        if root_lo != root_hi:
            parent[root_lo] = root_hi
            chosen.append(enc)
    return chosen


class _MstRun:
    """One distributed MST run: sessions, meter bookkeeping, phase loop."""

    def __init__(
        self,
        graph: Graph,
        method: str,
        clique: CongestedClique,
        rng: np.random.Generator,
        sample_probability: float,
    ) -> None:
        self.graph = graph
        self.n = graph.n
        self.clique = clique
        self.size = clique.n
        # Two sessions, one clique/meter: labels run over the Boolean
        # semiring, contraction over min-plus -- the Seidel/girth pattern.
        self.bool_session = EngineSession(clique, method, BOOLEAN)
        self.mp_session = EngineSession(clique, method, MIN_PLUS)
        self.rng = rng
        self.sample_probability = sample_probability
        self.enc = encode_weights(graph, self.size)
        self.forest_edges: list[int] = []
        self.forest_adjacency = np.zeros((self.size, self.size), dtype=np.int64)
        self.phase_rounds: dict[str, int] = {}

    def _meter(self, label: str, mark: int) -> None:
        rounds = self.clique.meter.rounds_since(mark)
        self.phase_rounds[label] = self.phase_rounds.get(label, 0) + rounds

    # ---------------------------------------------------------------- #
    # Component labels: the components session (Boolean closure).
    # ---------------------------------------------------------------- #

    def labels(self, tag: str) -> np.ndarray:
        """Smallest reachable id on the current forest, via the session."""
        mark = self.clique.meter.snapshot()
        reach = reachability(
            self.clique,
            self.forest_adjacency,
            session=self.bool_session,
            phase=f"{tag}/closure",
        )
        self._meter("labels_closure", mark)
        labels = np.argmax(reach > 0, axis=1).astype(np.int64)
        # Row v yields only label[v]; one one-word broadcast makes the
        # labelling global (neighbour labels feed the inter-component
        # masks) -- a constant-round phase.
        mark = self.clique.meter.snapshot()
        self.clique.broadcast(
            [int(c) for c in labels], words=1, phase=f"{tag}/announce"
        )
        self._meter("labels_announce", mark)
        return labels

    # ---------------------------------------------------------------- #
    # Boruvka step: contraction products + candidate broadcast.
    # ---------------------------------------------------------------- #

    def _contract(self, weights: np.ndarray, labels: np.ndarray, tag: str):
        """``Mᵀ (x) W (x) M``: cheapest encoded edge per component pair."""
        membership = np.full((self.size, self.size), INF, dtype=np.int64)
        membership[np.arange(self.size), labels] = 0
        mark = self.clique.meter.snapshot()
        inner = self.mp_session.multiply(
            weights, membership, phase=f"{tag}/contract-right"
        )
        contracted = self.mp_session.multiply(
            membership.T, inner, phase=f"{tag}/contract-left"
        )
        self._meter("contract_products", mark)
        return contracted

    def boruvka_step(self, weights: np.ndarray, labels: np.ndarray, tag: str) -> list[int]:
        """One simultaneous min-outgoing-edge round; returns chosen encs.

        Component ``a``'s row of the contracted matrix lives at node ``a``
        (the component's label); that node broadcasts one fixed-width
        candidate record.  Edge identities decode from the encoded value,
        so no witness resolution round is needed.  Under the strict encoded
        order the simultaneous choices are acyclic; a deterministic local
        union-find guards the merge regardless.
        """
        contracted = self._contract(weights, labels, tag)
        np.fill_diagonal(contracted, INF)
        best = contracted.min(axis=1)
        has = best < INF
        candidates = np.zeros((self.size, 3), dtype=np.int64)
        candidates[has, 0] = 1
        candidates[has, 1] = np.argmin(contracted, axis=1)[has]
        candidates[has, 2] = best[has]
        mark = self.clique.meter.snapshot()
        received = self.clique.broadcast_rows(
            candidates,
            widths=[_CANDIDATE_WORDS] * self.size,
            phase=f"{tag}/candidates",
        )
        self._meter("boruvka_candidates", mark)
        # Deterministic merge, identical at every node: Kruskal over the
        # received candidates (ascending encoded order; union-find dedupes
        # mutual picks and guards acyclicity).
        return _kruskal(received[has, 2], self.size, self.size)

    def absorb(self, encs: list[int]) -> None:
        for enc in encs:
            _, lo, hi = decode_edge(enc, self.size)
            self.forest_adjacency[lo, hi] = 1
            self.forest_adjacency[hi, lo] = 1
        self.forest_edges.extend(encs)

    # ---------------------------------------------------------------- #
    # KKT sampling + F-light filter + gather.
    # ---------------------------------------------------------------- #

    def kkt_finish(self, labels: np.ndarray) -> tuple[list[int], int]:
        """Sample, filter F-heavy edges, gather survivors, Kruskal locally."""
        inter = (self.enc < INF) & (labels[:, None] != labels[None, :])
        # Shared symmetric coins (one draw per unordered real pair).
        coins = self.rng.random((self.n, self.n))
        coins = np.triu(coins, 1)
        coins = coins + coins.T
        coin_pad = np.ones((self.size, self.size))
        coin_pad[: self.n, : self.n] = coins
        sampled = np.where(
            inter & (coin_pad < self.sample_probability), self.enc, INF
        )
        # F = current forest + one contracted Boruvka step on the sample
        # (the skeleton's stand-in for the sample's full MSF; any forest
        # makes the filter *sound* -- an F-heavy edge is the heaviest on a
        # cycle -- the MSF only sharpens the survivor count).
        f_edges = self.forest_edges + self.boruvka_step(
            sampled, labels, "mst/kkt"
        )
        # F-light filter: row-local against the globally known F.
        path_max = _forest_path_max(f_edges, self.size)
        light = inter & ((path_max < 0) | (self.enc <= path_max))
        # Each vertex contributes its lo-endpoint survivors; one allgather
        # replicates them (O(R/n) rounds -- constant while R = O(n)).
        rows = []
        for v in range(self.size):
            cols = np.nonzero(light[v] & (np.arange(self.size) > v))[0]
            rows.append(self.enc[v, cols].reshape(-1, 1))
        mark = self.clique.meter.snapshot()
        gathered = self.clique.allgather_rows(
            rows, words_per_record=_RECORD_WORDS, phase="mst/kkt/gather"
        )
        self._meter("flight_gather", mark)
        survivors = [int(e) for e in gathered[:, 0]]
        chosen = _kruskal(self.forest_edges + survivors, self.size, self.size)
        return chosen, len(survivors)


def minimum_spanning_forest(
    graph: Graph,
    *,
    method: str = "semiring",
    clique: CongestedClique | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
    boruvka_phases: int = 2,
    sample_probability: float = 0.5,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """The minimum spanning forest via the Jurdzinski--Nowicki skeleton.

    A constant number of Boruvka phases (components-session labels +
    min-plus contraction products + one-round candidate broadcasts), then
    one KKT sample-filter-gather round and a node-local Kruskal finish on
    the replicated survivors.  The result is the *unique* MSF under the
    encoded ``(w, lo, hi)`` order -- edge-identical to
    :func:`mst_reference`, with total weight equal to any MST's.

    Args:
        method: a selection-semiring engine (``"semiring"`` / ``"naive"``);
            min-plus contraction cannot run on the bilinear engine.
        boruvka_phases: contraction phases before sampling (constant;
            ``extras["phases"]`` records it).
        sample_probability: KKT edge-sampling probability.

    Returns:
        ``value``: symmetric ``(n, n)`` 0/1 MSF adjacency; ``extras``:
        ``weight``, ``edges`` (as ``(u, v, w)`` triples), ``phases``,
        ``phase_rounds`` (the per-phase round split the constant-round
        tests pin) and ``flight_survivors``.
    """
    if graph.directed:
        raise ValueError("MST is defined for undirected graphs")
    if boruvka_phases < 0:
        raise ValueError(f"boruvka_phases must be >= 0, got {boruvka_phases}")
    if not 0.0 < sample_probability <= 1.0:
        raise ValueError(
            f"sample_probability must be in (0, 1], got {sample_probability}"
        )
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    run = _MstRun(
        graph, method, clique, resolve_rng(rng, seed), sample_probability
    )

    for phase in range(boruvka_phases):
        labels = run.labels(f"mst/boruvka{phase}/labels")
        # Contract the surviving inter-component edges (intra-component
        # entries cannot surface off the contracted diagonal, so the full
        # encoded matrix is the right operand).
        chosen = run.boruvka_step(run.enc, labels, f"mst/boruvka{phase}")
        if not chosen:
            break
        run.absorb(chosen)

    labels = run.labels("mst/kkt/labels")
    mst_edges, survivors = run.kkt_finish(labels)

    adjacency = np.zeros((n, n), dtype=np.int64)
    triples: list[tuple[int, int, int]] = []
    weight = 0
    for enc in sorted(mst_edges):
        w, lo, hi = decode_edge(enc, run.size)
        adjacency[lo, hi] = 1
        adjacency[hi, lo] = 1
        triples.append((lo, hi, w))
        weight += w
    return RunResult(
        value=adjacency,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={
            "weight": weight,
            "edges": triples,
            "phases": boruvka_phases + 1,
            "phase_rounds": dict(run.phase_rounds),
            "flight_survivors": survivors,
            "forest_edges_before_kkt": len(run.forest_edges),
        },
    )


def mst_reference(graph: Graph) -> tuple[list[tuple[int, int, int]], int]:
    """Centralised Kruskal oracle under the same encoded strict order.

    Returns the ``(u, v, w)`` triples (ascending encoded order) and the
    total weight -- the distributed skeleton must match edge-for-edge.
    """
    if graph.directed:
        raise ValueError("MST is defined for undirected graphs")
    n = graph.n
    enc = encode_weights(graph)
    us, vs = np.nonzero(np.triu(graph.adjacency))
    chosen = _kruskal(enc[us, vs], n, n)
    triples = [decode_edge(e, n) for e in chosen]
    return (
        [(lo, hi, w) for (w, lo, hi) in triples],
        int(sum(w for (w, _, _) in triples)),
    )


def mst_weight(graph: Graph) -> int:
    """Total MST weight (unique even under weight ties)."""
    return mst_reference(graph)[1]


__all__ = [
    "minimum_spanning_forest",
    "mst_reference",
    "mst_weight",
    "encode_weights",
    "decode_edge",
]
