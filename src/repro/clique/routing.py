"""Load analysis for routed exchanges on the congested clique.

Separates the *accounting* of a communication phase (how many rounds a legal
schedule needs) from the *data movement* (which the simulator performs
directly).  Used by :class:`repro.clique.model.CongestedClique`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any

from repro.clique.scheduling import Demand
from repro.errors import LoadBoundExceededError

# outboxes[v] = list of (dst, payload, words) messages node v emits.
Outboxes = list[list[tuple[int, Any, int]]]


@dataclass(frozen=True)
class LoadProfile:
    """Communication loads induced by a set of outboxes.

    ``send_words[v]`` / ``recv_words[v]`` exclude self-addressed payloads,
    which are local moves and free in the model.
    """

    send_words: list[int]
    recv_words: list[int]
    total_words: int
    payloads: int
    demand: Demand

    @property
    def max_send(self) -> int:
        return max(self.send_words, default=0)

    @property
    def max_recv(self) -> int:
        return max(self.recv_words, default=0)

    @property
    def max_load(self) -> int:
        return max(self.max_send, self.max_recv)


def analyze(outboxes: Outboxes, n: int) -> LoadProfile:
    """Compute per-node and per-pair loads for a set of outboxes."""
    send = [0] * n
    recv = [0] * n
    demand: Demand = defaultdict(int)
    total = 0
    payloads = 0
    for v, box in enumerate(outboxes):
        for dst, _payload, words in box:
            payloads += 1
            if dst == v:
                continue  # local move, free
            send[v] += words
            recv[dst] += words
            demand[(v, dst)] += words
            total += words
    return LoadProfile(
        send_words=send,
        recv_words=recv,
        total_words=total,
        payloads=payloads,
        demand=dict(demand),
    )


def enforce_load_bound(profile: LoadProfile, expect_max_load: int | None) -> None:
    """Raise if the observed max per-node load exceeds an asserted bound.

    Algorithms pass the bound their analysis promises (e.g. the 3D matmul
    asserts ``2 n^{4/3}`` words per node); a violation indicates an
    implementation bug rather than a model violation.
    """
    if expect_max_load is not None and profile.max_load > expect_max_load:
        raise LoadBoundExceededError(
            f"max per-node load {profile.max_load} exceeds the asserted "
            f"bound {expect_max_load}"
        )


def deliver(outboxes: Outboxes, n: int) -> list[list[tuple[int, Any]]]:
    """Move every payload to its destination inbox.

    Returns ``inboxes`` with ``inboxes[u]`` a list of ``(src, payload)``
    pairs, ordered by source id and then by emission order -- a deterministic
    order so simulations are reproducible.
    """
    inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
    for v, box in enumerate(outboxes):
        for dst, payload, _words in box:
            inboxes[dst].append((v, payload))
    for box in inboxes:
        box.sort(key=lambda item: item[0])
    return inboxes


__all__ = ["Outboxes", "LoadProfile", "analyze", "enforce_load_bound", "deliver"]
