#!/usr/bin/env python
"""E16 -- print the consolidated, measured Table 1.

Usage::

    python benchmarks/table1_harness.py           # quick sweep (~2-4 min)
    python benchmarks/table1_harness.py --full    # adds the largest sizes

Every row runs the corresponding algorithm of this reproduction over a
sweep of clique sizes, prints the metered round counts, the fitted growth
exponent, the paper's bound, the prior-work bound, and -- where the prior
work is implemented (Dolev et al.) -- its measured rounds and the resulting
speedup.
"""

from __future__ import annotations

import argparse
import sys
import time

from repro.analysis import format_table1, run_table1


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--full",
        action="store_true",
        help="include the largest sweep sizes (slower)",
    )
    parser.add_argument("--seed", type=int, default=0)
    args = parser.parse_args(argv)

    started = time.time()
    reports = run_table1(scale="full" if args.full else "quick", seed=args.seed)
    print(format_table1(reports))
    print(f"(harness wall time: {time.time() - started:.1f}s)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
