"""Cross-engine application coverage.

Every application that takes a ``method`` parameter must produce identical
answers on all engines it supports -- here the combinations not already
exercised elsewhere (colour coding on the 3D engine, Seidel on the naive
engine, counting on the naive engine), plus witness cross-validation
between the semiring engine's native arg-min and the §3.4 machinery.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique import CongestedClique
from repro.constants import INF
from repro.distances import apsp_unweighted, girth_directed
from repro.graphs import (
    bfs_distances_reference,
    cycle_graph,
    girth_reference,
    gnp_random_graph,
    has_k_cycle_reference,
    planted_cycle_graph,
)
from repro.matmul.distance import distance_product, distance_product_ring
from repro.matmul.witnesses import find_witnesses
from repro.subgraphs import count_five_cycles, detect_k_cycle


class TestColourCodingOnSemiringEngine:
    def test_detection_agrees_with_bilinear(self):
        g = planted_cycle_graph(18, 4, seed=3, extra_edge_prob=0.4)
        rng_a = np.random.default_rng(0)
        rng_b = np.random.default_rng(0)
        on_bilinear = detect_k_cycle(g, 4, trials=40, rng=rng_a, method="bilinear")
        on_semiring = detect_k_cycle(g, 4, trials=40, rng=rng_b, method="semiring")
        # Same seeded colour sequence modulo clique padding size; both must
        # be sound, and on this planted instance both should find the cycle.
        assert on_bilinear.value
        assert on_semiring.value

    def test_soundness_on_semiring_engine(self):
        from repro.graphs import random_tree

        g = random_tree(18, seed=4)
        assert not detect_k_cycle(g, 4, trials=8, method="semiring").value


class TestSeidelOnOtherEngines:
    @pytest.mark.parametrize("method", ["semiring", "naive"])
    def test_distances_match(self, method):
        g = gnp_random_graph(17, 0.25, seed=6)
        result = apsp_unweighted(g, method=method)
        assert np.array_equal(result.value, bfs_distances_reference(g))


class TestCountingOnNaiveEngine:
    def test_five_cycles(self):
        from repro.graphs import count_cycles_brute

        g = gnp_random_graph(13, 0.3, seed=8)
        result = count_five_cycles(g, method="naive")
        assert result.value == count_cycles_brute(g, 5)


class TestGirthDirectedOnSemiringEngine:
    def test_matches_reference(self):
        g = cycle_graph(11, directed=True)
        result = girth_directed(g, method="semiring")
        assert result.value == 11

    def test_random_digraph(self):
        g = gnp_random_graph(14, 0.15, seed=9, directed=True)
        result = girth_directed(g, method="semiring")
        assert result.value == girth_reference(g)


class TestWitnessCrossValidation:
    def test_native_and_sampled_witnesses_both_attain_minimum(self):
        """The semiring engine's arg-min and Lemma 21's sampled witnesses
        may differ as indices, but both must attain the same product."""
        n = 16
        rng = np.random.default_rng(5)
        s = rng.integers(0, 5, (n, n), dtype=np.int64)
        t = rng.integers(0, 5, (n, n), dtype=np.int64)
        s[rng.random((n, n)) < 0.2] = INF
        t[rng.random((n, n)) < 0.2] = INF

        # Sampled witnesses through the ring engine (square clique).
        ring_clique = CongestedClique(n)

        def engine(a, b, phase):
            return distance_product_ring(ring_clique, a, b, 5, phase=phase)

        sampled = find_witnesses(
            ring_clique, s, t, engine, rng=np.random.default_rng(2)
        )

        # Native witnesses through the 3D engine (cube clique, padded).
        from repro.runtime import make_clique, pad_matrix

        cube = make_clique(n, "semiring")
        sp = pad_matrix(s, cube.n, fill=INF)
        tp = pad_matrix(t, cube.n, fill=INF)
        product, native = distance_product(cube, sp, tp, with_witnesses=True)

        expected = MIN_PLUS.matmul(s, t)
        for u in range(n):
            for v in range(n):
                if expected[u, v] >= INF:
                    continue
                kw = int(sampled.witnesses[u, v])
                kn = int(native[u, v])
                assert s[u, kw] + t[kw, v] == expected[u, v]
                assert sp[u, kn] + tp[kn, v] == expected[u, v]

    def test_detection_positive_certified(self):
        # Any positive detection corresponds to a real cycle (soundness
        # sweep across engines and ks on mixed graphs).
        for seed in range(3):
            g = gnp_random_graph(13, 0.15, seed=seed)
            for k in (3, 4):
                for method in ("bilinear", "semiring"):
                    res = detect_k_cycle(
                        g, k, trials=10, rng=np.random.default_rng(seed),
                        method=method,
                    )
                    if res.value:
                        assert has_k_cycle_reference(g, k), (seed, k, method)
