"""Cross-validation of the centralised reference oracles.

The distributed tests lean on these oracles, so the oracles themselves are
checked against *independent* methods (trace formulas vs enumeration,
BFS girth vs enumeration, Floyd-Warshall vs BFS on unit weights).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INF
from repro.errors import NegativeCycleError
from repro.graphs import (
    Graph,
    apsp_reference,
    bfs_distances_reference,
    count_cycles_brute,
    cycle_graph,
    four_cycle_count_reference,
    girth_reference,
    gnp_random_graph,
    triangle_count_reference,
    validate_routing_table,
)


class TestTriangleOracle:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_trace_equals_enumeration(self, seed):
        g = gnp_random_graph(14, 0.35, seed=seed)
        assert triangle_count_reference(g) == count_cycles_brute(g, 3)

    def test_directed_triangle(self):
        g = Graph.from_edges(3, [(0, 1), (1, 2), (2, 0)], directed=True)
        assert triangle_count_reference(g) == 1
        g2 = Graph.from_edges(3, [(0, 1), (1, 2), (0, 2)], directed=True)
        assert triangle_count_reference(g2) == 0


class TestFourCycleOracle:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_codegree_equals_enumeration(self, seed):
        g = gnp_random_graph(12, 0.35, seed=seed)
        assert four_cycle_count_reference(g) == count_cycles_brute(g, 4)

    def test_single_c4(self):
        assert four_cycle_count_reference(cycle_graph(4)) == 1

    def test_k4_has_three_c4(self):
        g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert four_cycle_count_reference(g) == 3


class TestCycleEnumeration:
    def test_cn_has_one_cycle(self):
        for k in (3, 5, 7):
            assert count_cycles_brute(cycle_graph(k), k) == 1
            assert count_cycles_brute(cycle_graph(k), k - 1 if k > 3 else 4) == 0

    def test_directed_cycle_counted_once(self):
        g = cycle_graph(5, directed=True)
        assert count_cycles_brute(g, 5) == 1

    def test_k_less_than_3_rejected(self):
        with pytest.raises(ValueError):
            count_cycles_brute(cycle_graph(4), 2)


class TestGirthOracle:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_girth_matches_enumeration(self, seed):
        g = gnp_random_graph(12, 0.25, seed=seed)
        girth = girth_reference(g)
        if girth >= INF:
            for k in range(3, 8):
                assert not count_cycles_brute(g, k)
        else:
            assert count_cycles_brute(g, girth) > 0
            for k in range(3, girth):
                assert not count_cycles_brute(g, k)

    def test_directed_girth_two(self):
        g = Graph.from_edges(4, [(0, 1), (1, 0)], directed=True)
        assert girth_reference(g) == 2


class TestApspOracle:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_floyd_warshall_matches_bfs_on_unit_weights(self, seed):
        g = gnp_random_graph(12, 0.3, seed=seed)
        assert np.array_equal(apsp_reference(g), bfs_distances_reference(g))

    def test_negative_cycle_detected(self):
        g = Graph.from_weighted_edges(
            3, [(0, 1, 1), (1, 2, -3), (2, 0, 1)], directed=True
        )
        with pytest.raises(NegativeCycleError):
            apsp_reference(g)

    def test_negative_edges_without_cycle(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 5), (1, 2, -2)], directed=True)
        dist = apsp_reference(g)
        assert dist[0, 2] == 3


class TestRoutingTableValidator:
    def test_accepts_correct_table(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 2), (1, 2, 3)], directed=True)
        dist = apsp_reference(g)
        hop = np.full((3, 3), -1, dtype=np.int64)
        hop[0, 1] = 1
        hop[0, 2] = 1
        hop[1, 2] = 2
        assert validate_routing_table(g, dist, hop)

    def test_rejects_wrong_hop(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 2), (1, 2, 3)], directed=True)
        dist = apsp_reference(g)
        hop = np.full((3, 3), -1, dtype=np.int64)
        hop[0, 1] = 1
        hop[0, 2] = 2  # not an edge from 0
        hop[1, 2] = 2
        assert not validate_routing_table(g, dist, hop)
