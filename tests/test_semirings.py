"""Tests for the semiring abstractions: laws, products, witnesses."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
)
from repro.constants import INF


def _random_matrix(rng, semiring, size):
    if semiring is BOOLEAN:
        return (rng.random((size, size)) < 0.5).astype(np.int64)
    if semiring is MIN_PLUS:
        mat = rng.integers(0, 30, (size, size), dtype=np.int64)
        mat[rng.random((size, size)) < 0.2] = INF
        return mat
    if semiring is MAX_MIN:
        return rng.integers(-20, 20, (size, size), dtype=np.int64)
    return rng.integers(-9, 10, (size, size), dtype=np.int64)


class TestSemiringLaws:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_matmul_associative(self, seed):
        rng = np.random.default_rng(seed)
        for semiring in ALL_SEMIRINGS:
            a, b, c = (_random_matrix(rng, semiring, 5) for _ in range(3))
            left = semiring.matmul(semiring.matmul(a, b), c)
            right = semiring.matmul(a, semiring.matmul(b, c))
            if semiring is MIN_PLUS:
                # Saturated arithmetic: compare below the sentinel.
                both = (left < INF) & (right < INF)
                assert np.array_equal(left[both], right[both])
                assert np.array_equal(left >= INF, right >= INF)
            else:
                assert np.array_equal(left, right)

    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_add_commutative(self, seed):
        rng = np.random.default_rng(seed)
        for semiring in ALL_SEMIRINGS:
            a = _random_matrix(rng, semiring, 6)
            b = _random_matrix(rng, semiring, 6)
            assert np.array_equal(semiring.add(a, b), semiring.add(b, a))

    def test_zero_is_additive_identity(self):
        rng = np.random.default_rng(0)
        for semiring in ALL_SEMIRINGS:
            a = _random_matrix(rng, semiring, 4)
            z = semiring.zeros((4, 4))
            assert np.array_equal(semiring.add(a, z), a)


class TestMinPlus:
    def test_matches_naive(self, rng):
        x = _random_matrix(rng, MIN_PLUS, 7)
        y = _random_matrix(rng, MIN_PLUS, 7)
        product = MIN_PLUS.matmul(x, y)
        for i in range(7):
            for j in range(7):
                want = INF
                for k in range(7):
                    if x[i, k] < INF and y[k, j] < INF:
                        want = min(want, int(x[i, k]) + int(y[k, j]))
                assert product[i, j] == want

    def test_witnesses_attain_minimum(self, rng):
        x = _random_matrix(rng, MIN_PLUS, 8)
        y = _random_matrix(rng, MIN_PLUS, 8)
        product, witness = MIN_PLUS.matmul_with_witness(x, y)
        for i in range(8):
            for j in range(8):
                if product[i, j] < INF:
                    k = witness[i, j]
                    assert x[i, k] + y[k, j] == product[i, j]

    def test_inf_saturation(self):
        x = np.full((2, 2), INF, dtype=np.int64)
        y = np.full((2, 2), -5, dtype=np.int64)
        assert np.all(MIN_PLUS.matmul(x, y) >= INF)

    def test_add_with_witness_selects_smaller(self):
        a = np.array([[3, 1]], dtype=np.int64)
        b = np.array([[2, 5]], dtype=np.int64)
        wa = np.array([[10, 11]], dtype=np.int64)
        wb = np.array([[20, 21]], dtype=np.int64)
        merged, wit = MIN_PLUS.add_with_witness(a, wa, b, wb)
        assert merged.tolist() == [[2, 1]]
        assert wit.tolist() == [[20, 11]]


class TestBoolean:
    def test_matches_thresholded_integer_product(self, rng):
        x = _random_matrix(rng, BOOLEAN, 9)
        y = _random_matrix(rng, BOOLEAN, 9)
        assert np.array_equal(BOOLEAN.matmul(x, y), ((x @ y) > 0).astype(np.int64))

    def test_add_is_or(self):
        a = np.array([[0, 1], [1, 0]], dtype=np.int64)
        b = np.array([[1, 1], [0, 0]], dtype=np.int64)
        assert BOOLEAN.add(a, b).tolist() == [[1, 1], [1, 0]]


class TestMaxMin:
    def test_matches_naive(self, rng):
        x = _random_matrix(rng, MAX_MIN, 6)
        y = _random_matrix(rng, MAX_MIN, 6)
        product = MAX_MIN.matmul(x, y)
        for i in range(6):
            for j in range(6):
                want = max(min(int(x[i, k]), int(y[k, j])) for k in range(6))
                assert product[i, j] == want

    def test_witnesses(self, rng):
        x = _random_matrix(rng, MAX_MIN, 5)
        y = _random_matrix(rng, MAX_MIN, 5)
        product, witness = MAX_MIN.matmul_with_witness(x, y)
        for i in range(5):
            for j in range(5):
                k = witness[i, j]
                assert min(x[i, k], y[k, j]) == product[i, j]


class TestWitnessSupport:
    def test_plus_times_has_no_witnesses(self):
        with pytest.raises(NotImplementedError):
            PLUS_TIMES.matmul_with_witness(np.eye(2, dtype=np.int64), np.eye(2, dtype=np.int64))

    def test_flags(self):
        assert PLUS_TIMES.is_ring
        assert not MIN_PLUS.is_ring
        assert MIN_PLUS.has_witnesses
        assert MAX_MIN.has_witnesses
        assert not BOOLEAN.has_witnesses
