#!/usr/bin/env python
"""Widest-path (bottleneck) routing on a capacitated network.

The semiring extension demo: the same §2.1 engine that powers shortest
paths runs over the (max, min) semiring and computes, for every node pair,
the best achievable bottleneck bandwidth and a routing table that realises
it -- the classic "maximum-bandwidth route" primitive of network planning.

Run: ``python examples/bottleneck_routing.py [n]`` (default 27).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import apsp_bottleneck, apsp_exact
from repro.constants import INF
from repro.distances import bottleneck_reference, validate_bottleneck_routing
from repro.graphs import random_weighted_graph


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 27
    graph = random_weighted_graph(n, 0.2, max_weight=100, seed=11)
    print(f"Capacitated network: {graph} (capacities 1..100)\n")

    widest = apsp_bottleneck(graph, with_routing_tables=True)
    assert np.array_equal(widest.value, bottleneck_reference(graph))
    ok = validate_bottleneck_routing(
        graph, widest.value, widest.extras["next_hop"]
    )
    print(f"bottleneck APSP (max-min semiring) : {widest.rounds:6d} rounds"
          f"   [routing tables valid: {ok}]")

    shortest = apsp_exact(graph, with_routing_tables=True)
    print(f"shortest-path APSP (min-plus)      : {shortest.rounds:6d} rounds")

    # Compare a widest route with a shortest route for one pair.
    reach = widest.value > -INF
    np.fill_diagonal(reach, False)
    pairs = np.argwhere(reach)
    if len(pairs):
        u, v = map(int, pairs[len(pairs) // 2])
        hop_w = widest.extras["next_hop"]
        hop_s = shortest.extras["next_hop"]

        def walk(hop, src, dst):
            path = [src]
            while path[-1] != dst and len(path) <= graph.n:
                path.append(int(hop[path[-1], dst]))
            return path

        print(f"\npair ({u} -> {v}):")
        print(f"  widest route   {walk(hop_w, u, v)}  "
              f"(bandwidth {widest.value[u, v]})")
        print(f"  shortest route {walk(hop_s, u, v)}  "
              f"(distance  {shortest.value[u, v]})")
        print("\nSame engine, different semiring -- Theorem 1 is generic.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
