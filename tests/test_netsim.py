"""Network cost model suite (PR 10).

Pins the three contracts of :mod:`repro.netsim` and the meter-stack seam
it rides on:

1. **Purely observational**: attaching a transport cost model changes no
   answer, no round, no word, no per-phase meter entry -- across
   workloads, topologies, fault schemes and sharded executors.  The
   charged bill always comes from the canonical relay schedule; only the
   *priced* schedule is topology-aware.
2. **The physics is right**: per-topology link loads (full-bisection
   pairs, ring chord chains, fat-tree ECMP uplinks) match hand-computed
   values, and at equal rounds the alpha-beta makespan respects the
   bisection ordering ``full <= fat-tree <= ring``.
3. **Round-equivalent optimisation**: the topology-aware relay-slot
   assignment and the pod-aligned shard placement never change rounds or
   values -- they may only improve the priced makespan, and on the
   concentrated-demand ring workload they strictly must.
"""

from __future__ import annotations

import json

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique.accounting import CostMeter, MeterStack, PhaseCost
from repro.clique.executor import placement_ranges, shard_ranges
from repro.clique.scheduling import relay_schedule
from repro.cli import main
from repro.constants import INF
from repro.engine.session import EngineSession, make_clique
from repro.faults import FaultPlan
from repro.graphs import random_weighted_digraph
from repro.netsim import (
    CostModelSpec,
    FatTree,
    FullBisection,
    Ring,
    TransportMeter,
    parse_topology,
    schedule_makespan,
)
from repro.runtime import pad_matrix

TOPOLOGIES = ["full", "fat-tree:2", "ring"]


def _closure_run(n, *, cost_model=None, shards=1, threads=1, fault=None):
    """One min-plus closure; returns (clique, value[:n, :n])."""
    kwargs = {}
    if fault is not None:
        scheme, t = fault
        kwargs.update(
            fault_plan=FaultPlan(t=t, seed=0, kind="byzantine"),
            fault_tolerance=t,
            fault_scheme=scheme,
        )
    clique = make_clique(
        n, "semiring", shards=shards, threads=threads,
        cost_model=cost_model, **kwargs,
    )
    graph = random_weighted_digraph(n, 0.35, 9, seed=0)
    session = EngineSession(clique, "semiring", MIN_PLUS)
    padded = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)
    np.fill_diagonal(padded, 0)
    return clique, session.closure(padded)[:n, :n]


class TestTopologies:
    def test_full_bisection_pair_loads(self):
        topo = FullBisection(4)
        # Two words 0->1, one word 2->3: busiest link carries 2.
        stats = topo.leg_stats(
            np.array([0, 0, 2]), np.array([1, 1, 3]), np.array([1, 1, 1])
        )
        assert stats.max_link_words == 2
        assert stats.active_links == 2
        assert stats.mean_link_words == pytest.approx(1.5)
        assert stats.max_hops == 1

    def test_full_bisection_ignores_self_and_zero(self):
        topo = FullBisection(4)
        stats = topo.leg_stats(
            np.array([0, 1, 2]), np.array([0, 1, 3]), np.array([5, 5, 0])
        )
        assert stats.max_link_words == 0
        assert stats.active_links == 0
        assert stats.max_hops == 0

    def test_ring_chain_loads_hand_computed(self):
        # n=6, one word 0->2 clockwise: links 0->1 and 1->2 each carry it.
        topo = Ring(6)
        stats = topo.leg_stats(np.array([0]), np.array([2]), np.array([3]))
        assert stats.max_link_words == 3
        assert stats.active_links == 2  # two clockwise hops
        assert stats.max_hops == 2

    def test_ring_takes_shorter_direction(self):
        # 0 -> 5 on n=6 is one counter-clockwise hop, not five clockwise.
        topo = Ring(6)
        stats = topo.leg_stats(np.array([0]), np.array([5]), np.array([1]))
        assert stats.max_hops == 1
        assert stats.active_links == 1

    def test_ring_overlapping_chords_sum(self):
        # 0->2 and 1->3 clockwise share link 1->2: it carries both words.
        topo = Ring(6)
        stats = topo.leg_stats(
            np.array([0, 1]), np.array([2, 3]), np.array([1, 1])
        )
        assert stats.max_link_words == 2

    def test_ring_wraparound_chain(self):
        # 5 -> 1 on n=6 goes clockwise through 0: links 5->0 and 0->1.
        topo = Ring(6)
        stats = topo.leg_stats(np.array([5]), np.array([1]), np.array([2]))
        assert stats.max_link_words == 2
        assert stats.active_links == 2
        assert stats.max_hops == 2

    def test_fat_tree_intra_pod_stays_off_uplinks(self):
        # k=2 pods over n=8: hosts 0-3 in pod 0.  Intra-pod traffic loads
        # host links only; 2 hops through the pod switch.
        topo = FatTree(8, k=2)
        stats = topo.leg_stats(np.array([0]), np.array([1]), np.array([4]))
        assert stats.max_hops == 2
        assert stats.max_link_words == 4

    def test_fat_tree_uplinks_split_inter_pod_load(self):
        # 8 hosts, 2 pods, hosts_per_pod=4 -> 2 uplinks per pod (2:1
        # oversubscription).  8 inter-pod words from pod 0 spread over the
        # 2 uplinks: 4 words per uplink, above the per-host-link 8.
        topo = FatTree(8, k=2)
        assert topo.group_size == 4
        stats = topo.leg_stats(np.array([0]), np.array([4]), np.array([8]))
        assert stats.max_hops == 4
        assert stats.max_link_words == 8  # host 0's access link dominates

    def test_fat_tree_uplink_becomes_bottleneck(self):
        # Four sources in pod 0, one word each to pod 1: each host link
        # carries 1, but all four words share pod 0's two uplinks -> 2.
        topo = FatTree(8, k=2)
        stats = topo.leg_stats(
            np.arange(4), np.array([4, 5, 6, 7]), np.ones(4, dtype=np.int64)
        )
        assert stats.max_link_words == 2

    def test_distance_matrices(self):
        ring = Ring(6).distance_matrix()
        assert ring[0, 3] == 3 and ring[0, 5] == 1 and ring[2, 2] == 0
        full = FullBisection(4).distance_matrix()
        assert full[0, 1] == 1 and full[2, 2] == 0
        fat = FatTree(8, k=2).distance_matrix()
        assert fat[0, 1] == 2 and fat[0, 4] == 4 and fat[3, 3] == 0

    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("full", "full"),
            ("full-bisection", "full"),
            ("ring", "ring"),
            ("fat-tree", "fat-tree:4"),
            ("fat-tree:2", "fat-tree:2"),
        ],
    )
    def test_parse_topology(self, spec, expected):
        assert parse_topology(spec, 16).name == expected

    @pytest.mark.parametrize("spec", ["torus", "fat-tree:0", "fat-tree:x", ""])
    def test_parse_topology_rejects_garbage(self, spec):
        with pytest.raises(ValueError):
            parse_topology(spec, 16)

    def test_topologies_need_two_nodes(self):
        with pytest.raises(ValueError):
            Ring(1)


class TestMeterStack:
    def test_fan_out_in_order(self):
        a, b = CostMeter(), CostMeter()
        stack = MeterStack(a, b)
        stack.charge(PhaseCost("p", "route", 3, 30, 3, 10, 10))
        assert a.rounds == b.rounds == 3
        assert a.phases == b.phases

    def test_rejects_non_observer(self):
        with pytest.raises(TypeError):
            MeterStack(CostMeter()).add_observer(object())

    def test_remove_is_identity_matched(self):
        a, b = CostMeter(), CostMeter()
        stack = MeterStack(a)
        stack.add_observer(b)
        stack.remove_observer(b)
        assert stack.observers == (a,)
        with pytest.raises(ValueError):
            stack.remove_observer(b)

    def test_muted_skips_and_restores(self):
        a, b = CostMeter(), CostMeter()
        stack = MeterStack(a, b)
        with stack.muted(b):
            stack.charge(PhaseCost("p", "route", 2, 20, 2, 10, 10))
        stack.charge(PhaseCost("q", "route", 1, 10, 1, 5, 5))
        assert a.rounds == 3 and b.rounds == 1

    def test_muted_is_exception_safe(self):
        a = CostMeter()
        stack = MeterStack(a)
        with pytest.raises(RuntimeError):
            with stack.muted(a):
                raise RuntimeError("boom")
        stack.charge(PhaseCost("p", "route", 1, 10, 1, 5, 5))
        assert a.rounds == 1

    def test_wants_traffic_tracks_live_observers(self):
        stack = MeterStack(CostMeter())
        assert not stack.wants_traffic
        transport = TransportMeter(Ring(4))
        stack.add_observer(transport)
        assert stack.wants_traffic
        with stack.muted(transport):
            assert not stack.wants_traffic
        assert stack.wants_traffic


class TestSerialisation:
    def test_phase_cost_round_trip(self):
        cost = PhaseCost("p/x", "route", 4, 40, payloads=8,
                         max_send_words=10, max_recv_words=12)
        assert PhaseCost.from_dict(cost.to_dict()) == cost

    def test_cost_meter_round_trip(self):
        meter = CostMeter()
        meter.charge(PhaseCost("a", "route", 3, 30, payloads=2,
                               max_send_words=5, max_recv_words=6))
        meter.charge(PhaseCost("b", "broadcast", 1, 16, 4, 4, 4))
        clone = CostMeter.from_dict(meter.to_dict())
        assert clone.phases == meter.phases
        assert clone.rounds == meter.rounds
        assert clone.words == meter.words
        assert clone.to_dict() == meter.to_dict()

    def test_meter_dict_is_json_clean(self):
        clique, _ = _closure_run(8)
        payload = json.loads(json.dumps(clique.meter.to_dict()))
        assert payload["rounds"] == clique.meter.rounds
        assert CostMeter.from_dict(payload).phases == clique.meter.phases

    def test_cli_json_round_trips_meter(self, capsys):
        assert main(["matmul", "16", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        meter = CostMeter.from_dict(payload["meter"])
        assert meter.rounds == payload["meter"]["rounds"] > 0
        assert "completion" not in payload

    def test_cli_json_includes_completion_and_faults(self, capsys):
        assert main([
            "matmul", "16", "--json", "--topology", "ring", "--faults", "1",
        ]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["completion"]["topology"] == "ring"
        assert payload["completion"]["makespan_us"] > 0
        assert payload["faults"]["scheme"] == "replicate"
        abstract = CostMeter.from_dict(payload["faults"]["abstract_meter"])
        assert abstract.rounds < payload["meter"]["rounds"]


class TestObservational:
    """The tentpole invariant: the cost model never changes the bill."""

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_closure_bit_identical(self, topology):
        base_clique, base_value = _closure_run(16)
        clique, value = _closure_run(16, cost_model=CostModelSpec(topology))
        assert np.array_equal(value, base_value)
        assert clique.meter.to_dict() == base_clique.meter.to_dict()
        assert clique.transport.makespan_us > 0

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    @pytest.mark.parametrize("scheme", ["replicate", "coded"])
    def test_faulted_closure_bit_identical(self, topology, scheme):
        base_clique, base_value = _closure_run(16, fault=(scheme, 1))
        clique, value = _closure_run(
            16, fault=(scheme, 1), cost_model=CostModelSpec(topology)
        )
        assert np.array_equal(value, base_value)
        assert clique.meter.to_dict() == base_clique.meter.to_dict()
        assert (clique.abstract_meter.to_dict()
                == base_clique.abstract_meter.to_dict())

    @pytest.mark.parametrize("topology", TOPOLOGIES)
    def test_sharded_threaded_closure_bit_identical(self, topology):
        base_clique, base_value = _closure_run(16, shards=2, threads=2)
        clique, value = _closure_run(
            16, shards=2, threads=2, cost_model=CostModelSpec(topology)
        )
        assert np.array_equal(value, base_value)
        assert clique.meter.to_dict() == base_clique.meter.to_dict()

    def test_matmul_session_bit_identical(self):
        rng = np.random.default_rng(7)
        s = rng.integers(-9, 10, (16, 16), dtype=np.int64)
        t = rng.integers(-9, 10, (16, 16), dtype=np.int64)

        def run(cost_model):
            clique = make_clique(16, "bilinear", cost_model=cost_model)
            session = EngineSession(clique, "bilinear")
            value = session.multiply(
                pad_matrix(s, clique.n), pad_matrix(t, clique.n)
            )
            return clique, value

        base_clique, base_value = run(None)
        clique, value = run(CostModelSpec("ring"))
        assert np.array_equal(value, base_value)
        assert np.array_equal(value[:16, :16], s @ t)
        assert clique.meter.to_dict() == base_clique.meter.to_dict()

    def test_makespan_ordering_full_fat_tree_ring(self):
        makespans = {}
        for topology in TOPOLOGIES:
            clique, _ = _closure_run(16, cost_model=CostModelSpec(topology))
            makespans[topology] = clique.transport.makespan_us
        assert (makespans["full"] <= makespans["fat-tree:2"]
                <= makespans["ring"])

    def test_session_cost_model_and_transport_property(self):
        session = EngineSession(
            make_clique(16, "semiring"), "semiring", MIN_PLUS,
            cost_model=CostModelSpec("ring"),
        )
        assert session.transport is not None
        assert session.transport.topology.name == "ring"
        bare = EngineSession(make_clique(16, "semiring"), "semiring", MIN_PLUS)
        assert bare.transport is None


class TestTransportMeter:
    def test_bind_rejects_size_mismatch(self):
        meter = TransportMeter(Ring(8))
        with pytest.raises(ValueError):
            meter.bind(16, 16)

    def test_rejects_bad_link_parameters(self):
        with pytest.raises(ValueError):
            TransportMeter(Ring(4), link_gbps=0)
        with pytest.raises(ValueError):
            TransportMeter(Ring(4), link_latency_us=-1)

    def test_uniform_fallback_prices_trafficless_charges(self):
        meter = TransportMeter(FullBisection(4), word_bits=64)
        meter.observe(PhaseCost("p", "route", 2, 24, 4, 8, 8))
        report = meter.report()
        assert len(report.phases) == 1
        assert report.phases[0].kind == "uniform"
        # 24 words over 12 ordered pairs -> 2 words per link.
        assert report.phases[0].max_link_words == pytest.approx(2.0)

    def test_reset_clears_phases(self):
        meter = TransportMeter(Ring(4))
        meter.observe(PhaseCost("p", "route", 1, 6, 2, 3, 3))
        assert meter.makespan_us > 0
        meter.reset()
        assert meter.makespan_us == 0
        assert meter.report().phases == []

    def test_report_totals_are_sums(self):
        clique, _ = _closure_run(8, cost_model=CostModelSpec("ring"))
        report = clique.transport.report()
        assert report.makespan_us == pytest.approx(
            sum(p.makespan_us for p in report.phases)
        )
        assert 0 <= report.queueing_share <= 1
        assert 0 <= report.max_link_utilisation <= 1
        # The dict and the table agree with the report.
        payload = report.to_dict()
        assert payload["topology"] == "ring"
        assert payload["makespan_us"] == pytest.approx(report.makespan_us)
        assert "TOTAL" in report.table()

    def test_bandwidth_scales_serialization_only(self):
        fast, _ = _closure_run(
            8, cost_model=CostModelSpec("ring", link_gbps=200.0)
        )
        slow, _ = _closure_run(
            8, cost_model=CostModelSpec("ring", link_gbps=100.0)
        )
        f, s = fast.transport.report(), slow.transport.report()
        assert f.serialization_us == pytest.approx(s.serialization_us / 2)
        assert f.latency_us == pytest.approx(s.latency_us)


class TestRoundEquivalentOptimisation:
    def test_relay_placement_keeps_rounds_and_improves_makespan(self):
        n = 16
        ring = Ring(n)
        demand = {(u, v): 20 for u in (7, 8, 9) for v in (7, 8, 9) if u != v}
        canonical = relay_schedule(dict(demand), n)
        placed = relay_schedule(dict(demand), n, ring)
        assert placed.rounds == canonical.rounds
        assert (schedule_makespan(placed, ring)
                < schedule_makespan(canonical, ring))

    def test_schedule_cache_is_topology_keyed(self):
        n = 16
        demand = {(u, v): 20 for u in (7, 8, 9) for v in (7, 8, 9) if u != v}
        assert relay_schedule(dict(demand), n) is relay_schedule(
            dict(demand), n
        )
        assert relay_schedule(dict(demand), n, Ring(n)) is not relay_schedule(
            dict(demand), n
        )

    def test_placement_ranges_snap_to_group(self):
        ranges = placement_ranges(16, 3, group=4)
        assert ranges[0][0] == 0 and ranges[-1][1] == 16
        for (_, hi), (lo, _) in zip(ranges, ranges[1:]):
            assert hi == lo
        for lo, _ in ranges[1:]:
            assert lo % 4 == 0

    def test_placement_ranges_drop_colliding_cuts(self):
        # 5 shards of batch 8 at group 4: only one interior multiple of 4
        # exists, so the split merges down rather than emitting off-group
        # or empty ranges.
        ranges = placement_ranges(8, 5, group=4)
        assert ranges == [(0, 4), (4, 8)]

    def test_placement_ranges_degenerate_to_shard_ranges(self):
        assert placement_ranges(16, 4) == shard_ranges(16, 4)
        assert placement_ranges(16, 4, group=1) == shard_ranges(16, 4)
        assert placement_ranges(3, 1, group=4) == shard_ranges(3, 1)

    def test_fat_tree_hint_reaches_sharded_executor(self):
        clique = make_clique(
            16, "semiring", shards=2,
            cost_model=CostModelSpec("fat-tree:2"),
        )
        assert clique.executor.placement_group == (
            clique.transport.topology.group_size
        )

    def test_hint_never_touches_serial_singleton(self):
        clique = make_clique(16, "semiring", cost_model=CostModelSpec("fat-tree:2"))
        assert clique.executor.shards == 1
        assert clique.executor.placement_group is None
