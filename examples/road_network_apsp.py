#!/usr/bin/env python
"""All-pairs shortest paths on a weighted road network (§3.3).

Workload: a grid "road network" with random travel times.  We run three of
the paper's APSP variants on it:

* Corollary 6 -- exact distances + routing tables via min-plus squaring;
* Corollary 8 / Lemma 19 -- exploiting the small weighted diameter;
* Theorem 9 -- the (1+o(1))-approximation, with the measured ratio.

Run: ``python examples/road_network_apsp.py [rows] [cols]`` (default 4x5).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import INF, apsp_approx, apsp_exact, apsp_small_diameter
from repro.graphs import apsp_reference, grid_graph, validate_routing_table


def main() -> int:
    rows = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    cols = int(sys.argv[2]) if len(sys.argv) > 2 else 5
    graph = grid_graph(rows, cols, max_weight=9, seed=7)
    reference = apsp_reference(graph)
    diameter = int(reference[reference < INF].max())
    print(f"Road network: {rows}x{cols} grid, {graph.edge_count} road segments, "
          f"weighted diameter {diameter}\n")

    exact = apsp_exact(graph)
    assert np.array_equal(exact.value, reference)
    ok = validate_routing_table(graph, exact.value, exact.extras["next_hop"])
    print(f"exact APSP + routing tables (Cor. 6) : {exact.rounds:6d} rounds"
          f"   [tables valid: {ok}]")

    bounded = apsp_small_diameter(graph)
    assert np.array_equal(bounded.value, reference)
    print(f"small-diameter APSP (Cor. 8)         : {bounded.rounds:6d} rounds"
          f"   [U guessed: {bounded.extras['diameter_guess']}]")

    approx = apsp_approx(graph, delta=0.3)
    finite = reference < INF
    ratio = float(np.max(approx.value[finite] / np.maximum(reference[finite], 1)))
    print(f"(1+o(1))-approx APSP (Thm. 9)        : {approx.rounds:6d} rounds"
          f"   [measured ratio {ratio:.3f}, bound "
          f"{approx.extras['ratio_bound']:.3f}]")

    # Demonstrate an actual route from the routing table.
    hop = exact.extras["next_hop"]
    u, v = 0, graph.n - 1
    path = [u]
    while path[-1] != v:
        path.append(int(hop[path[-1], v]))
    print(f"\nrouted path corner-to-corner: {' -> '.join(map(str, path))}"
          f"  (cost {exact.value[u, v]})")
    return 0


if __name__ == "__main__":
    sys.exit(main())
