"""Connected components via Boolean transitive closure.

Not a headline result of the paper, but the natural first consumer of its
Boolean matrix-multiplication machinery: the reachability matrix
(``O(log n)`` Boolean squarings, ``O~(n^rho)`` rounds on the §2.2 engine)
immediately yields connected components -- each node labels itself with the
smallest node id it can reach, entirely locally from its reachability row.
Contrast with the ``O(log log n)`` MST-based component algorithms [51] the
related-work section discusses: this is the *algebraic* route.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import BOOLEAN
from repro.clique.model import CongestedClique, ScheduleMode
from repro.distances.bounded import reachability
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, make_clique, pad_matrix


def connected_components(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Component labels (smallest reachable id) in ``O~(n^rho)`` rounds.

    For directed inputs this computes *weakly* connected components (the
    closure of the symmetrised adjacency), the standard convention.
    """
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    session = EngineSession(clique, method, BOOLEAN)
    adjacency = graph.adjacency
    if graph.directed:
        adjacency = ((adjacency + adjacency.T) > 0).astype(np.int64)
    padded = pad_matrix(adjacency, clique.n)
    reach = reachability(clique, padded, session=session, phase="components")
    labels = np.array(
        [int(np.nonzero(reach[v])[0].min()) for v in range(n)], dtype=np.int64
    )
    count = len(set(labels.tolist()))
    return RunResult(
        value=labels,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"component_count": count},
    )


def components_reference(graph: Graph) -> np.ndarray:
    """Centralised oracle: BFS labelling with smallest-id representatives."""
    n = graph.n
    adjacency = graph.adjacency
    if graph.directed:
        adjacency = ((adjacency + adjacency.T) > 0).astype(np.int64)
    labels = np.full(n, -1, dtype=np.int64)
    for start in range(n):
        if labels[start] != -1:
            continue
        queue = [start]
        labels[start] = start
        while queue:
            u = queue.pop()
            for w in np.nonzero(adjacency[u])[0]:
                if labels[w] == -1:
                    labels[w] = start
                    queue.append(int(w))
    return labels


__all__ = ["connected_components", "components_reference"]
