"""Shared runtime glue between graphs and the engine sessions.

Graph algorithms in the paper implicitly assume the clique size has whatever
arithmetic shape the matmul engine needs ("assume for convenience that
``n^{1/3}`` is an integer").  This module centralises the lifting: an
``n``-node graph problem runs on the smallest valid clique ``N >= n`` for
the chosen engine, with matrices padded by isolated nodes (all-zero
adjacency rows / all-``INF`` weight rows), which changes no answers and only
inflates constants.

It also provides :class:`RunResult`, the uniform return type of every
application-level algorithm: the answer plus the communication bill.

Engine dispatch lives in :mod:`repro.engine`: algorithms bind an
:class:`~repro.engine.EngineSession` (clique + matmul method + algebra) and
drive it through ``multiply``/``square``/``power``/``closure``.  The
``integer_product``/``boolean_product`` helpers below are thin one-shot
wrappers over that session API, kept for callers that need a single product
without holding a session.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algebra.semirings import BOOLEAN, PLUS_TIMES
from repro.clique.accounting import CostMeter
from repro.clique.executor import make_executor
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.engine import (
    MATMUL_METHODS,
    EngineSession,
    make_clique,
    open_session,
    required_clique_size,
)


@dataclass
class RunResult:
    """The outcome of one distributed computation.

    Attributes:
        value: the algorithm's answer (count, boolean, matrix, ...).
        rounds: total congested-clique rounds consumed.
        clique_size: the (possibly padded) clique the run used.
        meter: the full per-phase cost breakdown.
        extras: algorithm-specific diagnostics (e.g. approximation ratio
            bounds, recursion depth, trial counts).
    """

    value: Any
    rounds: int
    clique_size: int
    meter: CostMeter
    extras: dict[str, Any] = field(default_factory=dict)


#: Module-level generator behind ``seed=None``: it advances across calls,
#: so back-to-back randomised runs (e.g. repeated colour-coding trial
#: batches) explore fresh randomness instead of replaying the first batch.
_SHARED_RNG = np.random.default_rng()


def resolve_rng(
    rng: np.random.Generator | None = None, seed: int | None = 0
) -> np.random.Generator:
    """The one rng-resolution rule every randomised algorithm threads through.

    An explicit ``rng`` always wins.  Otherwise ``seed`` picks a freshly
    seeded generator -- the default ``seed=0`` keeps every call
    reproducible, which is what the test suites and the CLI rely on --
    while ``seed=None`` selects the shared module-level stream, which
    *advances across calls*: repeated trial batches then buy genuinely new
    coverage instead of re-running identical draws (the bug this replaces
    was a ``default_rng(0)`` constructed inside each call).
    """
    if rng is not None:
        return rng
    if seed is None:
        return _SHARED_RNG
    return np.random.default_rng(seed)


def snapshot_shared_rng() -> dict[str, Any]:
    """Capture the shared stream's state for later replay.

    Returns a deep copy of the bit-generator state, so the snapshot stays
    valid however far the stream advances afterwards.  Pair with
    :func:`restore_shared_rng` to replay a randomised run (fault-plan sweeps,
    colour-coding trial batches) from a logged point without re-running
    everything that came before it.
    """
    return copy.deepcopy(_SHARED_RNG.bit_generator.state)


def restore_shared_rng(state: dict[str, Any]) -> None:
    """Rewind the shared stream to a :func:`snapshot_shared_rng` capture.

    The generator object itself is preserved (callers that already hold a
    reference via ``resolve_rng(seed=None)`` see the rewound stream), only
    its state is replaced.
    """
    _SHARED_RNG.bit_generator.state = copy.deepcopy(state)


def reseed_shared_rng(seed: int) -> dict[str, Any]:
    """Reset the shared stream to a fresh ``default_rng(seed)`` state.

    Returns the state that was replaced (a :func:`snapshot_shared_rng`-style
    capture), so callers can reseed for a reproducible sub-experiment and
    then hand the stream back untouched.
    """
    previous = snapshot_shared_rng()
    _SHARED_RNG.bit_generator.state = np.random.default_rng(seed).bit_generator.state
    return previous


def pad_matrix(matrix: np.ndarray, size: int, fill: int = 0) -> np.ndarray:
    """Zero/INF-pad a square matrix up to ``size`` (isolated virtual nodes).

    The diagonal of the padded region is forced to ``0`` so that padded
    weight matrices remain valid (``W[u, u] = 0``).
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    n = matrix.shape[0]
    if size < n:
        raise ValueError(f"cannot pad {n} down to {size}")
    if size == n:
        return matrix.copy()
    out = np.full((size, size), fill, dtype=np.int64)
    out[:n, :n] = matrix
    if fill != 0:
        idx = np.arange(n, size)
        out[idx, idx] = 0
    return out


def integer_product(
    clique: CongestedClique,
    x: np.ndarray,
    y: np.ndarray,
    method: str,
    *,
    phase: str,
) -> np.ndarray:
    """One integer matrix product under the chosen engine (session wrapper)."""
    return EngineSession(clique, method, PLUS_TIMES).multiply(x, y, phase=phase)


def boolean_product(
    clique: CongestedClique,
    x: np.ndarray,
    y: np.ndarray,
    method: str,
    *,
    phase: str,
) -> np.ndarray:
    """One Boolean matrix product under the chosen engine (session wrapper).

    The semiring engines (``"semiring"``, ``"naive"``) run directly over
    the Boolean semiring: partial products stay 0/1 (one word -- the
    ``b/log n`` width factor of §1.1 stays constant through repeated
    squarings) and local block products use the blocked Boolean kernel of
    :class:`~repro.algebra.semirings.BooleanSemiring`.  The bilinear engine
    needs a *ring*, so it computes the integer product of the 0/1 matrices
    and thresholds -- exactly the reduction the paper's Corollary 2 uses.
    """
    return EngineSession(clique, method, BOOLEAN).multiply(x, y, phase=phase)


def or_broadcast(clique: CongestedClique, local_bits: list[bool], phase: str) -> bool:
    """One round: every node announces a bit; returns the global OR."""
    received = clique.broadcast(
        [1 if b else 0 for b in local_bits], words=1, phase=phase
    )
    return any(received[0])


def sum_broadcast(
    clique: CongestedClique, local_values: list[int], phase: str, words: int = 2
) -> int:
    """One broadcast: every node announces a partial sum; returns the total.

    ``words=2`` covers values up to ``n^{O(1)}`` at the default word size --
    the widths triangle/4-cycle partial counts need.
    """
    received = clique.broadcast(local_values, words=words, phase=phase)
    return int(sum(received[0]))


__all__ = [
    "RunResult",
    "MATMUL_METHODS",
    "EngineSession",
    "open_session",
    "required_clique_size",
    "make_clique",
    "make_executor",
    "pad_matrix",
    "resolve_rng",
    "snapshot_shared_rng",
    "restore_shared_rng",
    "reseed_shared_rng",
    "integer_product",
    "boolean_product",
    "or_broadcast",
    "sum_broadcast",
    "INF",
]
