"""Word-size arithmetic for congested-clique messages.

The model allows ``O(log n)`` bits per message; following Section 1.1 of the
paper, a matrix entry that needs ``b`` bits costs ``ceil(b / word_bits)``
words.  These helpers centralise that arithmetic so every algorithm charges
consistent (and honest) widths for the arrays it ships.
"""

from __future__ import annotations

import math
from typing import Any

import numpy as np


def default_word_bits(n: int) -> int:
    """Word size, in bits, for a clique of ``n`` nodes.

    The model's word is ``Theta(log n)`` bits.  We use ``2 * ceil(log2 n)``
    (minimum 16) so that a constant number of node identifiers -- e.g. the
    ``(x, y, z)`` triple of a 2-walk record in the 4-cycle algorithm, or a
    relay header -- fits in one word, which is the standard convention.
    """
    if n < 1:
        raise ValueError(f"clique size must be positive, got {n}")
    return max(16, 2 * max(1, math.ceil(math.log2(max(2, n)))))


def int_bits(max_abs: int) -> int:
    """Bits needed for a sign-magnitude integer with ``|x| <= max_abs``."""
    if max_abs < 0:
        raise ValueError(f"max_abs must be non-negative, got {max_abs}")
    return 1 + max(1, int(max_abs).bit_length())


def words_for_value(max_abs: int, word_bits: int) -> int:
    """Words needed per integer entry with ``|x| <= max_abs``."""
    return max(1, math.ceil(int_bits(max_abs) / word_bits))


#: ``_POW2[k] == 2**k`` for ``k < 63``; used for an exact vectorised
#: ``int.bit_length`` (float ``log2`` is not trustworthy near ``2**62``).
_POW2 = 2 ** np.arange(63, dtype=np.int64)


def bit_lengths(values: np.ndarray) -> np.ndarray:
    """Vectorised ``int.bit_length`` for non-negative ``int64`` values.

    Exact for the full ``int64`` range: a value with bit length ``b``
    satisfies ``2**(b-1) <= v < 2**b``, so the number of powers of two
    ``<= v`` is exactly ``b`` (and ``0`` maps to ``0``).
    """
    values = np.asarray(values, dtype=np.int64)
    if np.any(values < 0):
        raise ValueError("bit_lengths expects non-negative values")
    return np.searchsorted(_POW2, values, side="right").astype(np.int64)


def words_for_values(max_abs: np.ndarray, word_bits: int) -> np.ndarray:
    """Vectorised :func:`words_for_value`: words per entry, elementwise.

    Agrees exactly with the scalar helper (property-tested), so array-native
    primitives charge bit-identical widths to the tuple path.
    """
    bits = 1 + np.maximum(1, bit_lengths(max_abs))
    return np.maximum(1, -(-bits // word_bits))


def block_widths(blocks: np.ndarray, word_bits: int) -> np.ndarray:
    """Per-piece word widths for a batch of equally-shaped pieces.

    ``blocks`` has shape ``(p, ...)``: ``p`` pieces of identical trailing
    shape.  Each piece is charged like :func:`words_for_array` charges a
    single array: ``size * words_for_value(max_abs(piece))``.
    """
    blocks = np.asarray(blocks)
    if blocks.ndim < 2:
        raise ValueError("block_widths expects a (pieces, ...) batch")
    if blocks.dtype == object:
        raise ValueError(
            "block_widths: object-dtype batch (pieces must be fixed-width "
            "integers, not Python objects)"
        )
    if np.issubdtype(blocks.dtype, np.inexact) and not np.isfinite(blocks).all():
        bad = int(np.nonzero(~np.isfinite(blocks.reshape(blocks.shape[0], -1)).all(axis=1))[0][0])
        raise ValueError(
            f"block_widths: non-finite entries (NaN/inf) in piece {bad} -- "
            "widths would be meaningless"
        )
    entries = int(np.prod(blocks.shape[1:]))
    if entries == 0:
        return np.zeros(blocks.shape[0], dtype=np.int64)
    flat = np.abs(blocks.reshape(blocks.shape[0], entries))
    return entries * words_for_values(flat.max(axis=1), word_bits)


def words_for_array(arr: np.ndarray, word_bits: int) -> int:
    """Total words needed to ship ``arr``, charging its true entry width.

    The width is uniform across the array (all entries charged at the width
    of the widest), which matches how the paper's algorithms transmit fixed-
    format submatrices.
    """
    arr = np.asarray(arr)
    if arr.size == 0:
        return 0
    if arr.dtype == np.bool_:
        max_abs = 1
    else:
        max_abs = int(np.max(np.abs(arr)))
    return int(arr.size) * words_for_value(max_abs, word_bits)


def _check_payload(node: int, payload: Any) -> None:
    """Reject payloads no fixed-width word encoding exists for.

    Words are integers in this model; a NaN/inf float or an object-dtype
    array has no honest word width, so it must die here with the offending
    node named, not downstream as an opaque numpy cast error.
    """
    if isinstance(payload, float) and not math.isfinite(payload):
        raise ValueError(
            f"node {node}: non-finite payload {payload!r} has no word encoding"
        )
    if isinstance(payload, np.ndarray):
        if payload.dtype == object:
            raise ValueError(
                f"node {node}: object-dtype payload array (ship fixed-width "
                "words, not Python objects)"
            )
        if np.issubdtype(payload.dtype, np.inexact) and not np.isfinite(payload).all():
            raise ValueError(
                f"node {node}: non-finite entries (NaN/inf) in payload array"
            )


def validate_outboxes(
    outboxes: list[list[tuple[int, Any, int]]], n: int, allow_self: bool = False
) -> None:
    """Check the structural validity of a per-node outbox list.

    Each ``outboxes[v]`` is a list of ``(dst, payload, words)`` triples: the
    messages node ``v`` wants delivered.  Raises ``ValueError`` on malformed
    input (the caller wraps into :class:`~repro.errors.CliqueModelError`),
    always naming the offending node.
    """
    if len(outboxes) != n:
        raise ValueError(f"expected {n} outboxes, got {len(outboxes)}")
    for v, box in enumerate(outboxes):
        for item in box:
            if len(item) != 3:
                raise ValueError(f"node {v}: outbox item must be (dst, payload, words)")
            dst, payload, words = item
            if not (0 <= dst < n):
                raise ValueError(f"node {v}: destination {dst} out of range")
            if dst == v and not allow_self:
                raise ValueError(f"node {v}: self-addressed message")
            if words <= 0:
                raise ValueError(f"node {v}: non-positive word count {words}")
            _check_payload(v, payload)


__all__ = [
    "default_word_bits",
    "int_bits",
    "bit_lengths",
    "words_for_value",
    "words_for_values",
    "words_for_array",
    "block_widths",
    "validate_outboxes",
]
