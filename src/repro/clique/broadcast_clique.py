"""The broadcast congested clique (paper §4, Corollary 24).

A restricted variant of the model: in every round each node must send the
**same** ``O(log n)``-bit word to all other nodes.  Holzer-Pinsker [38] (as
cited by the paper) imply that matrix multiplication and APSP need
``Omega~(n)`` rounds here -- which is why the paper's sub-polynomial
algorithms fundamentally need unicast.

We implement the model so the separation is *demonstrable*: the only
generic way to multiply matrices is to replicate them via broadcast
(``Theta(n)`` rounds), and the benchmark/test suite contrasts that with the
unicast engines' ``O(n^{1/3})`` / ``O(n^{1-2/sigma})`` on identical inputs.
"""

from __future__ import annotations

from typing import Any, Sequence

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.accounting import CostMeter, PhaseCost
from repro.clique.messages import default_word_bits, words_for_array
from repro.errors import CliqueModelError


class BroadcastCongestedClique:
    """An ``n``-node clique whose only primitive is one-word-to-all.

    The deliberate absence of ``send``/``route`` *is* the model: per round,
    a node contributes one word of globally visible state.
    """

    def __init__(self, n: int, *, word_bits: int | None = None) -> None:
        if n < 2:
            raise CliqueModelError(f"a clique needs >= 2 nodes, got {n}")
        self.n = n
        self.word_bits = word_bits if word_bits is not None else default_word_bits(n)
        self.meter = CostMeter()

    @property
    def rounds(self) -> int:
        return self.meter.rounds

    def broadcast(
        self,
        payloads: Sequence[Any],
        *,
        words: int | Sequence[int] = 1,
        phase: str = "broadcast",
    ) -> list[list[Any]]:
        """Every node announces its payload; rounds = max payload width."""
        n = self.n
        if len(payloads) != n:
            raise CliqueModelError(f"expected {n} payloads, got {len(payloads)}")
        widths = [words] * n if isinstance(words, int) else list(words)
        if len(widths) != n or any(w < 0 for w in widths):
            raise CliqueModelError("invalid broadcast widths")
        rounds = max(widths, default=0)
        self.meter.charge(
            PhaseCost(
                phase=phase,
                primitive="broadcast",
                rounds=rounds,
                words=sum(w * (n - 1) for w in widths),
                payloads=n,
                max_send_words=max((w * (n - 1) for w in widths), default=0),
                max_recv_words=sum(widths) - min(widths, default=0),
            )
        )
        shared = list(payloads)
        return [shared[:] for _ in range(n)]


def broadcast_clique_matmul(
    clique: BroadcastCongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    phase: str = "bc-matmul",
) -> np.ndarray:
    """Matrix multiplication in the broadcast model: ``Theta(n)`` rounds.

    Each node broadcasts its row of both operands (any algorithm must make
    the inputs' information globally available through the single shared
    word per node per round, which is why ``Omega~(n)`` is forced --
    Corollary 24); the product is then local.
    """
    n = clique.n
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n}")
    widths = [
        words_for_array(s[v], clique.word_bits)
        + words_for_array(t[v], clique.word_bits)
        for v in range(n)
    ]
    received = clique.broadcast(
        [(s[v], t[v]) for v in range(n)], words=widths, phase=f"{phase}/replicate"
    )
    product = semiring.zeros((n, n))
    for v in range(n):
        t_full = np.vstack([row_t for (_row_s, row_t) in received[v]])
        product[v] = semiring.matmul(s[v : v + 1, :], t_full)[0]
    return product


def broadcast_matmul_round_floor(n: int) -> int:
    """Corollary 24's floor, concretely: ``n`` words of private input per
    node must cross a 1-word-per-round shared channel, so ``Omega(n)``
    rounds (up to the word/entry-width ratio)."""
    return n


__all__ = [
    "BroadcastCongestedClique",
    "broadcast_clique_matmul",
    "broadcast_matmul_round_floor",
]
