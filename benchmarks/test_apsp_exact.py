"""E8 -- Table 1 "weighted directed APSP": O(n^{1/3} log n) + routing tables."""

from __future__ import annotations

import numpy as np
import pytest

from repro.distances import apsp_exact
from repro.graphs import (
    apsp_reference,
    grid_graph,
    random_weighted_digraph,
    validate_routing_table,
)
from repro.matmul.exponent import fit_exponent

from .conftest import run_once

SIZES = [27, 64, 125]


@pytest.mark.parametrize("n", SIZES)
def test_apsp_exact_with_tables(benchmark, n):
    g = random_weighted_digraph(n, 0.3, 9, seed=n)

    def run():
        return apsp_exact(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["squarings"] = result.extras["squarings"]
    assert np.array_equal(result.value, apsp_reference(g))
    assert validate_routing_table(g, result.value, result.extras["next_hop"])


def test_apsp_exact_exponent(benchmark):
    def run():
        return [
            apsp_exact(
                random_weighted_digraph(n, 0.3, 9, seed=n),
                with_routing_tables=False,
            ).rounds
            for n in SIZES
        ]

    rounds = run_once(benchmark, run)
    benchmark.extra_info["rounds"] = rounds
    benchmark.extra_info["fitted_exponent"] = fit_exponent(SIZES, rounds)
    # O(n^{1/3} log n): clearly sub-half-power growth.
    assert fit_exponent(SIZES, rounds) < 0.55


def test_apsp_grid_road_network(benchmark):
    g = grid_graph(5, 5, max_weight=9, seed=1)

    def run():
        return apsp_exact(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert np.array_equal(result.value, apsp_reference(g))
