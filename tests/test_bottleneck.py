"""Tests for the bottleneck (max-min) APSP extension."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INF
from repro.distances import (
    apsp_bottleneck,
    bottleneck_reference,
    validate_bottleneck_routing,
)
from repro.distances.bottleneck import capacity_matrix
from repro.graphs import (
    Graph,
    grid_graph,
    random_weighted_digraph,
    random_weighted_graph,
)


class TestCapacityMatrix:
    def test_conventions(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 5)], directed=True)
        cap = capacity_matrix(g)
        assert cap[0, 1] == 5
        assert cap[1, 0] == -INF
        assert cap[0, 0] == INF

    def test_unweighted_unit_capacities(self):
        g = Graph.from_edges(3, [(0, 2)])
        assert capacity_matrix(g)[0, 2] == 1


class TestBottleneckApsp:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_digraphs_match_reference(self, seed):
        g = random_weighted_digraph(14, 0.3, 20, seed=seed)
        result = apsp_bottleneck(g)
        assert np.array_equal(result.value, bottleneck_reference(g))

    @settings(max_examples=4, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_undirected(self, seed):
        g = random_weighted_graph(16, 0.3, 15, seed=seed)
        result = apsp_bottleneck(g)
        assert np.array_equal(result.value, bottleneck_reference(g))

    def test_widest_path_dominates_direct_edge(self):
        # 0 -> 1 directly with capacity 1, or via 2 with bottleneck 5.
        g = Graph.from_weighted_edges(
            3, [(0, 1, 1), (0, 2, 9), (2, 1, 5)], directed=True
        )
        result = apsp_bottleneck(g)
        assert result.value[0, 1] == 5

    def test_unreachable_pairs(self):
        g = Graph.from_weighted_edges(4, [(0, 1, 3)], directed=True)
        result = apsp_bottleneck(g)
        assert result.value[1, 0] == -INF
        assert result.value[2, 3] == -INF

    def test_routing_tables_walk_widest_paths(self):
        for seed in (0, 1, 2):
            g = random_weighted_digraph(12, 0.35, 9, seed=seed)
            result = apsp_bottleneck(g, with_routing_tables=True)
            assert np.array_equal(result.value, bottleneck_reference(g))
            assert validate_bottleneck_routing(
                g, result.value, result.extras["next_hop"]
            )

    def test_grid_capacities(self):
        g = grid_graph(3, 4, max_weight=9, seed=5)
        result = apsp_bottleneck(g)
        assert np.array_equal(result.value, bottleneck_reference(g))

    def test_rounds_match_exact_apsp_shape(self):
        # Same engine, same squaring count as Corollary 6.
        g = random_weighted_digraph(16, 0.3, 9, seed=7)
        result = apsp_bottleneck(g)
        assert result.extras["squarings"] == 4  # ceil(log2 16)
        assert result.rounds > 0
