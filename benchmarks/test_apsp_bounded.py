"""E9 -- Table 1 "APSP with weighted diameter U": O~(U n^rho) (Cor. 8)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.constants import INF
from repro.distances import apsp_bounded, apsp_small_diameter
from repro.graphs import apsp_reference, random_weighted_digraph

from .conftest import run_once

SIZES = [16, 49, 100]


@pytest.mark.parametrize("n", SIZES)
def test_apsp_bounded_u8(benchmark, n):
    g = random_weighted_digraph(n, 0.6, 3, seed=n)

    def run():
        return apsp_bounded(g, 8)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    ref = apsp_reference(g)
    assert np.array_equal(result.value, np.where(ref <= 8, ref, INF))


@pytest.mark.parametrize("cap", [2, 4, 8, 16])
def test_rounds_scale_with_u(benchmark, cap):
    """The U-factor of Lemma 19, measured: larger caps cost more rounds."""
    n = 49
    g = random_weighted_digraph(n, 0.6, 3, seed=5)

    def run():
        return apsp_bounded(g, cap)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["cap"] = cap


def test_apsp_unknown_diameter(benchmark):
    n = 49
    g = random_weighted_digraph(n, 0.6, 3, seed=2)

    def run():
        return apsp_small_diameter(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    benchmark.extra_info["diameter_guess"] = result.extras["diameter_guess"]
    assert np.array_equal(result.value, apsp_reference(g))
