"""Unit tests for the cost meter."""

from __future__ import annotations

import pytest

from repro.clique.accounting import CostMeter, PhaseCost


def _cost(phase: str, rounds: int, words: int = 0) -> PhaseCost:
    return PhaseCost(
        phase=phase,
        primitive="route",
        rounds=rounds,
        words=words,
        payloads=1,
        max_send_words=words,
        max_recv_words=words,
    )


class TestCostMeter:
    def test_empty_meter_is_zero(self):
        meter = CostMeter()
        assert meter.rounds == 0
        assert meter.words == 0
        assert meter.payloads == 0
        assert meter.max_node_load == 0

    def test_rounds_accumulate(self):
        meter = CostMeter()
        meter.charge(_cost("a", 3))
        meter.charge(_cost("b", 4))
        assert meter.rounds == 7

    def test_words_accumulate(self):
        meter = CostMeter()
        meter.charge(_cost("a", 1, words=10))
        meter.charge(_cost("b", 1, words=5))
        assert meter.words == 15

    def test_negative_rounds_rejected(self):
        meter = CostMeter()
        with pytest.raises(ValueError):
            meter.charge(_cost("bad", -1))

    def test_snapshot_and_since(self):
        meter = CostMeter()
        meter.charge(_cost("a", 2))
        mark = meter.snapshot()
        meter.charge(_cost("b", 5, words=7))
        assert meter.rounds_since(mark) == 5
        assert meter.words_since(mark) == 7

    def test_reset(self):
        meter = CostMeter()
        meter.charge(_cost("a", 2))
        meter.reset()
        assert meter.rounds == 0
        assert not meter.phases

    def test_by_phase_prefix_groups(self):
        meter = CostMeter()
        meter.charge(_cost("matmul/step1", 2))
        meter.charge(_cost("matmul/step3", 3))
        meter.charge(_cost("other", 1))
        grouped = meter.by_phase_prefix()
        assert grouped == {"matmul": 5, "other": 1}

    def test_report_contains_totals(self):
        meter = CostMeter()
        meter.charge(_cost("phase-x", 2, words=8))
        report = meter.report()
        assert "phase-x" in report
        assert "TOTAL" in report

    def test_max_node_load(self):
        meter = CostMeter()
        meter.charge(_cost("a", 1, words=10))
        meter.charge(_cost("b", 1, words=3))
        assert meter.max_node_load == 10

    def test_phase_cost_is_frozen(self):
        cost = _cost("a", 1)
        with pytest.raises(AttributeError):
            cost.rounds = 5  # type: ignore[misc]
