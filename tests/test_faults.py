"""Fault injection + encoded-exchange robustness suite (PR 6).

Pins the three invariants of :mod:`repro.faults`:

1. **Pure interception**: with no plan installed (or ``t = 0``) the
   :class:`~repro.faults.FaultyClique` wrapper is bit-identical to the base
   model -- values, rounds, and per-phase meters.
2. **Silent corruption exists without the code**: an unprotected faulty
   clique really does deliver wrong words (the failure mode the robust
   layer closes), and a corrupted ``route_array_take`` still never writes
   outside its planned caller-buffer slice (arena no-escape).
3. **No silent wrong answers, ever**: under any in-budget plan a robust
   run equals the fault-free oracle edge-for-edge; beyond budget it equals
   the oracle or raises :class:`~repro.errors.FaultToleranceExceeded` --
   a seed sweep across all three fault kinds demonstrates zero silent
   corruptions.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique.model import CongestedClique
from repro.clique.scheduling import disjoint_relays
from repro.engine.session import EngineSession, make_clique
from repro.errors import CliqueModelError, FaultToleranceExceeded
from repro.faults import (
    FaultKind,
    FaultPlan,
    FaultyClique,
    RobustClique,
    corrupt_pieces,
    flip_masks,
    majority_decode,
)
from repro.graphs import apsp_reference, random_weighted_digraph
from repro.runtime import pad_matrix

ALL_KINDS = ["flip", "drop", "crash"]


# --------------------------------------------------------------------- #
# Fault plans
# --------------------------------------------------------------------- #


class TestFaultPlan:
    def test_rejects_negative_budget(self):
        with pytest.raises(ValueError, match="non-negative"):
            FaultPlan(t=-1)

    def test_rejects_bad_kind(self):
        with pytest.raises(ValueError):
            FaultPlan(t=1, kind="gamma-ray")

    def test_rejects_bad_crash_window(self):
        with pytest.raises(ValueError, match="crash window"):
            FaultPlan(t=1, kind="crash", crash_window=0)

    def test_string_kind_coerced(self):
        assert FaultPlan(t=1, kind="drop").kind is FaultKind.DROP

    def test_corrupt_nodes_deterministic(self):
        plan = FaultPlan(t=2, seed=5)
        a = plan.corrupt_nodes(16, exchange_id=3)
        b = FaultPlan(t=2, seed=5).corrupt_nodes(16, exchange_id=3)
        assert np.array_equal(a, b)

    def test_corrupt_nodes_redrawn_per_exchange(self):
        plan = FaultPlan(t=3, seed=0)
        sets = [tuple(plan.corrupt_nodes(32, e)) for e in range(8)]
        assert len(set(sets)) > 1, "a mobile adversary must move"

    def test_budget_respected(self):
        plan = FaultPlan(t=2, seed=1)
        for e in range(10):
            nodes = plan.corrupt_nodes(16, e)
            assert nodes.size <= 2
            assert np.all((0 <= nodes) & (nodes < 16))
            assert np.unique(nodes).size == nodes.size

    def test_zero_budget_is_null_plan(self):
        assert FaultPlan(t=0).corrupt_nodes(16, 0).size == 0

    def test_crash_sets_are_monotone(self):
        plan = FaultPlan(t=3, seed=2, kind="crash", crash_window=6)
        previous: set[int] = set()
        for e in range(12):
            nodes = set(int(v) for v in plan.corrupt_nodes(16, e))
            assert previous <= nodes, "a crashed node never comes back"
            previous = nodes
        assert previous, "every crash time lies inside the window"
        assert len(previous) <= 3


class TestFlipMasks:
    def test_nonzero_and_pairwise_distinct(self):
        masks = flip_masks(np.arange(1024))
        assert np.all(masks != 0)
        assert np.unique(masks).size == masks.size


class TestDisjointRelays:
    def test_copies_are_pairwise_distinct_relays(self):
        relays = disjoint_relays(50, 5, 16, salt=3)
        assert relays.shape == (50, 5)
        assert np.all((0 <= relays) & (relays < 16))
        for row in relays:
            assert np.unique(row).size == 5

    def test_pure_function_of_inputs(self):
        assert np.array_equal(
            disjoint_relays(9, 3, 8, salt=1), disjoint_relays(9, 3, 8, salt=1)
        )

    def test_salt_varies_assignment(self):
        a = disjoint_relays(40, 3, 16, salt=0)
        b = disjoint_relays(40, 3, 16, salt=1)
        assert not np.array_equal(a, b), "retries must re-route"

    def test_validation(self):
        with pytest.raises(ValueError, match="copies"):
            disjoint_relays(4, 5, 4)
        with pytest.raises(ValueError, match="copies"):
            disjoint_relays(4, 0, 4)
        with pytest.raises(ValueError, match="n >= 1"):
            disjoint_relays(4, 1, 0)
        with pytest.raises(ValueError, match="non-negative"):
            disjoint_relays(-1, 1, 4)


# --------------------------------------------------------------------- #
# corrupt_pieces
# --------------------------------------------------------------------- #


class TestCorruptPieces:
    def _blocks(self, p=12, w=5, seed=0):
        return np.random.default_rng(seed).integers(
            -99, 99, (p, w), dtype=np.int64
        )

    def test_null_plan_returns_input_uncopied(self):
        blocks = self._blocks()
        out, hit, dropped = corrupt_pieces(FaultPlan(t=0), 0, 8, blocks)
        assert out is blocks
        assert not hit.any() and not dropped.any()

    def test_flip_hits_match_relay_assignment(self):
        blocks = self._blocks()
        plan = FaultPlan(t=2, seed=3, kind="flip")
        out, hit, dropped = corrupt_pieces(plan, 7, 8, blocks)
        relays = disjoint_relays(12, 1, 8, salt=7).reshape(-1)
        corrupt = set(int(v) for v in plan.corrupt_nodes(8, 7))
        assert np.array_equal(hit, np.array([r in corrupt for r in relays]))
        assert not dropped.any()
        # Flips are XOR masks: corrupted words differ, clean words match.
        assert np.array_equal(out[~hit], blocks[~hit])
        assert np.all(out[hit] != blocks[hit])
        # Input is never mutated in place.
        assert np.array_equal(blocks, self._blocks())

    def test_drop_marks_known_erasures(self):
        blocks = self._blocks()
        out, hit, dropped = corrupt_pieces(
            FaultPlan(t=3, seed=1, kind="drop"), 0, 8, blocks
        )
        assert np.array_equal(hit, dropped)
        assert hit.any()
        assert not out[hit].any(), "dropped pieces are zeroed"

    def test_self_addressed_pieces_skip_transit(self):
        blocks = self._blocks()
        skip = np.ones(blocks.shape[0], dtype=bool)
        out, hit, _ = corrupt_pieces(
            FaultPlan(t=8, seed=0), 0, 8, blocks, skip=skip
        )
        assert out is blocks and not hit.any()

    def test_replication_degree_must_divide(self):
        with pytest.raises(ValueError, match="multiple"):
            corrupt_pieces(FaultPlan(t=1), 0, 8, self._blocks(p=10), copies=3)


# --------------------------------------------------------------------- #
# Majority decode
# --------------------------------------------------------------------- #


class TestMajorityDecode:
    def test_clean_unanimity_decodes(self):
        pieces = np.arange(12, dtype=np.int64).reshape(4, 3)
        copies = np.repeat(pieces[:, None, :], 3, axis=1)
        decoded, ok = majority_decode(copies, np.ones((4, 3), bool), 2)
        assert np.array_equal(decoded, pieces)
        assert ok.all()

    def test_minority_corruption_outvoted(self):
        truth = np.full((2, 4), 7, dtype=np.int64)
        copies = np.repeat(truth[:, None, :], 3, axis=1)
        copies[0, 1] = -1  # one corrupt copy of piece 0
        decoded, ok = majority_decode(copies, np.ones((2, 3), bool), 2)
        assert np.array_equal(decoded, truth)
        assert ok.all()

    def test_erasures_neither_vote_nor_win(self):
        truth = np.full((1, 2), 9, dtype=np.int64)
        copies = np.repeat(truth[:, None, :], 3, axis=1)
        copies[0, 0] = 0  # dropped copy, zeroed in transit
        valid = np.array([[False, True, True]])
        decoded, ok = majority_decode(copies, valid, 2)
        assert np.array_equal(decoded, truth) and ok.all()

    def test_lost_majority_fails_loudly(self):
        # 1 valid copy left < threshold 2: detection, not a wrong answer.
        copies = np.zeros((1, 3, 2), dtype=np.int64)
        valid = np.array([[True, False, False]])
        _, ok = majority_decode(copies, valid, 2)
        assert not ok.any()

    def test_distinct_corruptions_cannot_fake_support(self):
        # Two corrupt copies with *different* wrong values (the flip-mask
        # guarantee): the truth keeps its threshold-1 support, nothing else
        # reaches 2, so the piece fails instead of decoding wrong.
        copies = np.array([[[5], [17], [23]]], dtype=np.int64)
        decoded, ok = majority_decode(copies, np.ones((1, 3), bool), 2)
        assert not ok.any()

    def test_validation(self):
        with pytest.raises(ValueError, match="stack"):
            majority_decode(np.zeros(3), np.ones((1, 3), bool), 1)
        with pytest.raises(ValueError, match="validity"):
            majority_decode(np.zeros((2, 3, 1)), np.ones((3, 2), bool), 1)
        with pytest.raises(ValueError, match="threshold"):
            majority_decode(np.zeros((2, 3, 1)), np.ones((2, 3), bool), 0)


# --------------------------------------------------------------------- #
# FaultyClique: pure interception
# --------------------------------------------------------------------- #


def _run_collectives(clique: CongestedClique, seed: int = 0) -> list[np.ndarray]:
    """One fixed workload touching every intercepted collective."""
    n = clique.n
    rng = np.random.default_rng(seed)
    results: list[np.ndarray] = []

    rows = rng.integers(-9, 9, (n, 4), dtype=np.int64)
    results.append(clique.broadcast_rows(rows, phase="t/bcast"))

    dests = [np.arange(n, dtype=np.int64) for _ in range(n)]
    blocks = [rng.integers(-9, 9, (n, 3), dtype=np.int64) for _ in range(n)]
    inboxes = clique.route_array(dests, blocks, phase="t/route")
    results.extend(inbox.blocks for inbox in inboxes)

    flat = clique.route_array(dests, blocks, phase="t/route-flat", flat=True)
    results.append(flat.blocks)

    take = np.arange(n * n, dtype=np.intp)
    owners = np.tile(np.arange(n, dtype=np.int64), n)
    results.append(
        clique.route_array_take(
            dests, blocks, take=take, owners=owners, phase="t/take"
        ).copy()
    )

    sends = [rng.integers(-9, 9, (n, 2), dtype=np.int64) for _ in range(n)]
    results.extend(
        inbox.blocks
        for inbox in clique.send_array(dests, sends, phase="t/send")
    )

    held = [rng.integers(-9, 9, (2, 3), dtype=np.int64) for _ in range(n)]
    results.append(clique.allgather_rows(held, phase="t/gather"))

    grid = rng.integers(-9, 9, (n, n, 2), dtype=np.int64)
    results.append(clique.scatter_blocks(grid, phase="t/scatter"))
    return results


class TestFaultyCliquePureInterception:
    @pytest.mark.parametrize("plan", [None, FaultPlan(t=0, seed=3)])
    def test_no_plan_bit_identical(self, plan):
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=plan)
        for a, b in zip(_run_collectives(base), _run_collectives(faulty)):
            assert np.array_equal(a, b)
        assert base.meter.phases == faulty.meter.phases
        assert faulty.faults_injected == 0

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_charge_path_untouched_by_corruption(self, kind):
        """The adversary corrupts contents, never the bill."""
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=FaultPlan(t=2, seed=1, kind=kind))
        _run_collectives(base)
        _run_collectives(faulty)
        assert base.meter.phases == faulty.meter.phases

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_silent_corruption_demonstrated(self, kind):
        """Without the code, corrupt relays silently change deliveries."""
        base = CongestedClique(6)
        faulty = FaultyClique(6, plan=FaultPlan(t=2, seed=1, kind=kind))
        clean = _run_collectives(base)
        tampered = _run_collectives(faulty)
        assert faulty.faults_injected > 0
        assert any(
            not np.array_equal(a, b) for a, b in zip(clean, tampered)
        ), "an unprotected exchange must actually corrupt"

    def test_tuple_primitives_not_intercepted(self):
        """The tuple paths stay exact -- interception covers array collectives."""
        faulty = FaultyClique(5, plan=FaultPlan(t=5, seed=0))
        received = faulty.broadcast(list(range(5)), phase="t/tuple")
        assert received[0] == list(range(5))
        assert faulty.faults_injected == 0


class TestArenaNoEscapeUnderFaults:
    """Satellite: a corrupted ``route_array_take`` must never write outside
    its planned caller-buffer slice (the arena aliasing rule holds under
    interception, not just on the clean path)."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize(
        "clique_factory",
        [
            lambda plan: FaultyClique(6, plan=plan),
            lambda plan: RobustClique(6, plan=plan, tolerance=1),
        ],
        ids=["faulty", "robust"],
    )
    def test_corrupted_take_stays_inside_planned_slice(
        self, kind, clique_factory
    ):
        n = 6
        clique = clique_factory(FaultPlan(t=2, seed=4, kind=kind))
        rng = np.random.default_rng(2)
        dests = [np.arange(n, dtype=np.int64) for _ in range(n)]
        blocks = [rng.integers(-9, 9, (n, 3), dtype=np.int64) for _ in range(n)]
        take = np.arange(n * n, dtype=np.intp)
        pad = 7
        sentinel = np.int64(-123456789)
        backing = np.full((n * n + 2 * pad, 3), sentinel, dtype=np.int64)
        out = backing[pad : pad + n * n]
        clique.route_array_take(dests, blocks, take=take, out=out, phase="t")
        assert np.all(backing[:pad] == sentinel), "wrote before the slice"
        assert np.all(backing[pad + n * n :] == sentinel), "wrote after the slice"

    def test_faulty_take_still_validates_before_charging(self):
        clique = FaultyClique(4, plan=FaultPlan(t=1, seed=0))
        rng = np.random.default_rng(0)
        dests = [np.arange(4, dtype=np.int64) for _ in range(4)]
        blocks = [rng.integers(-9, 9, (4, 2), dtype=np.int64) for _ in range(4)]
        with pytest.raises(CliqueModelError, match="out of range"):
            clique.route_array_take(
                dests, blocks, take=np.array([99], dtype=np.intp)
            )
        assert clique.rounds == 0, "rejected delivery must not charge"


# --------------------------------------------------------------------- #
# RobustClique: encoded exchanges
# --------------------------------------------------------------------- #


class TestRobustCliqueConstruction:
    def test_tolerance_must_be_positive(self):
        with pytest.raises(ValueError, match="tolerance"):
            RobustClique(8, tolerance=0)

    def test_replication_needs_enough_relays(self):
        with pytest.raises(CliqueModelError, match="pairwise-distinct relays"):
            RobustClique(4, tolerance=2)  # 2*2+1 = 5 > 4 nodes

    def test_retry_budget_must_be_non_negative(self):
        with pytest.raises(ValueError, match="retry budget"):
            RobustClique(8, tolerance=1, max_retries=-1)

    def test_make_clique_wiring(self):
        plain = make_clique(8, "naive")
        assert type(plain) is CongestedClique
        faulty = make_clique(8, "naive", fault_plan=FaultPlan(t=1))
        assert type(faulty) is FaultyClique
        robust = make_clique(8, "naive", fault_tolerance=2)
        assert isinstance(robust, RobustClique)
        assert robust.copies == 5 and robust.plan is None


class TestRobustCollectivesInBudget:
    """Every encoded collective decodes the exact fault-free contents
    under an in-budget adversary of every kind."""

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_collectives_decode_exactly(self, kind, seed):
        base = CongestedClique(6)
        robust = RobustClique(
            6, plan=FaultPlan(t=1, seed=seed, kind=kind), tolerance=1
        )
        for a, b in zip(_run_collectives(base), _run_collectives(robust)):
            assert np.array_equal(a, b)

    def test_abstract_meter_equals_fault_free_bill(self):
        """Meter separation: the abstract meter is phase-for-phase the
        fault-free oracle's meter; the actual meter bills the redundancy."""
        base = CongestedClique(6)
        robust = RobustClique(6, plan=FaultPlan(t=1, seed=0), tolerance=1)
        _run_collectives(base)
        _run_collectives(robust)
        assert robust.abstract_meter.phases == base.meter.phases
        assert robust.meter.rounds > robust.abstract_meter.rounds
        assert robust.overhead_factor > 1.0

    def test_no_plan_still_bills_redundancy(self):
        base = CongestedClique(6)
        robust = RobustClique(6, tolerance=1)
        for a, b in zip(_run_collectives(base), _run_collectives(robust)):
            assert np.array_equal(a, b)
        assert robust.abstract_meter.phases == base.meter.phases
        assert robust.meter.rounds > base.meter.rounds

    def test_take_validation_precedes_charges_on_both_meters(self):
        robust = RobustClique(6, tolerance=1)
        rng = np.random.default_rng(0)
        dests = [np.arange(6, dtype=np.int64) for _ in range(6)]
        blocks = [rng.integers(-9, 9, (6, 2), dtype=np.int64) for _ in range(6)]
        with pytest.raises(CliqueModelError, match="addressed to another"):
            robust.route_array_take(
                dests,
                blocks,
                take=np.arange(36, dtype=np.intp),
                owners=np.zeros(36, dtype=np.int64),
            )
        assert robust.meter.rounds == 0
        assert robust.abstract_meter.rounds == 0


class TestDetectRetryDegrade:
    def test_beyond_budget_retry_succeeds_through_fresh_relays(self):
        # Deterministic anchor: t=2 > tolerance 1, seed 0 needs exactly one
        # re-ship before every piece regains its majority.
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=2, seed=0, kind="flip"),
            tolerance=1,
            max_retries=3,
        )
        out = clique.broadcast_rows(rows.copy())
        assert np.array_equal(out, rows)
        assert clique.retries == 1
        assert clique.decode_failures == 0

    def test_exhausted_retries_degrade_loudly(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=3, seed=0, kind="flip"),
            tolerance=1,
            max_retries=0,
        )
        with pytest.raises(FaultToleranceExceeded, match="support threshold"):
            clique.broadcast_rows(rows.copy())
        assert clique.decode_failures == 1

    def test_error_names_phase_and_budget(self):
        rng = np.random.default_rng(7)
        rows = rng.integers(-50, 50, (10, 6), dtype=np.int64)
        clique = RobustClique(
            10,
            plan=FaultPlan(t=3, seed=0, kind="flip"),
            tolerance=1,
            max_retries=0,
        )
        with pytest.raises(FaultToleranceExceeded) as excinfo:
            clique.broadcast_rows(rows.copy(), phase="mst/labels")
        message = str(excinfo.value)
        assert "mst/labels" in message
        assert "t=3" in message and "flip" in message


# --------------------------------------------------------------------- #
# End to end: no silent wrong answers, ever
# --------------------------------------------------------------------- #


def _minplus_closure(clique: CongestedClique, weights: np.ndarray, n: int):
    session = EngineSession(clique, "semiring", MIN_PLUS)
    padded = pad_matrix(weights, clique.n, fill=MIN_PLUS.zero_value)
    np.fill_diagonal(padded, 0)
    return session.closure(padded)[:n, :n]


class TestRobustClosureProperty:
    N = 16

    @pytest.fixture(scope="class")
    def workload(self):
        graph = random_weighted_digraph(self.N, 0.35, 9, seed=0)
        weights = graph.weight_matrix()
        oracle = apsp_reference(graph)
        return weights, oracle

    @pytest.mark.parametrize("kind", ALL_KINDS)
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_in_budget_closure_equals_oracle(self, workload, kind, seed):
        weights, oracle = workload
        clique = make_clique(
            self.N,
            "semiring",
            fault_plan=FaultPlan(t=1, seed=seed, kind=kind),
            fault_tolerance=1,
        )
        assert np.array_equal(_minplus_closure(clique, weights, self.N), oracle)
        assert clique.faults_injected > 0, "the adversary must have fired"

    @pytest.mark.parametrize("kind", ALL_KINDS)
    def test_beyond_budget_never_silently_corrupts(self, workload, kind):
        """The headline seed-sweep: an adversary over budget (t=3 against
        tolerance 1, no retries) either loses anyway -- the answer equals
        the oracle bit-for-bit -- or the run raises.  Wrong answers: zero."""
        weights, oracle = workload
        raised = 0
        for seed in range(6):
            clique = make_clique(
                self.N,
                "semiring",
                fault_plan=FaultPlan(t=3, seed=seed, kind=kind),
                fault_tolerance=1,
            )
            clique.max_retries = 0
            try:
                result = _minplus_closure(clique, weights, self.N)
            except FaultToleranceExceeded:
                raised += 1
            else:
                assert np.array_equal(result, oracle), (
                    f"SILENT CORRUPTION at seed={seed} kind={kind}"
                )
        if kind == "flip":
            assert raised > 0, "the sweep should exercise the degrade arm"

    def test_fault_free_workloads_unchanged(self, workload):
        """Equivalence re-run: the interception seams leave the plain
        model's values, rounds, and meters bit-identical."""
        weights, oracle = workload
        plain = make_clique(self.N, "semiring")
        assert type(plain) is CongestedClique
        result = _minplus_closure(plain, weights, self.N)
        assert np.array_equal(result, oracle)
        twin = make_clique(self.N, "semiring")
        _minplus_closure(twin, weights, self.N)
        assert plain.meter.phases == twin.meter.phases
