"""Tests for the analysis layer: Table 1 harness plumbing and lower bounds."""

from __future__ import annotations

import pytest

from repro.analysis import (
    LowerBoundCheck,
    ProblemReport,
    check_meter_against_floor,
    format_table1,
    rounds_floor_from_words,
    semiring_words_floor,
    strassen_like_words_floor,
)
from repro.analysis.table1 import run_table1
from repro.clique.accounting import CostMeter, PhaseCost


class TestLowerBounds:
    def test_semiring_floor_scaling(self):
        # n^2 / n^{2/3} = n^{4/3}; floating-point cube roots may round up.
        assert semiring_words_floor(64) in (256, 257)
        assert semiring_words_floor(1000) > semiring_words_floor(100)

    def test_strassen_floor_below_semiring(self):
        import math

        n = 10**6
        assert strassen_like_words_floor(n, math.log2(7)) < semiring_words_floor(n)

    def test_rounds_floor(self):
        assert rounds_floor_from_words(100, 11) == 10

    def test_check_uses_meter_maxima(self):
        meter = CostMeter()
        meter.charge(
            PhaseCost(
                phase="a",
                primitive="route",
                rounds=2,
                words=100,
                payloads=1,
                max_send_words=60,
                max_recv_words=40,
            )
        )
        check = check_meter_against_floor("x", meter, floor_words=50)
        assert check.measured_max_node_words == 60
        assert check.satisfied
        assert check.overhead == pytest.approx(1.2)

    def test_unsatisfied_check(self):
        check = LowerBoundCheck("x", floor_words=100, measured_max_node_words=10)
        assert not check.satisfied

    def test_measured_semiring_run_sits_above_floor(self, rng):
        import numpy as np

        from repro.clique import CongestedClique
        from repro.matmul.semiring3d import semiring_matmul

        n = 64
        s = rng.integers(0, 2, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        semiring_matmul(clique, s, s)
        check = check_meter_against_floor(
            "semiring3d", clique.meter, semiring_words_floor(n)
        )
        assert check.satisfied
        # Theorem 1 is an essentially optimal implementation: within a small
        # constant of the Corollary 22 floor.
        assert check.overhead < 16


class TestTable1Formatting:
    def _sample_report(self) -> ProblemReport:
        return ProblemReport(
            problem="sample",
            sizes=[16, 64],
            rounds=[4, 8],
            paper_bound="O(n^{1/3})",
            prior_bound="O(n)",
            prior_rounds=[16, 64],
            notes="synthetic",
        )

    def test_fitted_exponents(self):
        rep = self._sample_report()
        assert rep.fitted_exponent == pytest.approx(0.5)
        assert rep.prior_fitted_exponent == pytest.approx(1.0)

    def test_format_contains_all_fields(self):
        text = format_table1([self._sample_report()])
        for token in ("sample", "O(n^{1/3})", "fitted exp", "speedup", "synthetic"):
            assert token in text

    def test_no_prior_rounds(self):
        rep = ProblemReport(
            problem="p",
            sizes=[4, 8],
            rounds=[2, 2],
            paper_bound="O(1)",
            prior_bound="--",
        )
        assert rep.prior_fitted_exponent is None
        assert "prior rounds" not in format_table1([rep])

    def test_run_table1_validates_scale(self):
        with pytest.raises(ValueError):
            run_table1(scale="huge")
