"""Semirings for congested-clique matrix multiplication.

The paper's Theorem 1 distinguishes two regimes:

* **semirings** (no subtraction) -- handled by the 3D algorithm of §2.1; the
  relevant instances are the min-plus (tropical) semiring for shortest paths
  and the Boolean semiring for reachability/detection;
* **rings** (subtraction available) -- handled by the bilinear algorithm of
  §2.2 over the integers (and the capped polynomial ring of Lemma 18).

A :class:`Semiring` bundles the block-level operations the 3D algorithm
needs: a block matrix product (optionally with *witnesses*, i.e. the index
attaining each min), and the elementwise addition used to combine partial
products.  All operations are NumPy-vectorised over ``int64`` arrays; the
min-plus instance saturates at :data:`repro.constants.INF`.

Kernel strategy
---------------

Selection-semiring products (min-plus, max-min) are computed with
*inner-dimension-blocked* kernels: the inner index range ``k`` is processed
in tiles of :func:`get_block_tile` columns, keeping a running
``(value, witness)`` accumulator of shape ``(m, n)``.  Peak temporary memory
is ``O(m * n * tile)`` instead of the full ``O(m * k * n)`` broadcast cube,
which keeps the working set cache-resident and makes the block products the
3D algorithm spends its time in several times faster at realistic sizes
(see ``benchmarks/perf_report.py``).  The original cube-materialising
kernels are retained as ``cube_matmul_with_witness`` -- they serve as the
independent oracle for the property tests and as the baseline the perf
report measures against.

Saturation is handled per tile by :func:`saturating_add`: any operand at or
above ``INF`` yields exactly ``INF`` (never ``INF + INF``, which would
overflow ``int64``), and finite sums are clipped at ``INF``.

Kernel generation 2 (see DESIGN.md) adds, each with its oracle retained
and a bit-identical equivalence suite: *packed* batched witness kernels
for min-plus **and** max-min (``(value << kbits) | tag`` under one tiled
min/max, shift and tag folded into the operands), and a ``uint64``
bit-packed Boolean kernel (method of Four Russians) selected by a size
heuristic over the retained ``float32`` GEMM tile.

Kernel generation 3 adds two orthogonal layers on top:

* every batched kernel accepts a ``backend=`` spec
  (:mod:`repro.algebra.backends`): the packed witness fold and the packed
  Boolean kernels split their work into disjoint batch/column tiles and
  hand them to the backend (serial today, ``threaded:N`` to fan out over a
  thread pool -- bit-identical either way, since no kernel merges across
  tiles in scheduling order).  Kernels whose heavy lifting is a BLAS call
  (the ``float32`` GEMM tile, the plain ring product) accept the keyword
  and ignore it -- BLAS manages its own threads.
* a *pre-packed* Boolean entry point
  (:meth:`BooleanSemiring.packed_words_matmul_batch`) consuming bit-packed
  operands and returning bit-packed rows, so the engine's persistent
  packed closure state never round-trips through 0/1 int64 between
  squarings (see :func:`repro.matmul.semiring3d.boolean_matmul_packed`).
"""

from __future__ import annotations

import os
from functools import partial

import numpy as np

from repro.algebra.backends import get_backend, tile_ranges
from repro.constants import INF

#: Default inner-dimension tile width for the blocked kernels.  Each tile
#: materialises an ``(m, tile, n)`` slab; 8 keeps that slab cache-friendly at
#: the block sizes the 3D algorithm produces (empirically the fastest width
#: at n=512 on this class of hardware) while amortising the Python-level
#: loop overhead.  Override globally with ``set_block_tile`` or the
#: ``REPRO_SEMIRING_TILE`` environment variable, or per call via the
#: ``tile=`` keyword.
DEFAULT_BLOCK_TILE = 8

def _initial_block_tile() -> int:
    raw = os.environ.get("REPRO_SEMIRING_TILE")
    if raw is None:
        return DEFAULT_BLOCK_TILE
    try:
        tile = int(raw)
    except ValueError as exc:
        raise ValueError(
            f"REPRO_SEMIRING_TILE must be an integer, got {raw!r}"
        ) from exc
    if tile < 1:
        raise ValueError(f"REPRO_SEMIRING_TILE must be positive, got {tile}")
    return tile


_block_tile = _initial_block_tile()


def get_block_tile() -> int:
    """The current global inner-dimension tile width."""
    return _block_tile


def set_block_tile(tile: int) -> int:
    """Set the global tile width; returns the previous value."""
    global _block_tile
    if tile < 1:
        raise ValueError(f"tile width must be positive, got {tile}")
    previous = _block_tile
    _block_tile = int(tile)
    return previous


def _resolve_tile(tile: int | None) -> int:
    """Per-call tile override: ``None`` means the global default."""
    if tile is None:
        return get_block_tile()
    if tile < 1:
        raise ValueError(f"tile width must be positive, got {tile}")
    return int(tile)


def saturating_add(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """``INF``-saturating addition of distance arrays (broadcasting).

    Any operand ``>= INF`` makes the result exactly ``INF`` -- crucially the
    sum ``INF + INF`` is never formed, because ``2 * INF == 2**63`` overflows
    ``int64``.  Finite results are clipped at ``INF`` so a sum can never be
    mistaken for a larger-than-infinity distance.  This is the single helper
    every min-plus code path uses to add two distances.
    """
    a = np.asarray(a)
    b = np.asarray(b)
    infinite = (a >= INF) | (b >= INF)
    # Zero out infinite operands before adding: both addends are then < INF,
    # so the sum stays < 2**63 and the add is overflow-free even in the
    # lanes that the mask overwrites below.
    total = np.asarray(np.where(a >= INF, 0, a) + np.where(b >= INF, 0, b))
    np.copyto(total, INF, where=infinite)
    np.minimum(total, INF, out=total)
    return total


class Semiring:
    """Base class: a semiring with NumPy block operations.

    Subclasses implement :meth:`matmul` and :meth:`add`; semirings whose
    addition is a selection (min/max) also implement the ``*_with_witness``
    variants used to extract routing tables (§3.3).
    """

    name: str = "abstract"
    #: additive identity value, stored in int64 matrices
    zero_value: int = 0
    #: multiplicative identity value (the diagonal of the identity matrix)
    one_value: int = 1
    #: whether this semiring is actually a ring (supports subtraction), in
    #: which case the fast bilinear algorithm of §2.2 also applies.
    is_ring: bool = False
    #: whether witnesses (argmin/argmax indices) are meaningful
    has_witnesses: bool = False

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Block product ``x . y`` in the semiring."""
        raise NotImplementedError

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise semiring addition."""
        raise NotImplementedError

    def improves(self, challenger: np.ndarray, best: np.ndarray) -> np.ndarray:
        """Mask of entries where ``challenger`` strictly beats ``best``.

        Meaningful for selection semirings (it drives the routing-table
        updates of the iterated-squaring closure); the default raises.
        """
        raise NotImplementedError(f"{self.name} has no selection order")

    def matmul_batch(
        self, x: np.ndarray, y: np.ndarray, *, backend=None
    ) -> np.ndarray:
        """Batched block product: ``(B, m, k) x (B, k, n) -> (B, m, n)``.

        Semantically ``stack([matmul(x[b], y[b]) for b])`` and guaranteed to
        produce identical values; subclasses override with vectorised kernels
        so the executor layer amortises the per-block Python overhead across
        a whole engine step.  This generic fallback just loops.  ``backend``
        (a :mod:`repro.algebra.backends` spec) selects tile scheduling for
        the kernels that split into tiles; it can never change values.
        """
        del backend  # the generic loop has no tiles to schedule
        x, y = _check_batch(x, y)
        return np.stack([self.matmul(x[b], y[b]) for b in range(x.shape[0])])

    def matmul_batch_with_witness(
        self, x: np.ndarray, y: np.ndarray, *, backend=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched :meth:`matmul_with_witness`; identical values/witnesses."""
        del backend  # the generic loop has no tiles to schedule
        x, y = _check_batch(x, y)
        pairs = [self.matmul_with_witness(x[b], y[b]) for b in range(x.shape[0])]
        return (
            np.stack([p for p, _ in pairs]),
            np.stack([w for _, w in pairs]),
        )

    def zeros(self, shape: tuple[int, ...]) -> np.ndarray:
        """All-``zero_value`` matrix of the given shape."""
        return np.full(shape, self.zero_value, dtype=np.int64)

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block product plus, per output entry, the inner index attaining it.

        Only meaningful for selection semirings; the default raises.
        """
        raise NotImplementedError(f"{self.name} has no witnesses")

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Elementwise addition carrying witnesses along with the selection."""
        raise NotImplementedError(f"{self.name} has no witnesses")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


def _check_batch(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    x = np.asarray(x)
    y = np.asarray(y)
    if (
        x.ndim != 3
        or y.ndim != 3
        or x.shape[0] != y.shape[0]
        or x.shape[2] != y.shape[1]
    ):
        raise ValueError(
            f"incompatible batch shapes {x.shape} x {y.shape} for a product"
        )
    return x, y


#: Entry budget for one batched selection slab ``(B_chunk, m, tile, n)``:
#: the batch axis is chunked so a slab stays ~1 MB of int64, keeping the
#: vectorised kernels cache-resident at engine block sizes (measured fastest
#: at the ``q^2 = 64`` blocks an n=512 cube product produces; larger slabs
#: go memory-bound and lose up to 3x).
_BATCH_SLAB_ENTRIES = 1 << 17


def _batch_chunk(
    batch: int, per_block_entries: int, slab_entries: int = _BATCH_SLAB_ENTRIES
) -> int:
    """Blocks per chunk so a slab holds ~``slab_entries`` entries."""
    if per_block_entries <= 0:
        return max(1, batch)
    return max(1, min(batch, slab_entries // max(1, per_block_entries)))


def packed_words(bits: int) -> int:
    """``uint64`` words needed to hold ``bits`` bit-packed bits."""
    if bits < 0:
        raise ValueError(f"bit count must be >= 0, got {bits}")
    return -(-bits // 64)


def pack_bool_rows(x: np.ndarray) -> np.ndarray:
    """Bit-pack the trailing axis of an array into ``int64`` words.

    Entries ``> 0`` become 1-bits (matching every Boolean kernel's
    threshold), packed little-endian -- bit ``j`` of the row lands in bit
    ``j % 8`` of byte ``j // 8`` -- and zero-padded up to whole ``uint64``
    words, then reinterpreted as ``int64`` (the simulator's payload dtype;
    the sign bit is just bit 63 of a word).  The layout is exactly what
    :meth:`BooleanSemiring.packed_words_matmul_batch` consumes on both
    operand sides, and what it produces -- packed data composes through
    products without ever unpacking.  Like the in-kernel packing, the
    ``uint8`` <-> ``uint64`` view assumes a little-endian host.
    """
    x = np.asarray(x)
    bits = x.shape[-1]
    pw = packed_words(bits)
    packed8 = np.packbits(x > 0, axis=-1, bitorder="little")
    buf = np.zeros(x.shape[:-1] + (pw * 8,), dtype=np.uint8)
    buf[..., : packed8.shape[-1]] = packed8
    return buf.view(np.uint64).view(np.int64)


def unpack_bool_rows(words: np.ndarray, bits: int) -> np.ndarray:
    """Inverse of :func:`pack_bool_rows`: 0/1 ``int64`` rows of width ``bits``."""
    words = np.ascontiguousarray(np.asarray(words, dtype=np.int64))
    if words.shape[-1] != packed_words(bits):
        raise ValueError(
            f"packed rows of {words.shape[-1]} words cannot hold {bits} bits"
        )
    if bits == 0:
        return np.zeros(words.shape[:-1] + (0,), dtype=np.int64)
    nb = -(-bits // 8)
    u8 = words.view(np.uint64).view(np.uint8)[..., :nb]
    return np.unpackbits(u8, axis=-1, count=bits, bitorder="little").astype(
        np.int64
    )


class PlusTimesRing(Semiring):
    """The ordinary integer ring ``(Z, +, *)`` -- a ring, so §2.2 applies."""

    name = "plus-times"
    zero_value = 0
    is_ring = True

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return x @ y

    def matmul_batch(
        self, x: np.ndarray, y: np.ndarray, *, backend=None
    ) -> np.ndarray:
        del backend  # one BLAS call; BLAS manages its own threads
        x, y = _check_batch(x, y)
        return np.matmul(x, y)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class BooleanSemiring(Semiring):
    """The Boolean semiring ``({0,1}, or, and)``.

    Matrices are 0/1 ``int64``.  The product kernel is *blocked*: the inner
    dimension is processed in :data:`BOOL_TILE`-column tiles, each tile a
    narrow ``float32`` GEMM whose thresholded result is OR-merged into a
    boolean accumulator -- the Boolean analogue of the selection semirings'
    accumulator kernels (``float32`` plays the role of the int8 accumulator:
    one BLAS call per tile instead of a materialised AND cube).

    Exactness does **not** need the inner count to fit the ``float32``
    mantissa: partial sums of non-negative 0/1 products are monotone under
    rounding, so a positive count can never round below ``1`` and a zero
    count is exactly ``0`` -- the ``> 0.5`` threshold is exact for every
    tile width.  The cube-materialising kernel is retained as
    :meth:`cube_matmul` (oracle + perf baseline), mirroring
    ``cube_matmul_with_witness`` on the selection semirings.
    """

    name = "boolean"
    zero_value = 0

    #: Inner-dimension tile width for the blocked Boolean kernel.  Coarser
    #: than the selection-kernel tile because a tile here is one BLAS call
    #: on an ``(m, tile) x (tile, n)`` pair, not a materialised 3D slab; the
    #: default keeps per-tile ``float32`` temporaries a few MB at the block
    #: sizes the engines produce.
    BOOL_TILE = 1024

    #: Work floor for the bit-packed kernel, in elementary ``m * k * n``
    #: AND/OR operations.  The GEMM tile does that work in ``float32`` ops;
    #: the packed kernel does ``~(k/8)(n/64)(256 + m)`` word ops (table
    #: build + gather/reduce), so packing wins once the product is large
    #: *as a whole* -- including skinny-but-huge shapes like
    #: ``(64, 4096, 4096)`` that a per-dimension floor wrongly rejects.
    #: ``256**3`` reproduces the old crossover exactly on cube shapes while
    #: keeping the small per-node blocks the engines batch (``64**3`` work)
    #: on the measured-faster GEMM tile.  Both kernels are density-blind
    #: (word-parallel ORs and BLAS alike ignore the population count), so
    #: the crossover is purely about work and pack widths.
    PACKED_MIN_WORK = 256**3

    #: Minimum output width for packing to pay: below one ``uint64`` word of
    #: output columns the word-parallel OR sweep degenerates to scalar ops.
    PACKED_MIN_WIDTH = 64

    #: Minimum inner dimension: below one 8-bit chunk the 256-row OR tables
    #: cannot amortise at all.
    PACKED_MIN_INNER = 8

    #: Entry budget for one chunk-table slab ``(B_chunk, chunks, 256, nw)``
    #: of the packed kernel: the batch axis is chunked so the 256-row OR
    #: tables stay ~8 MB of ``uint64`` however large the batch -- at the
    #: n=512 engine batch (``512`` blocks of ``64^3``) a single chunk holds
    #: the whole batch, reproducing the pre-chunking behaviour exactly.
    _PACKED_TABLE_ENTRIES = 1 << 20

    def _use_packed(self, m: int, k: int, n: int) -> bool:
        """The work-based heuristic selecting the bit-packed kernel.

        The dispatch can never change values (all kernels are exact); it
        only picks the faster one.  The crossover is pinned by
        ``tests/test_kernel_gen2.py``.
        """
        return (
            n >= self.PACKED_MIN_WIDTH
            and k >= self.PACKED_MIN_INNER
            and m * k * n >= self.PACKED_MIN_WORK
        )

    def matmul(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> np.ndarray:
        """Boolean block product; dispatches packed vs GEMM by size.

        An explicit ``tile`` pins the ``float32`` GEMM kernel (the only one
        with a tile); otherwise :meth:`_use_packed` picks the ``uint64``
        bit-packed kernel for large blocks.  All kernels are exact, so the
        dispatch can never change values.
        """
        x, y = self._check(x, y)
        if tile is None and self._use_packed(x.shape[0], x.shape[1], y.shape[1]):
            # Batch of one, skipping packed_matmul's re-validation.
            return self.packed_matmul_batch(x[None], y[None], backend=backend)[0]
        return self.gemm_matmul(x, y, tile=tile)

    def gemm_matmul(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> np.ndarray:
        """The blocked ``float32`` GEMM kernel (PR 2): one BLAS call per tile."""
        x, y = self._check(x, y)
        if tile is None:
            tile = self.BOOL_TILE
        elif tile < 1:
            raise ValueError(f"tile width must be positive, got {tile}")
        k = x.shape[1]
        acc = np.zeros((x.shape[0], y.shape[1]), dtype=bool)
        xb = (x > 0).astype(np.float32)
        yb = (y > 0).astype(np.float32)
        for k0 in range(0, k, tile):
            counts = xb[:, k0 : k0 + tile] @ yb[k0 : k0 + tile, :]
            acc |= counts > 0.5
        return acc.astype(np.int64)

    def packed_matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Bit-packed Boolean product (method of Four Russians, word-parallel).

        Both operands are packed once per product -- 64x memory compression
        against the ``float32`` GEMM path's working set.  The inner
        dimension is processed in 8-bit chunks: chunk ``c`` packs ``y`` rows
        ``8c .. 8c+7`` (columns bit-packed, little-endian, padded to whole
        ``uint64`` words) and materialises the 256 possible OR combinations
        with 8 doubling passes; output row ``i`` then ORs, over chunks, the
        table row selected by byte ``c`` of ``x[i]``'s packed row.  The
        tables are viewed as ``uint64`` words, so the gather/reduce sweep
        ORs 64 output columns per word op, chunk-major and contiguous.
        Exact at every density (no arithmetic, only AND/OR logic),
        property-tested against :meth:`cube_matmul` and :meth:`gemm_matmul`.
        """
        # One block is a batch of one (same pattern as the packed witness
        # kernels), so the endianness-sensitive pack/table/gather logic
        # lives in exactly one place.
        x, y = self._check(x, y)
        return self.packed_matmul_batch(x[None], y[None])[0]

    def packed_matmul_batch(
        self, x: np.ndarray, y: np.ndarray, *, backend=None
    ) -> np.ndarray:
        """Batched :meth:`packed_matmul`: the chunk tables gain a batch axis.

        Packs both operands, runs the pre-packed word kernel
        (:meth:`packed_words_matmul_batch` -- the single home of the
        endianness-sensitive table/gather logic), and unpacks the result.
        """
        x, y = _check_batch(x, y)
        batch, m, k = x.shape
        n = y.shape[2]
        if 0 in (batch, m, k, n):
            return np.zeros((batch, m, n), dtype=np.int64)
        xw = pack_bool_rows(x)
        yw = pack_bool_rows(y)
        packed = self.packed_words_matmul_batch(xw, yw, k, backend=backend)
        return unpack_bool_rows(packed, n)

    def packed_words_matmul_batch(
        self, xw: np.ndarray, yw: np.ndarray, k: int, *, backend=None
    ) -> np.ndarray:
        """Four-Russians product on *pre-packed* operands, packed output.

        Args:
            xw: ``(B, m, xwords)`` ``int64`` -- left rows bit-packed along
                the inner dimension (``k`` logical bits, little-endian,
                zero-padded to whole words; :func:`pack_bool_rows` layout).
            yw: ``(B, k, owords)`` ``int64`` -- right rows bit-packed along
                the output columns (padding bits zero).
            k: logical inner dimension (bits of an ``xw`` row / rows of
                ``yw``).

        Returns the ``(B, m, owords)`` packed product rows, freshly
        allocated.  Padding bits of the output stay zero (padded ``y`` rows
        are all-zero, so their OR contribution vanishes), which is what
        lets the engine's persistent packed closure feed products straight
        back in as operands.  The batch axis is chunked so the 256-row OR
        tables stay slab-sized (:data:`_PACKED_TABLE_ENTRIES`) and the
        chunks are scheduled on ``backend`` -- each chunk writes a disjoint
        output slice, so scheduling cannot change values.
        """
        xw = np.ascontiguousarray(np.asarray(xw, dtype=np.int64))
        yw = np.ascontiguousarray(np.asarray(yw, dtype=np.int64))
        if xw.ndim != 3 or yw.ndim != 3 or xw.shape[0] != yw.shape[0]:
            raise ValueError(
                f"incompatible packed batch shapes {xw.shape} x {yw.shape}"
            )
        batch, m, xwords = xw.shape
        owords = yw.shape[2]
        if yw.shape[1] != k:
            raise ValueError(
                f"packed right operand has {yw.shape[1]} rows, expected k={k}"
            )
        chunks = -(-k // 8)
        if chunks > xwords * 8:
            raise ValueError(
                f"packed left rows of {xwords} words cannot hold k={k} bits"
            )
        out = np.zeros((batch, m, owords), dtype=np.int64)
        if 0 in (batch, m, k, owords):
            return out
        # The uint8 <-> uint64 views assume a little-endian host (byte j of
        # word w is packed byte 8w+j); the property tests against the cube
        # oracle would fail loudly on a big-endian platform.
        xb = xw.view(np.uint64).view(np.uint8).reshape(batch, m, xwords * 8)
        xb = xb[:, :, :chunks]
        ywu = yw.view(np.uint64)

        def product_range(lo: int, hi: int) -> None:
            chunk = _batch_chunk(
                hi - lo, chunks * 256 * owords, self._PACKED_TABLE_ENTRIES
            )
            for b0 in range(lo, hi, chunk):
                bc = min(chunk, hi - b0)
                ypad = np.zeros((bc, chunks * 8, owords), dtype=np.uint64)
                ypad[:, :k] = ywu[b0 : b0 + bc]
                ywords = ypad.reshape(bc, chunks, 8, owords)
                tables = np.zeros((bc, chunks, 256, owords), dtype=np.uint64)
                half = 1
                for t in range(8):
                    np.bitwise_or(
                        tables[:, :, :half],
                        ywords[:, :, t, None, :],
                        out=tables[:, :, half : 2 * half],
                    )
                    half *= 2
                flat = tables.reshape(bc * chunks * 256, owords)
                idx = (
                    np.ascontiguousarray(
                        np.moveaxis(xb[b0 : b0 + bc], 2, 0)
                    ).astype(np.intp)
                    + (np.arange(chunks, dtype=np.intp) * 256)[:, None, None]
                    + (np.arange(bc, dtype=np.intp) * chunks * 256)[
                        None, :, None
                    ]
                )
                rows = np.take(flat, idx, axis=0)  # (chunks, bc, m, owords)
                packed = np.bitwise_or.reduce(rows, axis=0)
                out[b0 : b0 + bc] = packed.view(np.int64)

        backend = get_backend(backend)
        if backend.threads > 1 and batch > 1:
            ranges = tile_ranges(batch, backend.threads)
        else:
            ranges = [(0, batch)]
        backend.run([partial(product_range, lo, hi) for lo, hi in ranges])
        return out

    def cube_matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """The cube-materialising Boolean product (oracle + perf baseline).

        Materialises the full ``(m, k, n)`` slab of elementary ANDs and
        reduces with ``any`` -- ``O(m k n)`` temporaries, like the seed's
        selection-semiring cube kernel.  The blocked kernel is
        property-tested against it and the perf report measures the speedup
        relative to it.
        """
        x, y = self._check(x, y)
        values = (x[:, :, None] > 0) & (y[None, :, :] > 0)
        return values.any(axis=1).astype(np.int64)

    def matmul_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> np.ndarray:
        """Batched blocked Boolean product: one BLAS call per inner tile.

        The exactness argument of :meth:`matmul` is per output entry, so it
        holds unchanged with a leading batch axis; values are identical to
        the per-block kernel.  The same size heuristic as :meth:`matmul`
        applies per block: large blocks take the bit-packed kernel, the
        small per-node blocks the engines batch stay on the GEMM tile
        (measured faster there -- BLAS amortises while the 256-row chunk
        tables do not; ``backend`` only schedules the packed kernel's
        tiles, BLAS threads are BLAS's own business).
        """
        x, y = _check_batch(x, y)
        if tile is None and self._use_packed(x.shape[1], x.shape[2], y.shape[2]):
            return self.packed_matmul_batch(x, y, backend=backend)
        if tile is None:
            tile = self.BOOL_TILE
        elif tile < 1:
            raise ValueError(f"tile width must be positive, got {tile}")
        k = x.shape[2]
        acc = np.zeros((x.shape[0], x.shape[1], y.shape[2]), dtype=bool)
        xb = (x > 0).astype(np.float32)
        yb = (y > 0).astype(np.float32)
        for k0 in range(0, k, tile):
            counts = np.matmul(xb[:, :, k0 : k0 + tile], yb[:, k0 : k0 + tile, :])
            acc |= counts > 0.5
        return acc.astype(np.int64)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a + b) > 0).astype(np.int64)

    @staticmethod
    def _check(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[0]:
            raise ValueError(
                f"incompatible block shapes {x.shape} x {y.shape} for a product"
            )
        return x, y


class _SelectionSemiring(Semiring):
    """Shared blocked-kernel machinery for min-plus and max-min.

    Two accumulator kernels replace the seed's cube-materialising product:

    * :meth:`matmul` processes the inner dimension in tiles, reducing each
      ``(m, tile, n)`` slab immediately and merging it into an ``(m, n)``
      running best -- peak memory ``O(m * n * tile)``.
    * :meth:`matmul_with_witness` walks the inner dimension one column at a
      time, updating a ``(value, witness)`` pair with a masked copy -- no
      3D temporaries at all, which beats a slab ``argmin`` (strided-axis
      ``argmin`` + ``take_along_axis`` is the slow part of the seed kernel).

    Both merge with a *strict* improvement test while scanning ``k`` in
    ascending order, which reproduces NumPy's global ``argmin``/``argmax``
    tie-breaking (lowest attaining index wins), so results and witnesses are
    bit-identical to :meth:`cube_matmul_with_witness`.

    The concrete semirings override the batched witness entry point with
    *packed* kernels (``(value << kbits) | tag`` under one tiled min/max,
    see :class:`MinPlusSemiring` / :class:`MaxMinSemiring`); the generic
    batched column walk is retained as
    :meth:`_generic_walk_batch_with_witness` -- their range-gated fallback
    and the independent baseline the equivalence tests pin them against.
    """

    has_witnesses = True

    #: Inner-dimension tile and slab budget for the *packed* witness
    #: kernels.  Wider than the plain-kernel tile (a packed tile is a single
    #: broadcast add/min pass, so Python-loop overhead dominates sooner) and
    #: a smaller slab budget (the preallocated slab plus the running best
    #: must stay cache-resident together); measured fastest at the
    #: ``(512, 64, 64)`` batches an n=512 engine squaring produces.
    _PACKED_TILE = 16
    _PACKED_SLAB_ENTRIES = 1 << 16

    def _packed_fold(
        self,
        xs,
        ys,
        fill,
        reduce_fn,
        merge_fn,
        *,
        tile: int | None = None,
        backend=None,
    ) -> np.ndarray:
        """The shared tiled fold of the packed witness kernels.

        Per inner tile, ``fill`` (a broadcasting binary ufunc: ``np.add``
        for min-plus, ``np.minimum`` for max-min) writes the packed
        candidates into a preallocated slab; ``reduce_fn`` collapses the
        tile axis and ``merge_fn`` merges into the running best.  The batch
        axis is chunked so slab + best stay cache-resident
        (:data:`_PACKED_SLAB_ENTRIES`).  Returns the ``(B, m, n)`` packed
        best, still carrying the witness tag bits.

        Two orthogonal splits keep every slab cache-sized and schedulable:

        * **two-level tiling**: when a *single* block's ``(m, tile, n)``
          slab overflows the slab budget (huge blocks, batch chunking alone
          cannot help), the output-column axis is tiled as well, so the
          inner fold runs per column stripe with a budget-sized slab.
        * **backend scheduling**: the (batch-range x column-stripe) cells
          are independent -- each folds the full inner dimension for a
          disjoint ``out`` slice -- so they are handed to ``backend``
          (:mod:`repro.algebra.backends`) as tiles.  The fold's merge order
          along ``k`` is unchanged in every cell, and ``min``/``max`` over
          packed (value, tag) lanes is order-independent anyway, so serial
          and threaded schedules are bit-identical (down to witness
          tie-breaks; pinned in ``tests/test_kernel_gen3.py``).
        """
        batch, m, k = xs.shape
        n = ys.shape[2]
        tile = self._PACKED_TILE if tile is None else _resolve_tile(tile)
        out = np.empty((batch, m, n), dtype=np.int64)
        backend = get_backend(backend)
        kt_max = min(tile, k)
        # Column stripes: only when one block overflows the slab budget.
        if m * kt_max * n > self._PACKED_SLAB_ENTRIES and n > 1:
            stripe = max(1, self._PACKED_SLAB_ENTRIES // (m * kt_max))
            col_ranges = [(c0, min(c0 + stripe, n)) for c0 in range(0, n, stripe)]
        else:
            col_ranges = [(0, n)]
        # Batch ranges: one per backend thread (serial keeps one range).
        if backend.threads > 1 and batch > 1:
            batch_ranges = tile_ranges(batch, backend.threads)
        else:
            batch_ranges = [(0, batch)]
        if (
            backend.threads > 1
            and len(batch_ranges) == 1
            and len(col_ranges) == 1
            and n >= 2 * backend.threads
        ):
            # A single huge block below the stripe threshold: thread over
            # columns anyway so backend width is not wasted.
            col_ranges = tile_ranges(n, backend.threads)

        def fold_cell(b_lo: int, b_hi: int, c_lo: int, c_hi: int) -> None:
            width = c_hi - c_lo
            chunk = _batch_chunk(
                b_hi - b_lo, m * kt_max * width, self._PACKED_SLAB_ENTRIES
            )
            slab = np.empty((chunk, m, kt_max, width), dtype=np.int64)
            ycols = ys[:, :, c_lo:c_hi]
            for b0 in range(b_lo, b_hi, chunk):
                bc = min(chunk, b_hi - b0)
                xc = xs[b0 : b0 + bc]
                yc = ycols[b0 : b0 + bc]
                best: np.ndarray | None = None
                for k0 in range(0, k, tile):
                    kt = min(tile, k - k0)
                    sl = slab[:bc, :, :kt]
                    fill(
                        xc[:, :, k0 : k0 + kt, None],
                        yc[:, None, k0 : k0 + kt, :],
                        out=sl,
                    )
                    if best is None:
                        best = reduce_fn(sl, axis=2)
                    else:
                        merge_fn(best, reduce_fn(sl, axis=2), out=best)
                out[b0 : b0 + bc, :, c_lo:c_hi] = best
        backend.run(
            [
                partial(fold_cell, b_lo, b_hi, c_lo, c_hi)
                for b_lo, b_hi in batch_ranges
                for c_lo, c_hi in col_ranges
            ]
        )
        return out

    # -- subclass hooks -------------------------------------------------- #

    def _combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise semiring multiplication (broadcasting)."""
        raise NotImplementedError

    def _select(self, values: np.ndarray, axis: int) -> np.ndarray:
        """Index of the selected (min/max) value along ``axis``."""
        raise NotImplementedError

    def _reduce(self, values: np.ndarray, axis: int) -> np.ndarray:
        """Selected value along ``axis`` (min/max)."""
        raise NotImplementedError

    def _strictly_better(self, challenger: np.ndarray, best: np.ndarray) -> np.ndarray:
        """Boolean mask: where the challenger beats the incumbent."""
        raise NotImplementedError

    # -- blocked kernels ------------------------------------------------- #

    def matmul(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> np.ndarray:
        x, y = self._check_operands(x, y)
        tile = _resolve_tile(tile)
        k = x.shape[1]
        best: np.ndarray | None = None
        for k0 in range(0, k, tile):
            xt = x[:, k0 : k0 + tile]
            yt = y[k0 : k0 + tile, :]
            slab = self._combine(xt[:, :, None], yt[None, :, :])
            tile_best = self._reduce(slab, axis=1)
            if best is None:
                best = tile_best
            else:
                better = self._strictly_better(tile_best, best)
                np.copyto(best, tile_best, where=better)
        if best is None:  # k == 0: empty inner dimension
            best = self.zeros((x.shape[0], y.shape[1]))
        return best

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        _resolve_tile(tile)  # validated for API symmetry; kernel is column-wise
        x, y = self._check_operands(x, y)
        k = x.shape[1]
        best: np.ndarray | None = None
        witness: np.ndarray | None = None
        for j in range(k):
            candidate = self._combine(x[:, j : j + 1], y[j])
            if best is None:
                best = candidate
                witness = np.zeros(best.shape, dtype=np.int64)
            else:
                better = self._strictly_better(candidate, best)
                np.copyto(best, candidate, where=better)
                np.copyto(witness, j, where=better)
        if best is None:  # k == 0
            best = self.zeros((x.shape[0], y.shape[1]))
            witness = np.zeros((x.shape[0], y.shape[1]), dtype=np.int64)
        return best, witness

    def matmul_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> np.ndarray:
        """Batched tiled kernel: the per-block tile loop lifted over ``B``.

        Per batch lane this performs exactly the reductions and strict
        merges of :meth:`matmul` in the same order, so values are
        bit-identical to the per-block kernel; the batch axis is chunked to
        keep slab temporaries bounded.  (``backend`` is accepted for
        interface uniformity; only the packed witness fold has backend
        tiles.)
        """
        del backend
        x, y = _check_batch(x, y)
        tile = _resolve_tile(tile)
        batch, m, k = x.shape
        n = y.shape[2]
        out = np.empty((batch, m, n), dtype=np.int64)
        if k == 0:
            out[:] = self.zero_value
            return out
        chunk = _batch_chunk(batch, m * tile * n)
        for b0 in range(0, batch, chunk):
            xc = x[b0 : b0 + chunk]
            yc = y[b0 : b0 + chunk]
            best: np.ndarray | None = None
            for k0 in range(0, k, tile):
                slab = self._combine(
                    xc[:, :, k0 : k0 + tile, None], yc[:, None, k0 : k0 + tile, :]
                )
                tile_best = self._reduce(slab, axis=2)
                if best is None:
                    best = tile_best
                else:
                    better = self._strictly_better(tile_best, best)
                    np.copyto(best, tile_best, where=better)
            out[b0 : b0 + chunk] = best
        return out

    def matmul_batch_with_witness(
        self, x: np.ndarray, y: np.ndarray, *, backend=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched witness product; subclasses dispatch to packed kernels."""
        del backend  # the generic walk has no backend tiles
        return self._generic_walk_batch_with_witness(x, y)

    def _generic_walk_batch_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Batched column-walk witness kernel; bit-identical to per-block.

        Walks the inner dimension once for the whole batch (``k`` Python
        iterations instead of ``B * k``), with the same strict-improvement
        merge -- values *and* witnesses match :meth:`matmul_with_witness`
        exactly, including tie-breaking.  Retained as the fallback for
        operands outside the packed kernels' head-room range and as their
        equivalence baseline.
        """
        x, y = _check_batch(x, y)
        batch, m, k = x.shape
        n = y.shape[2]
        if k == 0:
            shape = (batch, m, n)
            return self.zeros(shape), np.zeros(shape, dtype=np.int64)
        best = self._combine(x[:, :, 0:1], y[:, 0:1, :])
        witness = np.zeros(best.shape, dtype=np.int64)
        for j in range(1, k):
            candidate = self._combine(x[:, :, j : j + 1], y[:, j : j + 1, :])
            better = self._strictly_better(candidate, best)
            np.copyto(best, candidate, where=better)
            np.copyto(witness, j, where=better)
        return best, witness

    def improves(self, challenger: np.ndarray, best: np.ndarray) -> np.ndarray:
        return self._strictly_better(challenger, best)

    def cube_matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """The original cube-materialising kernel (oracle + perf baseline).

        Materialises the full ``(m, k, n)`` slab of elementary products and
        takes a single global ``argmin``/``argmax`` -- ``O(m k n)``
        temporaries.  Kept (modulo the shared saturation helper) from the
        seed implementation: the blocked kernels are property-tested against
        it and the perf report measures the speedup relative to it.
        """
        x, y = self._check_operands(x, y)
        values = self._combine(x[:, :, None], y[None, :, :])
        witness = self._select(values, axis=1)
        product = np.take_along_axis(values, witness[:, None, :], axis=1)[:, 0, :]
        return product, witness

    @staticmethod
    def _check_operands(x: np.ndarray, y: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        x = np.asarray(x)
        y = np.asarray(y)
        if x.ndim != 2 or y.ndim != 2 or x.shape[1] != y.shape[0]:
            raise ValueError(
                f"incompatible block shapes {x.shape} x {y.shape} for a product"
            )
        return x, y


class MinPlusSemiring(_SelectionSemiring):
    """The tropical (min-plus) semiring used for distance products (§3.3).

    ``(S * T)[u, v] = min_w S[u, w] + T[w, v]``; the additive identity is
    :data:`~repro.constants.INF` and sums saturate there so that unreachable
    entries stay unreachable.  Witnesses record the minimising inner index,
    which §3.3 turns into routing tables.
    """

    name = "min-plus"
    zero_value = INF
    one_value = 0

    #: Fast-path constants: operands whose finite entries satisfy
    #: ``|x| <= _FAST_MAX`` are *penalty-encoded* -- ``INF`` becomes
    #: ``_PENALTY`` -- so each tile needs only a raw add + min (no masking
    #: passes).  Any combo involving an encoded infinity lands in
    #: ``[_PENALTY - _FAST_MAX, 2 * _PENALTY]``, entirely above
    #: ``_INF_THRESHOLD``, while finite sums stay entirely below it; a
    #: single final threshold pass restores exact ``INF`` saturation.  The
    #: maximum possible sum is ``2 * _PENALTY == 2**62 < 2**63``: overflow
    #: is impossible, and ``INF + INF`` is never formed.
    _FAST_MAX = 1 << 58
    _PENALTY = 1 << 61
    _INF_THRESHOLD = 1 << 60

    def _combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return saturating_add(a, b)

    @classmethod
    def _penalty_encode(
        cls, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray] | None:
        """Encoded operands for the fast path, or ``None`` if out of range."""
        encoded = []
        for mat in (x, y):
            finite = np.where(mat >= INF, 0, mat)
            if not bool(np.all(np.abs(finite) <= cls._FAST_MAX)):
                return None
            encoded.append(np.where(mat >= INF, cls._PENALTY, mat))
        return encoded[0], encoded[1]

    def matmul(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> np.ndarray:
        x, y = self._check_operands(x, y)
        tile = _resolve_tile(tile)
        if x.shape[1] == 0:
            return self.zeros((x.shape[0], y.shape[1]))
        encoded = self._penalty_encode(x, y)
        if encoded is None:  # huge finite entries: exact saturating path
            return super().matmul(x, y, tile=tile)
        xe, ye = encoded
        k = x.shape[1]
        best: np.ndarray | None = None
        for k0 in range(0, k, tile):
            slab = xe[:, k0 : k0 + tile, None] + ye[None, k0 : k0 + tile, :]
            tile_best = slab.min(axis=1)
            if best is None:
                best = tile_best
            else:
                np.minimum(best, tile_best, out=best)
        np.copyto(best, INF, where=best >= self._INF_THRESHOLD)
        return best

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = self._check_operands(x, y)
        tile = _resolve_tile(tile)
        if x.shape[1] == 0:
            shape = (x.shape[0], y.shape[1])
            return self.zeros(shape), np.zeros(shape, dtype=np.int64)
        # One block is a batch of one; the batched kernel holds the packed
        # fast path and the exact fallback chain (values and witnesses are
        # bit-identical across all of them).
        product, witness = self.matmul_batch_with_witness(
            x[None], y[None], tile=tile
        )
        return product[0], witness[0]

    def matmul_batch(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> np.ndarray:
        del backend  # the penalty-encoded fold has no backend tiles
        x, y = _check_batch(x, y)
        tile = _resolve_tile(tile)
        batch, m, k = x.shape
        n = y.shape[2]
        if k == 0:
            return self.zeros((batch, m, n))
        encoded = self._penalty_encode(x, y)
        if encoded is None:  # huge finite entries: exact saturating path
            return super().matmul_batch(x, y, tile=tile)
        xe, ye = encoded
        out = np.empty((batch, m, n), dtype=np.int64)
        chunk = _batch_chunk(batch, m * tile * n)
        for b0 in range(0, batch, chunk):
            xc = xe[b0 : b0 + chunk]
            yc = ye[b0 : b0 + chunk]
            best: np.ndarray | None = None
            for k0 in range(0, k, tile):
                slab = (
                    xc[:, :, k0 : k0 + tile, None]
                    + yc[:, None, k0 : k0 + tile, :]
                )
                tile_best = slab.min(axis=2)
                if best is None:
                    best = tile_best
                else:
                    np.minimum(best, tile_best, out=best)
            out[b0 : b0 + chunk] = best
        np.copyto(out, INF, where=out >= self._INF_THRESHOLD)
        return out

    def _pack_parameters(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int, int] | None:
        """Offsets/penalty/shift for the packed witness kernel, or ``None``.

        The packed kernel turns the witness product into a *plain* tiled min
        over ``(sum << kbits) | j`` values: the minimum simultaneously
        selects the smallest sum and, on ties, the smallest inner index --
        exactly the tie-breaking of the column-walk and cube kernels.  For
        that to be exact in ``int64`` we need head-room: with finite
        entries bounded by ``F`` in magnitude, entries are shifted by ``+F``
        (so encoded sums are non-negative, ``<= 4F``), infinities become a
        penalty ``P > 4F`` (any combo involving one lands ``>= P``, double
        penalties at ``2P``), and ``2P << kbits`` must stay below ``2^62``.
        Falls back to ``None`` (column walk) outside that range.
        """
        k = x.shape[-1]
        kbits = max(0, (k - 1).bit_length())
        finite_bound = 0
        for mat in (x, y):
            if mat.size == 0:
                continue
            # max |finite entry| without materialising a masked copy: the
            # global min is never INF-contaminated (INF is the largest
            # value), and the masked max caps negatives at the 0 initial.
            lo = int(mat.min())
            hi = int(np.max(mat, initial=0, where=mat < INF))
            finite_bound = max(finite_bound, -lo if lo < 0 else 0, hi)
        penalty = 1 << max(3, (4 * finite_bound).bit_length())
        if 2 * penalty >= 1 << (62 - kbits):
            return None
        xs = np.where(x >= INF, penalty, x + finite_bound)
        ys = np.where(y >= INF, penalty, y + finite_bound)
        return xs, ys, kbits, penalty, finite_bound

    def matmul_batch_with_witness(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = _check_batch(x, y)
        if tile is not None:
            _resolve_tile(tile)  # validate up front, even on fallback paths
        batch, m, k = x.shape
        n = y.shape[2]
        if k == 0:
            shape = (batch, m, n)
            return self.zeros(shape), np.zeros(shape, dtype=np.int64)
        packed = self._pack_parameters(x, y)
        if packed is None:  # huge entries: exact column walk
            return self._walk_batch_with_witness(x, y)
        xs, ys, kbits, penalty, offset = packed
        # Fold the shift and the index tag into the operands once:
        # ``((a + b) << kbits) | j  ==  (a << kbits) + ((b << kbits) + j)``
        # exactly (``j < 2^kbits`` and the shifted sum has ``kbits`` low
        # zero bits), so each tile is a single broadcast add plus a min --
        # no per-slab shift/or passes.  ``xs``/``ys`` are fresh encodes, so
        # the in-place folds are safe.
        xs <<= kbits
        ys <<= kbits
        ys += np.arange(k, dtype=np.int64)[None, :, None]
        out = self._packed_fold(
            xs, ys, np.add, np.min, np.minimum, tile=tile, backend=backend
        )
        witness = out & ((1 << kbits) - 1)
        out >>= kbits
        # Encoded sums carry a 2*offset shift; restore it, then restore INF
        # saturation (any combo involving an encoded infinity is >= penalty)
        # with the all-infinite witness convention (index 0).
        saturated = out >= penalty
        out -= 2 * offset
        np.copyto(out, INF, where=saturated)
        np.copyto(witness, 0, where=saturated)
        return out, witness

    def _walk_batch_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Penalty-encoded column walk (the pre-packing batched kernel)."""
        encoded = self._penalty_encode(x, y)
        if encoded is None:
            return _SelectionSemiring.matmul_batch_with_witness(self, x, y)
        xe, ye = encoded
        k = x.shape[2]
        best = xe[:, :, 0:1] + ye[:, 0:1, :]
        witness = np.zeros(best.shape, dtype=np.int64)
        candidate = np.empty_like(best)
        better = np.empty(best.shape, dtype=bool)
        for j in range(1, k):
            np.add(xe[:, :, j : j + 1], ye[:, j : j + 1, :], out=candidate)
            np.less(candidate, best, out=better)
            np.copyto(best, candidate, where=better)
            np.copyto(witness, j, where=better)
        # Same saturation restore as the per-block fast path: all-infinite
        # rows decode to (INF, witness 0).
        saturated = best >= self._INF_THRESHOLD
        np.copyto(best, INF, where=saturated)
        np.copyto(witness, 0, where=saturated)
        return best, witness

    def _select(self, values: np.ndarray, axis: int) -> np.ndarray:
        return np.argmin(values, axis=axis)

    def _reduce(self, values: np.ndarray, axis: int) -> np.ndarray:
        return np.min(values, axis=axis)

    def _strictly_better(self, challenger: np.ndarray, best: np.ndarray) -> np.ndarray:
        return challenger < best

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a, b)

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        take_b = b < a
        return np.where(take_b, b, a), np.where(take_b, wb, wa)


class MaxMinSemiring(_SelectionSemiring):
    """The bottleneck (max-min) semiring -- a natural extension target.

    ``(S * T)[u, v] = max_w min(S[u, w], T[w, v])`` computes widest
    bottleneck paths; included to demonstrate that the §2.1 engine is generic
    over semirings (the paper states Theorem 1 "over semirings").
    """

    name = "max-min"
    zero_value = -INF
    one_value = INF

    def _pack_parameters(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, int, int] | None:
        """Monotone encoding for the packed max-min witness kernel, or ``None``.

        The min-plus packing trick carries over with two twists.  First, the
        elementwise product is a *min*, so instead of adding encoded
        operands we encode with any strictly monotone map ``e`` over the
        extended order ``-INF < finite < +INF`` -- then
        ``min(e(a), e(b)) = e(min(a, b))`` exactly.  We use ``e(-INF) = 0``,
        ``e(v) = v + F + 1`` for ``|v| <= F`` finite, ``e(+INF) = P = 2F+2``.
        Second, the outer reduction is a *max*, so on value ties the
        **largest** tag wins; tagging column ``j`` with ``k - 1 - j`` makes
        the smallest inner index win ties -- NumPy's argmax convention,
        bit-identical to the column walk.  Exactness needs
        ``P << kbits < 2^62``; ``None`` falls back to the generic walk.
        """
        k = x.shape[-1]
        kbits = max(0, (k - 1).bit_length())
        finite_bound = 0
        for mat in (x, y):
            if mat.size == 0:
                continue
            hi = int(np.max(mat, initial=0, where=mat < INF))
            lo = int(np.min(mat, initial=0, where=mat > -INF))
            finite_bound = max(finite_bound, hi, -lo)
        penalty = 2 * finite_bound + 2
        if penalty >= 1 << (62 - kbits):
            return None
        xs = np.where(x >= INF, penalty, np.where(x <= -INF, 0, x + finite_bound + 1))
        ys = np.where(y >= INF, penalty, np.where(y <= -INF, 0, y + finite_bound + 1))
        return xs, ys, kbits, penalty, finite_bound

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray, *, tile: int | None = None
    ) -> tuple[np.ndarray, np.ndarray]:
        x, y = self._check_operands(x, y)
        _resolve_tile(tile)
        if x.shape[1] == 0:
            shape = (x.shape[0], y.shape[1])
            return self.zeros(shape), np.zeros(shape, dtype=np.int64)
        # One block is a batch of one; the batched kernel holds the packed
        # fast path and the exact walk fallback (bit-identical values and
        # witnesses across all of them).
        product, witness = self.matmul_batch_with_witness(
            x[None], y[None], tile=tile
        )
        return product[0], witness[0]

    def matmul_batch_with_witness(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        tile: int | None = None,
        backend=None,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Packed max-min witness kernel: one tiled max over tagged encodes.

        Packs ``(e(min) << kbits) + (k - 1 - j)`` and takes a single tiled
        max; because both operands of a lane carry the *same* tag,
        ``min(a + t, b + t) = min(a, b) + t`` keeps the fold exact.  Values
        and witnesses are bit-identical to the retained column walk
        (:meth:`_generic_walk_batch_with_witness`), including tie-breaks.
        """
        x, y = _check_batch(x, y)
        if tile is not None:
            _resolve_tile(tile)  # validate up front, even on fallback paths
        batch, m, k = x.shape
        n = y.shape[2]
        if k == 0:
            shape = (batch, m, n)
            return self.zeros(shape), np.zeros(shape, dtype=np.int64)
        packed = self._pack_parameters(x, y)
        if packed is None:  # huge entries: exact column walk
            return self._generic_walk_batch_with_witness(x, y)
        xs, ys, kbits, penalty, offset = packed
        # Fold shift and reversed tag into *both* operands (same tag per
        # inner index, so the elementwise min preserves it exactly).
        tags = (k - 1) - np.arange(k, dtype=np.int64)
        xs <<= kbits
        xs += tags[None, None, :]
        ys <<= kbits
        ys += tags[None, :, None]
        out = self._packed_fold(
            xs, ys, np.minimum, np.max, np.maximum, tile=tile, backend=backend
        )
        witness = (k - 1) - (out & ((1 << kbits) - 1))
        out >>= kbits
        # Decode the monotone encoding: 0 is -INF, penalty is +INF,
        # everything else shifts back by offset + 1.
        neg = out == 0
        pos = out >= penalty
        out -= offset + 1
        np.copyto(out, -INF, where=neg)
        np.copyto(out, INF, where=pos)
        np.copyto(witness, 0, where=neg)
        return out, witness

    def _combine(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a, b)

    def _select(self, values: np.ndarray, axis: int) -> np.ndarray:
        return np.argmax(values, axis=axis)

    def _reduce(self, values: np.ndarray, axis: int) -> np.ndarray:
        return np.max(values, axis=axis)

    def _strictly_better(self, challenger: np.ndarray, best: np.ndarray) -> np.ndarray:
        return challenger > best

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(a, b)

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        take_b = b > a
        return np.where(take_b, b, a), np.where(take_b, wb, wa)


#: Singleton instances -- semirings are stateless, so share them.
PLUS_TIMES = PlusTimesRing()
BOOLEAN = BooleanSemiring()
MIN_PLUS = MinPlusSemiring()
MAX_MIN = MaxMinSemiring()

ALL_SEMIRINGS: tuple[Semiring, ...] = (PLUS_TIMES, BOOLEAN, MIN_PLUS, MAX_MIN)

_SEMIRINGS_BY_NAME: dict[str, Semiring] = {s.name: s for s in ALL_SEMIRINGS}


def get_semiring(name: str) -> Semiring:
    """Look a semiring singleton up by its ``name``.

    Worker processes of the sharded executor resolve semirings by name
    instead of unpickling instances, so every process computes with the
    exact same singleton (and its module-level tile configuration).
    """
    try:
        return _SEMIRINGS_BY_NAME[name]
    except KeyError:
        raise KeyError(
            f"unknown semiring {name!r} (known: {sorted(_SEMIRINGS_BY_NAME)})"
        ) from None


def reference_matmul(semiring: Semiring, s: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Centralised single-shot semiring product, used as a test oracle.

    For the selection semirings this deliberately uses the cube-materialising
    kernel so that it stays an *independent* oracle for the blocked kernels;
    for the ring and Boolean instances it uses plain ``int64`` arithmetic.
    """
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if isinstance(semiring, _SelectionSemiring):
        return semiring.cube_matmul_with_witness(s, t)[0]
    if isinstance(semiring, BooleanSemiring):
        return ((s.astype(np.int64) @ t.astype(np.int64)) > 0).astype(np.int64)
    return semiring.matmul(s, t)


__all__ = [
    "Semiring",
    "PlusTimesRing",
    "BooleanSemiring",
    "MinPlusSemiring",
    "MaxMinSemiring",
    "PLUS_TIMES",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "ALL_SEMIRINGS",
    "get_semiring",
    "reference_matmul",
    "saturating_add",
    "get_block_tile",
    "set_block_tile",
    "DEFAULT_BLOCK_TILE",
    "packed_words",
    "pack_bool_rows",
    "unpack_bool_rows",
]
