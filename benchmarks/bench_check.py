#!/usr/bin/env python
"""Perf regression gate: quick report vs the committed ``BENCH_matmul.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_check.py            # or: make bench-check
    PYTHONPATH=src python benchmarks/bench_check.py --baseline X.json

Runs :func:`perf_report.build_report` in ``--quick`` mode and compares every
row that has a ``speedup`` field and the *same problem size* as the committed
baseline (the engine sections run at ``n = 256`` in every mode precisely so
they are always comparable; the kernel rows only gate when the quick size
matches).  Speedup ratios are compared rather than raw seconds so the gate is
robust to absolute machine speed; a row fails when its current speedup drops
below ``(1 - TOLERANCE)`` of the committed one.  Reuse rows
(``session_reuse_speedup``) are gated with the wider explicit
:data:`REUSE_TOLERANCE` band -- near-1x ratios on 1-core containers would
flap under the strict gate -- and noise-level committed ratios are
*reported* as skipped instead of silently passing.  Threaded/sharded rows
(those carrying a ``threads`` field) are only compared when *both* the
baseline and the current run record ``cpus >= 2`` -- on a 1-core container
they measure scheduling overhead, not a speedup -- and speedup rows that
also carry a deterministic ``rounds`` bill additionally gate it for exact
equality.

``--gate-only`` gates just the fixed-size sections (``make bench-quick``,
the CI fast lane); the full quick report is the default (``make
bench-check``).

Exit status 1 on any regression -- wire into CI or run before committing a
refreshed ``BENCH_matmul.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from perf_report import build_report  # noqa: E402

#: Maximum tolerated speedup regression (25%).
TOLERANCE = 0.25

#: Explicit tolerance for *near-1x* rows: reuse ratios
#: (``session_reuse_speedup`` fields) and small-but-real speedups below
#: :data:`NARROW_BAND_MIN` sit close to 1x on the 1-core CI containers, so
#: a hard 25% gate on them would flap (1.07x jittering to 0.79x is timer
#: noise, not a regression).  They are still gated -- with a wider band --
#: instead of silently skipped, and rows whose committed ratio is inside
#: the noise band around 1x are *reported* as skipped.
REUSE_TOLERANCE = 0.35

#: Committed speedups at or above this use the strict :data:`TOLERANCE`;
#: smaller ratios (whatever the field name) get :data:`REUSE_TOLERANCE`.
NARROW_BAND_MIN = 1.5

#: A committed reuse ratio below this is considered noise-level on a
#: 1-core container (the row then documents overhead, not a win), and is
#: explicitly skipped rather than gated.
REUSE_NOISE_FLOOR = 1.05

#: Sections whose rows carry comparable ``speedup`` fields.  The headline
#: "kernel" section only matches when the quick size equals the committed
#: one; "kernel_gate" runs at n=128 in every mode and "kernel2" at fixed
#: sizes in every mode, so those are always gated alongside the n=256
#: engine sections.  In "sessions", the fixed-size ``witness_kernel`` row
#: carries a plain ``speedup`` field (shard speedups are
#: machine/core-count dependent and deliberately not gated) and the
#: ``plan_cache`` reuse row is gated with :data:`REUSE_TOLERANCE`.  In
#: "serve", the ``dist_batch`` speedup is ratio-gated, the ``artifact_open``
#: and ``delta_update`` round bills are deterministic and gated for exact
#: equality, and the wall-clock ``query_serving`` latency row carries no
#: speedup/rounds fields so it is reported but never gated.
SECTIONS = (
    "kernel",
    "kernel_gate",
    "bilinear",
    "boolean_product",
    "kernel2",
    "kernel3",
    "spanning",
    "faults",
    "serve",
    "netsim",
    "sessions",
)


def _compare_row(
    section: str, key: str, base_row: dict, cur_row: dict
) -> tuple[str | None, bool]:
    """One (line, failed) verdict for a row pair, or ``(None, False)``."""
    # Topology is part of a row's identity: a netsim row priced on a ring
    # and one priced on a fat-tree are different experiments even when
    # every other field matches, so refuse the comparison explicitly.
    if base_row.get("topology") != cur_row.get("topology"):
        return (
            f"  skip {section}/{key}: topology mismatch "
            f"(baseline {base_row.get('topology')}, "
            f"current {cur_row.get('topology')})",
            False,
        )
    # Field detection first: rows without a gateable ratio (e.g. the
    # shard-speedup session rows) stay silent, whatever their sizes --
    # unless they carry a deterministic ``rounds`` bill, which is gated for
    # *exact equality* (the spanning workload rows: simulated rounds are
    # seeded and noise-free, so any drift is a behaviour change).
    if "speedup" in base_row and "speedup" in cur_row:
        field = "speedup"
    elif (
        "session_reuse_speedup" in base_row
        and "session_reuse_speedup" in cur_row
    ):
        field = "session_reuse_speedup"
    elif "rounds" in base_row and "rounds" in cur_row:
        if base_row.get("n") != cur_row.get("n"):
            return (
                f"  skip {section}/{key}: size mismatch "
                f"(baseline n={base_row.get('n')}, quick n={cur_row.get('n')})",
                False,
            )
        failed = base_row["rounds"] != cur_row["rounds"]
        verdict = "REGRESSED" if failed else "ok"
        return (
            f"  {verdict:9s} {section}/{key}: rounds {cur_row['rounds']} "
            f"vs committed {base_row['rounds']} (exact-equality gate)",
            failed,
        )
    else:
        return None, False
    if base_row.get("n") != cur_row.get("n"):
        return (
            f"  skip {section}/{key}: size mismatch "
            f"(baseline n={base_row.get('n')}, quick n={cur_row.get('n')})",
            False,
        )
    # Threaded/sharded speedups only mean anything on a multi-core box,
    # and only when both runs saw one: on a 1-core container they measure
    # pure scheduling overhead, and comparing a 1-core baseline against a
    # multi-core run (or vice versa) compares different experiments.  Such
    # rows record their core count; refuse the comparison explicitly
    # rather than silently passing it.
    if "threads" in base_row or "threads" in cur_row:
        base_cpus = base_row.get("cpus", 1)
        cur_cpus = cur_row.get("cpus", 1)
        if base_cpus < 2 or cur_cpus < 2:
            return (
                f"  skip {section}/{key}: threaded row needs multi-core "
                f"runs on both sides (baseline cpus={base_cpus}, "
                f"current cpus={cur_cpus})",
                False,
            )
    # Band selection keys off the committed ratio's magnitude, not the
    # field name: any near-1x row flaps under the strict band.
    tolerance = TOLERANCE if base_row[field] >= NARROW_BAND_MIN else REUSE_TOLERANCE
    if field == "session_reuse_speedup" and base_row[field] < REUSE_NOISE_FLOOR:
        return (
            f"  skip {section}/{key}: committed reuse ratio "
            f"{base_row[field]}x is noise-level on this container "
            f"(< {REUSE_NOISE_FLOOR}x)",
            False,
        )
    floor = (1.0 - tolerance) * base_row[field]
    failed = cur_row[field] < floor
    detail = (
        f"{field} {cur_row[field]}x vs committed {base_row[field]}x "
        f"(floor {floor:.2f}x)"
    )
    # Deterministic round bills riding along a speedup row (the engine and
    # closure rows) are seeded and noise-free: gate them for exact
    # equality on top of the ratio band -- drift is a behaviour change.
    if "rounds" in base_row and "rounds" in cur_row:
        failed = failed or base_row["rounds"] != cur_row["rounds"]
        detail += (
            f", rounds {cur_row['rounds']} vs committed "
            f"{base_row['rounds']} (exact-equality gate)"
        )
    verdict = "REGRESSED" if failed else "ok"
    return (f"  {verdict:9s} {section}/{key}: {detail}", failed)


def compare(committed: dict, current: dict) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for all comparable rows."""
    lines: list[str] = []
    failures: list[str] = []
    for section in SECTIONS:
        base_rows = committed.get(section, {})
        for key, cur_row in current.get(section, {}).items():
            base_row = base_rows.get(key)
            if not isinstance(base_row, dict):
                continue
            line, failed = _compare_row(section, key, base_row, cur_row)
            if line is None:
                continue
            lines.append(line)
            if failed:
                failures.append(line)
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(_HERE.parent / "BENCH_matmul.json"),
        help="committed report to gate against (default: repo-root BENCH_matmul.json)",
    )
    parser.add_argument(
        "--gate-only",
        action="store_true",
        help="run only the fixed-size gateable sections (the bench-quick "
        "lane: kernel_gate/bilinear/boolean_product/kernel2/kernel3/"
        "spanning/faults, no heavy end-to-end rows)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"bench-check: no baseline at {baseline_path}, nothing to gate")
        return 0
    committed = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = build_report(quick=True, gate_only=args.gate_only)
    lines, failures = compare(committed, current)
    print(f"bench-check vs {baseline_path}:")
    for line in lines:
        print(line)
    if not lines:
        print("  no comparable rows (baseline schema too old?)")
    if failures:
        print(f"bench-check: {len(failures)} row(s) regressed > {TOLERANCE:.0%}")
        return 1
    print("bench-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
