"""Bilinear matrix-multiplication algorithms (paper §2.2, equations (1)-(2)).

A bilinear algorithm ``<d, d, d; m>`` multiplies two ``d x d`` block matrices
using ``m`` block multiplications:

.. math::

    \\hat S^{(w)} = \\sum_{ij} \\alpha_{ijw} S_{ij},\\qquad
    \\hat T^{(w)} = \\sum_{ij} \\beta_{ijw} T_{ij},\\qquad
    P_{ij} = \\sum_w \\lambda_{ijw} \\hat S^{(w)} \\hat T^{(w)}.

Lemma 10 turns any such algorithm into an ``O(n^{1 - 2/sigma})``-round clique
algorithm where ``m = O(d^sigma)``.  The instances provided:

* :data:`STRASSEN` -- Strassen's ``<2,2,2;7>`` algorithm (sigma = log2 7);
* :func:`strassen_power` -- its Kronecker powers ``<2^l, 2^l, 2^l; 7^l>``,
  which is how the recursive algorithm is expressed as a single bilinear
  form (the form Lemma 10 consumes);
* :func:`classical` -- the school-book ``<d,d,d; d^3>`` algorithm (sigma = 3),
  used as an ablation: running §2.2 with it reproduces the §2.1 exponent.

Coefficients are small integers, so all arithmetic stays in ``int64``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np


@dataclass(frozen=True)
class BilinearAlgorithm:
    """An explicit ``<d, d, d; m>`` bilinear matrix multiplication algorithm.

    Attributes:
        name: human-readable identifier.
        d: block grid dimension.
        m: number of block multiplications.
        alpha: shape ``(m, d, d)``; coefficients of S in equation (1).
        beta: shape ``(m, d, d)``; coefficients of T in equation (1).
        lam: shape ``(d, d, m)``; decoding coefficients in equation (2).
    """

    name: str
    d: int
    m: int
    alpha: np.ndarray
    beta: np.ndarray
    lam: np.ndarray

    def __post_init__(self) -> None:
        if self.alpha.shape != (self.m, self.d, self.d):
            raise ValueError(f"alpha must be (m, d, d), got {self.alpha.shape}")
        if self.beta.shape != (self.m, self.d, self.d):
            raise ValueError(f"beta must be (m, d, d), got {self.beta.shape}")
        if self.lam.shape != (self.d, self.d, self.m):
            raise ValueError(f"lam must be (d, d, m), got {self.lam.shape}")

    @property
    def sigma(self) -> float:
        """The exponent this algorithm realises: ``log_d(m)``."""
        if self.d <= 1:
            raise ValueError("sigma undefined for d <= 1")
        return math.log(self.m) / math.log(self.d)

    def encode_matrices(self) -> tuple[np.ndarray, np.ndarray]:
        """``alpha`` and ``beta`` flattened to ``(m, d*d)`` encode matrices."""
        return (
            self.alpha.reshape(self.m, self.d * self.d),
            self.beta.reshape(self.m, self.d * self.d),
        )

    def decode_matrix(self) -> np.ndarray:
        """``lam`` flattened to ``(d*d, m)`` decode matrix."""
        return self.lam.reshape(self.d * self.d, self.m)

    def compose(self, other: "BilinearAlgorithm") -> "BilinearAlgorithm":
        """Kronecker (tensor) composition: ``<d1 d2, .; m1 m2>``.

        Applying the composed algorithm is equivalent to one recursion level
        of ``self`` whose block multiplications are performed by ``other``;
        iterating from a base algorithm yields its recursive closure as a
        single bilinear form.
        """
        a = np.einsum("wij,WIJ->wWiIjJ", self.alpha, other.alpha)
        b = np.einsum("wij,WIJ->wWiIjJ", self.beta, other.beta)
        lam = np.einsum("ijw,IJW->iIjJwW", self.lam, other.lam)
        d = self.d * other.d
        m = self.m * other.m
        return BilinearAlgorithm(
            name=f"{self.name}(x){other.name}",
            d=d,
            m=m,
            alpha=a.reshape(m, d, d),
            beta=b.reshape(m, d, d),
            lam=lam.reshape(d, d, m),
        )

    def apply_blocks(
        self, s_blocks: np.ndarray, t_blocks: np.ndarray
    ) -> np.ndarray:
        """Reference execution on block matrices (test oracle, local use).

        ``s_blocks``/``t_blocks`` have shape ``(d, d, r, c)`` (a grid of
        equal blocks); returns the product block grid ``(d, d, r, c')``.
        """
        d, m = self.d, self.m
        r, k = s_blocks.shape[2], s_blocks.shape[3]
        c = t_blocks.shape[3]
        enc_a, enc_b = self.encode_matrices()
        s_flat = s_blocks.reshape(d * d, r * k)
        t_flat = t_blocks.reshape(d * d, k * c)
        s_hat = (enc_a @ s_flat).reshape(m, r, k)
        t_hat = (enc_b @ t_flat).reshape(m, k, c)
        p_hat = np.einsum("wrk,wkc->wrc", s_hat, t_hat)
        p_flat = self.decode_matrix() @ p_hat.reshape(m, r * c)
        return p_flat.reshape(d, d, r, c)

    def multiply(self, s: np.ndarray, t: np.ndarray) -> np.ndarray:
        """Multiply two square matrices locally via this bilinear form.

        Pads to a multiple of ``d`` as needed.  A reference implementation
        for tests -- the distributed version lives in
        :mod:`repro.matmul.bilinear_clique`.
        """
        s = np.asarray(s, dtype=np.int64)
        t = np.asarray(t, dtype=np.int64)
        size = s.shape[0]
        padded = math.ceil(size / self.d) * self.d
        sp = np.zeros((padded, padded), dtype=np.int64)
        tp = np.zeros((padded, padded), dtype=np.int64)
        sp[:size, :size] = s
        tp[:size, :size] = t
        blk = padded // self.d
        s_blocks = sp.reshape(self.d, blk, self.d, blk).transpose(0, 2, 1, 3)
        t_blocks = tp.reshape(self.d, blk, self.d, blk).transpose(0, 2, 1, 3)
        p_blocks = self.apply_blocks(s_blocks, t_blocks)
        p = p_blocks.transpose(0, 2, 1, 3).reshape(padded, padded)
        return p[:size, :size]


def classical(d: int) -> BilinearAlgorithm:
    """The school-book ``<d, d, d; d^3>`` bilinear algorithm (sigma = 3)."""
    if d < 1:
        raise ValueError(f"d must be positive, got {d}")
    m = d**3
    alpha = np.zeros((m, d, d), dtype=np.int64)
    beta = np.zeros((m, d, d), dtype=np.int64)
    lam = np.zeros((d, d, m), dtype=np.int64)
    w = 0
    for i in range(d):
        for j in range(d):
            for k in range(d):
                alpha[w, i, k] = 1
                beta[w, k, j] = 1
                lam[i, j, w] = 1
                w += 1
    return BilinearAlgorithm(
        name=f"classical-{d}", d=d, m=m, alpha=alpha, beta=beta, lam=lam
    )


def _strassen_base() -> BilinearAlgorithm:
    """Strassen's ``<2,2,2;7>`` algorithm [66]."""
    alpha = np.zeros((7, 2, 2), dtype=np.int64)
    beta = np.zeros((7, 2, 2), dtype=np.int64)
    lam = np.zeros((2, 2, 7), dtype=np.int64)
    # M1 = (A11 + A22)(B11 + B22)
    alpha[0, 0, 0] = alpha[0, 1, 1] = 1
    beta[0, 0, 0] = beta[0, 1, 1] = 1
    # M2 = (A21 + A22) B11
    alpha[1, 1, 0] = alpha[1, 1, 1] = 1
    beta[1, 0, 0] = 1
    # M3 = A11 (B12 - B22)
    alpha[2, 0, 0] = 1
    beta[2, 0, 1] = 1
    beta[2, 1, 1] = -1
    # M4 = A22 (B21 - B11)
    alpha[3, 1, 1] = 1
    beta[3, 1, 0] = 1
    beta[3, 0, 0] = -1
    # M5 = (A11 + A12) B22
    alpha[4, 0, 0] = alpha[4, 0, 1] = 1
    beta[4, 1, 1] = 1
    # M6 = (A21 - A11)(B11 + B12)
    alpha[5, 1, 0] = 1
    alpha[5, 0, 0] = -1
    beta[5, 0, 0] = beta[5, 0, 1] = 1
    # M7 = (A12 - A22)(B21 + B22)
    alpha[6, 0, 1] = 1
    alpha[6, 1, 1] = -1
    beta[6, 1, 0] = beta[6, 1, 1] = 1
    # C11 = M1 + M4 - M5 + M7
    lam[0, 0, 0] = 1
    lam[0, 0, 3] = 1
    lam[0, 0, 4] = -1
    lam[0, 0, 6] = 1
    # C12 = M3 + M5
    lam[0, 1, 2] = 1
    lam[0, 1, 4] = 1
    # C21 = M2 + M4
    lam[1, 0, 1] = 1
    lam[1, 0, 3] = 1
    # C22 = M1 - M2 + M3 + M6
    lam[1, 1, 0] = 1
    lam[1, 1, 1] = -1
    lam[1, 1, 2] = 1
    lam[1, 1, 5] = 1
    return BilinearAlgorithm(
        name="strassen", d=2, m=7, alpha=alpha, beta=beta, lam=lam
    )


#: Strassen's ``<2,2,2;7>`` algorithm.
STRASSEN = _strassen_base()

_POWER_CACHE: dict[int, BilinearAlgorithm] = {}


def strassen_power(level: int) -> BilinearAlgorithm:
    """The ``level``-fold Kronecker power ``<2^l, 2^l, 2^l; 7^l>``.

    ``level = 0`` is the trivial ``<1,1,1;1>`` algorithm (scalar product).
    Results are cached -- the tensors are small (``7^l x 4^l`` entries).
    """
    if level < 0:
        raise ValueError(f"level must be >= 0, got {level}")
    if level not in _POWER_CACHE:
        if level == 0:
            one = np.ones((1, 1, 1), dtype=np.int64)
            _POWER_CACHE[0] = BilinearAlgorithm(
                name="trivial", d=1, m=1, alpha=one, beta=one, lam=one
            )
        else:
            _POWER_CACHE[level] = strassen_power(level - 1).compose(STRASSEN)
    return _POWER_CACHE[level]


def largest_strassen_level(n: int) -> int:
    """The largest ``l`` with ``7^l <= n`` -- how Lemma 10 picks ``m(d) = n``.

    The clique algorithm assigns each of the ``m`` block products to its own
    node, so it uses the deepest Strassen power whose product count fits in
    the clique.
    """
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    level = 0
    while 7 ** (level + 1) <= n:
        level += 1
    return level


def verify_bilinear(
    algorithm: BilinearAlgorithm,
    trials: int = 8,
    block: int = 2,
    seed: int = 0,
) -> None:
    """Check an algorithm against NumPy on random integer matrices.

    Raises ``AssertionError`` on a mismatch.  This is a probabilistic check
    of the Brent equations; with random 16-bit entries a false pass is
    vanishingly unlikely.
    """
    rng = np.random.default_rng(seed)
    size = algorithm.d * block
    for _ in range(trials):
        s = rng.integers(-100, 100, size=(size, size), dtype=np.int64)
        t = rng.integers(-100, 100, size=(size, size), dtype=np.int64)
        got = algorithm.multiply(s, t)
        want = s @ t
        if not np.array_equal(got, want):
            raise AssertionError(f"{algorithm.name} disagrees with NumPy matmul")


__all__ = [
    "BilinearAlgorithm",
    "classical",
    "STRASSEN",
    "strassen_power",
    "largest_strassen_level",
    "verify_bilinear",
]
