"""Tests for the capped polynomial ring (Lemma 18 substrate)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.polynomial import decode_minplus, encode_minplus, poly_matmul
from repro.algebra.semirings import MIN_PLUS
from repro.constants import INF


class TestEncode:
    def test_monomial_placement(self):
        mat = np.array([[0, 3], [INF, 2]], dtype=np.int64)
        enc = encode_minplus(mat, 3, 4)
        assert enc[0, 0].tolist() == [1, 0, 0, 0]
        assert enc[0, 1].tolist() == [0, 0, 0, 1]
        assert enc[1, 0].tolist() == [0, 0, 0, 0]  # inf -> zero polynomial

    def test_entries_above_bound_become_zero(self):
        mat = np.array([[5]], dtype=np.int64)
        enc = encode_minplus(mat, 3, 4)
        assert not enc.any()

    def test_degree_too_small_rejected(self):
        with pytest.raises(ValueError):
            encode_minplus(np.zeros((2, 2), dtype=np.int64), 5, 3)


class TestDecode:
    def test_lowest_degree_wins(self):
        poly = np.zeros((1, 1, 5), dtype=np.int64)
        poly[0, 0, 2] = 3
        poly[0, 0, 4] = 9
        assert decode_minplus(poly)[0, 0] == 2

    def test_zero_polynomial_is_inf(self):
        poly = np.zeros((1, 1, 5), dtype=np.int64)
        assert decode_minplus(poly)[0, 0] == INF


class TestRoundTrip:
    @settings(max_examples=25, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=2, max_value=8),
        st.integers(min_value=1, max_value=6),
    )
    def test_product_equals_distance_product(self, seed, size, max_entry):
        rng = np.random.default_rng(seed)
        s = rng.integers(0, max_entry + 1, (size, size), dtype=np.int64)
        t = rng.integers(0, max_entry + 1, (size, size), dtype=np.int64)
        s[rng.random((size, size)) < 0.25] = INF
        t[rng.random((size, size)) < 0.25] = INF
        es = encode_minplus(s, max_entry, max_entry + 1)
        et = encode_minplus(t, max_entry, max_entry + 1)
        got = decode_minplus(poly_matmul(es, et))
        want = MIN_PLUS.matmul(s, t)
        assert np.array_equal(got, want)

    def test_coefficients_count_witnesses(self):
        # Two distinct inner indices realise the same sum -> coefficient 2.
        s = np.array([[1, 1]], dtype=np.int64)
        t = np.array([[2], [2]], dtype=np.int64)
        es = encode_minplus(s, 2, 3)
        et = encode_minplus(t, 2, 3)
        product = poly_matmul(es, et)
        assert product[0, 0, 3] == 2

    def test_rectangular_shapes(self):
        a = np.zeros((2, 3, 2), dtype=np.int64)
        b = np.zeros((3, 4, 3), dtype=np.int64)
        assert poly_matmul(a, b).shape == (2, 4, 4)
