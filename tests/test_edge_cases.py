"""Edge-case and failure-path tests across the stack.

The long tail: degenerate graphs (empty, complete, two nodes), fallback
branches (girth's dense-branch miss), width extremes, and the error
surfaces a downstream user can hit.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS
from repro.clique import CongestedClique
from repro.constants import INF
from repro.distances import (
    apsp_exact,
    apsp_unweighted,
    girth_undirected,
)
from repro.graphs import Graph, girth_reference, gnp_random_graph
from repro.matmul.semiring3d import semiring_matmul
from repro.subgraphs import (
    count_four_cycles,
    count_triangles,
    detect_four_cycles,
)


def _empty_graph(n: int) -> Graph:
    return Graph(n=n, adjacency=np.zeros((n, n), dtype=np.int64))


def _complete_graph(n: int) -> Graph:
    adj = np.ones((n, n), dtype=np.int64)
    np.fill_diagonal(adj, 0)
    return Graph(n=n, adjacency=adj)


class TestDegenerateGraphs:
    def test_empty_graph_counts(self):
        g = _empty_graph(9)
        assert count_triangles(g).value == 0
        assert count_four_cycles(g).value == 0
        assert not detect_four_cycles(g).value

    def test_complete_graph_counts(self):
        import math

        n = 10
        g = _complete_graph(n)
        assert count_triangles(g).value == math.comb(n, 3)
        assert count_four_cycles(g).value == 3 * math.comb(n, 4)
        assert detect_four_cycles(g).value

    def test_two_node_graph(self):
        g = Graph.from_edges(2, [(0, 1)])
        assert count_triangles(g).value == 0
        assert not detect_four_cycles(g).value
        result = apsp_unweighted(g)
        assert result.value[0, 1] == 1

    def test_single_edge_apsp(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 7)], directed=True)
        result = apsp_exact(g)
        assert result.value[0, 1] == 7
        assert result.value[1, 0] >= INF

    def test_empty_graph_apsp(self):
        g = _empty_graph(5)
        result = apsp_unweighted(g)
        off = ~np.eye(5, dtype=bool)
        assert (result.value[off] >= INF).all()

    def test_empty_graph_girth(self):
        assert girth_undirected(_empty_graph(8)).value >= INF

    def test_complete_graph_girth(self):
        result = girth_undirected(_complete_graph(9))
        assert result.value == 3


class TestGirthFallback:
    def test_dense_branch_miss_falls_back_to_learning(self):
        # Zero detection trials guarantee every colour-coding pass misses;
        # the algorithm must still return the exact girth via the fallback.
        # p = 0.85 pushes m above the cutoff-4 edge threshold (n^{3/2} + n).
        g = gnp_random_graph(16, 0.85, seed=2)
        result = girth_undirected(
            g, cutoff=4, trials_per_k=0, rng=np.random.default_rng(0)
        )
        assert result.value == girth_reference(g)
        assert result.extras["branch"] == "dense-fallback"


class TestWidthExtremes:
    def test_huge_entries_cost_more_rounds(self, rng):
        n = 8
        small = rng.integers(0, 2, (n, n), dtype=np.int64)
        big = small * (2**55)
        cheap = CongestedClique(n)
        semiring_matmul(cheap, small, small)
        wide = CongestedClique(n)
        semiring_matmul(wide, big, small)
        assert wide.rounds > cheap.rounds

    def test_minplus_all_inf(self):
        n = 8
        mat = np.full((n, n), INF, dtype=np.int64)
        clique = CongestedClique(n)
        product = semiring_matmul(clique, mat, mat, MIN_PLUS)
        assert (product >= INF).all()

    def test_custom_word_bits_change_costs(self, rng):
        n = 8
        mat = rng.integers(0, 2**30, (n, n), dtype=np.int64)
        narrow = CongestedClique(n, word_bits=16)
        semiring_matmul(narrow, mat, mat)
        wide_words = CongestedClique(n, word_bits=64)
        semiring_matmul(wide_words, mat, mat)
        assert wide_words.rounds < narrow.rounds


class TestSelfConsistency:
    def test_triangle_count_invariant_under_relabelling(self, rng):
        g = gnp_random_graph(12, 0.35, seed=9)
        perm = rng.permutation(12)
        relabelled = Graph(
            n=12, adjacency=g.adjacency[np.ix_(perm, perm)], directed=False
        )
        assert count_triangles(g).value == count_triangles(relabelled).value

    def test_apsp_symmetric_for_undirected(self, rng):
        from repro.graphs import random_weighted_graph

        g = random_weighted_graph(12, 0.4, 9, seed=3)
        result = apsp_exact(g, with_routing_tables=False)
        assert np.array_equal(result.value, result.value.T)

    def test_detection_consistent_with_counting(self, rng):
        for seed in range(4):
            g = gnp_random_graph(15, 0.18, seed=seed)
            detected = detect_four_cycles(g).value
            counted = count_four_cycles(g).value
            assert detected == (counted > 0)
