#!/usr/bin/env python
"""Perf regression gate: quick report vs the committed ``BENCH_matmul.json``.

Usage::

    PYTHONPATH=src python benchmarks/bench_check.py            # or: make bench-check
    PYTHONPATH=src python benchmarks/bench_check.py --baseline X.json

Runs :func:`perf_report.build_report` in ``--quick`` mode and compares every
row that has a ``speedup`` field and the *same problem size* as the committed
baseline (the engine sections run at ``n = 256`` in every mode precisely so
they are always comparable; the kernel rows only gate when the quick size
matches).  Speedup ratios are compared rather than raw seconds so the gate is
robust to absolute machine speed; a row fails when its current speedup drops
below ``(1 - TOLERANCE)`` of the committed one.

Exit status 1 on any regression -- wire into CI or run before committing a
refreshed ``BENCH_matmul.json``.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path

_HERE = Path(__file__).resolve().parent
_SRC = _HERE.parent / "src"
for path in (str(_SRC), str(_HERE)):
    if path not in sys.path:
        sys.path.insert(0, path)

from perf_report import build_report  # noqa: E402

#: Maximum tolerated speedup regression (25%).
TOLERANCE = 0.25

#: Sections whose rows carry comparable ``speedup`` fields.  The headline
#: "kernel" section only matches when the quick size equals the committed
#: one; "kernel_gate" runs at n=128 in every mode, so the blocked selection
#: kernels are always gated alongside the n=256 engine sections.  In
#: "sessions", only the fixed-size ``witness_kernel`` row carries a plain
#: ``speedup`` field (shard speedups are machine/core-count dependent and
#: deliberately not gated).
SECTIONS = ("kernel", "kernel_gate", "bilinear", "boolean_product", "sessions")


def compare(committed: dict, current: dict) -> tuple[list[str], list[str]]:
    """Return (report lines, failure lines) for all comparable rows."""
    lines: list[str] = []
    failures: list[str] = []
    for section in SECTIONS:
        base_rows = committed.get(section, {})
        for key, cur_row in current.get(section, {}).items():
            base_row = base_rows.get(key)
            if (
                not isinstance(base_row, dict)
                or "speedup" not in base_row
                or "speedup" not in cur_row
            ):
                continue
            if base_row.get("n") != cur_row.get("n"):
                lines.append(
                    f"  skip {section}/{key}: size mismatch "
                    f"(baseline n={base_row.get('n')}, quick n={cur_row.get('n')})"
                )
                continue
            floor = (1.0 - TOLERANCE) * base_row["speedup"]
            verdict = "ok" if cur_row["speedup"] >= floor else "REGRESSED"
            line = (
                f"  {verdict:9s} {section}/{key}: speedup {cur_row['speedup']}x "
                f"vs committed {base_row['speedup']}x (floor {floor:.2f}x)"
            )
            lines.append(line)
            if verdict != "ok":
                failures.append(line)
    return lines, failures


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--baseline",
        default=str(_HERE.parent / "BENCH_matmul.json"),
        help="committed report to gate against (default: repo-root BENCH_matmul.json)",
    )
    args = parser.parse_args(argv)

    baseline_path = Path(args.baseline)
    if not baseline_path.exists():
        print(f"bench-check: no baseline at {baseline_path}, nothing to gate")
        return 0
    committed = json.loads(baseline_path.read_text(encoding="utf-8"))
    current = build_report(quick=True)
    lines, failures = compare(committed, current)
    print(f"bench-check vs {baseline_path}:")
    for line in lines:
        print(line)
    if not lines:
        print("  no comparable rows (baseline schema too old?)")
    if failures:
        print(f"bench-check: {len(failures)} row(s) regressed > {TOLERANCE:.0%}")
        return 1
    print("bench-check: OK")
    return 0


if __name__ == "__main__":
    sys.exit(main())
