"""Tests for Lemma 11 / Theorem 3 colour-coding k-cycle detection."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.model import CongestedClique
from repro.graphs import (
    cycle_graph,
    gnp_random_graph,
    has_k_cycle_reference,
    planted_cycle_graph,
    random_tree,
)
from repro.runtime import make_clique, pad_matrix
from repro.subgraphs import default_trials, detect_colourful_cycle, detect_k_cycle


class TestColourfulDetection:
    def test_planted_cycle_with_distinct_colours(self):
        # Colour the planted cycle colourfully by construction: detection
        # must fire (Lemma 11 is deterministic given the colouring).
        k = 4
        g = cycle_graph(k)
        clique = make_clique(g.n, "bilinear")
        a = pad_matrix(g.adjacency, clique.n)
        colours = np.zeros(clique.n, dtype=np.int64)
        colours[:k] = np.arange(k)
        assert detect_colourful_cycle(clique, a, colours, k)

    def test_monochromatic_colouring_misses(self):
        k = 4
        g = cycle_graph(k)
        clique = make_clique(g.n, "bilinear")
        a = pad_matrix(g.adjacency, clique.n)
        colours = np.zeros(clique.n, dtype=np.int64)  # all colour 0
        assert not detect_colourful_cycle(clique, a, colours, k)

    def test_soundness_no_cycle_never_detected(self):
        # Trees have no cycles: no colouring can make detection fire.
        g = random_tree(16, seed=3)
        clique = make_clique(g.n, "bilinear")
        a = pad_matrix(g.adjacency, clique.n)
        rng = np.random.default_rng(0)
        for k in (3, 4, 5):
            for _ in range(5):
                colours = rng.integers(0, k, size=clique.n)
                assert not detect_colourful_cycle(clique, a, colours, k)

    def test_rounds_charged_per_product(self):
        g = cycle_graph(5)
        clique = make_clique(g.n, "bilinear")
        a = pad_matrix(g.adjacency, clique.n)
        colours = np.zeros(clique.n, dtype=np.int64)
        colours[:5] = np.arange(5)
        before = clique.rounds
        detect_colourful_cycle(clique, a, colours, 5)
        assert clique.rounds > before


class TestDetectKCycle:
    @settings(max_examples=5, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=3, max_value=4),
    )
    def test_completeness_on_planted_cycles(self, seed, k):
        # Per-trial success is k!/k^k (>= 0.094 for k <= 4); 100 trials
        # push the miss probability below 1e-4 so the property is stable.
        g = planted_cycle_graph(18, k, seed=seed, extra_edge_prob=0.4)
        result = detect_k_cycle(
            g, k, trials=100, rng=np.random.default_rng(seed)
        )
        assert result.value, f"missed planted {k}-cycle (seed {seed})"

    def test_seed_parameter_reproduces_and_matches_rng(self):
        """``seed=`` is determinism-by-default: equal to an explicit
        generator with the same seed, and stable across calls."""
        g = planted_cycle_graph(16, 4, seed=3, extra_edge_prob=0.3)
        by_seed = detect_k_cycle(g, 4, trials=20, seed=42)
        again = detect_k_cycle(g, 4, trials=20, seed=42)
        by_rng = detect_k_cycle(g, 4, trials=20, rng=np.random.default_rng(42))
        assert by_seed.value == again.value == by_rng.value
        assert (
            by_seed.extras["trials_used"]
            == again.extras["trials_used"]
            == by_rng.extras["trials_used"]
        )

    def test_shared_stream_gives_fresh_trial_batches(self):
        """``seed=None`` routes to the advancing module-level stream, so
        back-to-back batches draw different colourings (the old in-call
        ``default_rng(0)`` replayed the first batch forever)."""
        from repro.runtime import resolve_rng

        state_before = resolve_rng(seed=None).bit_generator.state
        g = gnp_random_graph(12, 0.1, seed=5)  # likely no 4-cycle; cheap
        detect_k_cycle(g, 4, trials=3, seed=None)
        state_after = resolve_rng(seed=None).bit_generator.state
        assert state_before != state_after

    @pytest.mark.slow
    def test_completeness_k5_deterministic(self):
        # k = 5 has per-trial success ~0.038, so the property version would
        # be statistically flaky; pin one seeded instance instead.
        g = planted_cycle_graph(20, 5, seed=2, extra_edge_prob=0.5)
        result = detect_k_cycle(g, 5, trials=60, rng=np.random.default_rng(1))
        assert result.value

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_soundness_on_random_graphs(self, seed):
        g = gnp_random_graph(14, 0.12, seed=seed)
        for k in (3, 4):
            result = detect_k_cycle(
                g, k, trials=25, rng=np.random.default_rng(seed)
            )
            if result.value:
                assert has_k_cycle_reference(g, k)

    @pytest.mark.slow
    def test_even_cycle_detection(self):
        g = planted_cycle_graph(20, 6, seed=7, extra_edge_prob=0.3)
        result = detect_k_cycle(g, 6, trials=120, rng=np.random.default_rng(2))
        assert result.value

    def test_trees_never_detect(self):
        g = random_tree(20, seed=5)
        result = detect_k_cycle(g, 4, trials=10)
        assert not result.value
        assert result.extras["trials_used"] == 10

    def test_early_exit_on_success(self):
        g = cycle_graph(3)
        # With k=3 on a triangle, a random colouring succeeds quickly.
        result = detect_k_cycle(g, 3, trials=500, rng=np.random.default_rng(0))
        assert result.value
        assert result.extras["trials_used"] < 500

    def test_k_validation(self):
        with pytest.raises(ValueError):
            detect_k_cycle(cycle_graph(5), 2)

    def test_default_trials_formula(self):
        assert default_trials(3, 100, 0.01) >= 20
        assert default_trials(5, 100, 0.01) > default_trials(4, 100, 0.01)


class TestDirectedDetection:
    def test_directed_cycle_found(self):
        g = cycle_graph(4, directed=True)
        result = detect_k_cycle(g, 4, trials=80, rng=np.random.default_rng(1))
        assert result.value

    def test_directed_path_not_found(self):
        import repro.graphs.graphs as gg
        import numpy as np_

        adj = np_.zeros((8, 8), dtype=np_.int64)
        for v in range(7):
            adj[v, v + 1] = 1
        g = gg.Graph(n=8, adjacency=adj, directed=True)
        result = detect_k_cycle(g, 4, trials=10)
        assert not result.value
