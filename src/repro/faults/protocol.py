"""Encoded robust collectives: detect, retry, degrade.

:class:`EncodedClique` re-implements the array collectives of
:class:`~repro.clique.model.CongestedClique` over an erasure/error code
whose pieces travel through pairwise-distinct relays
(:func:`repro.clique.scheduling.disjoint_relays`).  Two schemes plug in:

* :class:`RobustClique` (scheme ``"replicate"``, PR 6) -- ``c = 2T + 1``-way
  replication decoded by supported majority
  (:func:`repro.faults.encoding.majority_decode`); round overhead ``2T+1``.
* :class:`CodedClique` (scheme ``"coded"``, PR 9) -- systematic
  Reed-Solomon striping over GF(2^16) (:mod:`repro.faults.coding`): each
  piece is cut into ``k`` data stripes plus ``2T`` parity stripes, so the
  overhead drops from ``2T + 1`` toward ``n / (n - 2T)``.

The protocol per exchange is scheme-independent:

1. **encode/ship**: every piece is expanded into ``c`` encoded pieces that
   travel through ``c`` distinct relay nodes; the redundancy is charged
   *honestly* -- the actual meter bills the encoded exchange (and, for
   broadcasts, the relay fan-out leg), not the abstract one.
2. **detect**: the decoder either certifies the exact original words
   (majority support ``T + 1``; Reed-Solomon syndrome recheck) or flags
   the piece -- no wrong value can ever be certified (see
   :mod:`repro.faults.encoding` and :mod:`repro.faults.coding`).
3. **retry**: a flagged piece re-ships the exchange through a fresh relay
   assignment (the exchange counter salts ``disjoint_relays``), up to
   ``max_retries`` times, each retry billed.
4. **degrade**: past the budget the exchange raises
   :class:`~repro.errors.FaultToleranceExceeded`.  The invariant is *no
   silent wrong answers, ever*: an encoded closure either equals the
   fault-free oracle edge-for-edge or raises.

Meter separation rides the meter stack
(:class:`~repro.clique.accounting.MeterStack`): ``clique.meter`` (observer
#0) bills what the encoded run actually spends, and
``clique.abstract_meter`` is a plain second observer billing what the same
workload costs on a fault-free clique.  Primitives that are not encoded
fan out to both automatically; an encoded exchange *mutes* the abstract
observer, charges it the fault-free cost by hand, and ships the redundant
exchange through the stack -- so the abstract bill stays phase-for-phase
identical to the oracle's meter (the overhead factor is the ratio of the
two round totals) while transport cost models observe the encoded
exchanges that actually hit the wire.
"""

from __future__ import annotations

from dataclasses import replace
from typing import Callable

import numpy as np

from repro.clique.accounting import CostMeter, PhaseCost, PhaseTraffic
from repro.clique.messages import block_widths
from repro.clique.routing import (
    ArrayBatch,
    deliver_array,
    deliver_array_flat,
    flatten_array_batch,
)
from repro.clique.scheduling import disjoint_relays
from repro.errors import CliqueModelError, FaultToleranceExceeded
from repro.faults.coding import decode_stripes, encode_stripes, stripe_plan
from repro.faults.encoding import majority_decode
from repro.faults.injection import FaultyClique, corrupt_pieces
from repro.faults.plan import FaultPlan

#: Decode callback: ``(tampered (P*c, ...), dropped (P*c,)) -> (decoded
#: (P, ...), ok (P,))``.  Pieces with ``ok`` False carry no guarantee.
DecodeFn = Callable[[np.ndarray, np.ndarray], tuple[np.ndarray, np.ndarray]]


class EncodedClique(FaultyClique):
    """Shared machinery of the encoded (fault-tolerant) collective schemes.

    Subclasses choose the code by implementing :meth:`_encode` (and a
    construction-time relay-budget check via :meth:`_check_relay_budget`);
    everything else -- the retry loop, the meter split, the collective
    overrides, the degrade semantics -- is scheme-independent.

    Args:
        n: clique size.
        plan: the adversary (:class:`~repro.faults.plan.FaultPlan`), or None
            to run the encoded protocol fault-free (redundancy still billed).
        tolerance: ``T`` -- the per-exchange corruption budget the code must
            survive.
        max_retries: re-ship attempts after a detected inconsistency before
            degrading to :class:`~repro.errors.FaultToleranceExceeded`.

    Attributes:
        scheme: the ``fault_scheme`` name this class implements.
        abstract_meter: the fault-free bill (equals the oracle's meter).
        meter: the actual bill, redundancy and retries included.
        retries: re-shipped exchanges so far.
        decode_failures: exchanges that degraded (raised) so far.
    """

    scheme = "encoded"

    def __init__(
        self,
        n: int,
        *,
        plan: FaultPlan | None = None,
        tolerance: int = 1,
        max_retries: int = 2,
        **kwargs,
    ) -> None:
        super().__init__(n, plan=plan, **kwargs)
        if tolerance < 1:
            raise ValueError(
                f"robust collectives need tolerance >= 1, got {tolerance}"
            )
        if max_retries < 0:
            raise ValueError(f"retry budget must be non-negative, got {max_retries}")
        self.tolerance = tolerance
        self.max_retries = max_retries
        self._check_relay_budget()
        # Second observer on the meter stack: primitives that are not
        # encoded (tuple broadcasts, transposes, ...) cost the same with
        # or without faults and fan out to both meters automatically; the
        # encoded exchanges mute this observer and bill it the fault-free
        # cost by hand (see _run_encoded).
        self.abstract_meter = CostMeter()
        self.meters.add_observer(self.abstract_meter)
        self.retries = 0
        self.decode_failures = 0

    # ------------------------------------------------------------------ #
    # Scheme hooks
    # ------------------------------------------------------------------ #

    def _check_relay_budget(self) -> None:
        """Refuse construction when ``n`` cannot host the code's relays."""
        raise NotImplementedError

    def _encode(
        self, blocks: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, DecodeFn]:
        """Encode one exchange's ``(P, ...)`` pieces for shipping.

        Returns ``(encoded, encoded_widths, copies, decode)``: the
        ``(P * copies, ...)`` encoded piece stack (encoded piece ``j`` of
        piece ``i`` at row ``i * copies + j`` -- the layout
        :func:`~repro.faults.injection.corrupt_pieces` attributes relays
        by), its per-encoded-piece semantic widths for billing, the
        expansion factor, and the matching decode callback.
        """
        raise NotImplementedError

    def redundancy_note(self) -> str:
        """One-line human description of the redundancy (CLI summaries)."""
        raise NotImplementedError

    def _degrade_detail(self) -> str:
        """Scheme-specific clause of the degrade message."""
        raise NotImplementedError

    # ------------------------------------------------------------------ #
    # Core encode -> corrupt -> decode -> retry loop
    # ------------------------------------------------------------------ #

    def _run_encoded(
        self,
        pieces: np.ndarray,
        encoded: np.ndarray,
        copies: int,
        skip_enc: np.ndarray | None,
        abstract_cost: PhaseCost,
        ship_costs: Callable[[int], list[tuple[PhaseCost, "PhaseTraffic | None"]]],
        decode: DecodeFn,
        phase: str,
    ) -> np.ndarray:
        """Run one encoded exchange end to end; return the decoded pieces.

        ``pieces`` is the ``(P, ...)`` fault-free truth, ``encoded`` its
        ``(P * copies, ...)`` encoding.  ``ship_costs(exchange_id)`` yields
        ``(cost, traffic)`` charges of one shipping attempt (relay
        assignment, and hence broadcast balance, depends on the exchange
        id); they go through the meter stack with the abstract observer
        muted, so the actual meter *and* any transport cost model see the
        encoded exchange while the abstract meter is billed the fault-free
        cost by hand.
        """
        p = pieces.shape[0]
        with self.meters.muted(self.abstract_meter):
            self.abstract_meter.charge(abstract_cost)
            for attempt in range(self.max_retries + 1):
                exchange_id = self._next_exchange()
                for cost, traffic in ship_costs(exchange_id):
                    self.meters.charge(cost, traffic)
                if self.plan is None or self.plan.t == 0:
                    return pieces
                tampered, hit, dropped = corrupt_pieces(
                    self.plan,
                    exchange_id,
                    self.n,
                    encoded,
                    copies=copies,
                    skip=skip_enc,
                )
                self.faults_injected += int(hit.sum())
                decoded, ok = decode(tampered, dropped)
                if bool(ok.all()):
                    return decoded
                if attempt < self.max_retries:
                    self.retries += 1
            self.decode_failures += 1
            raise FaultToleranceExceeded(
                f"phase {phase!r}: {int((~ok).sum())} of {p} pieces failed to "
                f"{self._degrade_detail()} after "
                f"{self.max_retries + 1} attempts (tolerance {self.tolerance}, "
                f"fault kind {self.plan.kind.value!r}, budget t={self.plan.t})"
            )

    def _encoded_routed(
        self, batch: ArrayBatch, abstract_cost: PhaseCost, phase: str
    ) -> np.ndarray:
        """Encoded variant of one routed/direct batch; returns decoded blocks.

        The encoded exchange is charged as a *routed* exchange even when
        the abstract one is direct: relaying through distinct intermediates
        is what buys the disjointness the decode needs, so an encoded
        direct send is physically a Lenzen-routed exchange.
        """
        encoded, enc_widths, copies, decode = self._encode(
            batch.blocks, batch.widths
        )
        enc_batch = ArrayBatch(
            n=batch.n,
            src=np.repeat(batch.src, copies),
            dst=np.repeat(batch.dst, copies),
            widths=enc_widths,
            blocks=encoded,
            tags=None,
        )
        enc_cost = self._routed_batch_cost(enc_batch, f"{phase}/encoded", None)
        enc_traffic = self._batch_traffic(enc_batch, "route", relayed=True)
        skip_enc = np.repeat(batch.dst == batch.src, copies)
        return self._run_encoded(
            batch.blocks,
            encoded,
            copies,
            skip_enc,
            abstract_cost,
            lambda _exchange_id: [(enc_cost, enc_traffic)],
            decode,
            phase,
        )

    def _encoded_broadcast(
        self,
        pieces: np.ndarray,
        owners: np.ndarray,
        piece_widths: np.ndarray,
        abstract_cost: PhaseCost,
        phase: str,
    ) -> np.ndarray:
        """Encoded variant of one row broadcast; returns the decoded rows.

        A plain broadcast has no relays, so a corrupt *sender-side* hit
        would defeat naive repetition (all copies share the fault).  The
        encoded broadcast therefore relays: each piece's encoding is routed
        to its distinct relay nodes (fan-out leg, billed as a routed
        exchange), and each relay broadcasts the encoded pieces it holds
        (billed by the per-relay balance of the assignment).
        """
        n = self.n
        p = pieces.shape[0]
        encoded, enc_widths, copies, decode = self._encode(pieces, piece_widths)
        enc_owners = np.repeat(owners, copies)

        def ship_costs(
            exchange_id: int,
        ) -> list[tuple[PhaseCost, "PhaseTraffic | None"]]:
            relays = disjoint_relays(p, copies, n, salt=exchange_id).reshape(-1)
            fan_batch = ArrayBatch(
                n=n,
                src=enc_owners,
                dst=relays,
                widths=enc_widths,
                blocks=np.zeros((relays.shape[0], 0), dtype=np.int64),
                tags=None,
            )
            fan_cost = self._routed_batch_cost(fan_batch, f"{phase}/fanout", None)
            fan_traffic = self._batch_traffic(fan_batch, "route", relayed=True)
            per_relay = np.zeros(n, dtype=np.int64)
            np.add.at(per_relay, relays, enc_widths)
            relay_widths = [int(w) for w in per_relay]
            bcast_cost = self._broadcast_cost(relay_widths, f"{phase}/encoded")
            bcast_traffic = self._broadcast_traffic(relay_widths)
            return [(fan_cost, fan_traffic), (bcast_cost, bcast_traffic)]

        return self._run_encoded(
            pieces,
            encoded,
            copies,
            None,
            abstract_cost,
            ship_costs,
            decode,
            phase,
        )

    # ------------------------------------------------------------------ #
    # Encoded overrides of the array collectives
    # ------------------------------------------------------------------ #

    def route_array(
        self,
        dests,
        blocks,
        *,
        widths=None,
        tags=None,
        phase: str = "route",
        expect_max_load: int | None = None,
        flat: bool = False,
    ):
        batch = self._flatten_checked(dests, blocks, widths, tags)
        abstract_cost = self._routed_batch_cost(batch, phase, expect_max_load)
        decoded = self._encoded_routed(batch, abstract_cost, phase)
        out_batch = replace(batch, blocks=decoded)
        return deliver_array_flat(out_batch) if flat else deliver_array(out_batch)

    def route_array_take(
        self,
        dests,
        blocks,
        *,
        take: np.ndarray,
        widths=None,
        out: np.ndarray | None = None,
        owners: np.ndarray | None = None,
        phase: str = "route",
        expect_max_load: int | None = None,
    ) -> np.ndarray:
        batch = self._flatten_checked(dests, blocks, widths, None)
        # Same discipline as the base model: reject a bad gather *before*
        # anything is charged, on either meter.
        take = np.asarray(take, dtype=np.intp)
        if take.size and (
            int(take.min()) < 0 or int(take.max()) >= batch.blocks.shape[0]
        ):
            raise CliqueModelError("route_array_take: take index out of range")
        if owners is not None and not np.array_equal(batch.dst[take], owners):
            raise CliqueModelError(
                "route_array_take: gather reads pieces addressed to another "
                "node (take/owners disagree with the batch destinations)"
            )
        abstract_cost = self._routed_batch_cost(batch, phase, expect_max_load)
        decoded = self._encoded_routed(batch, abstract_cost, phase)
        return np.take(decoded, take, axis=0, out=out)

    def send_array(
        self,
        dests,
        blocks,
        *,
        widths=None,
        tags=None,
        phase: str = "send",
        expect_max_pair: int | None = None,
    ):
        try:
            if widths is None:
                widths = [
                    block_widths(np.asarray(b, dtype=np.int64), self.word_bits)
                    for b in blocks
                ]
            batch = flatten_array_batch(dests, blocks, widths, tags, self.n)
        except ValueError as exc:
            raise CliqueModelError(str(exc)) from exc
        abstract_cost = self._direct_batch_cost(batch, phase, expect_max_pair)
        decoded = self._encoded_routed(batch, abstract_cost, phase)
        return deliver_array(replace(batch, blocks=decoded))

    def _deliver_broadcast_rows(
        self, rows: np.ndarray, width_list: list[int], phase: str
    ) -> np.ndarray:
        abstract_cost = self._broadcast_cost(width_list, phase)
        return self._encoded_broadcast(
            rows,
            np.arange(self.n, dtype=np.int64),
            np.asarray(width_list, dtype=np.int64),
            abstract_cost,
            phase,
        )

    def _broadcast_held(
        self,
        held: list[np.ndarray],
        bcast_widths: list[int],
        phase: str,
    ) -> np.ndarray:
        abstract_cost = self._broadcast_cost(bcast_widths, phase)
        counts = [int(h.shape[0]) for h in held]
        owners = np.repeat(np.arange(self.n, dtype=np.int64), counts)
        # allgather_rows charges a uniform per-record width per holder, so
        # the per-piece width is the holder total split evenly.
        per_piece = [
            np.full(cnt, bcast_widths[v] // cnt, dtype=np.int64)
            for v, cnt in enumerate(counts)
            if cnt
        ]
        piece_widths = (
            np.concatenate(per_piece) if per_piece else np.zeros(0, dtype=np.int64)
        )
        return self._encoded_broadcast(
            np.concatenate(held, axis=0), owners, piece_widths, abstract_cost, phase
        )

    # ------------------------------------------------------------------ #
    # Diagnostics
    # ------------------------------------------------------------------ #

    @property
    def overhead_factor(self) -> float:
        """Actual rounds divided by the abstract (fault-free) rounds.

        A fresh session has charged nothing on either meter; the honest
        report for "no redundancy spent yet" is 1.0, not a zero division.
        """
        base = self.abstract_meter.rounds
        if not base:
            return 1.0
        return float(self.meter.rounds) / base

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return (
            f"{type(self).__name__}(n={self.n}, tolerance={self.tolerance}, "
            f"scheme={self.scheme!r}, rounds={self.meter.rounds}, "
            f"abstract_rounds={self.abstract_meter.rounds})"
        )


class RobustClique(EncodedClique):
    """Replication scheme: ``c = 2T + 1`` copies, supported-majority decode.

    Survives ``T`` corrupt relays per exchange because flip masks are
    pairwise distinct across relays and drops are known erasures, so no
    wrong value can ever gather the ``T + 1`` support threshold (see
    :mod:`repro.faults.encoding`).  Costs a ``2T + 1`` round overhead --
    the baseline :class:`CodedClique` improves on.

    Attributes:
        copies: the replication degree ``c = 2T + 1``.
    """

    scheme = "replicate"

    def _check_relay_budget(self) -> None:
        copies = 2 * self.tolerance + 1
        if copies > self.n:
            raise CliqueModelError(
                f"replication degree 2*{self.tolerance}+1 = {copies} needs "
                f"{copies} pairwise-distinct relays but the clique has only "
                f"{self.n} nodes"
            )
        self.copies = copies

    def _encode(
        self, blocks: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, DecodeFn]:
        c = self.copies
        p = blocks.shape[0]
        piece_shape = blocks.shape[1:]
        threshold = self.tolerance + 1

        def decode(
            tampered: np.ndarray, dropped: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray]:
            return majority_decode(
                tampered.reshape((p, c) + piece_shape),
                ~dropped.reshape(p, c),
                threshold,
            )

        return (
            np.repeat(blocks, c, axis=0),
            np.repeat(np.asarray(widths, dtype=np.int64), c),
            c,
            decode,
        )

    def redundancy_note(self) -> str:
        return f"{self.copies}-way replication"

    def _degrade_detail(self) -> str:
        return f"reach the support threshold {self.tolerance + 1}"


class CodedClique(EncodedClique):
    """Reed-Solomon scheme: ``k`` data + ``2T`` parity stripes per piece.

    Every piece is striped column-wise over GF(2^16)
    (:func:`repro.faults.coding.encode_stripes`) across ``m = k + 2T <= n``
    distinct relays, so ``T`` corrupt relays touch at most ``T`` stripes:
    flips are located and corrected (with a full syndrome recheck as the
    certification step), drops/crashes are known erasures recovered
    directly, and anything the decoder cannot certify flags the piece for
    the shared retry/degrade loop.  Overhead ``m * ceil(w/k) / w``, which
    approaches ``n / (n - 2T)`` for pieces of at least ``n - 2T`` words --
    the rate the LDC-compiler line of work (arXiv:2508.08740) argues is
    the right price for robustness.
    """

    scheme = "coded"

    def _check_relay_budget(self) -> None:
        needed = 2 * self.tolerance + 1
        if needed > self.n:
            raise CliqueModelError(
                f"RS striping with tolerance {self.tolerance} needs at least "
                f"2*{self.tolerance}+1 = {needed} pairwise-distinct relays "
                f"(one data stripe + 2t parity stripes) but the clique has "
                f"only {self.n} nodes"
            )

    def _encode(
        self, blocks: np.ndarray, widths: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray, int, DecodeFn]:
        p = blocks.shape[0]
        piece_shape = blocks.shape[1:]
        width = int(np.prod(piece_shape, dtype=np.int64))
        plan = stripe_plan(width, self.n, self.tolerance)
        encoded = encode_stripes(blocks.reshape(p, width), plan)
        # Semantic billing: each of the m stripes of piece i carries a
        # k-th of the piece's declared width (rounded up).
        enc_widths = np.repeat(
            -(-np.asarray(widths, dtype=np.int64) // plan.k), plan.m
        )

        def decode(
            tampered: np.ndarray, dropped: np.ndarray
        ) -> tuple[np.ndarray, np.ndarray]:
            data, ok = decode_stripes(tampered, dropped, plan)
            return data[:, :width].reshape((p,) + piece_shape), ok

        return encoded, enc_widths, plan.m, decode

    def redundancy_note(self) -> str:
        return (
            f"RS-coded striping (GF(2^16), {2 * self.tolerance} parity "
            f"stripes per piece)"
        )

    def _degrade_detail(self) -> str:
        return (
            f"pass Reed-Solomon certification "
            f"({2 * self.tolerance} parity stripes)"
        )


#: ``fault_scheme`` knob -> encoded-clique class.
FAULT_SCHEMES: dict[str, type[EncodedClique]] = {
    RobustClique.scheme: RobustClique,
    CodedClique.scheme: CodedClique,
}

__all__ = [
    "CodedClique",
    "EncodedClique",
    "FAULT_SCHEMES",
    "RobustClique",
]
