"""Seeded, deterministic adversarial fault plans.

A :class:`FaultPlan` describes a *transit adversary* over the clique's
array collectives: in every intercepted exchange it may corrupt the traffic
relayed through up to ``t`` nodes.  Three corruption kinds are modelled:

* ``FLIP`` -- words passing through a corrupt relay are XORed with a
  relay-specific nonzero mask (an arbitrary-value corruption, but one the
  decoder can reason about: masks are pairwise distinct across relays, so
  two corrupt relays can never agree on the same wrong word).
* ``DROP`` -- the relayed copy is lost; the receiver observes a known
  erasure (modelled as a zeroed piece plus an invalid flag).
* ``CRASH`` -- crash-stop: a fixed set of up to ``t`` nodes each picks a
  crash time (an exchange index); from that exchange on, everything relayed
  through the node is dropped.  Crashes are monotone -- a crashed node never
  comes back -- which is what distinguishes the kind from per-exchange
  ``DROP``.
* ``BYZANTINE`` -- a fixed seeded set of up to ``t`` nodes corrupts (flips)
  *every* exchange it relays for the whole execution.  Persistent like
  crash-stop, value-corrupting like ``FLIP`` -- the regime where naive
  replication pays its full ``2t + 1`` price on every single exchange and
  the coded scheme shines.

Everything is a pure function of ``(seed, kind, t, exchange index)`` via
``np.random.default_rng`` seed sequences, so a logged seed replays the exact
corruption pattern (see ``runtime.reseed_shared_rng`` for the surrounding
stream discipline).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from functools import lru_cache

import numpy as np


class FaultKind(Enum):
    """What a corrupt relay does to the words passing through it."""

    FLIP = "flip"
    DROP = "drop"
    CRASH = "crash"
    BYZANTINE = "byzantine"


#: Seed-sequence salt for the crash draw, fixed so the crash schedule is a
#: function of the plan seed alone (not of any exchange index).
_CRASH_SALT = 0xC4A54

#: Salt for the Byzantine-set draw -- distinct from the crash salt so a
#: shared seed does not make the Byzantine set equal the crash set.
_BYZANTINE_SALT = 0xB72A2


@lru_cache(maxsize=128)
def _crash_draw(
    seed: int, t: int, n: int, crash_window: int
) -> tuple[np.ndarray, np.ndarray]:
    """The fixed crash schedule: up to ``t`` nodes and their crash times."""
    rng = np.random.default_rng((seed, _CRASH_SALT))
    nodes = np.sort(rng.choice(n, size=min(t, n), replace=False))
    crash_at = rng.integers(0, crash_window, size=nodes.shape[0])
    return nodes, crash_at


@lru_cache(maxsize=128)
def _byzantine_draw(seed: int, t: int, n: int) -> np.ndarray:
    """The fixed Byzantine node set -- a function of the plan seed alone."""
    rng = np.random.default_rng((seed, _BYZANTINE_SALT))
    return np.sort(rng.choice(n, size=min(t, n), replace=False))


@dataclass(frozen=True)
class FaultPlan:
    """A deterministic adversary corrupting up to ``t`` relays per exchange.

    Attributes:
        t: adversary budget -- the maximum number of corrupt relay nodes in
            any single intercepted exchange.  ``t = 0`` is the null plan
            (installs the interception machinery but corrupts nothing).
        seed: root of every random draw the plan makes.
        kind: corruption behaviour (:class:`FaultKind`, or its string value).
        crash_window: for ``CRASH`` plans, crash times are drawn uniformly
            from ``[0, crash_window)`` exchange indices -- small windows make
            every crash bite early even in short runs.
    """

    t: int
    seed: int = 0
    kind: FaultKind = FaultKind.FLIP
    crash_window: int = 8

    def __post_init__(self) -> None:
        if isinstance(self.kind, str):
            object.__setattr__(self, "kind", FaultKind(self.kind))
        if self.t < 0:
            raise ValueError(f"fault budget must be non-negative, got {self.t}")
        if self.seed < 0:
            # np.random.default_rng rejects negative seed-sequence entries
            # deep inside an exchange; refuse at construction instead.
            raise ValueError(f"fault seed must be non-negative, got {self.seed}")
        if self.crash_window < 1:
            raise ValueError(
                f"crash window must be positive, got {self.crash_window}"
            )

    def corrupt_nodes(self, n: int, exchange_id: int) -> np.ndarray:
        """The (sorted) corrupt relay set for one exchange.

        ``FLIP``/``DROP`` redraw the set per exchange (a mobile adversary);
        ``BYZANTINE`` returns the same fixed node set for every exchange;
        ``CRASH`` returns the fixed nodes whose crash time has passed, so
        the set is monotone non-decreasing in ``exchange_id``.
        """
        if self.t == 0 or n == 0:
            return np.zeros(0, dtype=np.int64)
        if self.kind is FaultKind.CRASH:
            nodes, crash_at = _crash_draw(self.seed, self.t, n, self.crash_window)
            return nodes[crash_at <= exchange_id].astype(np.int64, copy=True)
        if self.kind is FaultKind.BYZANTINE:
            return _byzantine_draw(self.seed, self.t, n).astype(
                np.int64, copy=True
            )
        rng = np.random.default_rng((self.seed, exchange_id))
        return np.sort(rng.choice(n, size=min(self.t, n), replace=False)).astype(
            np.int64
        )


__all__ = ["FaultKind", "FaultPlan"]
