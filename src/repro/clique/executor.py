"""Pluggable local-compute executors for the congested-clique simulator.

The simulator separates two costs: *communication* (metered in rounds by
:class:`~repro.clique.model.CongestedClique`) and *local computation* (the
per-node block products every matmul engine performs between exchanges,
which dominate the simulator's wall clock).  This module makes the latter a
pluggable backend:

* :class:`SerialExecutor` -- today's behaviour: all per-node block products
  run in-process, as one batched kernel call (see
  :meth:`~repro.algebra.semirings.Semiring.matmul_batch`).
* :class:`ShardedExecutor` -- partitions the per-node batch into contiguous
  **node ranges** and farms each range out to a worker process.  Operands
  and results move through ``multiprocessing.shared_memory`` ``int64``
  blocks, so nothing but a few names and shapes is ever pickled.

Because an executor only computes *local* block products -- deterministic,
exact functions of their int64 inputs -- both backends produce bit-identical
values, and therefore bit-identical message widths and round charges, for
every engine phase (equivalence-tested in
``tests/test_executor_equivalence.py``).  Sharding exists purely to spread
the simulator's local arithmetic over cores so large-``n`` engine runs fit
wall-clock budgets.

Workers resolve semirings and rings from their registry *names*
(:func:`repro.algebra.semirings.get_semiring`,
:func:`repro.matmul.ringops.get_ring`), so every process computes with the
same singletons regardless of start method (``fork`` where available,
``spawn`` otherwise).

Kernel generation 3 adds the orthogonal *tile backend* axis
(:mod:`repro.algebra.backends`): an executor carries a backend spec
(``serial`` or ``threaded:N``) and passes it into every batched kernel
call, so ``--shards`` (processes over node ranges) composes with
``--threads`` (threads over kernel tiles) -- shard worker tasks ship the
spec by name, exactly like semirings.  Scheduling can never change values,
so all shard x thread combinations stay bit-identical (equivalence-tested
in ``tests/test_kernel_gen3.py``).  Executors also expose the pre-packed
Boolean product (:meth:`LocalExecutor.boolean_packed_products`) behind the
same serial/sharded split, for the engine's persistent packed closures.
"""

from __future__ import annotations

import multiprocessing as mp
import weakref
from multiprocessing import shared_memory
from typing import TYPE_CHECKING, Sequence

import numpy as np

from repro.algebra.backends import KernelBackend, get_backend, tile_ranges
from repro.algebra.semirings import Semiring, get_semiring

if TYPE_CHECKING:  # deferred at runtime: repro.matmul imports this package
    from repro.matmul.ringops import RingOps


class LocalExecutor:
    """Interface: batched local block products for the matmul engines.

    ``lefts`` and ``rights`` are ``(B, ...)`` int64 stacks -- one block pair
    per node (or per bilinear worker); implementations return the stacked
    products in the same order.  Values must be bit-identical across
    implementations (the engines derive message widths from them).
    """

    name = "abstract"
    shards = 1
    #: kernel tile backend spec (``None`` = the process default); resolved
    #: per call so ``set_default_backend`` applies to shared executors.
    _backend_spec: "str | KernelBackend | None" = None
    #: Shard-placement hint: when set (e.g. to an attached cost model's
    #: topology locality-group width, a fat-tree pod size), sharded
    #: executors snap their node-range boundaries to multiples of it so a
    #: worker's range does not straddle a locality group unnecessarily.
    #: Purely a partitioning choice -- values are bit-identical regardless.
    placement_group: int | None = None

    @property
    def backend(self) -> KernelBackend:
        """The resolved kernel tile backend this executor computes with."""
        return get_backend(self._backend_spec)

    @property
    def threads(self) -> int:
        """Kernel tile threads per worker (1 = serial tiles)."""
        return self.backend.threads

    def semiring_products(
        self,
        semiring: Semiring,
        lefts: np.ndarray,
        rights: np.ndarray,
        *,
        with_witnesses: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        """``(B, m, k) x (B, k, n) -> (B, m, n)`` products (+ witnesses)."""
        raise NotImplementedError

    def ring_products(
        self, ring: RingOps, lefts: np.ndarray, rights: np.ndarray
    ) -> np.ndarray:
        """Stacked ring block products (trailing ring axes supported)."""
        raise NotImplementedError

    def boolean_packed_products(
        self, lefts: np.ndarray, rights: np.ndarray, k: int
    ) -> np.ndarray:
        """Batched *pre-packed* Boolean block products (packed in/out).

        ``lefts``/``rights`` are bit-packed word stacks in the
        :func:`~repro.algebra.semirings.pack_bool_rows` layout with logical
        inner dimension ``k``; the result is the freshly-allocated packed
        product stack.  Bit-identical across executors, like every other
        product.
        """
        raise NotImplementedError

    def close(self) -> None:
        """Release worker resources (no-op for in-process executors)."""

    def __enter__(self) -> "LocalExecutor":
        return self

    def __exit__(self, *exc: object) -> None:
        self.close()

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"{type(self).__name__}(shards={self.shards})"


class SerialExecutor(LocalExecutor):
    """In-process backend: one batched kernel call, no worker processes.

    ``backend`` selects the kernel tile scheduling for that one call
    (``None``: the process default, usually serial tiles; ``"threaded:N"``
    or an int thread count: fan tiles out over a thread pool).
    """

    name = "serial"
    shards = 1

    def __init__(self, backend: "str | int | KernelBackend | None" = None) -> None:
        self._backend_spec = None if backend is None else get_backend(backend)

    def semiring_products(
        self,
        semiring: Semiring,
        lefts: np.ndarray,
        rights: np.ndarray,
        *,
        with_witnesses: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        if with_witnesses:
            return semiring.matmul_batch_with_witness(
                lefts, rights, backend=self.backend
            )
        return semiring.matmul_batch(lefts, rights, backend=self.backend)

    def ring_products(
        self, ring: RingOps, lefts: np.ndarray, rights: np.ndarray
    ) -> np.ndarray:
        return ring.matmul_batch(lefts, rights)

    def boolean_packed_products(
        self, lefts: np.ndarray, rights: np.ndarray, k: int
    ) -> np.ndarray:
        from repro.algebra.semirings import BOOLEAN

        return BOOLEAN.packed_words_matmul_batch(
            lefts, rights, k, backend=self.backend
        )


#: Process-wide default executor (what a bare ``CongestedClique`` uses).
SERIAL_EXECUTOR = SerialExecutor()


def shard_ranges(batch: int, shards: int) -> list[tuple[int, int]]:
    """Partition ``range(batch)`` into ``<= shards`` contiguous node ranges.

    A thin rename of :func:`repro.algebra.backends.tile_ranges` -- the node
    ranges of the sharded executor and the tile ranges of the threaded
    kernel backend are the same balanced, gap-free, non-overlapping split
    (property-tested together in ``tests/test_kernel_gen3.py``).
    """
    if batch < 0 or shards < 1:
        raise ValueError(f"need batch >= 0 and shards >= 1, got {batch}/{shards}")
    return tile_ranges(batch, shards)


def placement_ranges(
    batch: int, shards: int, group: int | None = None
) -> list[tuple[int, int]]:
    """Shard ranges with boundaries snapped to locality-group multiples.

    Same contract as :func:`shard_ranges` (``<= shards`` contiguous,
    non-empty, gap-free ranges covering ``range(batch)``), but when a
    ``group`` width is given -- the :attr:`LocalExecutor.placement_group`
    hint derived from an attached cost model's topology (fat-tree pod
    size) -- each interior boundary moves to the nearest multiple of
    ``group`` that keeps the split valid.  Workers then own whole locality
    groups wherever the arithmetic allows, so the node ranges a shard
    computes line up with the hosts a pod serves.  The partition never
    affects values (executors compute pure local products).
    """
    base = shard_ranges(batch, shards)
    if group is None or group <= 1 or len(base) <= 1:
        return base
    snapped = [0]
    for lo, _ in base[1:]:
        cut = int(round(lo / group)) * group
        # A boundary whose snap collides with the previous cut (or the
        # ends) is dropped -- merging two ranges keeps the split valid and
        # still <= shards ranges.
        if snapped[-1] < cut < batch:
            snapped.append(cut)
    snapped.append(batch)
    return list(zip(snapped[:-1], snapped[1:]))


def _attach(name: str, shape: tuple[int, ...]):
    # Pool workers share the parent's resource tracker (both fork and
    # spawn), so the attach-side registration dedupes against the parent's
    # create-side one and the parent's ``unlink`` retires it exactly once.
    shm = shared_memory.SharedMemory(name=name)
    return shm, np.ndarray(shape, dtype=np.int64, buffer=shm.buf)


def _semiring_shard(task) -> None:
    """Worker: compute one node range of a batched semiring product."""
    (
        semiring_name,
        with_witnesses,
        backend_spec,
        names,
        left_shape,
        right_shape,
        out_shape,
        lo,
        hi,
    ) = task
    semiring = get_semiring(semiring_name)
    # Backends resolve by spec, like semirings by name: each worker process
    # keeps its own (cached) tile pool, so shards x threads composes.
    backend = get_backend(backend_spec)
    handles = []
    try:
        shm_l, lefts = _attach(names[0], left_shape)
        handles.append(shm_l)
        shm_r, rights = _attach(names[1], right_shape)
        handles.append(shm_r)
        shm_o, out = _attach(names[2], out_shape)
        handles.append(shm_o)
        if with_witnesses:
            shm_w, wit = _attach(names[3], out_shape)
            handles.append(shm_w)
            p, w = semiring.matmul_batch_with_witness(
                lefts[lo:hi], rights[lo:hi], backend=backend
            )
            out[lo:hi] = p
            wit[lo:hi] = w
        else:
            out[lo:hi] = semiring.matmul_batch(
                lefts[lo:hi], rights[lo:hi], backend=backend
            )
    finally:
        for shm in handles:
            shm.close()


def _boolean_packed_shard(task) -> None:
    """Worker: compute one node range of a pre-packed Boolean product."""
    from repro.algebra.semirings import BOOLEAN

    backend_spec, k, names, left_shape, right_shape, out_shape, lo, hi = task
    backend = get_backend(backend_spec)
    handles = []
    try:
        shm_l, lefts = _attach(names[0], left_shape)
        handles.append(shm_l)
        shm_r, rights = _attach(names[1], right_shape)
        handles.append(shm_r)
        shm_o, out = _attach(names[2], out_shape)
        handles.append(shm_o)
        out[lo:hi] = BOOLEAN.packed_words_matmul_batch(
            lefts[lo:hi], rights[lo:hi], k, backend=backend
        )
    finally:
        for shm in handles:
            shm.close()


def _ring_shard(task) -> None:
    """Worker: compute one node range of a batched ring product."""
    from repro.matmul.ringops import get_ring

    ring_name, names, left_shape, right_shape, out_shape, lo, hi = task
    ring = get_ring(ring_name)
    handles = []
    try:
        shm_l, lefts = _attach(names[0], left_shape)
        handles.append(shm_l)
        shm_r, rights = _attach(names[1], right_shape)
        handles.append(shm_r)
        shm_o, out = _attach(names[2], out_shape)
        handles.append(shm_o)
        out[lo:hi] = ring.matmul_batch(lefts[lo:hi], rights[lo:hi])
    finally:
        for shm in handles:
            shm.close()


def _terminate_pool(pool) -> None:
    pool.terminate()
    pool.join()


class ShardedExecutor(LocalExecutor):
    """Multiprocessing backend: node ranges fan out to worker processes.

    Args:
        shards: number of worker processes (``>= 1``).  Each call partitions
            its batch into ``min(shards, batch)`` contiguous node ranges.
        start_method: multiprocessing start method; defaults to ``fork``
            where the platform offers it (cheap, inherits the loaded
            NumPy), ``spawn`` otherwise.
        backend: kernel tile backend spec for the *workers* (each shard
            runs its kernels through this backend, so ``--shards N
            --threads T`` uses up to ``N x T`` cores -- the caller is
            responsible for not oversubscribing the machine).

    The worker pool is created lazily on first use and persists across
    calls -- an :class:`~repro.engine.EngineSession` therefore pays the
    process start-up cost once for all ``ceil(log n)`` squarings.  Call
    :meth:`close` (or use the executor as a context manager) to release the
    workers; a finalizer tears them down at garbage collection otherwise.
    """

    name = "sharded"

    def __init__(
        self,
        shards: int,
        *,
        start_method: str | None = None,
        backend: "str | int | KernelBackend | None" = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.shards = int(shards)
        self._backend_spec = None if backend is None else get_backend(backend)
        if start_method is None:
            methods = mp.get_all_start_methods()
            start_method = "fork" if "fork" in methods else methods[0]
        self._context = mp.get_context(start_method)
        self._pool = None
        self._finalizer: weakref.finalize | None = None

    # ------------------------------------------------------------------ #

    def _ensure_pool(self):
        if self._pool is None:
            self._pool = self._context.Pool(processes=self.shards)
            self._finalizer = weakref.finalize(
                self, _terminate_pool, self._pool
            )
        return self._pool

    def close(self) -> None:
        if self._finalizer is not None:
            self._finalizer()
            self._finalizer = None
        self._pool = None

    @staticmethod
    def _share(arr: np.ndarray, segments: list) -> tuple[str, tuple[int, ...]]:
        shm = shared_memory.SharedMemory(create=True, size=arr.nbytes)
        segments.append(shm)
        np.ndarray(arr.shape, dtype=np.int64, buffer=shm.buf)[:] = arr
        return shm.name, arr.shape

    @staticmethod
    def _alloc(shape: tuple[int, ...], segments: list) -> tuple[str, np.ndarray]:
        nbytes = int(np.prod(shape)) * 8
        shm = shared_memory.SharedMemory(create=True, size=nbytes)
        segments.append(shm)
        return shm.name, np.ndarray(shape, dtype=np.int64, buffer=shm.buf)

    @staticmethod
    def _release(segments: Sequence[shared_memory.SharedMemory]) -> None:
        for shm in segments:
            try:
                shm.close()
                shm.unlink()
            except FileNotFoundError:  # pragma: no cover - already gone
                pass

    # ------------------------------------------------------------------ #

    def semiring_products(
        self,
        semiring: Semiring,
        lefts: np.ndarray,
        rights: np.ndarray,
        *,
        with_witnesses: bool = False,
    ) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
        lefts = np.ascontiguousarray(np.asarray(lefts, dtype=np.int64))
        rights = np.ascontiguousarray(np.asarray(rights, dtype=np.int64))
        batch = lefts.shape[0]
        out_shape = (batch, lefts.shape[1], rights.shape[2])
        if batch < 2 or self.shards < 2 or 0 in out_shape or lefts.size == 0:
            # Nothing to fan out; the batched kernel is already one call
            # (still on this executor's tile backend).
            return SerialExecutor(self._backend_spec).semiring_products(
                semiring, lefts, rights, with_witnesses=with_witnesses
            )
        segments: list[shared_memory.SharedMemory] = []
        try:
            l_name, l_shape = self._share(lefts, segments)
            r_name, r_shape = self._share(rights, segments)
            o_name, out = self._alloc(out_shape, segments)
            names = [l_name, r_name, o_name]
            wit = None
            if with_witnesses:
                w_name, wit = self._alloc(out_shape, segments)
                names.append(w_name)
            tasks = [
                (
                    semiring.name,
                    with_witnesses,
                    self.backend.spec,
                    names,
                    l_shape,
                    r_shape,
                    out_shape,
                    lo,
                    hi,
                )
                for lo, hi in placement_ranges(batch, self.shards, self.placement_group)
            ]
            self._ensure_pool().map(_semiring_shard, tasks, chunksize=1)
            if with_witnesses:
                return out.copy(), wit.copy()
            return out.copy()
        finally:
            self._release(segments)

    def boolean_packed_products(
        self, lefts: np.ndarray, rights: np.ndarray, k: int
    ) -> np.ndarray:
        lefts = np.ascontiguousarray(np.asarray(lefts, dtype=np.int64))
        rights = np.ascontiguousarray(np.asarray(rights, dtype=np.int64))
        batch = lefts.shape[0]
        out_shape = (batch, lefts.shape[1], rights.shape[2])
        if batch < 2 or self.shards < 2 or 0 in out_shape or k == 0:
            return SerialExecutor(self._backend_spec).boolean_packed_products(
                lefts, rights, k
            )
        segments: list[shared_memory.SharedMemory] = []
        try:
            l_name, l_shape = self._share(lefts, segments)
            r_name, r_shape = self._share(rights, segments)
            o_name, out = self._alloc(out_shape, segments)
            tasks = [
                (
                    self.backend.spec,
                    k,
                    [l_name, r_name, o_name],
                    l_shape,
                    r_shape,
                    out_shape,
                    lo,
                    hi,
                )
                for lo, hi in placement_ranges(batch, self.shards, self.placement_group)
            ]
            self._ensure_pool().map(_boolean_packed_shard, tasks, chunksize=1)
            return out.copy()
        finally:
            self._release(segments)

    def ring_products(
        self, ring: RingOps, lefts: np.ndarray, rights: np.ndarray
    ) -> np.ndarray:
        lefts = np.ascontiguousarray(np.asarray(lefts, dtype=np.int64))
        rights = np.ascontiguousarray(np.asarray(rights, dtype=np.int64))
        batch = lefts.shape[0]
        if batch < 2 or self.shards < 2 or lefts.size == 0 or rights.size == 0:
            return SERIAL_EXECUTOR.ring_products(ring, lefts, rights)
        trailing = ring.out_trailing(lefts[0], rights[0])
        rows = lefts.shape[1]
        cols = rights.shape[2]
        out_shape = (batch, rows, cols) + trailing
        if 0 in out_shape:
            return SERIAL_EXECUTOR.ring_products(ring, lefts, rights)
        segments: list[shared_memory.SharedMemory] = []
        try:
            l_name, l_shape = self._share(lefts, segments)
            r_name, r_shape = self._share(rights, segments)
            o_name, out = self._alloc(out_shape, segments)
            tasks = [
                (ring.name, [l_name, r_name, o_name], l_shape, r_shape, out_shape, lo, hi)
                for lo, hi in placement_ranges(batch, self.shards, self.placement_group)
            ]
            self._ensure_pool().map(_ring_shard, tasks, chunksize=1)
            return out.copy()
        finally:
            self._release(segments)


def make_executor(shards: int = 1, threads: int = 1) -> LocalExecutor:
    """The executor for a shard x thread setting.

    ``shards`` picks serial (1) vs sharded (>1) *process* fan-out over node
    ranges; ``threads`` picks the kernel *tile* backend each worker computes
    with (1 = serial tiles, ``T > 1`` = ``threaded:T``).  The two compose:
    shard workers each run their own tile pool.  Values, rounds and meters
    are bit-identical across every combination.
    """
    if shards < 1:
        raise ValueError(f"shards must be >= 1, got {shards}")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    backend = "serial" if threads == 1 else f"threaded:{threads}"
    if shards == 1:
        # The process-wide singleton keeps its dynamic default backend;
        # explicit thread counts get a dedicated serial executor.
        return SERIAL_EXECUTOR if threads == 1 else SerialExecutor(backend)
    return ShardedExecutor(shards, backend=backend)


__all__ = [
    "LocalExecutor",
    "SerialExecutor",
    "ShardedExecutor",
    "SERIAL_EXECUTOR",
    "make_executor",
    "shard_ranges",
    "placement_ranges",
]
