"""Tests for the §2.1 3D semiring matrix multiplication."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, PLUS_TIMES
from repro.clique import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.errors import CliqueSizeError
from repro.matmul.exponent import predicted_semiring3d_rounds
from repro.matmul.semiring3d import semiring_matmul


def _minplus_matrix(rng, n):
    mat = rng.integers(0, 40, (n, n), dtype=np.int64)
    mat[rng.random((n, n)) < 0.2] = INF
    return mat


class TestCorrectness:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_integer_product_matches_numpy(self, seed):
        rng = np.random.default_rng(seed)
        n = 27
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(semiring_matmul(clique, s, t, PLUS_TIMES), s @ t)

    def test_boolean_product(self, rng):
        n = 27
        s = (rng.random((n, n)) < 0.3).astype(np.int64)
        t = (rng.random((n, n)) < 0.3).astype(np.int64)
        clique = CongestedClique(n)
        got = semiring_matmul(clique, s, t, BOOLEAN)
        assert np.array_equal(got, ((s @ t) > 0).astype(np.int64))

    def test_minplus_product(self, rng):
        n = 27
        s = _minplus_matrix(rng, n)
        t = _minplus_matrix(rng, n)
        clique = CongestedClique(n)
        got = semiring_matmul(clique, s, t, MIN_PLUS)
        assert np.array_equal(got, MIN_PLUS.matmul(s, t))

    def test_maxmin_product(self, rng):
        n = 8
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        got = semiring_matmul(clique, s, t, MAX_MIN)
        assert np.array_equal(got, MAX_MIN.matmul(s, t))

    def test_larger_clique(self, rng):
        n = 64
        s = rng.integers(0, 5, (n, n), dtype=np.int64)
        t = rng.integers(0, 5, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(semiring_matmul(clique, s, t), s @ t)


class TestWitnesses:
    def test_minplus_witnesses_valid(self, rng):
        n = 27
        s = _minplus_matrix(rng, n)
        t = _minplus_matrix(rng, n)
        clique = CongestedClique(n)
        product, witness = semiring_matmul(
            clique, s, t, MIN_PLUS, with_witnesses=True
        )
        assert np.array_equal(product, MIN_PLUS.matmul(s, t))
        for u in range(n):
            for v in range(n):
                if product[u, v] < INF:
                    k = int(witness[u, v])
                    assert 0 <= k < n
                    assert s[u, k] + t[k, v] == product[u, v]

    def test_witnesses_rejected_for_rings(self, rng):
        clique = CongestedClique(8)
        mat = rng.integers(0, 3, (8, 8), dtype=np.int64)
        with pytest.raises(ValueError):
            semiring_matmul(clique, mat, mat, PLUS_TIMES, with_witnesses=True)


class TestCosts:
    def test_rounds_match_predictor(self, rng):
        for n in (8, 27, 64):
            s = rng.integers(0, 2, (n, n), dtype=np.int64)
            t = rng.integers(0, 2, (n, n), dtype=np.int64)
            clique = CongestedClique(n)
            semiring_matmul(clique, s, t)
            assert clique.rounds == predicted_semiring3d_rounds(n)

    def test_witness_runs_cost_more(self, rng):
        n = 27
        s = _minplus_matrix(rng, n)
        t = _minplus_matrix(rng, n)
        plain = CongestedClique(n)
        semiring_matmul(plain, s, t, MIN_PLUS)
        with_wit = CongestedClique(n)
        semiring_matmul(with_wit, s, t, MIN_PLUS, with_witnesses=True)
        assert with_wit.rounds > plain.rounds

    def test_scaling_is_sublinear(self, rng):
        rounds = []
        for n in (27, 64, 125):
            s = rng.integers(0, 2, (n, n), dtype=np.int64)
            clique = CongestedClique(n)
            semiring_matmul(clique, s, s)
            rounds.append(clique.rounds)
        # Rounds grow much slower than n: ~ n^{1/3}.
        assert rounds[2] / rounds[0] < (125 / 27) ** 0.5

    def test_exact_mode_agrees(self, rng):
        n = 8
        s = rng.integers(0, 3, (n, n), dtype=np.int64)
        t = rng.integers(0, 3, (n, n), dtype=np.int64)
        fast = CongestedClique(n, mode=ScheduleMode.FAST)
        exact = CongestedClique(n, mode=ScheduleMode.EXACT)
        p_fast = semiring_matmul(fast, s, t)
        p_exact = semiring_matmul(exact, s, t)
        assert np.array_equal(p_fast, p_exact)
        assert exact.rounds <= 2 * fast.rounds + 4


class TestValidation:
    def test_non_cube_clique_rejected(self, rng):
        clique = CongestedClique(10)
        mat = rng.integers(0, 2, (10, 10), dtype=np.int64)
        with pytest.raises(CliqueSizeError):
            semiring_matmul(clique, mat, mat)

    def test_wrong_shape_rejected(self, rng):
        clique = CongestedClique(8)
        with pytest.raises(ValueError):
            semiring_matmul(
                clique,
                rng.integers(0, 2, (4, 4), dtype=np.int64),
                rng.integers(0, 2, (4, 4), dtype=np.int64),
            )
