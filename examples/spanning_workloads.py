#!/usr/bin/env python
"""Graph sparsification on the session API: spanners + MST.

The PR 5 workload demo: the same engine sessions that power the distance
algorithms run two classic sparsification routines -- a Baswana-Sen
``(2k-1)``-spanner (cluster growing as min-plus witness products) and the
Jurdzinski-Nowicki O(1)-round MST skeleton (Boruvka contraction products +
KKT sampling + F-light gather).  Both are verified in-process against
their centralised oracles.

Run: ``python examples/spanning_workloads.py [n]`` (default 30).
"""

from __future__ import annotations

import sys

import numpy as np

from repro import (
    baswana_sen_reference,
    build_spanner,
    minimum_spanning_forest,
    mst_reference,
    spanner_stretch,
)
from repro.graphs import random_weighted_graph


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 30
    graph = random_weighted_graph(n, 0.3, max_weight=50, seed=17)
    print(f"Weighted network: {graph}\n")

    k = 3
    spanner = build_spanner(graph, k, seed=17)
    reference = baswana_sen_reference(graph, k, seed=17)
    assert np.array_equal(spanner.value, reference)
    stretch = spanner_stretch(graph, spanner.value)
    bound = spanner.extras["stretch_bound"]
    assert stretch <= bound + 1e-9
    print(
        f"({bound})-spanner                  : {spanner.rounds:6d} rounds   "
        f"[{spanner.extras['spanner_edges']}/{graph.edge_count} edges, "
        f"measured stretch {stretch:.2f}, oracle check: edge-for-edge]"
    )

    mst = minimum_spanning_forest(graph, seed=17)
    edges, weight = mst_reference(graph)
    assert mst.extras["edges"] == edges
    print(
        f"MST (KKT skeleton)            : {mst.rounds:6d} rounds   "
        f"[weight {mst.extras['weight']} == Kruskal {weight}, "
        f"{mst.extras['flight_survivors']} F-light survivors]"
    )

    constant = {
        key: mst.extras["phase_rounds"].get(key, 0)
        for key in ("labels_announce", "boruvka_candidates", "flight_gather")
    }
    print(f"\nO(1)-round collectives of the skeleton: {constant}")
    print("(label closures and contraction products scale with n; the "
          "constant-round pieces above are the Jurdzinski-Nowicki claim.)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
