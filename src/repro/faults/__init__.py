"""Fault injection and encoded-exchange robustness for the collective stack.

The subsystem has three layers (PR 6; see DESIGN.md "Fault model"):

* :mod:`repro.faults.plan` -- seeded deterministic adversaries
  (:class:`FaultPlan`): word flips, message drops, crash-stop, corrupting
  up to ``t`` relay nodes per exchange.
* :mod:`repro.faults.injection` -- :class:`FaultyClique`, a pure
  interception wrapper over the array collectives (bit-identical charges
  and contents when no plan is installed).
* :mod:`repro.faults.protocol` -- :class:`RobustClique`, replication-coded
  collectives with supported-majority decode
  (:func:`majority_decode`) and detect-retry-degrade semantics: a robust
  closure equals the fault-free oracle or raises
  :class:`FaultToleranceExceeded` -- never a silent wrong answer.

Motivated by the robust Congested Clique compilers of Censor-Hillel et al.
(arXiv:2508.08740): our collectives move fixed-width records, so a
replication code over disjoint relay sets drops in without touching the
algorithms above the session API.
"""

from repro.errors import FaultToleranceExceeded
from repro.faults.encoding import majority_decode
from repro.faults.injection import FaultyClique, corrupt_pieces, flip_masks
from repro.faults.plan import FaultKind, FaultPlan
from repro.faults.protocol import MirroredMeter, RobustClique

__all__ = [
    "FaultKind",
    "FaultPlan",
    "FaultyClique",
    "RobustClique",
    "MirroredMeter",
    "FaultToleranceExceeded",
    "majority_decode",
    "corrupt_pieces",
    "flip_masks",
]
