"""Shared runtime glue between graphs and the matmul engines.

Graph algorithms in the paper implicitly assume the clique size has whatever
arithmetic shape the matmul engine needs ("assume for convenience that
``n^{1/3}`` is an integer").  This module centralises the lifting: an
``n``-node graph problem runs on the smallest valid clique ``N >= n`` for
the chosen engine, with matrices padded by isolated nodes (all-zero
adjacency rows / all-``INF`` weight rows), which changes no answers and only
inflates constants.

It also provides :class:`RunResult`, the uniform return type of every
application-level algorithm: the answer plus the communication bill.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

import numpy as np

from repro.algebra.semirings import BOOLEAN, PLUS_TIMES
from repro.clique.accounting import CostMeter
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.layout import next_cube, next_square
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import semiring_matmul

#: The three matmul engines applications can run on.
MATMUL_METHODS = ("bilinear", "semiring", "naive")


@dataclass
class RunResult:
    """The outcome of one distributed computation.

    Attributes:
        value: the algorithm's answer (count, boolean, matrix, ...).
        rounds: total congested-clique rounds consumed.
        clique_size: the (possibly padded) clique the run used.
        meter: the full per-phase cost breakdown.
        extras: algorithm-specific diagnostics (e.g. approximation ratio
            bounds, recursion depth, trial counts).
    """

    value: Any
    rounds: int
    clique_size: int
    meter: CostMeter
    extras: dict[str, Any] = field(default_factory=dict)


def required_clique_size(n: int, method: str) -> int:
    """Smallest clique size ``>= n`` on which ``method`` can run."""
    if method == "semiring":
        return next_cube(n)
    if method == "bilinear":
        return next_square(n)
    if method == "naive":
        return n
    raise ValueError(f"unknown matmul method {method!r}")


def make_clique(
    n: int,
    method: str = "bilinear",
    *,
    mode: ScheduleMode = ScheduleMode.FAST,
    word_bits: int | None = None,
) -> CongestedClique:
    """A clique sized for an ``n``-node problem under ``method``."""
    return CongestedClique(
        required_clique_size(n, method), mode=mode, word_bits=word_bits
    )


def pad_matrix(matrix: np.ndarray, size: int, fill: int = 0) -> np.ndarray:
    """Zero/INF-pad a square matrix up to ``size`` (isolated virtual nodes).

    The diagonal of the padded region is forced to ``0`` so that padded
    weight matrices remain valid (``W[u, u] = 0``).
    """
    matrix = np.asarray(matrix, dtype=np.int64)
    n = matrix.shape[0]
    if size < n:
        raise ValueError(f"cannot pad {n} down to {size}")
    if size == n:
        return matrix.copy()
    out = np.full((size, size), fill, dtype=np.int64)
    out[:n, :n] = matrix
    if fill != 0:
        idx = np.arange(n, size)
        out[idx, idx] = 0
    return out


def integer_product(
    clique: CongestedClique,
    x: np.ndarray,
    y: np.ndarray,
    method: str,
    *,
    phase: str,
) -> np.ndarray:
    """Integer matrix product under the chosen engine."""
    if method == "bilinear":
        return bilinear_matmul(
            clique, x, y, default_algorithm(clique.n), phase=phase
        )
    if method == "semiring":
        return semiring_matmul(clique, x, y, PLUS_TIMES, phase=phase)
    if method == "naive":
        return broadcast_matmul(clique, x, y, PLUS_TIMES, phase=phase)
    raise ValueError(f"unknown matmul method {method!r}")


def boolean_product(
    clique: CongestedClique,
    x: np.ndarray,
    y: np.ndarray,
    method: str,
    *,
    phase: str,
) -> np.ndarray:
    """Boolean matrix product under the chosen engine.

    The semiring engines (``"semiring"``, ``"naive"``) run directly over
    the Boolean semiring: partial products stay 0/1 (one word -- the
    ``b/log n`` width factor of §1.1 stays constant through repeated
    squarings) and local block products use the blocked Boolean kernel of
    :class:`~repro.algebra.semirings.BooleanSemiring`.  The bilinear engine
    needs a *ring*, so it computes the integer product of the 0/1 matrices
    and thresholds -- exactly the reduction the paper's Corollary 2 uses.
    """
    xb = (x > 0).astype(np.int64)
    yb = (y > 0).astype(np.int64)
    if method == "semiring":
        return semiring_matmul(clique, xb, yb, BOOLEAN, phase=phase)
    if method == "naive":
        return broadcast_matmul(clique, xb, yb, BOOLEAN, phase=phase)
    product = integer_product(clique, xb, yb, method, phase=phase)
    return (product > 0).astype(np.int64)


def or_broadcast(clique: CongestedClique, local_bits: list[bool], phase: str) -> bool:
    """One round: every node announces a bit; returns the global OR."""
    received = clique.broadcast(
        [1 if b else 0 for b in local_bits], words=1, phase=phase
    )
    return any(received[0])


def sum_broadcast(
    clique: CongestedClique, local_values: list[int], phase: str, words: int = 2
) -> int:
    """One broadcast: every node announces a partial sum; returns the total.

    ``words=2`` covers values up to ``n^{O(1)}`` at the default word size --
    the widths triangle/4-cycle partial counts need.
    """
    received = clique.broadcast(local_values, words=words, phase=phase)
    return int(sum(received[0]))


__all__ = [
    "RunResult",
    "MATMUL_METHODS",
    "required_clique_size",
    "make_clique",
    "pad_matrix",
    "integer_product",
    "boolean_product",
    "or_broadcast",
    "sum_broadcast",
    "INF",
]
