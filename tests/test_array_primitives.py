"""Equivalence tests: array-native primitives vs the tuple path.

The fast path must charge *identical* costs (rounds, words, payloads, load
profiles -- the full :class:`~repro.clique.accounting.PhaseCost`) to the
tuple primitives for the same logical exchange, and deliver the same pieces
in the same deterministic order.  Also covers the vectorised width helpers
against their scalar counterparts.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.messages import (
    bit_lengths,
    block_widths,
    words_for_array,
    words_for_value,
    words_for_values,
)
from repro.clique.model import CongestedClique, ScheduleMode
from repro.errors import CliqueModelError, LoadBoundExceededError


def _phases(clique: CongestedClique):
    return [
        (
            p.phase,
            p.primitive,
            p.rounds,
            p.words,
            p.payloads,
            p.max_send_words,
            p.max_recv_words,
        )
        for p in clique.meter.phases
    ]


def _random_batch(rng, n: int, piece_len: int):
    """A random exchange in both representations (tuple outboxes + arrays)."""
    dests, blocks, outboxes = [], [], []
    for v in range(n):
        p_v = int(rng.integers(0, 7))
        d = rng.integers(0, n, p_v).astype(np.int64)
        b = rng.integers(-100, 100, (p_v, piece_len)).astype(np.int64)
        dests.append(d)
        blocks.append(b)
        outboxes.append(
            [
                (int(d[i]), b[i], words_for_array(b[i], 16))
                for i in range(p_v)
            ]
        )
    return dests, blocks, outboxes


class TestRouteArrayEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_fast_mode_costs_and_delivery_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        dests, blocks, outboxes = _random_batch(rng, n, piece_len=3)
        tuple_clique = CongestedClique(n, word_bits=16)
        array_clique = CongestedClique(n, word_bits=16)
        tuple_in = tuple_clique.route(outboxes, phase="x")
        array_in = array_clique.route_array(dests, blocks, phase="x")
        assert _phases(tuple_clique) == _phases(array_clique)
        assert tuple_clique.rounds == array_clique.rounds
        for u in range(n):
            tuple_srcs = [src for src, _payload in tuple_in[u]]
            assert tuple_srcs == array_in[u].sources.tolist()
            tuple_pieces = [payload for _src, payload in tuple_in[u]]
            assert len(tuple_pieces) == array_in[u].blocks.shape[0]
            for i, piece in enumerate(tuple_pieces):
                assert np.array_equal(piece, array_in[u].blocks[i])

    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_exact_mode_rounds_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 7))
        dests, blocks, outboxes = _random_batch(rng, n, piece_len=2)
        tuple_clique = CongestedClique(n, word_bits=16, mode=ScheduleMode.EXACT)
        array_clique = CongestedClique(n, word_bits=16, mode=ScheduleMode.EXACT)
        tuple_clique.route(outboxes, phase="x")
        array_clique.route_array(dests, blocks, phase="x")
        assert _phases(tuple_clique) == _phases(array_clique)

    def test_tags_ride_along(self):
        n = 3
        clique = CongestedClique(n)
        dests = [np.array([1, 2]), np.array([2]), np.array([], dtype=np.int64)]
        blocks = [
            np.array([[1, 2], [3, 4]]),
            np.array([[5, 6]]),
            np.zeros((0, 2), dtype=np.int64),
        ]
        tags = [np.array([7, 8]), np.array([9]), np.array([], dtype=np.int64)]
        inboxes = clique.route_array(dests, blocks, tags=tags, phase="t")
        assert inboxes[2].sources.tolist() == [0, 1]
        assert inboxes[2].tags.tolist() == [8, 9]
        assert inboxes[1].tags.tolist() == [7]
        assert inboxes[0].tags.tolist() == []

    def test_load_bound_enforced(self):
        n = 4
        clique = CongestedClique(n)
        dests = [np.full(10, 1, dtype=np.int64)] + [
            np.array([], dtype=np.int64) for _ in range(n - 1)
        ]
        blocks = [np.ones((10, 5), dtype=np.int64)] + [
            np.zeros((0, 5), dtype=np.int64) for _ in range(n - 1)
        ]
        with pytest.raises(LoadBoundExceededError):
            clique.route_array(dests, blocks, expect_max_load=3)

    def test_malformed_batch_rejected(self):
        clique = CongestedClique(3)
        good_blocks = [np.zeros((1, 2), dtype=np.int64)] * 3
        with pytest.raises(CliqueModelError):
            clique.route_array([np.array([5])] * 3, good_blocks)  # dst range
        with pytest.raises(CliqueModelError):
            clique.route_array([np.array([1, 2])] * 3, good_blocks)  # count

    def test_wrong_length_tags_rejected(self):
        # Regression: a wrong-length tag vector used to be silently
        # concatenated, shifting tags onto the wrong senders' pieces.
        clique = CongestedClique(2)
        dests = [np.array([0, 1]), np.array([0, 1])]
        blocks = [np.ones((2, 2), dtype=np.int64)] * 2
        with pytest.raises(CliqueModelError):
            clique.route_array(
                dests, blocks, tags=[np.array([7, 8, 9]), np.array([5])]
            )


class TestBroadcastRowsEquivalence:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_costs_match_tuple_broadcast(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 12))
        rows = rng.integers(-1000, 1000, (n, 5)).astype(np.int64)
        widths = [words_for_array(rows[v], 16) for v in range(n)]
        tuple_clique = CongestedClique(n, word_bits=16)
        array_clique = CongestedClique(n, word_bits=16)
        received = tuple_clique.broadcast(list(rows), words=widths, phase="b")
        replica = array_clique.broadcast_rows(rows, phase="b")
        assert _phases(tuple_clique) == _phases(array_clique)
        assert np.array_equal(replica, np.stack(received[0]))

    def test_explicit_widths_respected(self):
        n = 4
        rows = np.ones((n, 3), dtype=np.int64)
        clique = CongestedClique(n)
        clique.broadcast_rows(rows, widths=[9, 1, 1, 1], phase="b")
        assert clique.rounds == 9


class TestTransposeArrayEquivalence:
    @pytest.mark.parametrize("words_per_entry", [1, 3])
    def test_costs_and_values_match(self, words_per_entry):
        rng = np.random.default_rng(0)
        n = 6
        matrix = rng.integers(-50, 50, (n, n)).astype(np.int64)
        tuple_clique = CongestedClique(n)
        array_clique = CongestedClique(n)
        columns = tuple_clique.transpose(
            [list(row) for row in matrix], words_per_entry=words_per_entry
        )
        transposed = array_clique.transpose_array(
            matrix, words_per_entry=words_per_entry
        )
        assert _phases(tuple_clique) == _phases(array_clique)
        assert np.array_equal(transposed, np.array(columns))
        assert np.array_equal(transposed, matrix.T)


class TestVectorisedWidths:
    @settings(max_examples=50, deadline=None)
    @given(
        st.lists(
            st.integers(min_value=0, max_value=2**62), min_size=1, max_size=20
        ),
        st.sampled_from([8, 16, 24, 64]),
    )
    def test_words_for_values_matches_scalar(self, values, word_bits):
        vec = words_for_values(np.array(values, dtype=np.int64), word_bits)
        assert vec.tolist() == [words_for_value(v, word_bits) for v in values]

    def test_bit_lengths_matches_python(self):
        probes = [0, 1, 2, 3, 255, 256, 2**52, 2**62 - 1, 2**62, 2**63 - 1]
        out = bit_lengths(np.array(probes, dtype=np.uint64).astype(np.int64))
        assert out.tolist() == [int(v).bit_length() for v in probes]

    def test_block_widths_matches_words_for_array(self):
        rng = np.random.default_rng(1)
        blocks = rng.integers(-10**6, 10**6, (7, 4)).astype(np.int64)
        widths = block_widths(blocks, 16)
        assert widths.tolist() == [words_for_array(b, 16) for b in blocks]
