"""Smoke tests: every example script runs end to end at a small scale."""

from __future__ import annotations

import subprocess
import sys
from pathlib import Path

import pytest

EXAMPLES = Path(__file__).resolve().parent.parent / "examples"

CASES = [
    ("quickstart.py", ["27"]),
    ("social_network_triangles.py", ["36"]),
    ("road_network_apsp.py", ["3", "4"]),
    ("girth_and_cycles.py", ["25"]),
    ("scaling_study.py", ["--small"]),
    ("bottleneck_routing.py", ["16"]),
]


@pytest.mark.parametrize("script,args", CASES, ids=[c[0] for c in CASES])
def test_example_runs(script, args):
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / script), *args],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout.strip(), "examples should print their findings"


def test_quickstart_reports_round_counts():
    result = subprocess.run(
        [sys.executable, str(EXAMPLES / "quickstart.py"), "27"],
        capture_output=True,
        text=True,
        timeout=600,
    )
    assert "rounds" in result.stdout
    assert "TOTAL" in result.stdout  # the per-phase meter report
