"""The serving layer: artifacts, batch queries, delta maintenance, faults.

Four seams, each pinned against an oracle:

* **Artifacts** round-trip the resident closure bit-for-bit through raw
  int64 blocks + manifest, open as read-only memmaps in O(1), and refuse
  foreign/newer/mismatched/degraded manifests loudly;
* **Queries** reconstruct paths whose weights equal the closure distance
  and whose edges exist, validated against NetworkX ``shortest_path``
  across seeds and densities -- including disconnected pairs, where INF
  is an answer (empty path), never an exception;
* **Delta updates** match a from-scratch rebuild edge-for-edge while
  billing strictly fewer rounds for small dirty sets, and write back only
  touched artifact rows;
* the **fault seam** carries PR 6's no-silent-wrong-answers invariant
  across the build/serve boundary: degraded builds are recorded in the
  manifest and refuse to serve.

The asyncio server tests are marked ``serve`` and excluded from the fast
lane (run with ``-m serve``).
"""

from __future__ import annotations

import asyncio
import json

import numpy as np
import pytest
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import MAX_MIN, MIN_PLUS
from repro.constants import INF
from repro.engine import EngineSession, make_clique
from repro.errors import FaultToleranceExceeded, NegativeCycleError
from repro.faults import FaultPlan
from repro.graphs import (
    apsp_reference,
    random_weighted_digraph,
    random_weighted_graph,
)
from repro.runtime import pad_matrix
from repro.serve import (
    ARTIFACT_VERSION,
    ArtifactError,
    BatchingServer,
    ClosureArtifact,
    QueryEngine,
    RoutingCycleError,
    apply_edge_updates,
    graph_fingerprint,
)
from repro.serve.app import request_line
from repro.serve.artifact import MANIFEST_NAME

nx = pytest.importorskip("networkx", reason="NetworkX oracle unavailable")


# --------------------------------------------------------------------- #
# Helpers
# --------------------------------------------------------------------- #


def _session(n: int, engine: str = "semiring", **clique_kwargs) -> EngineSession:
    clique = make_clique(n, engine, **clique_kwargs)
    return EngineSession(clique, engine, MIN_PLUS)


def _build(
    tmp_path,
    n: int = 16,
    p: float = 0.3,
    seed: int = 3,
    *,
    directed: bool = False,
    max_weight: int = 30,
    name: str = "artifact",
    engine: str = "semiring",
):
    maker = random_weighted_digraph if directed else random_weighted_graph
    graph = maker(n, p, max_weight=max_weight, seed=seed)
    session = _session(n, engine)
    artifact = ClosureArtifact.build(session, graph, tmp_path / name)
    return graph, session, artifact


def _nx_graph(graph):
    g = nx.DiGraph() if graph.directed else nx.Graph()
    g.add_nodes_from(range(graph.n))
    w = graph.weight_matrix()
    rows, cols = np.nonzero(graph.adjacency)
    for u, v in zip(rows, cols):
        g.add_edge(int(u), int(v), weight=int(w[u, v]))
    return g


def _assert_valid_path(graph, weights, u, v, dist, path):
    """The satellite invariant: weight(path) == closure distance, edges real."""
    if dist >= INF:
        assert path == []
        return
    if u == v:
        assert path == [u]
        return
    assert path[0] == u and path[-1] == v
    total = 0
    for a, b in zip(path, path[1:]):
        assert weights[a, b] < INF, (a, b)
        total += int(weights[a, b])
    assert total == dist


# --------------------------------------------------------------------- #
# Artifacts: build / open / refuse
# --------------------------------------------------------------------- #


class TestArtifact:
    def test_roundtrip_matches_reference(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=18, p=0.3, seed=7)
        assert np.array_equal(artifact.dist, apsp_reference(graph))
        assert artifact.n == 18
        assert artifact.generation == 0
        assert artifact.rounds > 0
        assert artifact.graph_hash == graph_fingerprint(graph)
        assert np.array_equal(artifact.weights, graph.weight_matrix())
        # On-disk routing convention: diagonal is -1, entries are in-range.
        diag = np.diagonal(artifact.next_hop)
        assert np.all(diag == -1)

    def test_open_is_readonly_memmap(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=10)
        reopened = ClosureArtifact.open(artifact.path)
        assert isinstance(reopened.dist, np.memmap)
        assert not reopened.writable
        with pytest.raises(ValueError):
            reopened.dist[0, 0] = 1  # read-only mapping

    def test_expect_graph_accepts_and_refuses(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=12, seed=1)
        ClosureArtifact.open(artifact.path, expect_graph=graph)
        other = random_weighted_graph(12, 0.3, max_weight=30, seed=2)
        with pytest.raises(ArtifactError, match="graph hash mismatch"):
            ClosureArtifact.open(artifact.path, expect_graph=other)

    def test_refuses_foreign_and_newer_manifests(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=8)
        manifest_path = artifact.path / MANIFEST_NAME
        manifest = json.loads(manifest_path.read_text())

        manifest["version"] = ARTIFACT_VERSION + 1
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="version"):
            ClosureArtifact.open(artifact.path)

        manifest["version"] = ARTIFACT_VERSION
        manifest["format"] = "something-else"
        manifest_path.write_text(json.dumps(manifest))
        with pytest.raises(ArtifactError, match="not a closure artifact"):
            ClosureArtifact.open(artifact.path)

        manifest_path.write_text("{not json")
        with pytest.raises(ArtifactError, match="unreadable"):
            ClosureArtifact.open(artifact.path)

        manifest_path.unlink()
        with pytest.raises(ArtifactError, match="no artifact manifest"):
            ClosureArtifact.open(artifact.path)

    def test_refuses_truncated_block(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=8)
        block = artifact.path / "dist.bin"
        block.write_bytes(block.read_bytes()[:-8])
        with pytest.raises(ArtifactError, match="bytes"):
            ClosureArtifact.open(artifact.path)

    def test_verify_hash_catches_tampered_weights(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=8)
        ClosureArtifact.open(artifact.path, verify_hash=True)
        block = artifact.path / "weights.bin"
        raw = bytearray(block.read_bytes())
        raw[8] ^= 0xFF
        block.write_bytes(bytes(raw))
        with pytest.raises(ArtifactError, match="does not match"):
            ClosureArtifact.open(artifact.path, verify_hash=True)

    def test_build_refuses_undersized_session(self, tmp_path):
        graph = random_weighted_graph(16, 0.3, max_weight=10, seed=0)
        session = _session(8)
        with pytest.raises(ValueError, match="too small"):
            ClosureArtifact.build(session, graph, tmp_path / "a")

    def test_build_detects_negative_cycle(self, tmp_path):
        graph = random_weighted_graph(8, 0.9, max_weight=10, seed=4)
        graph.weights[graph.adjacency == 1] = -1  # any cycle is negative
        with pytest.raises(NegativeCycleError):
            ClosureArtifact.build(_session(8), graph, tmp_path / "neg")

    def test_directed_artifact(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=14, p=0.25, seed=9, directed=True)
        assert artifact.directed
        assert np.array_equal(artifact.dist, apsp_reference(graph))


# --------------------------------------------------------------------- #
# The fault seam across the build/serve boundary
# --------------------------------------------------------------------- #


class TestFaultSeam:
    def test_protected_build_embeds_fault_summary(self, tmp_path):
        graph = random_weighted_graph(12, 0.3, max_weight=20, seed=6)
        plan = FaultPlan(t=1, seed=11)
        session = _session(12, fault_plan=plan, fault_tolerance=1)
        artifact = ClosureArtifact.build(session, graph, tmp_path / "robust")
        faults = artifact.manifest["faults"]
        assert faults["protected"] is True
        assert faults["t"] == 1
        assert faults["scheme"] == "replicate"
        assert faults["tolerance"] == 1
        assert faults["copies"] == 3  # 2T + 1 replicas
        assert faults["abstract_rounds"] <= artifact.rounds
        # Robustness is invisible in the values: same closure as fault-free.
        assert np.array_equal(artifact.dist, apsp_reference(graph))

    def test_coded_build_records_scheme_and_tolerance(self, tmp_path):
        """PR 9: the manifest names the redundancy scheme, so a later
        reader can audit how a served closure was protected."""
        graph = random_weighted_graph(12, 0.3, max_weight=20, seed=6)
        plan = FaultPlan(t=1, seed=11, kind="byzantine")
        session = _session(
            12, fault_plan=plan, fault_tolerance=1, fault_scheme="coded"
        )
        artifact = ClosureArtifact.build(session, graph, tmp_path / "coded")
        faults = artifact.manifest["faults"]
        assert faults["protected"] is True
        assert faults["scheme"] == "coded"
        assert faults["tolerance"] == 1
        assert faults["kind"] == "byzantine"
        assert faults["abstract_rounds"] <= artifact.rounds
        assert np.array_equal(artifact.dist, apsp_reference(graph))

    def test_coded_exceeded_tolerance_degrades_and_refuses(self, tmp_path):
        """The degrade path is scheme-independent: a coded build past its
        budget writes a degraded manifest and every later open refuses."""
        graph = random_weighted_graph(16, 0.4, max_weight=20, seed=2)
        plan = FaultPlan(t=5, seed=3)
        session = _session(
            16, fault_plan=plan, fault_tolerance=1, fault_scheme="coded"
        )
        path = tmp_path / "coded-degraded"
        with pytest.raises(FaultToleranceExceeded):
            ClosureArtifact.build(session, graph, path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["status"] == "degraded"
        assert manifest["faults"]["scheme"] == "coded"
        with pytest.raises(FaultToleranceExceeded, match="degraded"):
            ClosureArtifact.open(path)

    @settings(
        max_examples=6,
        deadline=None,
        suppress_health_check=[HealthCheck.function_scoped_fixture],
    )
    @given(st.integers(min_value=0, max_value=10**6))
    def test_unprotected_faulted_build_degrades_and_refuses(self, tmp_path, seed):
        """Property: whenever the adversary lands a fault on an unprotected
        build, the artifact is marked degraded and every open refuses it."""
        graph = random_weighted_graph(10, 0.5, max_weight=20, seed=seed)
        plan = FaultPlan(t=2, seed=seed)
        session = _session(10, fault_plan=plan)
        path = tmp_path / f"faulty-{seed}"
        try:
            artifact = ClosureArtifact.build(session, graph, path)
        except Exception:
            # Whether the corruption surfaced as FaultToleranceExceeded or
            # crashed the closure outright, the manifest records it.
            manifest = json.loads((path / MANIFEST_NAME).read_text())
            assert manifest["status"] == "degraded"
            assert manifest["faults"]["injected"] > 0
            assert not manifest["faults"]["protected"]
            with pytest.raises(FaultToleranceExceeded, match="refuses to serve"):
                ClosureArtifact.open(path)
        else:
            # The adversary happened to miss every exchange: values stand.
            assert artifact.manifest["faults"]["injected"] == 0
            assert np.array_equal(artifact.dist, apsp_reference(graph))

    def test_exceeded_tolerance_writes_degraded_manifest(self, tmp_path):
        graph = random_weighted_graph(16, 0.4, max_weight=20, seed=2)
        plan = FaultPlan(t=5, seed=3)
        session = _session(16, fault_plan=plan, fault_tolerance=1)
        path = tmp_path / "degraded"
        with pytest.raises(FaultToleranceExceeded):
            ClosureArtifact.build(session, graph, path)
        manifest = json.loads((path / MANIFEST_NAME).read_text())
        assert manifest["status"] == "degraded"
        with pytest.raises(FaultToleranceExceeded, match="degraded"):
            ClosureArtifact.open(path)
        with pytest.raises(FaultToleranceExceeded):
            # Even a writable open (the delta path) must refuse.
            ClosureArtifact.open(path, writable=True)


# --------------------------------------------------------------------- #
# Queries: paths pinned to closure distances and the NetworkX oracle
# --------------------------------------------------------------------- #


class TestQueries:
    @pytest.mark.parametrize(
        "n,p,seed",
        [
            (16, 0.05, 0),  # sparse: most pairs disconnected
            (16, 0.15, 1),
            (20, 0.4, 2),
            (14, 0.8, 3),
        ],
    )
    def test_all_pairs_paths_match_networkx(self, tmp_path, n, p, seed):
        graph, _, artifact = _build(tmp_path, n=n, p=p, seed=seed)
        engine = QueryEngine(artifact)
        oracle = _nx_graph(graph)
        weights = graph.weight_matrix()
        lengths = dict(nx.all_pairs_dijkstra_path_length(oracle))
        for u in range(n):
            for v in range(n):
                dist = engine.dist(u, v)
                path = engine.path(u, v)
                if v not in lengths[u]:
                    # Disconnected: INF is an answer, not an exception.
                    assert dist >= INF
                    assert path == []
                    continue
                assert dist == lengths[u][v]
                _assert_valid_path(graph, weights, u, v, dist, path)

    def test_directed_paths_respect_orientation(self, tmp_path):
        graph, _, artifact = _build(
            tmp_path, n=14, p=0.2, seed=5, directed=True
        )
        engine = QueryEngine(artifact)
        oracle = _nx_graph(graph)
        weights = graph.weight_matrix()
        lengths = dict(nx.all_pairs_dijkstra_path_length(oracle))
        for u in range(14):
            for v in range(14):
                dist = engine.dist(u, v)
                path = engine.path(u, v)
                if v not in lengths[u]:
                    assert dist >= INF and path == []
                else:
                    assert dist == lengths[u][v]
                    _assert_valid_path(graph, weights, u, v, dist, path)

    def test_batches_match_point_queries(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=16, p=0.2, seed=8)
        engine = QueryEngine(artifact)
        rng = np.random.default_rng(8)
        us = rng.integers(0, 16, 300)
        vs = rng.integers(0, 16, 300)
        dists = engine.dist_batch(us, vs)
        paths = engine.path_batch(us, vs)
        for u, v, d, path in zip(us, vs, dists, paths):
            assert int(d) == engine.dist(int(u), int(v))
            assert path == engine.path(int(u), int(v))
        eccs = engine.ecc_batch(np.arange(16))
        for u in range(16):
            assert int(eccs[u]) == engine.ecc(u)
            assert np.array_equal(engine.row(u), np.array(artifact.dist[u]))

    def test_bounds_and_shape_validation(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=8)
        engine = QueryEngine(artifact)
        with pytest.raises(ValueError, match="out of range"):
            engine.dist(0, 8)
        with pytest.raises(ValueError, match="out of range"):
            engine.path(-1, 0)
        with pytest.raises(ValueError, match="out of range"):
            engine.ecc(99)
        with pytest.raises(ValueError, match="out of range"):
            engine.dist_batch(np.array([0, 8]), np.array([1, 2]))
        with pytest.raises(ValueError, match="equal-length"):
            engine.dist_batch(np.array([0, 1]), np.array([1]))
        with pytest.raises(ValueError, match="out of range"):
            engine.ecc_batch(np.array([-3]))

    def test_corrupt_routing_table_fails_loudly(self, tmp_path):
        _, _, artifact = _build(tmp_path, n=10, p=0.6, seed=4)
        writable = ClosureArtifact.open(artifact.path, writable=True)
        finite = np.argwhere(
            (np.array(writable.dist) < INF)
            & ~np.eye(10, dtype=bool)
        )
        u, v = (int(x) for x in finite[0])
        writable.next_hop[u, v] = u  # self-loop: the chase never advances
        writable.next_hop.flush()
        engine = QueryEngine(ClosureArtifact.open(artifact.path))
        with pytest.raises(RoutingCycleError, match="exceeded"):
            engine.path(u, v)
        with pytest.raises(RoutingCycleError):
            engine.path_batch(np.array([u]), np.array([v]))
        writable.next_hop[u, v] = -1  # dead end mid-chase
        writable.next_hop.flush()
        engine = QueryEngine(ClosureArtifact.open(artifact.path))
        with pytest.raises(RoutingCycleError, match="dead-end"):
            engine.path(u, v)


# --------------------------------------------------------------------- #
# Delta maintenance: dirty strips == full rebuild, fewer rounds
# --------------------------------------------------------------------- #


def _closed_session(graph):
    """A session with the graph's closure resident, plus its padded weights."""
    session = _session(graph.n)
    weights = pad_matrix(graph.weight_matrix(), session.n, fill=INF)
    session.seed_resident(weights)
    session.resident_closure()
    return session, weights


def _random_decreases(rng, graph, weights, k):
    """k random decreases/insertions (u, v, w') against current weights."""
    n = graph.n
    updates = []
    while len(updates) < k:
        u, v = (int(x) for x in rng.integers(0, n, 2))
        if u == v:
            continue
        current = int(weights[u, v])
        new = int(rng.integers(1, 10)) if current >= INF else max(
            1, current - int(rng.integers(1, max(2, current)))
        )
        if new >= current:
            continue
        updates.append((u, v, new))
    return updates


def _chase(dist, hops, u, v, n):
    """Reconstruct a path from working-convention resident arrays."""
    if u == v:
        return [u]
    if dist[u, v] >= INF:
        return []
    path = [u]
    cur = u
    for _ in range(n):
        cur = int(hops[cur, v])
        path.append(cur)
        if cur == v:
            return path
    raise AssertionError(f"chase {u}->{v} did not terminate")


class TestDelta:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_delta_equals_rebuild_with_fewer_rounds(self, seed):
        """The acceptance property: k <= 8 updated edges maintained by the
        dirty-strip arm produce the identical closure (values *and* valid
        routing) as a from-scratch rebuild, in strictly fewer rounds."""
        rng = np.random.default_rng(seed)
        n = int(rng.choice([12, 16]))
        graph = random_weighted_graph(
            n, float(rng.choice([0.2, 0.4])), max_weight=30, seed=seed
        )
        k = int(rng.integers(1, 9))

        fast, weights_fast = _closed_session(graph)
        slow, weights_slow = _closed_session(graph)
        updates = _random_decreases(rng, graph, weights_fast, k)

        delta = apply_edge_updates(fast, weights_fast, updates)
        rebuild = apply_edge_updates(
            slow, weights_slow, updates, force_rebuild=True
        )
        assert delta.mode == "delta"
        assert rebuild.mode == "rebuild"
        assert rebuild.rebuild_reason == "forced"
        assert np.array_equal(weights_fast, weights_slow)
        # Edge-for-edge identical closure values...
        assert np.array_equal(fast.resident.dist, slow.resident.dist)
        # ...reached in strictly fewer rounds for a small dirty set.
        assert delta.rounds < rebuild.rounds
        assert delta.dirty <= 2 * k
        # The maintained routing table reconstructs consistent paths.
        dist = fast.resident.dist
        hops = fast.resident.next_hop
        for u in range(n):
            for v in range(n):
                path = _chase(dist, hops, u, v, fast.n)
                if not path:
                    continue
                total = sum(
                    int(weights_fast[a, b]) for a, b in zip(path, path[1:])
                )
                assert total == int(dist[u, v]), (u, v, path)

    def test_increase_falls_back_to_rebuild(self, tmp_path):
        graph = random_weighted_graph(12, 0.5, max_weight=20, seed=3)
        session, weights = _closed_session(graph)
        edges = np.argwhere(graph.adjacency)
        u, v = (int(x) for x in edges[0])
        report = apply_edge_updates(
            session, weights, [(u, v, int(weights[u, v]) + 5)]
        )
        assert report.mode == "rebuild"
        assert "increase" in report.rebuild_reason
        # The rebuilt closure equals the oracle of the updated graph.
        graph.weights[u, v] = graph.weights[v, u] = graph.weights[u, v] + 5
        assert np.array_equal(
            session.resident.dist[:12, :12], apsp_reference(graph)
        )

    def test_deletion_falls_back_to_rebuild(self):
        graph = random_weighted_graph(10, 0.6, max_weight=15, seed=6)
        session, weights = _closed_session(graph)
        edges = np.argwhere(graph.adjacency)
        u, v = (int(x) for x in edges[0])
        report = apply_edge_updates(session, weights, [(u, v, INF)])
        assert report.mode == "rebuild"
        graph.adjacency[u, v] = graph.adjacency[v, u] = 0
        assert np.array_equal(
            session.resident.dist[:10, :10], apsp_reference(graph)
        )

    def test_negative_cycle_rejected_before_mutation(self):
        graph = random_weighted_graph(10, 0.5, max_weight=15, seed=7)
        session, weights = _closed_session(graph)
        before = session.resident.dist.copy()
        hops_before = session.resident.next_hop.copy()
        with pytest.raises(NegativeCycleError):
            # An undirected negative edge is a negative 2-cycle.
            apply_edge_updates(session, weights, [(0, 1, -5)])
        assert np.array_equal(session.resident.dist, before)
        assert np.array_equal(session.resident.next_hop, hops_before)

    def test_update_validation(self):
        graph = random_weighted_graph(8, 0.5, max_weight=10, seed=8)
        session, weights = _closed_session(graph)
        with pytest.raises(ValueError, match="self-loop"):
            apply_edge_updates(session, weights, [(2, 2, 1)])
        with pytest.raises(ValueError, match="out of range"):
            apply_edge_updates(session, weights, [(0, 99, 1)])
        with pytest.raises(ValueError, match="triple"):
            apply_edge_updates(session, weights, [(0, 1)])
        with pytest.raises(ValueError, match="no edge updates"):
            apply_edge_updates(session, weights, [])
        with pytest.raises(ValueError, match="padded"):
            apply_edge_updates(session, weights[:4, :4], [(0, 1, 1)])
        session.drop_resident()
        with pytest.raises(RuntimeError, match="resident"):
            apply_edge_updates(session, weights, [(0, 1, 1)])

    def test_wrong_algebra_rejected(self):
        clique = make_clique(8, "semiring")
        session = EngineSession(clique, "semiring", MAX_MIN)
        session.seed_resident(np.zeros((session.n, session.n), dtype=np.int64))
        with pytest.raises(ValueError, match="min-plus"):
            apply_edge_updates(
                session,
                np.zeros((session.n, session.n), dtype=np.int64),
                [(0, 1, 1)],
            )

    def test_artifact_commit_roundtrip(self, tmp_path):
        """Delta write-back: only touched rows rewritten, generation bumped,
        and the reopened artifact equals a from-scratch build of the
        updated graph (including the recomputed graph hash)."""
        graph, _, artifact = _build(tmp_path, n=14, p=0.3, seed=10)
        writable = ClosureArtifact.open(artifact.path, writable=True)

        session = _session(14)
        dist, hops = writable.resident_arrays(session.n)
        session.seed_resident(dist, next_hop=hops)
        weights = writable.padded_weights(session.n)

        rng = np.random.default_rng(10)
        updates = _random_decreases(rng, graph, weights, 4)
        report = apply_edge_updates(
            session, weights, updates, artifact=writable
        )
        assert report.mode == "delta"
        assert report.generation == 1

        reopened = ClosureArtifact.open(artifact.path, verify_hash=True)
        assert reopened.generation == 1
        assert reopened.manifest["last_update"]["mode"] == "delta"
        assert reopened.rounds == artifact.rounds + report.rounds

        # Oracle: rebuild the updated graph from scratch.
        for u, v, w in updates:
            graph.adjacency[u, v] = graph.adjacency[v, u] = 1
            graph.weights[u, v] = graph.weights[v, u] = w
        fresh_session = _session(14)
        fresh = ClosureArtifact.build(fresh_session, graph, tmp_path / "fresh")
        assert np.array_equal(reopened.dist, fresh.dist)
        assert np.array_equal(reopened.weights, fresh.weights)
        assert reopened.graph_hash == fresh.graph_hash
        # Paths served from the updated artifact are valid at new weights.
        engine = QueryEngine(reopened)
        w = graph.weight_matrix()
        for u in range(14):
            for v in range(14):
                _assert_valid_path(
                    graph, w, u, v, engine.dist(u, v), engine.path(u, v)
                )

    def test_commit_requires_writable(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=8, p=0.5, seed=11)
        session = _session(8)
        dist, hops = artifact.resident_arrays(session.n)
        session.seed_resident(dist, next_hop=hops)
        weights = artifact.padded_weights(session.n)
        with pytest.raises(ArtifactError, match="read-only"):
            apply_edge_updates(
                session, weights, [(0, 1, 1)], artifact=artifact
            )


# --------------------------------------------------------------------- #
# The batching server (serve lane: excluded from the fast lane)
# --------------------------------------------------------------------- #


@pytest.mark.serve
class TestBatchingServer:
    @pytest.fixture()
    def served(self, tmp_path):
        graph, _, artifact = _build(tmp_path, n=12, p=0.3, seed=13)
        return graph, QueryEngine(artifact)

    def test_protocol_answers_match_engine(self, served):
        graph, engine = served

        async def scenario():
            server = BatchingServer(engine, window=0.002)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for u in range(graph.n):
                    for v in range(0, graph.n, 3):
                        reply = await request_line(
                            reader, writer, {"op": "dist", "u": u, "v": v}
                        )
                        want = engine.dist(u, v)
                        assert reply["ok"]
                        assert reply["dist"] == (
                            None if want >= INF else want
                        )
                        reply = await request_line(
                            reader,
                            writer,
                            {"op": "path", "u": u, "v": v, "id": 7},
                        )
                        assert reply["ok"] and reply["id"] == 7
                        assert reply["path"] == engine.path(u, v)
                reply = await request_line(
                    reader, writer, {"op": "ecc", "u": 0}
                )
                want = engine.ecc(0)
                assert reply["ecc"] == (None if want >= INF else want)
                reply = await request_line(reader, writer, {"op": "stats"})
                assert reply["stats"]["requests"] > 0
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_concurrent_clients_are_batched(self, served):
        graph, engine = served

        async def client(host, port, seed):
            rng = np.random.default_rng(seed)
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(20):
                    u, v = (int(x) for x in rng.integers(0, graph.n, 2))
                    reply = await request_line(
                        reader, writer, {"op": "dist", "u": u, "v": v}
                    )
                    want = engine.dist(u, v)
                    assert reply["dist"] == (None if want >= INF else want)
            finally:
                writer.close()

        async def scenario():
            server = BatchingServer(engine, window=0.01)
            host, port = await server.start()
            try:
                await asyncio.gather(
                    *(client(host, port, s) for s in range(8))
                )
            finally:
                await server.close()
            stats = server.stats.as_dict()
            assert stats["requests"] == 160
            assert stats["batches"] < stats["requests"]  # batching happened
            assert stats["largest_batch"] > 1

        asyncio.run(scenario())

    def test_error_responses(self, served):
        _, engine = served

        async def scenario():
            server = BatchingServer(engine, window=0.001)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                writer.write(b"this is not json\n")
                await writer.drain()
                reply = json.loads(await reader.readline())
                assert not reply["ok"] and "bad JSON" in reply["error"]

                reply = await request_line(reader, writer, {"op": "nope"})
                assert not reply["ok"] and "unknown op" in reply["error"]

                reply = await request_line(
                    reader, writer, {"op": "dist", "u": 0, "v": 999}
                )
                assert not reply["ok"] and "out of range" in reply["error"]

                reply = await request_line(reader, writer, {"op": "dist"})
                assert not reply["ok"]
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_max_requests_sets_done(self, served):
        _, engine = served

        async def scenario():
            server = BatchingServer(engine, window=0.001, max_requests=3)
            host, port = await server.start()
            reader, writer = await asyncio.open_connection(host, port)
            try:
                for _ in range(3):
                    await request_line(
                        reader, writer, {"op": "dist", "u": 0, "v": 1}
                    )
                await asyncio.wait_for(server.done.wait(), timeout=5)
            finally:
                writer.close()
                await server.close()

        asyncio.run(scenario())

    def test_load_harness_smoke(self, tmp_path):
        """The benchmark loader doubles as an integration test."""
        from benchmarks.load_serve import run_load

        _, _, artifact = _build(tmp_path, n=12, p=0.4, seed=14)
        result = run_load(
            artifact.path, clients=4, requests_per_client=25, window=0.002
        )
        assert result["requests"] == 100
        assert result["qps"] > 0
        assert result["p50_ms"] <= result["p99_ms"]
        assert result["mean_batch"] >= 1.0
