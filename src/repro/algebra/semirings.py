"""Semirings for congested-clique matrix multiplication.

The paper's Theorem 1 distinguishes two regimes:

* **semirings** (no subtraction) -- handled by the 3D algorithm of §2.1; the
  relevant instances are the min-plus (tropical) semiring for shortest paths
  and the Boolean semiring for reachability/detection;
* **rings** (subtraction available) -- handled by the bilinear algorithm of
  §2.2 over the integers (and the capped polynomial ring of Lemma 18).

A :class:`Semiring` bundles the block-level operations the 3D algorithm
needs: a block matrix product (optionally with *witnesses*, i.e. the index
attaining each min), and the elementwise addition used to combine partial
products.  All operations are NumPy-vectorised over ``int64`` arrays; the
min-plus instance saturates at :data:`repro.constants.INF`.
"""

from __future__ import annotations

import numpy as np

from repro.constants import INF


class Semiring:
    """Base class: a semiring with NumPy block operations.

    Subclasses implement :meth:`matmul` and :meth:`add`; semirings whose
    addition is a selection (min/max) also implement the ``*_with_witness``
    variants used to extract routing tables (§3.3).
    """

    name: str = "abstract"
    #: additive identity value, stored in int64 matrices
    zero_value: int = 0
    #: multiplicative identity value (the diagonal of the identity matrix)
    one_value: int = 1
    #: whether this semiring is actually a ring (supports subtraction), in
    #: which case the fast bilinear algorithm of §2.2 also applies.
    is_ring: bool = False
    #: whether witnesses (argmin/argmax indices) are meaningful
    has_witnesses: bool = False

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        """Block product ``x . y`` in the semiring."""
        raise NotImplementedError

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        """Elementwise semiring addition."""
        raise NotImplementedError

    def zeros(self, shape: tuple[int, ...]) -> np.ndarray:
        """All-``zero_value`` matrix of the given shape."""
        return np.full(shape, self.zero_value, dtype=np.int64)

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        """Block product plus, per output entry, the inner index attaining it.

        Only meaningful for selection semirings; the default raises.
        """
        raise NotImplementedError(f"{self.name} has no witnesses")

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        """Elementwise addition carrying witnesses along with the selection."""
        raise NotImplementedError(f"{self.name} has no witnesses")

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"Semiring({self.name})"


class PlusTimesRing(Semiring):
    """The ordinary integer ring ``(Z, +, *)`` -- a ring, so §2.2 applies."""

    name = "plus-times"
    zero_value = 0
    is_ring = True

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return x @ y

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return a + b


class BooleanSemiring(Semiring):
    """The Boolean semiring ``({0,1}, or, and)``.

    Matrices are 0/1 ``int64``; products threshold an integer product, which
    is exact because path counts are non-negative.
    """

    name = "boolean"
    zero_value = 0

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return ((x.astype(np.int64) @ y.astype(np.int64)) > 0).astype(np.int64)

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return ((a + b) > 0).astype(np.int64)


class MinPlusSemiring(Semiring):
    """The tropical (min-plus) semiring used for distance products (§3.3).

    ``(S * T)[u, v] = min_w S[u, w] + T[w, v]``; the additive identity is
    :data:`~repro.constants.INF` and sums saturate there so that unreachable
    entries stay unreachable.  Witnesses record the minimising inner index,
    which §3.3 turns into routing tables.
    """

    name = "min-plus"
    zero_value = INF
    one_value = 0
    has_witnesses = True

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.matmul_with_witness(x, y)[0]

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        sums = x[:, :, None] + y[None, :, :]
        infinite = (x[:, :, None] >= INF) | (y[None, :, :] >= INF)
        np.copyto(sums, INF, where=infinite)
        witness = np.argmin(sums, axis=1)
        product = np.take_along_axis(sums, witness[:, None, :], axis=1)[:, 0, :]
        return product, witness

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.minimum(a, b)

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        take_b = b < a
        return np.where(take_b, b, a), np.where(take_b, wb, wa)


class MaxMinSemiring(Semiring):
    """The bottleneck (max-min) semiring -- a natural extension target.

    ``(S * T)[u, v] = max_w min(S[u, w], T[w, v])`` computes widest
    bottleneck paths; included to demonstrate that the §2.1 engine is generic
    over semirings (the paper states Theorem 1 "over semirings").
    """

    name = "max-min"
    zero_value = -INF
    one_value = INF
    has_witnesses = True

    def matmul(self, x: np.ndarray, y: np.ndarray) -> np.ndarray:
        return self.matmul_with_witness(x, y)[0]

    def matmul_with_witness(
        self, x: np.ndarray, y: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        mins = np.minimum(x[:, :, None], y[None, :, :])
        witness = np.argmax(mins, axis=1)
        product = np.take_along_axis(mins, witness[:, None, :], axis=1)[:, 0, :]
        return product, witness

    def add(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        return np.maximum(a, b)

    def add_with_witness(
        self,
        a: np.ndarray,
        wa: np.ndarray,
        b: np.ndarray,
        wb: np.ndarray,
    ) -> tuple[np.ndarray, np.ndarray]:
        take_b = b > a
        return np.where(take_b, b, a), np.where(take_b, wb, wa)


#: Singleton instances -- semirings are stateless, so share them.
PLUS_TIMES = PlusTimesRing()
BOOLEAN = BooleanSemiring()
MIN_PLUS = MinPlusSemiring()
MAX_MIN = MaxMinSemiring()

ALL_SEMIRINGS: tuple[Semiring, ...] = (PLUS_TIMES, BOOLEAN, MIN_PLUS, MAX_MIN)


def reference_matmul(semiring: Semiring, s: np.ndarray, t: np.ndarray) -> np.ndarray:
    """Centralised single-shot semiring product, used as a test oracle."""
    return semiring.matmul(np.asarray(s, dtype=np.int64), np.asarray(t, dtype=np.int64))


__all__ = [
    "Semiring",
    "PlusTimesRing",
    "BooleanSemiring",
    "MinPlusSemiring",
    "MaxMinSemiring",
    "PLUS_TIMES",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "ALL_SEMIRINGS",
    "reference_matmul",
]
