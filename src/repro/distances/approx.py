"""Approximate weighted APSP (paper Theorem 9).

Iterated squaring over the min-plus semiring, with each squaring performed
by the Lemma 20 ``(1 + delta)``-approximate distance product.  After
``ceil(log2 n)`` squarings the result ``D~`` satisfies

    d(u, v) <= D~[u, v] <= (1 + delta)^{ceil(log2 n)} d(u, v),

so choosing ``delta = o(1 / log n)`` gives the paper's ``(1 + o(1))``
approximation in ``O(n^{rho + o(1)})`` rounds.  The simulator exposes
``delta`` directly: benchmarks sweep it to reproduce the accuracy/rounds
trade-off, and ``extras["ratio_bound"]`` reports the proven bound
``(1 + delta)^{squarings}`` for the chosen parameters.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.graphs.graphs import Graph
from repro.matmul.distance import approx_distance_product
from repro.runtime import RunResult, make_clique, pad_matrix


def default_delta(n: int) -> float:
    """The paper's choice ``delta = 1 / log^2 n`` (Theorem 9's proof)."""
    return 1.0 / max(1.0, math.log2(max(2, n))) ** 2


def apsp_approx(
    graph: Graph,
    *,
    delta: float | None = None,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Theorem 9: ``(1 + o(1))``-approximate APSP for non-negative weights.

    Args:
        graph: weighted digraph (or undirected graph) with non-negative
            integer weights.
        delta: per-product approximation slack; defaults to the paper's
            ``1/log^2 n``.  The end-to-end ratio bound is
            ``(1 + delta)^{ceil(log2 n)}``.
    """
    _require_nonnegative_weights(graph)
    n = graph.n
    clique = clique or make_clique(n, "bilinear", mode=mode)
    eps = delta if delta is not None else default_delta(n)
    dist = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)

    squarings = max(1, math.ceil(math.log2(max(2, n))))
    for step in range(squarings):
        dist = approx_distance_product(
            clique, dist, dist, eps, phase=f"approx-apsp/square{step}"
        )
        np.fill_diagonal(dist, 0)
    ratio_bound = (1.0 + eps) ** squarings
    return RunResult(
        value=dist[:n, :n],
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"delta": eps, "squarings": squarings, "ratio_bound": ratio_bound},
    )


def _require_nonnegative_weights(graph: Graph) -> None:
    edge = graph.adjacency == 1
    if graph.weights is not None and edge.any() and int(graph.weights[edge].min()) < 0:
        raise ValueError("Theorem 9 needs non-negative integer weights")


__all__ = ["apsp_approx", "default_delta"]
