"""Naive O(n)-round matrix multiplication baseline.

The obvious congested-clique algorithm: every node broadcasts its row of the
right operand (``n`` words per node, hence ``n`` rounds at unit width), after
which each node multiplies its own row of ``S`` against the fully replicated
``T`` locally.  Table 1 lists no prior work for semiring matmul -- this
baseline is the implicit comparison point the paper's ``O(n^{1/3})`` improves
on, and the benchmark harness uses it to show the crossover.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.messages import words_for_array
from repro.clique.model import CongestedClique


def broadcast_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    with_witnesses: bool = False,
    phase: str = "naive-matmul",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Multiply via full replication of ``T``: ``O(n)`` rounds.

    Same input/output convention as
    :func:`repro.matmul.semiring3d.semiring_matmul`.
    """
    n = clique.n
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n} matrices")
    word_bits = clique.word_bits
    widths = [words_for_array(t[v], word_bits) for v in range(n)]
    received = clique.broadcast(
        [t[v] for v in range(n)], words=widths, phase=f"{phase}/replicate-T"
    )
    p = semiring.zeros((n, n))
    w_out = np.full((n, n), -1, dtype=np.int64) if with_witnesses else None
    for v in range(n):
        t_full = np.vstack(received[v])
        if with_witnesses:
            prod, wit = semiring.matmul_with_witness(s[v : v + 1, :], t_full)
            p[v] = prod[0]
            w_out[v] = wit[0]
        else:
            p[v] = semiring.matmul(s[v : v + 1, :], t_full)[0]
    if with_witnesses:
        return p, w_out
    return p


__all__ = ["broadcast_matmul"]
