"""Subgraph detection and counting (paper §3.1)."""

from repro.subgraphs.colour_coding import (
    default_trials,
    detect_colourful_cycle,
    detect_k_cycle,
)
from repro.subgraphs.counting import (
    count_five_cycles,
    count_four_cycles,
    count_triangles,
)
from repro.subgraphs.four_cycle import (
    Tile,
    build_tiling,
    detect_four_cycles,
    tile_side,
)
from repro.subgraphs.paths import detect_colourful_path, detect_k_path

__all__ = [
    "detect_k_path",
    "detect_colourful_path",
    "count_triangles",
    "count_four_cycles",
    "count_five_cycles",
    "detect_k_cycle",
    "detect_colourful_cycle",
    "default_trials",
    "detect_four_cycles",
    "build_tiling",
    "tile_side",
    "Tile",
]
