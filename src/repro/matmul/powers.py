"""Matrix powers on the clique: the iterated-squaring workhorse.

Every distance/reachability algorithm in §3 is "compute a matrix power by
repeated squaring"; this module exposes that pattern as a first-class
primitive so downstream users don't re-implement the loop:

* :func:`matrix_power` -- ``A^k`` over any semiring via binary
  exponentiation, ``O(log k)`` products;
* :func:`closure` -- ``A^{>=1}`` summed under the semiring's addition up to
  path length ``n`` (transitive closure over the Boolean semiring, all-pairs
  distances over min-plus), ``O(log n)`` squarings.

Engine selection matches :mod:`repro.runtime`: rings may use the fast §2.2
engine; selection semirings run on §2.1.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.model import CongestedClique
from repro.matmul.semiring3d import semiring_matmul


def matrix_power(
    clique: CongestedClique,
    matrix: np.ndarray,
    exponent: int,
    semiring: Semiring = PLUS_TIMES,
    *,
    phase: str = "matrix-power",
) -> np.ndarray:
    """``matrix^exponent`` over a semiring, by binary exponentiation.

    ``exponent = 0`` returns the multiplicative identity pattern for the
    common semirings (1 on the diagonal for plus-times/Boolean, 0-diagonal /
    zero-elsewhere for min-plus style selection semirings).
    """
    if exponent < 0:
        raise ValueError(f"exponent must be >= 0, got {exponent}")
    n = clique.n
    matrix = np.asarray(matrix, dtype=np.int64)
    if matrix.shape != (n, n):
        raise ValueError(f"matrix must be {n} x {n}")
    if exponent == 0:
        identity = semiring.zeros((n, n))
        np.fill_diagonal(identity, semiring.one_value)
        return identity

    result: np.ndarray | None = None
    base = matrix
    e = exponent
    step = 0
    while e:
        if e & 1:
            result = (
                base
                if result is None
                else semiring_matmul(
                    clique, result, base, semiring, phase=f"{phase}/mul{step}"
                )
            )
        e >>= 1
        if e:
            base = semiring_matmul(
                clique, base, base, semiring, phase=f"{phase}/sq{step}"
            )
        step += 1
    assert result is not None
    return result


def closure(
    clique: CongestedClique,
    matrix: np.ndarray,
    semiring: Semiring,
    *,
    phase: str = "closure",
) -> np.ndarray:
    """Sum of all powers up to ``n`` -- "paths of any length" semantics.

    Implemented as ``ceil(log2 n)`` squarings of ``A (+) I``-style
    accumulation: ``B <- B (x) B (+) A`` starting from ``B = A``, which
    after ``t`` steps covers all walks of length ``<= 2^t`` (paper eq. (4),
    the directed-girth recurrence, generalised to any semiring).
    """
    n = clique.n
    accum = np.asarray(matrix, dtype=np.int64)
    for step in range(max(1, math.ceil(math.log2(max(2, n))))):
        squared = semiring_matmul(
            clique, accum, accum, semiring, phase=f"{phase}/sq{step}"
        )
        accum = semiring.add(squared, np.asarray(matrix, dtype=np.int64))
    return accum


__all__ = ["matrix_power", "closure"]
