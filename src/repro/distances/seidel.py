"""Unweighted undirected APSP by Seidel's algorithm (Corollary 7).

The recursion (Lemma 17, [65]): square the graph (one Boolean product),
solve APSP on ``G^2`` recursively, and recover the parity of each distance
from the integer product ``S = D A``:

    d_G(u, v) = 2 d_{G^2}(u, v) - [ S[u,v] < d_{G^2}(u,v) * deg_G(v) ].

Each level costs one Boolean and one integer product (``O(n^rho)`` rounds on
the §2.2 engine) plus a degree broadcast; the recursion depth is
``O(log n)`` because the diameter halves, giving ``O~(n^rho)`` total --
Table 1's "unweighted, undirected APSP" row.

Disconnected inputs are handled: once the recursion bottoms out, ``G^k`` is
a disjoint union of cliques and cross-component entries stay ``INF``;
infinite entries are masked to 0 inside the parity product, which is safe
because ``S[u, v]`` is only consulted for same-component pairs, whose
contributing terms are all finite.
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import BOOLEAN, PLUS_TIMES
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import (
    RunResult,
    make_clique,
    pad_matrix,
)


def apsp_unweighted(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 7: exact unweighted undirected APSP in ``O~(n^rho)`` rounds."""
    if graph.directed:
        raise ValueError("Seidel's algorithm needs an undirected graph")
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    a = pad_matrix(graph.adjacency, clique.n)
    depth_box = {"levels": 0}
    # Two sessions on one clique/meter: the recursion squares Booleanly and
    # recovers parities with integer products.
    sessions = (
        EngineSession(clique, method, BOOLEAN),
        EngineSession(clique, method, PLUS_TIMES),
    )
    dist = _seidel(clique, a, sessions, depth_box, 0)
    return RunResult(
        value=dist[:n, :n],
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"levels": depth_box["levels"]},
    )


def _seidel(
    clique: CongestedClique,
    a: np.ndarray,
    sessions: tuple[EngineSession, EngineSession],
    depth_box: dict[str, int],
    level: int,
) -> np.ndarray:
    bool_session, int_session = sessions
    n = clique.n
    depth_box["levels"] = max(depth_box["levels"], level + 1)
    # Square the graph: adjacency of G^2 is (A^2 or A) off the diagonal.
    a_sq = bool_session.square(a, phase=f"seidel/L{level}/square")
    a2 = ((a_sq + a) > 0).astype(np.int64)
    np.fill_diagonal(a2, 0)

    # Termination test G == G^2 is a local row check plus a one-bit AND
    # (implemented as OR of the negations).
    local_diff = [bool(np.any(a2[v] != a[v])) for v in range(n)]
    received = clique.broadcast(
        [1 if b else 0 for b in local_diff], words=1, phase=f"seidel/L{level}/stable"
    )
    changed = any(received[0])
    if not changed:
        # G is a union of cliques: distance 1 along edges, INF across.
        dist = np.where(a == 1, 1, INF).astype(np.int64)
        np.fill_diagonal(dist, 0)
        return dist

    dist2 = _seidel(clique, a2, sessions, depth_box, level + 1)

    # Parity recovery (Lemma 17).  Infinite entries are masked to 0 for the
    # product; they are never consulted (cross-component pairs stay INF).
    finite2 = dist2 < INF
    d_for_product = np.where(finite2, dist2, 0)
    s = int_session.multiply(
        d_for_product, a, phase=f"seidel/L{level}/parity"
    )
    degrees = a.sum(axis=1)
    received = clique.broadcast(
        [int(x) for x in degrees], words=1, phase=f"seidel/L{level}/degrees"
    )
    deg_row = np.array(received[0], dtype=np.int64)

    # Arithmetic on the masked copy avoids overflowing the INF sentinel.
    parity = (s < d_for_product * deg_row[None, :]).astype(np.int64)
    dist = 2 * d_for_product - parity
    dist = np.where(finite2, dist, INF)
    np.fill_diagonal(dist, 0)
    return dist


__all__ = ["apsp_unweighted"]
