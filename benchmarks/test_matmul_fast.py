"""E2 -- Table 1 "matrix multiplication (ring)": O(n^{1-2/sigma}) rounds.

Sweeps perfect-square clique sizes with the deepest fitting Strassen power;
measured rounds must equal the predictor.  Ablations: the Strassen recursion
level at fixed n (the Lemma 10 communication/products trade-off) and the
classical <d,d,d;d^3> algorithm run through the same engine.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.bilinear import classical, strassen_power
from repro.clique import CongestedClique
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.exponent import fit_exponent, predicted_bilinear_rounds

from .conftest import run_once

SIZES = [49, 100, 144, 196, 256]


def _inputs(n: int):
    rng = np.random.default_rng(n)
    return (
        rng.integers(-9, 10, (n, n), dtype=np.int64),
        rng.integers(-9, 10, (n, n), dtype=np.int64),
    )


@pytest.mark.parametrize("n", SIZES)
def test_bilinear_rounds(benchmark, n):
    s, t = _inputs(n)
    algorithm = default_algorithm(n)

    def run():
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, algorithm)
        return clique.rounds

    rounds = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    benchmark.extra_info["algorithm"] = algorithm.name
    benchmark.extra_info["d"] = algorithm.d
    benchmark.extra_info["m"] = algorithm.m


def test_bilinear_exponent(benchmark):
    def run():
        rounds = []
        for n in SIZES:
            s, t = _inputs(n)
            clique = CongestedClique(n)
            bilinear_matmul(clique, s, t, default_algorithm(n))
            rounds.append(clique.rounds)
        return fit_exponent(SIZES, rounds)

    exponent = run_once(benchmark, run)
    benchmark.extra_info["fitted_exponent"] = exponent
    benchmark.extra_info["strassen_target"] = 1 - 2 / np.log2(7)
    benchmark.extra_info["paper_target_le_gall"] = 0.15715
    # Level quantisation makes small-n fits noisy; sanity-bound only.
    assert exponent < 1.0


@pytest.mark.parametrize("level", [0, 1, 2])
def test_strassen_level_ablation(benchmark, level):
    """DESIGN.md ablation 2: recursion depth at fixed n = 196."""
    n = 196
    s, t = _inputs(n)
    algorithm = strassen_power(level)

    def run():
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, algorithm)
        return clique.rounds

    rounds = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    benchmark.extra_info["level"] = level
    benchmark.extra_info["products"] = algorithm.m


@pytest.mark.parametrize("d", [2, 4])
def test_classical_algorithm_ablation(benchmark, d):
    """The same engine with the school-book bilinear algorithm (sigma = 3)."""
    n = 196
    s, t = _inputs(n)
    algorithm = classical(d)

    def run():
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, algorithm)
        return clique.rounds

    rounds = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = rounds
    benchmark.extra_info["predicted"] = predicted_bilinear_rounds(
        n, d=d, m=d**3
    )
