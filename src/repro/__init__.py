"""repro -- a reproduction of "Algebraic Methods in the Congested Clique".

Censor-Hillel, Kaski, Korhonen, Lenzen, Paz, Suomela (PODC 2015,
arXiv:1503.04963).

The package layers:

* :mod:`repro.clique` -- the metered congested-clique simulator (the
  substrate: rounds, Lenzen routing, broadcast).
* :mod:`repro.algebra` -- semirings, bilinear algorithms (Strassen and its
  Kronecker powers), capped polynomial rings.
* :mod:`repro.matmul` -- the paper's Theorem 1: ``O(n^{1/3})`` semiring and
  ``O(n^{1-2/sigma})`` ring matrix multiplication, distance products and
  witness detection.
* :mod:`repro.subgraphs` / :mod:`repro.distances` -- every application in
  the paper: cycle counting/detection, constant-round 4-cycle detection,
  girth, the APSP family.
* :mod:`repro.spanning` -- spanner and O(1)-round MST workloads riding the
  engine-session API (Parter--Yogev, Jurdzinski--Nowicki).
* :mod:`repro.baselines` -- prior work (Dolev et al.) for the Table 1
  comparisons; :mod:`repro.analysis` -- the Table 1 harness and the §4
  lower-bound checks.

Quickstart::

    import numpy as np
    from repro import CongestedClique, bilinear_matmul

    n = 49
    clique = CongestedClique(n)
    s = np.random.default_rng(0).integers(0, 10, (n, n))
    t = np.random.default_rng(1).integers(0, 10, (n, n))
    p = bilinear_matmul(clique, s, t)       # P = S T, distributed
    print(clique.rounds)                    # the communication bill
"""

from repro.clique import CongestedClique, ScheduleMode
from repro.clique.broadcast_clique import (
    BroadcastCongestedClique,
    broadcast_clique_matmul,
)
from repro.constants import INF, OMEGA_BEST, RHO_IMPLEMENTED, RHO_PAPER, SIGMA_STRASSEN
from repro.algebra import (
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    STRASSEN,
    BilinearAlgorithm,
    classical,
    strassen_power,
)
from repro.matmul import (
    approx_distance_product,
    bilinear_matmul,
    broadcast_matmul,
    distance_product,
    distance_product_ring,
    find_witnesses,
    next_cube,
    next_square,
    semiring_matmul,
)
from repro.graphs import Graph
from repro.runtime import RunResult, make_clique, required_clique_size
from repro.subgraphs import (
    count_five_cycles,
    count_four_cycles,
    count_triangles,
    detect_four_cycles,
    detect_k_cycle,
    detect_k_path,
)
from repro.distances import (
    apsp_approx,
    apsp_bottleneck,
    apsp_bounded,
    apsp_exact,
    apsp_small_diameter,
    apsp_unweighted,
    diameter_exact,
    diameter_unweighted,
    girth_directed,
    girth_undirected,
)
from repro.spanning import (
    baswana_sen_reference,
    build_spanner,
    minimum_spanning_forest,
    mst_reference,
    spanner_stretch,
)
from repro.baselines import dolev_four_cycle_detect, dolev_triangle_count
from repro.analysis import format_table1, run_table1
from repro.serve import (
    BatchingServer,
    ClosureArtifact,
    QueryEngine,
    apply_edge_updates,
)

__version__ = "1.0.0"

__all__ = [
    # substrate
    "CongestedClique",
    "ScheduleMode",
    "RunResult",
    "make_clique",
    "required_clique_size",
    # constants
    "INF",
    "OMEGA_BEST",
    "RHO_PAPER",
    "RHO_IMPLEMENTED",
    "SIGMA_STRASSEN",
    # algebra
    "PLUS_TIMES",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "BilinearAlgorithm",
    "STRASSEN",
    "classical",
    "strassen_power",
    # matmul
    "semiring_matmul",
    "bilinear_matmul",
    "broadcast_matmul",
    "distance_product",
    "distance_product_ring",
    "approx_distance_product",
    "find_witnesses",
    "next_cube",
    "next_square",
    # graphs
    "Graph",
    # applications
    "count_triangles",
    "count_four_cycles",
    "count_five_cycles",
    "detect_k_cycle",
    "detect_k_path",
    "detect_four_cycles",
    "apsp_exact",
    "apsp_unweighted",
    "apsp_bounded",
    "apsp_small_diameter",
    "apsp_approx",
    "apsp_bottleneck",
    "diameter_exact",
    "diameter_unweighted",
    "girth_undirected",
    "girth_directed",
    # spanning workloads
    "build_spanner",
    "baswana_sen_reference",
    "spanner_stretch",
    "minimum_spanning_forest",
    "mst_reference",
    # model variants
    "BroadcastCongestedClique",
    "broadcast_clique_matmul",
    # baselines & analysis
    "dolev_triangle_count",
    "dolev_four_cycle_detect",
    "run_table1",
    "format_table1",
    # serving layer
    "ClosureArtifact",
    "QueryEngine",
    "BatchingServer",
    "apply_edge_updates",
]
