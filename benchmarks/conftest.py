"""Shared helpers for the benchmark harness.

Every benchmark measures two things: wall-clock time of the *simulator*
(pytest-benchmark's native metric) and -- the number the paper is actually
about -- the metered **round count**, recorded in ``extra_info`` as
``clique_rounds`` so it lands in the saved benchmark JSON.  Simulations are
deterministic, so one iteration suffices (``benchmark.pedantic``).
"""

from __future__ import annotations

from typing import Any, Callable


def run_once(benchmark, fn: Callable[[], Any]):
    """Run ``fn`` exactly once under the benchmark timer and return its value."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)
