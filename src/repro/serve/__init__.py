"""The serving layer: closures as a memory-mapped, queryable product.

The engine is the **build side**: one session squares a weight matrix to
its min-plus closure (with routing tables) and
:class:`~repro.serve.artifact.ClosureArtifact` materialises the result as
raw int64 blocks plus a JSON manifest.  Everything after that is the **hot
side** and does zero engine work: :class:`~repro.serve.query.QueryEngine`
answers point/batch distance, path and eccentricity queries straight off
the memory-mapped blocks, :mod:`repro.serve.app` batches concurrent
clients into single vectorised gathers, and
:func:`~repro.serve.delta.apply_edge_updates` maintains the closure under
edge updates by re-squaring only the dirty strips.

Fault seam: an artifact whose build degraded (robust collectives exceeded
their tolerance, or faults were injected without protection) is recorded
as such in its manifest and *refuses to serve* -- the PR 6 no-silent-
wrong-answers invariant crosses the build/serve boundary intact.
"""

from repro.serve.app import BatchingServer
from repro.serve.artifact import (
    ARTIFACT_VERSION,
    ArtifactError,
    ClosureArtifact,
    graph_fingerprint,
)
from repro.serve.delta import DeltaReport, apply_edge_updates
from repro.serve.query import QueryEngine, RoutingCycleError

__all__ = [
    "ARTIFACT_VERSION",
    "ArtifactError",
    "BatchingServer",
    "ClosureArtifact",
    "graph_fingerprint",
    "QueryEngine",
    "RoutingCycleError",
    "DeltaReport",
    "apply_edge_updates",
]
