"""Equivalence tests: array-native engine ports vs the retained tuple paths.

PR 1 proved the *primitives* (`route_array`, `broadcast_rows`, ...) charge
bit-identical costs to the tuple primitives; this suite proves the same for
every *algorithm phase* ported in this PR -- the §2.2 bilinear engine's four
exchanges, the Lemma 21 witness validation hops, the Theorem 4 walk
exchanges, and the girth's learn-everything replication -- by running the
array and tuple formulations side by side and comparing the full per-phase
:class:`~repro.clique.accounting.PhaseCost` stream.  Also covers the new
block collectives (`scatter_blocks` / `gather_blocks` / `send_array` /
`allgather_rows`) and the blocked Boolean kernel against its cube oracle.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.bilinear import classical, strassen_power
from repro.algebra.polynomial import encode_minplus
from repro.algebra.semirings import BOOLEAN, MIN_PLUS
from repro.clique.messages import words_for_array
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.errors import CliqueModelError, LoadBoundExceededError
from repro.graphs import (
    bipartite_random_graph,
    cycle_graph,
    gnp_random_graph,
    windmill_graph,
)
from repro.matmul.bilinear_clique import bilinear_matmul, bilinear_matmul_tuple
from repro.matmul.ringops import POLYNOMIAL_RING
from repro.matmul.witnesses import _validate_candidates, validate_candidates_tuple
from repro.runtime import boolean_product
from repro.subgraphs.four_cycle import detect_four_cycles


def _phases(clique: CongestedClique):
    return [
        (
            p.phase,
            p.primitive,
            p.rounds,
            p.words,
            p.payloads,
            p.max_send_words,
            p.max_recv_words,
        )
        for p in clique.meter.phases
    ]


class TestBilinearEquivalence:
    @pytest.mark.parametrize(
        "n,algorithm",
        [(16, None), (25, None), (49, None), (64, classical(4)), (4, strassen_power(0))],
    )
    def test_phases_and_product_match(self, n, algorithm, rng):
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        p_array = bilinear_matmul(array_clique, s, t, algorithm)
        p_tuple = bilinear_matmul_tuple(tuple_clique, s, t, algorithm)
        assert np.array_equal(p_array, s @ t)
        assert np.array_equal(p_tuple, p_array)
        assert _phases(array_clique) == _phases(tuple_clique)

    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_instances(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.choice([16, 25, 36]))
        s = rng.integers(-50, 51, (n, n), dtype=np.int64)
        t = rng.integers(-50, 51, (n, n), dtype=np.int64)
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        assert np.array_equal(
            bilinear_matmul(array_clique, s, t),
            bilinear_matmul_tuple(tuple_clique, s, t),
        )
        assert _phases(array_clique) == _phases(tuple_clique)

    def test_wide_entries_charge_identically(self, rng):
        # Wide entries exercise the per-piece honest-width vectorisation.
        n = 16
        s = rng.integers(-(2**40), 2**40, (n, n), dtype=np.int64)
        t = rng.integers(-3, 4, (n, n), dtype=np.int64)
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        bilinear_matmul(array_clique, s, t)
        bilinear_matmul_tuple(tuple_clique, s, t)
        assert _phases(array_clique) == _phases(tuple_clique)

    def test_decode_widening_stays_within_load_bound(self):
        # Regression: the step-7 load bound must use the *decoded* entry
        # width.  Entries of 50 give products of one word (20000 < 2^15)
        # whose equation-(2) sums cross the word boundary (40000 needs 2
        # words at 16-bit words); the old pre-decode bound raised
        # LoadBoundExceededError on this valid multiplication.
        n = 16
        s = np.full((n, n), 50, dtype=np.int64)
        t = np.full((n, n), 50, dtype=np.int64)
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        p_array = bilinear_matmul(array_clique, s, t, classical(2))
        p_tuple = bilinear_matmul_tuple(tuple_clique, s, t, classical(2))
        assert np.array_equal(p_array, s @ t)
        assert np.array_equal(p_tuple, p_array)
        assert _phases(array_clique) == _phases(tuple_clique)

    def test_polynomial_ring_phases_match(self, rng):
        n = 16
        s = rng.integers(0, 4, (n, n), dtype=np.int64)
        t = rng.integers(0, 4, (n, n), dtype=np.int64)
        es = encode_minplus(s, 3, 4)
        et = encode_minplus(t, 3, 4)
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        p_array = bilinear_matmul(array_clique, es, et, ring=POLYNOMIAL_RING)
        p_tuple = bilinear_matmul_tuple(tuple_clique, es, et, ring=POLYNOMIAL_RING)
        assert np.array_equal(p_array, p_tuple)
        assert _phases(array_clique) == _phases(tuple_clique)

    def test_exact_mode_phases_match(self, rng):
        n = 16
        s = rng.integers(0, 3, (n, n), dtype=np.int64)
        t = rng.integers(0, 3, (n, n), dtype=np.int64)
        array_clique = CongestedClique(n, mode=ScheduleMode.EXACT)
        tuple_clique = CongestedClique(n, mode=ScheduleMode.EXACT)
        bilinear_matmul(array_clique, s, t)
        bilinear_matmul_tuple(tuple_clique, s, t)
        assert _phases(array_clique) == _phases(tuple_clique)


class TestWitnessValidationEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_phases_and_verdicts_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(4, 16))
        s = rng.integers(0, 6, (n, n), dtype=np.int64)
        t = rng.integers(0, 6, (n, n), dtype=np.int64)
        s[rng.random((n, n)) < 0.2] = INF
        t[rng.random((n, n)) < 0.2] = INF
        p = MIN_PLUS.matmul(s, t)
        candidates = rng.integers(-1, n, (n, n), dtype=np.int64)
        needed = rng.random((n, n)) < 0.5
        array_clique = CongestedClique(n)
        tuple_clique = CongestedClique(n)
        ok_array = _validate_candidates(
            array_clique, s, t, p, candidates, needed, "v"
        )
        ok_tuple = validate_candidates_tuple(
            tuple_clique, s, t, p, candidates, needed, "v"
        )
        assert np.array_equal(ok_array, ok_tuple)
        assert _phases(array_clique) == _phases(tuple_clique)


class TestFourCycleEquivalence:
    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.05, max_value=0.4),
    )
    def test_random_graphs(self, seed, p):
        g = gnp_random_graph(20, p, seed=seed)
        res_array = detect_four_cycles(g, engine="array")
        res_tuple = detect_four_cycles(g, engine="tuple")
        assert res_array.value == res_tuple.value
        assert _phases_from(res_array) == _phases_from(res_tuple)

    def test_structured_families(self):
        for g in (
            windmill_graph(33),
            cycle_graph(7),
            cycle_graph(4),
            bipartite_random_graph(48, 3.0 / 48, seed=7),
        ):
            res_array = detect_four_cycles(g, engine="array")
            res_tuple = detect_four_cycles(g, engine="tuple")
            assert res_array.value == res_tuple.value
            assert _phases_from(res_array) == _phases_from(res_tuple)

    def test_unknown_engine_rejected(self):
        with pytest.raises(ValueError):
            detect_four_cycles(gnp_random_graph(8, 0.3, seed=0), engine="fancy")


def _phases_from(result):
    return [
        (
            p.phase,
            p.primitive,
            p.rounds,
            p.words,
            p.payloads,
            p.max_send_words,
            p.max_recv_words,
        )
        for p in result.meter.phases
    ]


class TestAllgatherRowsEquivalence:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_phases_and_records_match(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 10))
        rows = [
            rng.integers(0, 50, (int(rng.integers(0, 6)), 2)).astype(np.int64)
            for _ in range(n)
        ]
        array_clique = CongestedClique(n, word_bits=16)
        tuple_clique = CongestedClique(n, word_bits=16)
        got = array_clique.allgather_rows(rows, words_per_record=2, phase="ag")
        want = tuple_clique.allgather_records(
            [[tuple(map(int, r)) for r in node_rows] for node_rows in rows],
            words_per_record=2,
            phase="ag",
        )
        assert [tuple(map(int, r)) for r in got] == want
        assert _phases(array_clique) == _phases(tuple_clique)

    def test_empty_input(self):
        clique = CongestedClique(3)
        out = clique.allgather_rows(
            [np.zeros((0, 2), dtype=np.int64)] * 3, phase="ag"
        )
        assert out.shape == (0, 2)
        assert clique.rounds == 1  # the counts broadcast still happens

    def test_ragged_record_width_rejected(self):
        clique = CongestedClique(2)
        with pytest.raises(CliqueModelError):
            clique.allgather_rows(
                [
                    np.zeros((1, 2), dtype=np.int64),
                    np.zeros((1, 3), dtype=np.int64),
                ]
            )


class TestBlockCollectives:
    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_scatter_gather_roundtrip_and_charges(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(2, 10))
        k = int(rng.integers(1, n + 1))
        blocks = rng.integers(-100, 100, (n, k, 3)).astype(np.int64)
        array_clique = CongestedClique(n, word_bits=16)
        out = array_clique.scatter_blocks(blocks, phase="x")
        assert np.array_equal(out, blocks.swapaxes(0, 1))
        # Tuple-path cost oracle for the same exchange.
        tuple_clique = CongestedClique(n, word_bits=16)
        outboxes = [
            [
                (j, blocks[v, j], words_for_array(blocks[v, j], 16))
                for j in range(k)
            ]
            for v in range(n)
        ]
        tuple_clique.route(outboxes, phase="x")
        assert _phases(array_clique) == _phases(tuple_clique)
        # gather is the inverse exchange.
        back_clique = CongestedClique(n, word_bits=16)
        back = back_clique.gather_blocks(out, phase="x")
        assert np.array_equal(back, blocks[:, :k])
        gather_oracle = CongestedClique(n, word_bits=16)
        outboxes = [
            [
                (u, out[v, u], words_for_array(out[v, u], 16))
                for u in range(n)
            ]
            for v in range(k)
        ] + [[] for _ in range(n - k)]
        gather_oracle.route(outboxes, phase="x")
        assert _phases(back_clique) == _phases(gather_oracle)

    def test_send_array_matches_send(self, rng):
        n = 6
        dests = [rng.integers(0, n, 4).astype(np.int64) for _ in range(n)]
        blocks = [rng.integers(-9, 9, (4, 2)).astype(np.int64) for _ in range(n)]
        array_clique = CongestedClique(n, word_bits=16)
        inboxes = array_clique.send_array(dests, blocks, phase="s")
        tuple_clique = CongestedClique(n, word_bits=16)
        outboxes = [
            [
                (
                    int(dests[v][i]),
                    blocks[v][i],
                    words_for_array(blocks[v][i], 16),
                )
                for i in range(4)
            ]
            for v in range(n)
        ]
        tuple_in = tuple_clique.send(outboxes, phase="s")
        assert _phases(array_clique) == _phases(tuple_clique)
        for u in range(n):
            assert [s for s, _ in tuple_in[u]] == inboxes[u].sources.tolist()

    def test_send_array_pair_bound_enforced(self):
        n = 4
        clique = CongestedClique(n)
        dests = [np.full(5, 1, dtype=np.int64)] + [
            np.zeros(0, dtype=np.int64) for _ in range(n - 1)
        ]
        blocks = [np.ones((5, 2), dtype=np.int64)] + [
            np.zeros((0, 2), dtype=np.int64) for _ in range(n - 1)
        ]
        with pytest.raises(LoadBoundExceededError):
            clique.send_array(dests, blocks, expect_max_pair=3)

    def test_malformed_block_stacks_rejected(self):
        clique = CongestedClique(3)
        with pytest.raises(CliqueModelError):
            clique.scatter_blocks(np.zeros((2, 2, 2), dtype=np.int64))  # n rows
        with pytest.raises(CliqueModelError):
            clique.scatter_blocks(np.zeros((3, 4, 2), dtype=np.int64))  # k > n
        with pytest.raises(CliqueModelError):
            clique.gather_blocks(np.zeros((4, 3, 2), dtype=np.int64))  # k > n
        with pytest.raises(CliqueModelError):
            clique.gather_blocks(np.zeros((2, 2, 2), dtype=np.int64))  # n cols


class TestBooleanKernel:
    @settings(max_examples=25, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_blocked_matches_cube_oracle(self, seed):
        rng = np.random.default_rng(seed)
        m, k, n = (int(v) for v in rng.integers(1, 40, 3))
        x = (rng.random((m, k)) < rng.random()).astype(np.int64)
        y = (rng.random((k, n)) < rng.random()).astype(np.int64)
        want = BOOLEAN.cube_matmul(x, y)
        assert np.array_equal(BOOLEAN.matmul(x, y), want)
        # Tiling must not change the result.
        assert np.array_equal(BOOLEAN.matmul(x, y, tile=3), want)
        assert np.array_equal(BOOLEAN.matmul(x, y, tile=1), want)

    def test_empty_inner_dimension(self):
        x = np.zeros((3, 0), dtype=np.int64)
        y = np.zeros((0, 4), dtype=np.int64)
        assert np.array_equal(BOOLEAN.matmul(x, y), np.zeros((3, 4), np.int64))

    def test_bad_tile_rejected(self):
        x = np.ones((2, 2), dtype=np.int64)
        with pytest.raises(ValueError):
            BOOLEAN.matmul(x, x, tile=0)

    @pytest.mark.parametrize("method", ["semiring", "naive"])
    def test_boolean_product_runs_on_boolean_semiring(self, method, rng):
        # The semiring engines now multiply directly over the Boolean
        # semiring: 0/1 partials, blocked kernel locally, same product.
        n = 27 if method == "semiring" else 16
        x = rng.integers(0, 2, (n, n), dtype=np.int64) * 5
        y = rng.integers(0, 2, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        got = boolean_product(clique, x, y, method, phase="t")
        want = (((x > 0).astype(np.int64) @ y) > 0).astype(np.int64)
        assert np.array_equal(got, want)
        assert clique.rounds > 0
