"""Girth computation (paper §3.2: Theorem 15 and Corollary 16).

**Undirected** (Theorem 15): fix ``l = ceil(2 + 2/rho)``.  By the
Moore-bound trade-off (Lemma 14, [53]) a graph with more than
``n^{1 + 1/floor(l/2)} + n`` edges has girth at most ``l``; so either the
graph is sparse enough for every node to learn it outright (the Dolev et al.
"learn everything" primitive, ``O(m/n)`` rounds) and compute the girth
locally, or colour-coding detection (Theorem 3) is run for
``k = 3, 4, ..., l`` and the first hit is the girth.

**Directed** (Corollary 16, after Itai-Rodeh): with ``B(i)[u,v] = 1`` iff a
path of some length ``1 <= l <= i`` exists, the recurrence
``B(j+k) = B(j) B(k) or A`` (Boolean products) lets us double until a
diagonal entry appears and then binary-search, using ``O(log n)`` Boolean
products in total -- ``O~(n^rho)`` rounds on the fast engine.

Both return :data:`~repro.constants.INF` for acyclic inputs.

Implementation note: every exchange runs on the simulator's array-native
fast path -- the sparse branch replicates its edge list through
:meth:`~repro.clique.model.CongestedClique.allgather_rows`, and the Boolean
products of the directed doubling loop run through the array-native engines
(with the semiring engines multiplying directly over the blocked Boolean
kernel of :class:`~repro.algebra.semirings.BooleanSemiring`).  No phase
builds per-payload tuple outboxes.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.semirings import BOOLEAN
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF, RHO_IMPLEMENTED
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.graphs.reference import girth_reference
from repro.runtime import (
    RunResult,
    make_clique,
    or_broadcast,
    pad_matrix,
    resolve_rng,
)
from repro.subgraphs.colour_coding import detect_colourful_cycle


def default_cycle_length_cutoff(rho: float = RHO_IMPLEMENTED) -> int:
    """Theorem 15's ``l = ceil(2 + 2/rho)`` for the implemented exponent."""
    return math.ceil(2.0 + 2.0 / rho)


def edge_threshold(n: int, cutoff: int) -> int:
    """Lemma 14's bound: more edges than this forces girth <= cutoff."""
    return int(n ** (1.0 + 1.0 / (cutoff // 2))) + n


def girth_undirected(
    graph: Graph,
    *,
    method: str = "bilinear",
    cutoff: int | None = None,
    trials_per_k: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Theorem 15: the undirected girth in ``O~(n^rho)`` rounds.

    Detection per candidate length uses seeded random colourings;
    ``trials_per_k`` defaults to ``ceil(e^k ln n)`` per the paper.  If every
    detection misses (probability ``n^{-Omega(1)}``), the algorithm falls
    back to learning the whole graph -- correctness is never sacrificed,
    only (with tiny probability) the round bound.  Randomness resolution is
    :func:`repro.runtime.resolve_rng` (deterministic by default;
    ``seed=None`` for the advancing shared stream).
    """
    if graph.directed:
        raise ValueError("use girth_directed for directed graphs")
    rng = resolve_rng(rng, seed)
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    cutoff = cutoff if cutoff is not None else default_cycle_length_cutoff()

    # Every node announces its degree; the edge count is then global info.
    degrees = [int(graph.adjacency[v].sum()) if v < n else 0 for v in range(clique.n)]
    received = clique.broadcast(degrees, words=1, phase="girth/degrees")
    m = sum(received[0]) // 2

    if m <= edge_threshold(n, cutoff):
        value = _learn_graph_and_solve(clique, graph)
        return RunResult(
            value=value,
            rounds=clique.rounds,
            clique_size=clique.n,
            meter=clique.meter,
            extras={"branch": "sparse", "edges": m, "cutoff": cutoff},
        )

    a = pad_matrix(graph.adjacency, clique.n)
    # One Boolean session serves every colour-coding trial at every k.
    session = EngineSession(clique, method, BOOLEAN)
    for k in range(3, cutoff + 1):
        budget = (
            trials_per_k
            if trials_per_k is not None
            else max(1, math.ceil(math.exp(k) * math.log(max(2, n))))
        )
        for _ in range(budget):
            colours = rng.integers(0, k, size=clique.n)
            if detect_colourful_cycle(
                clique, a, colours, k, session=session, phase=f"girth/k{k}"
            ):
                return RunResult(
                    value=k,
                    rounds=clique.rounds,
                    clique_size=clique.n,
                    meter=clique.meter,
                    extras={"branch": "dense", "edges": m, "cutoff": cutoff},
                )
    # All detections missed (w.p. n^{-Omega(1)}): fall back to learning the
    # graph so the returned girth is always correct.
    value = _learn_graph_and_solve(clique, graph)
    return RunResult(
        value=value,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"branch": "dense-fallback", "edges": m, "cutoff": cutoff},
    )


def _learn_graph_and_solve(clique: CongestedClique, graph: Graph) -> int:
    """Replicate the edge list to everyone; each node solves locally.

    Runs on the array-native
    :meth:`~repro.clique.model.CongestedClique.allgather_rows` -- edges move
    as one ``(m, 2)`` record array instead of per-edge tuples, at the
    bit-identical charges of ``allgather_records`` (equivalence-tested).
    """
    records = []
    for v in range(clique.n):
        if v < graph.n:
            up = graph.neighbors(v)
            up = up[up > v].astype(np.int64)
        else:
            up = np.zeros(0, dtype=np.int64)
        rec = np.empty((up.shape[0], 2), dtype=np.int64)
        rec[:, 0] = v
        rec[:, 1] = up
        records.append(rec)
    all_edges = clique.allgather_rows(
        records, words_per_record=1, phase="girth/learn-graph"
    )
    local = Graph.from_edges(graph.n, all_edges)
    return girth_reference(local)


def girth_directed(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 16: the directed girth in ``O~(n^rho)`` rounds."""
    if not graph.directed:
        raise ValueError("use girth_undirected for undirected graphs")
    n = graph.n
    clique = clique or make_clique(n, method, mode=mode)
    session = EngineSession(clique, method, BOOLEAN)
    a = pad_matrix(graph.adjacency, clique.n)

    def has_cycle(b: np.ndarray) -> bool:
        local = [bool(b[v, v]) for v in range(clique.n)]
        return or_broadcast(clique, local, phase="girth-dir/diag")

    products = 0
    if has_cycle(a):  # girth 1 would be a self-loop; Graph forbids them,
        # but B(1) = A keeps the search uniform.
        return _finish(clique, 1, products)

    # Doubling: B(2^s) until a cycle shows or the powers exceed n (acyclic).
    powers = {0: a}  # powers[s] = B(2^s)
    s = 0
    while True:
        b_next = _bool_or_a(
            session.square(powers[s], phase="girth-dir/double"), a
        )
        products += 1
        s += 1
        powers[s] = b_next
        if has_cycle(b_next):
            break
        if (1 << s) >= n:
            return _finish(clique, INF, products)

    # Binary search in (2^{s-1}, 2^s]: grow `cur` by decreasing powers while
    # the composition stays cycle-free; the girth is cur + 1.
    cur = 1 << (s - 1)
    b_cur = powers[s - 1]
    for step in range(s - 2, -1, -1):
        candidate = _bool_or_a(
            session.multiply(b_cur, powers[step], phase="girth-dir/search"), a
        )
        products += 1
        if not has_cycle(candidate):
            cur += 1 << step
            b_cur = candidate
    return _finish(clique, cur + 1, products)


def _bool_or_a(b: np.ndarray, a: np.ndarray) -> np.ndarray:
    return ((b + a) > 0).astype(np.int64)


def _finish(clique: CongestedClique, value: int, products: int) -> RunResult:
    return RunResult(
        value=value,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"boolean_products": products},
    )


__all__ = [
    "girth_undirected",
    "girth_directed",
    "default_cycle_length_cutoff",
    "edge_threshold",
]
