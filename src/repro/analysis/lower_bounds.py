"""Communication lower bounds (paper §4, Corollaries 22-24).

The §4 results bound the per-node communication of clique implementations:

* Corollary 22: any implementation of the trivial ``Theta(n^3)`` matmul
  (and any min-plus-only APSP) has a node sending or receiving
  ``Omega(n^2 / P^{2/3})`` entries with ``P = n`` processors, i.e.
  ``Omega(n^{4/3})`` words -- ``Omega~(n^{1/3})`` rounds.
* Corollary 23: any Strassen-like ``Omega(n^sigma)`` algorithm has a node
  communicating ``Omega(n^{2 - 2/sigma})`` values -- ``Omega~(n^{1-2/sigma})``
  rounds.

These are *floors* for our implementations: the benchmark harness checks
that the measured max per-node word loads sit above the floor (sanity: the
simulation is not cheating) and within a small constant of it (the §2
algorithms are optimal implementations of their circuits, the sense in
which the paper calls Theorem 1 "essentially optimal").
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from repro.clique.accounting import CostMeter


def semiring_words_floor(n: int) -> int:
    """Corollary 22 floor: ``n^2 / P^{2/3}`` entries per node at ``P = n``."""
    return math.ceil(n**2 / n ** (2.0 / 3.0))


def strassen_like_words_floor(n: int, sigma: float) -> int:
    """Corollary 23 floor: ``n^{2 - 2/sigma}`` values at some node."""
    return math.ceil(n ** (2.0 - 2.0 / sigma))


def rounds_floor_from_words(words: int, n: int) -> int:
    """Words-per-node to rounds: a node moves at most ``n - 1`` words/round."""
    return math.ceil(words / max(1, n - 1))


@dataclass(frozen=True)
class LowerBoundCheck:
    """Measured-vs-floor comparison for one algorithm run."""

    name: str
    floor_words: int
    measured_max_node_words: int

    @property
    def satisfied(self) -> bool:
        """The measurement must sit on or above the information floor."""
        return self.measured_max_node_words >= self.floor_words

    @property
    def overhead(self) -> float:
        """How far above the floor the implementation sits (1.0 = tight)."""
        if self.floor_words == 0:
            return float("inf")
        return self.measured_max_node_words / self.floor_words


def check_meter_against_floor(
    name: str, meter: CostMeter, floor_words: int
) -> LowerBoundCheck:
    """Compare a run's total max per-node traffic against a §4 floor.

    Sums the per-phase maxima (an upper bound on the true per-node total,
    adequate for a floor check since phases are sequential).
    """
    measured = sum(
        max(p.max_send_words, p.max_recv_words) for p in meter.phases
    )
    return LowerBoundCheck(
        name=name, floor_words=floor_words, measured_max_node_words=measured
    )


__all__ = [
    "semiring_words_floor",
    "strassen_like_words_floor",
    "rounds_floor_from_words",
    "LowerBoundCheck",
    "check_meter_against_floor",
]
