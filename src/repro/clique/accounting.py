"""Round/message/word accounting for the congested-clique simulator.

The congested clique charges one synchronous *round* for every node sending
one ``O(log n)``-bit message to every other node.  The unit of accounting is
the *word*: a payload of ``w`` words from ``u`` to ``v`` occupies the directed
link ``(u, v)`` for ``w`` rounds if sent directly, and contributes ``w`` to
``u``'s send load and ``v``'s receive load if relayed.

Every communication primitive charges exactly one :class:`PhaseCost` to the
meter, so an algorithm's total round count decomposes into a per-phase
breakdown that mirrors the step structure of the paper's algorithm
descriptions (e.g. "Step 1: Distributing the entries").

**The meter stack (PR 10).**  Charging is no longer hard-wired to one
:class:`CostMeter`: the simulator owns a :class:`MeterStack` and every
charge fans out to all registered *observers*.  An observer is anything
with an ``observe(cost, traffic)`` method; :class:`CostMeter` itself is
one (it ignores ``traffic``), and stays observer #0 of every clique so the
abstract round bill is bit-identical to the pre-stack behaviour.  Further
observers ride along without touching the primitives: the fault layer's
abstract (fault-free) meter, and the :mod:`repro.netsim` transport meter,
which declares ``needs_traffic`` and receives a structured
:class:`PhaseTraffic` record -- the actual per-piece routing metadata of
the charged exchange -- next to every cost.
"""

from __future__ import annotations

from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any, Iterator, Protocol, runtime_checkable

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (typing only)
    import numpy as np

    from repro.clique.scheduling import RelaySchedule


@dataclass(frozen=True)
class PhaseCost:
    """Cost of one communication phase (one primitive invocation).

    Attributes:
        phase: human-readable phase label, e.g. ``"semiring3d/step1"``.
        primitive: which primitive charged this cost (``broadcast``, ``send``,
            ``route``, ...).
        rounds: synchronous rounds consumed by the phase.
        words: total words shipped across all links during the phase.
        payloads: number of logical payload messages (one payload may span
            many words).
        max_send_words: maximum, over nodes, of words sent by that node.
        max_recv_words: maximum, over nodes, of words received by that node.
    """

    phase: str
    primitive: str
    rounds: int
    words: int
    payloads: int
    max_send_words: int
    max_recv_words: int

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable form (plain JSON scalars)."""
        return {
            "phase": self.phase,
            "primitive": self.primitive,
            "rounds": int(self.rounds),
            "words": int(self.words),
            "payloads": int(self.payloads),
            "max_send_words": int(self.max_send_words),
            "max_recv_words": int(self.max_recv_words),
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "PhaseCost":
        """Inverse of :meth:`to_dict` (round-trip tested)."""
        return cls(
            phase=str(data["phase"]),
            primitive=str(data["primitive"]),
            rounds=int(data["rounds"]),
            words=int(data["words"]),
            payloads=int(data["payloads"]),
            max_send_words=int(data["max_send_words"]),
            max_recv_words=int(data["max_recv_words"]),
        )


@dataclass(frozen=True)
class PhaseTraffic:
    """Structured routing metadata for one charged phase.

    What the transport cost model (:mod:`repro.netsim`) needs that the
    flattened :class:`PhaseCost` aggregates no longer carry: the actual
    per-piece source/destination/width vectors of the exchange, whether it
    shipped through the Lenzen relay construction, and (in EXACT mode) the
    materialised relay schedule itself.

    Attributes:
        n: clique size the exchange ran on.
        kind: ``"route"`` / ``"send"`` / ``"broadcast"`` -- the logical
            shape of the exchange.
        src: ``(P,)`` int64 per-piece source node ids.  For broadcasts this
            is ``arange(n)`` (one entry per broadcasting node).
        dst: ``(P,)`` int64 per-piece destination ids, or ``None`` for
            broadcasts (every node addresses all others).
        widths: ``(P,)`` int64 words per piece (per broadcasting node for
            broadcasts).
        relayed: whether the exchange ships through the two-hop Lenzen
            relay construction (``route``) rather than direct links.
        schedule: the materialised, validated
            :class:`~repro.clique.scheduling.RelaySchedule` when the clique
            runs in EXACT mode (``None`` in FAST mode -- the transport
            model then uses the oblivious balanced-spread closed form).
    """

    n: int
    kind: str
    src: "np.ndarray"
    dst: "np.ndarray | None"
    widths: "np.ndarray"
    relayed: bool = False
    schedule: "RelaySchedule | None" = None


@runtime_checkable
class CostObserver(Protocol):
    """Anything a :class:`MeterStack` can fan a charge out to."""

    def observe(self, cost: PhaseCost, traffic: PhaseTraffic | None) -> None:
        """Record one charged phase (``traffic`` may be ``None``)."""


@dataclass
class CostMeter:
    """Accumulates :class:`PhaseCost` records for one simulation run."""

    phases: list[PhaseCost] = field(default_factory=list)

    #: Cost meters never consume routing metadata; the stack skips building
    #: :class:`PhaseTraffic` records unless some observer sets this.
    needs_traffic = False

    def charge(self, cost: PhaseCost) -> None:
        """Record the cost of one completed phase."""
        if cost.rounds < 0:
            raise ValueError(f"negative round charge: {cost!r}")
        self.phases.append(cost)

    def observe(self, cost: PhaseCost, traffic: PhaseTraffic | None = None) -> None:
        """Observer protocol: a plain meter charges the cost, ignores traffic."""
        self.charge(cost)

    @property
    def rounds(self) -> int:
        """Total rounds across all phases charged so far."""
        return sum(p.rounds for p in self.phases)

    @property
    def words(self) -> int:
        """Total words shipped across all phases charged so far."""
        return sum(p.words for p in self.phases)

    @property
    def payloads(self) -> int:
        """Total logical payload messages across all phases."""
        return sum(p.payloads for p in self.phases)

    @property
    def max_node_load(self) -> int:
        """Largest per-node send or receive load seen in any single phase."""
        if not self.phases:
            return 0
        return max(max(p.max_send_words, p.max_recv_words) for p in self.phases)

    def reset(self) -> None:
        """Discard all recorded phases."""
        self.phases.clear()

    def snapshot(self) -> int:
        """Return the current number of recorded phases.

        Use together with :meth:`rounds_since` to measure a sub-computation:

        >>> meter = CostMeter()
        >>> mark = meter.snapshot()
        >>> # ... run something that charges the meter ...
        >>> meter.rounds_since(mark)
        0
        """
        return len(self.phases)

    def rounds_since(self, mark: int) -> int:
        """Rounds charged since a :meth:`snapshot` mark."""
        return sum(p.rounds for p in self.phases[mark:])

    def words_since(self, mark: int) -> int:
        """Words charged since a :meth:`snapshot` mark."""
        return sum(p.words for p in self.phases[mark:])

    def by_phase_prefix(self) -> dict[str, int]:
        """Aggregate rounds by the phase-label prefix before the first ``/``.

        The matmul algorithms label their phases ``"<algo>/<step>"``; this
        groups the step costs back into per-algorithm totals.
        """
        out: dict[str, int] = {}
        for p in self.phases:
            key = p.phase.split("/", 1)[0]
            out[key] = out.get(key, 0) + p.rounds
        return out

    def to_dict(self) -> dict[str, Any]:
        """Machine-readable meter summary (the ``--json`` CLI payload).

        Totals plus the full per-phase breakdown; everything is a plain
        JSON scalar, and :meth:`from_dict` restores an equal meter.
        """
        return {
            "rounds": int(self.rounds),
            "words": int(self.words),
            "payloads": int(self.payloads),
            "max_node_load": int(self.max_node_load),
            "phases": [p.to_dict() for p in self.phases],
        }

    @classmethod
    def from_dict(cls, data: dict[str, Any]) -> "CostMeter":
        """Inverse of :meth:`to_dict` (totals are recomputed, not trusted)."""
        return cls(phases=[PhaseCost.from_dict(p) for p in data["phases"]])

    def report(self) -> str:
        """Human-readable per-phase cost table."""
        lines = [
            f"{'phase':40s} {'prim':10s} {'rounds':>8s} {'words':>12s} "
            f"{'maxsend':>9s} {'maxrecv':>9s}"
        ]
        for p in self.phases:
            lines.append(
                f"{p.phase:40s} {p.primitive:10s} {p.rounds:8d} {p.words:12d} "
                f"{p.max_send_words:9d} {p.max_recv_words:9d}"
            )
        lines.append(f"{'TOTAL':40s} {'':10s} {self.rounds:8d} {self.words:12d}")
        return "\n".join(lines)


class MeterStack:
    """A composable stack of charge observers (the metering seam).

    The simulator charges every :class:`PhaseCost` here instead of on a
    hard-wired meter; the stack fans the charge (and the optional
    :class:`PhaseTraffic` record) out to every registered observer in
    registration order.  Observer #0 is always the clique's primary
    :class:`CostMeter`, so the abstract round/word bill is bit-identical
    to the single-meter behaviour by construction -- additional observers
    (abstract fault-free meters, transport cost models) are strictly
    read-only riders and can never change what observer #0 sees.
    """

    def __init__(self, *observers: CostObserver) -> None:
        self._observers: list[CostObserver] = list(observers)
        self._muted: list[CostObserver] = []

    @property
    def observers(self) -> tuple[CostObserver, ...]:
        """The registered observers, in fan-out order (muted ones included)."""
        return tuple(self._observers)

    def add_observer(self, observer: CostObserver) -> CostObserver:
        """Register ``observer`` at the end of the fan-out order."""
        if not callable(getattr(observer, "observe", None)):
            raise TypeError(
                f"meter-stack observers need an observe(cost, traffic) "
                f"method, got {observer!r}"
            )
        self._observers.append(observer)
        return observer

    def remove_observer(self, observer: CostObserver) -> None:
        """Unregister ``observer`` (identity match; missing is an error)."""
        for i, existing in enumerate(self._observers):
            if existing is observer:
                del self._observers[i]
                return
        raise ValueError(f"{observer!r} is not a registered observer")

    @contextmanager
    def muted(self, observer: CostObserver) -> Iterator[None]:
        """Temporarily stop fanning charges out to ``observer``.

        The encoded collectives use this to keep their abstract meter
        phase-for-phase equal to a fault-free run: while an encoded
        exchange ships (and bills its redundancy on the actual meter and
        any transport observers), the abstract meter is muted and charged
        the fault-free cost by hand.  Re-entrant and exception-safe.
        """
        self._muted.append(observer)
        try:
            yield
        finally:
            self._muted.remove(observer)

    @property
    def wants_traffic(self) -> bool:
        """Whether any live (non-muted) observer consumes routing metadata.

        The simulator only builds :class:`PhaseTraffic` records (which may
        need per-pair demand analysis) when this is set, so the plain
        round-metering path stays exactly as cheap as before the stack.
        """
        return any(
            getattr(obs, "needs_traffic", False)
            for obs in self._observers
            if not any(obs is m for m in self._muted)
        )

    def charge(self, cost: PhaseCost, traffic: PhaseTraffic | None = None) -> None:
        """Fan one charged phase out to every live observer."""
        for obs in self._observers:
            if any(obs is m for m in self._muted):
                continue
            obs.observe(cost, traffic)


__all__ = [
    "PhaseCost",
    "PhaseTraffic",
    "CostObserver",
    "CostMeter",
    "MeterStack",
]
