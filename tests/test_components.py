"""Tests for connected components via Boolean closure."""

from __future__ import annotations

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.distances.components import components_reference, connected_components
from repro.graphs import Graph, cycle_graph, gnp_random_graph, random_tree


class TestConnectedComponents:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.02, max_value=0.3),
    )
    def test_random_graphs(self, seed, p):
        g = gnp_random_graph(18, p, seed=seed)
        result = connected_components(g)
        assert np.array_equal(result.value, components_reference(g))

    def test_disjoint_pieces(self):
        g = Graph.from_edges(7, [(0, 1), (1, 2), (3, 4), (5, 6)])
        result = connected_components(g)
        assert result.extras["component_count"] == 3
        assert result.value[2] == 0
        assert result.value[4] == 3
        assert result.value[6] == 5

    def test_connected_graph_single_component(self):
        g = random_tree(20, seed=1)
        result = connected_components(g)
        assert result.extras["component_count"] == 1
        assert (result.value == 0).all()

    def test_isolated_nodes_are_own_components(self):
        g = Graph.from_edges(5, [(0, 1)])
        result = connected_components(g)
        assert result.extras["component_count"] == 4

    def test_directed_uses_weak_components(self):
        g = Graph.from_edges(4, [(0, 1), (2, 1)], directed=True)
        result = connected_components(g)
        assert np.array_equal(result.value, components_reference(g))
        assert result.extras["component_count"] == 2

    def test_cycle_one_component(self):
        result = connected_components(cycle_graph(12))
        assert result.extras["component_count"] == 1

    def test_semiring_engine(self):
        g = gnp_random_graph(20, 0.1, seed=4)
        result = connected_components(g, method="semiring")
        assert np.array_equal(result.value, components_reference(g))
