"""Tests for matrix powers, Boolean-product witnesses and load reports."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, PLUS_TIMES
from repro.clique import CongestedClique
from repro.constants import INF
from repro.matmul.boolean_witnesses import encode_boolean, find_boolean_witnesses
from repro.matmul.powers import closure, matrix_power


class TestMatrixPower:
    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=1, max_value=6),
    )
    def test_integer_powers_match_numpy(self, seed, k):
        rng = np.random.default_rng(seed)
        n = 8
        a = rng.integers(-3, 4, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(
            matrix_power(clique, a, k), np.linalg.matrix_power(a, k)
        )

    def test_power_zero_identities(self):
        n = 8
        clique = CongestedClique(n)
        mat = np.ones((n, n), dtype=np.int64)
        ident_int = matrix_power(clique, mat, 0, PLUS_TIMES)
        assert np.array_equal(ident_int, np.eye(n, dtype=np.int64))
        ident_minplus = matrix_power(clique, mat, 0, MIN_PLUS)
        assert (np.diag(ident_minplus) == 0).all()
        assert ident_minplus[0, 1] == INF
        ident_maxmin = matrix_power(clique, mat, 0, MAX_MIN)
        assert (np.diag(ident_maxmin) == INF).all()

    def test_minplus_power_is_bounded_hop_distance(self):
        # W^k over min-plus = shortest distances using <= k edges.
        n = 8
        w = np.full((n, n), INF, dtype=np.int64)
        np.fill_diagonal(w, 0)
        for v in range(n - 1):
            w[v, v + 1] = 1  # a path graph
        clique = CongestedClique(n)
        p4 = matrix_power(clique, w, 4, MIN_PLUS)
        assert p4[0, 4] == 4
        assert p4[0, 5] == INF

    def test_boolean_power_reaches(self):
        n = 8
        a = np.zeros((n, n), dtype=np.int64)
        for v in range(n - 1):
            a[v, v + 1] = 1
        clique = CongestedClique(n)
        p3 = matrix_power(clique, a, 3, BOOLEAN)
        assert p3[0, 3] == 1
        assert p3[0, 2] == 0  # exactly length 3, not <=

    def test_negative_exponent_rejected(self):
        clique = CongestedClique(8)
        with pytest.raises(ValueError):
            matrix_power(clique, np.eye(8, dtype=np.int64), -1)

    def test_log_many_products(self):
        n = 8
        clique = CongestedClique(n)
        a = np.eye(n, dtype=np.int64)
        matrix_power(clique, a, 13)
        # Each semiring product charges two phases (steps 1 and 3); binary
        # exponentiation for 13 uses 3 squarings + 2 multiplies = 5 products.
        assert len(clique.meter.phases) == 2 * 5


class TestClosure:
    def test_boolean_closure_is_reachability(self):
        n = 8
        a = np.zeros((n, n), dtype=np.int64)
        a[0, 1] = a[1, 2] = a[2, 3] = a[5, 6] = 1
        clique = CongestedClique(n)
        reach = closure(clique, a, BOOLEAN)
        assert reach[0, 3] == 1
        assert reach[0, 5] == 0
        assert reach[5, 6] == 1

    def test_minplus_closure_is_apsp(self, rng):
        from repro.graphs import apsp_reference, random_weighted_digraph

        g = random_weighted_digraph(8, 0.35, 9, seed=5)
        w = g.weight_matrix()
        clique = CongestedClique(8)
        dist = closure(clique, w, MIN_PLUS)
        ref = apsp_reference(g)
        off_diag = ~np.eye(8, dtype=bool)
        assert np.array_equal(dist[off_diag], ref[off_diag])


class TestBooleanWitnesses:
    def test_encoding(self):
        b = np.array([[1, 0]], dtype=np.int64)
        enc = encode_boolean(b)
        assert enc[0, 0] == 0
        assert enc[0, 1] == INF

    @pytest.mark.parametrize("seed", [0, 1])
    def test_witnesses_valid(self, seed):
        rng = np.random.default_rng(seed)
        n = 16
        s = (rng.random((n, n)) < 0.4).astype(np.int64)
        t = (rng.random((n, n)) < 0.4).astype(np.int64)
        clique = CongestedClique(n)
        product, result = find_boolean_witnesses(
            clique, s, t, rng=np.random.default_rng(seed)
        )
        assert np.array_equal(product, ((s @ t) > 0).astype(np.int64))
        assert result.resolved.all()
        for u in range(n):
            for v in range(n):
                if product[u, v]:
                    k = int(result.witnesses[u, v])
                    assert s[u, k] == 1 and t[k, v] == 1
                else:
                    assert result.witnesses[u, v] == -1


class TestLoadReport:
    def test_balance_of_semiring_run(self, rng):
        from repro.analysis.loads import format_load_report, load_report
        from repro.matmul.semiring3d import semiring_matmul

        n = 27
        s = rng.integers(0, 2, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        semiring_matmul(clique, s, s)
        loads = load_report(clique.meter, n)
        assert len(loads) == 2
        for load in loads:
            assert load.balance == pytest.approx(1.0, abs=0.1)
        text = format_load_report(loads)
        assert "balance" in text
        assert "step1" in text

    def test_empty_meter(self):
        from repro.analysis.loads import load_report
        from repro.clique.accounting import CostMeter

        assert load_report(CostMeter(), 8) == []
