"""Cycle counting via matrix powers (paper §3.1, Corollary 2).

Triangles (Itai-Rodeh [42]): the number of triangles is ``tr(A^3)/6``
(undirected) or ``tr(A^3)/3`` (directed).  4-cycles (Alon-Yuster-Zwick [6]):

    undirected:  c4 = [tr(A^4) - sum_v (2 deg(v)^2 - deg(v))] / 8
    directed:    c4 = [tr(A^4) - sum_v (2 delta(v)^2 - delta(v))] / 4

where ``delta(v)`` counts mutual neighbours.  As an extension we include the
5-cycle formula from the same paper (the paper notes such formulas exist for
k in {5, 6, 7} and omits them):

    c5 = [tr(A^5) - 5 tr(A^3) - 5 sum_v (deg(v) - 2) (A^3)_vv] / 10.

All of these need one or two distributed matrix products plus local work and
``O(1)`` broadcast/transpose rounds, so the round complexity is dominated by
the product: ``O(n^rho)`` with the §2.2 engine -- the Table 1 rows "triangle
counting" and "4-cycle counting".

Traces are computed without ever centralising a matrix: node ``v``'s
diagonal entry ``(A^k)_vv`` is an inner product of its own row with a column
obtained through the one-round transpose primitive, and the partial traces
are combined with a single broadcast.
"""

from __future__ import annotations

import numpy as np

from repro.clique.messages import words_for_value
from repro.clique.model import CongestedClique, ScheduleMode
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import (
    RunResult,
    make_clique,
    pad_matrix,
    sum_broadcast,
)


def _transpose_matrix(
    clique: CongestedClique, matrix: np.ndarray, phase: str
) -> np.ndarray:
    """Distribute column ``v`` to node ``v`` via the transpose primitive."""
    n = clique.n
    max_abs = int(np.max(np.abs(matrix))) if matrix.size else 0
    width = words_for_value(max_abs, clique.word_bits)
    columns = clique.transpose(matrix, words_per_entry=width, phase=phase)
    return np.array(columns, dtype=np.int64)


def count_triangles(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 2: the number of triangles, in ``O(n^rho)`` rounds."""
    clique = clique or make_clique(graph.n, method, mode=mode)
    session = EngineSession(clique, method)
    a = pad_matrix(graph.adjacency, clique.n)
    a_sq = session.square(a, phase="triangles/A2")
    if graph.directed:
        columns = _transpose_matrix(clique, a, phase="triangles/transpose-A")
        local = [int(a_sq[v] @ columns[v]) for v in range(clique.n)]
        divisor = 3
    else:
        local = [int(a_sq[v] @ a[v]) for v in range(clique.n)]
        divisor = 6
    trace = sum_broadcast(clique, local, phase="triangles/trace", words=3)
    return RunResult(
        value=trace // divisor,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"trace_a3": trace, "method": method},
    )


def count_four_cycles(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Corollary 2: the number of 4-cycles, in ``O(n^rho)`` rounds."""
    clique = clique or make_clique(graph.n, method, mode=mode)
    session = EngineSession(clique, method)
    a = pad_matrix(graph.adjacency, clique.n)
    a_sq = session.square(a, phase="four-cycles/A2")
    if graph.directed:
        sq_columns = _transpose_matrix(
            clique, a_sq, phase="four-cycles/transpose-A2"
        )
        a_columns = _transpose_matrix(clique, a, phase="four-cycles/transpose-A")
        local_tr = [int(a_sq[v] @ sq_columns[v]) for v in range(clique.n)]
        # delta(v): nodes u with both (u, v) and (v, u) present.
        local_corr = []
        for v in range(clique.n):
            delta = int((a[v] * a_columns[v]).sum())
            local_corr.append(2 * delta * delta - delta)
        divisor = 4
    else:
        local_tr = [int(a_sq[v] @ a_sq[v]) for v in range(clique.n)]
        local_corr = []
        for v in range(clique.n):
            deg = int(a[v].sum())
            local_corr.append(2 * deg * deg - deg)
        divisor = 8
    trace4 = sum_broadcast(clique, local_tr, phase="four-cycles/trace", words=4)
    correction = sum_broadcast(
        clique, local_corr, phase="four-cycles/correction", words=4
    )
    return RunResult(
        value=(trace4 - correction) // divisor,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"trace_a4": trace4, "correction": correction, "method": method},
    )


def count_five_cycles(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Extension: undirected 5-cycle counting (Alon-Yuster-Zwick formula).

    Two distributed products (``A^2``, then ``A^3 = A^2 A``), one transpose
    and two broadcasts: still ``O(n^rho)`` rounds.
    """
    if graph.directed:
        raise ValueError("the 5-cycle trace formula implemented is undirected-only")
    clique = clique or make_clique(graph.n, method, mode=mode)
    session = EngineSession(clique, method)
    a = pad_matrix(graph.adjacency, clique.n)
    a_sq = session.square(a, phase="five-cycles/A2")
    a_cu = session.multiply(a_sq, a, phase="five-cycles/A3")
    cu_columns = _transpose_matrix(clique, a_cu, phase="five-cycles/transpose-A3")
    local_tr5 = [int(a_sq[v] @ cu_columns[v]) for v in range(clique.n)]
    local_mix = []
    for v in range(clique.n):
        deg = int(a[v].sum())
        diag3 = int(a_cu[v, v])
        local_mix.append(5 * diag3 + 5 * (deg - 2) * diag3)
    trace5 = sum_broadcast(clique, local_tr5, phase="five-cycles/trace", words=5)
    mix = sum_broadcast(clique, local_mix, phase="five-cycles/mix", words=5)
    # tr(A^3) = sum_v (A^3)_vv appears inside `mix` with coefficient 5.
    return RunResult(
        value=(trace5 - mix) // 10,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"trace_a5": trace5, "method": method},
    )


__all__ = ["count_triangles", "count_four_cycles", "count_five_cycles"]
