"""Tests for the naive baseline matmul and ring-op width accounting."""

from __future__ import annotations

import numpy as np
import pytest

from repro.algebra.semirings import MIN_PLUS, PLUS_TIMES
from repro.clique import CongestedClique
from repro.constants import INF
from repro.matmul.naive import broadcast_matmul
from repro.matmul.ringops import INTEGER_RING, POLYNOMIAL_RING


class TestNaiveMatmul:
    def test_integer_product(self, rng):
        n = 12
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        assert np.array_equal(broadcast_matmul(clique, s, t), s @ t)

    def test_rounds_are_linear(self, rng):
        rounds = []
        for n in (8, 16, 32):
            s = rng.integers(0, 2, (n, n), dtype=np.int64)
            clique = CongestedClique(n)
            broadcast_matmul(clique, s, s)
            rounds.append(clique.rounds)
        assert rounds == [8, 16, 32]

    def test_minplus_with_witnesses(self, rng):
        n = 10
        s = rng.integers(0, 20, (n, n), dtype=np.int64)
        t = rng.integers(0, 20, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        product, witness = broadcast_matmul(
            clique, s, t, MIN_PLUS, with_witnesses=True
        )
        assert np.array_equal(product, MIN_PLUS.matmul(s, t))
        for u in range(n):
            for v in range(n):
                k = int(witness[u, v])
                assert s[u, k] + t[k, v] == product[u, v]

    def test_shape_validation(self, rng):
        clique = CongestedClique(8)
        with pytest.raises(ValueError):
            broadcast_matmul(
                clique,
                rng.integers(0, 2, (4, 4), dtype=np.int64),
                rng.integers(0, 2, (4, 4), dtype=np.int64),
            )

    def test_semiring3d_beats_naive_at_scale(self, rng):
        from repro.matmul.semiring3d import semiring_matmul

        n = 64
        s = rng.integers(0, 2, (n, n), dtype=np.int64)
        fast = CongestedClique(n)
        semiring_matmul(fast, s, s)
        slow = CongestedClique(n)
        broadcast_matmul(slow, s, s)
        assert fast.rounds < slow.rounds


class TestRingOps:
    def test_integer_entry_words(self):
        arr = np.array([[3, -(2**40)]], dtype=np.int64)
        assert INTEGER_RING.entry_words(arr, 16) == 3
        assert INTEGER_RING.array_words(arr, 16) == 6

    def test_integer_matmul(self, rng):
        a = rng.integers(-5, 6, (4, 4), dtype=np.int64)
        b = rng.integers(-5, 6, (4, 4), dtype=np.int64)
        assert np.array_equal(INTEGER_RING.matmul(a, b), a @ b)

    def test_polynomial_entry_words_include_degree(self):
        arr = np.ones((2, 2, 5), dtype=np.int64)
        assert POLYNOMIAL_RING.entry_words(arr, 16) == 5
        assert POLYNOMIAL_RING.array_words(arr, 16) == 4 * 5

    def test_polynomial_matmul_is_convolution(self, rng):
        from repro.algebra.polynomial import poly_matmul

        a = rng.integers(0, 2, (3, 3, 2), dtype=np.int64)
        b = rng.integers(0, 2, (3, 3, 3), dtype=np.int64)
        assert np.array_equal(POLYNOMIAL_RING.matmul(a, b), poly_matmul(a, b))

    def test_empty_arrays_are_free(self):
        assert INTEGER_RING.array_words(np.zeros((0, 3), dtype=np.int64), 16) == 0
