"""Spanner + MST workloads on the session API.

The equivalence suites the tentpole promises:

* the distributed Baswana--Sen spanner is pinned *edge-for-edge* against a
  centralised oracle consuming identical shared randomness, and its
  ``(2k-1)`` stretch bound is property-tested against the centralised APSP
  oracle (and NetworkX, when importable);
* the MST skeleton is pinned edge-identical against Kruskal under the
  encoded strict order (the MST is unique there, so KKT sampling cannot
  change the answer), with weight equality double-checked against NetworkX;
* serial and sharded executors must agree bit-for-bit on values, rounds
  and every meter entry;
* the constant-round phases of the skeleton (candidate broadcasts, label
  announcements, the F-light gather) are asserted constant across input
  sizes -- the O(1)-round claim the Jurdzinski--Nowicki structure is
  about.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique.executor import SERIAL_EXECUTOR, ShardedExecutor
from repro.clique.model import CongestedClique
from repro.engine import EngineBindingError, required_clique_size
from repro.graphs import Graph
from repro.graphs.generators import (
    cycle_graph,
    gnp_random_graph,
    random_weighted_graph,
)
from repro.graphs.reference import apsp_reference
from repro.spanning import (
    baswana_sen_reference,
    build_spanner,
    minimum_spanning_forest,
    mst_reference,
    mst_weight,
    spanner_stretch,
)
from repro.spanning.mst import decode_edge, encode_weights

nx = pytest.importorskip("networkx", reason="NetworkX oracle unavailable")


def _nx_graph(graph: Graph):
    g = nx.Graph()
    g.add_nodes_from(range(graph.n))
    w = graph.weight_matrix()
    for u, v in zip(*np.nonzero(np.triu(graph.adjacency))):
        g.add_edge(int(u), int(v), weight=int(w[u, v]))
    return g


# --------------------------------------------------------------------- #
# Spanner
# --------------------------------------------------------------------- #


class TestSpannerOracle:
    @pytest.mark.parametrize("method", ["semiring", "naive"])
    @pytest.mark.parametrize("k", [2, 3])
    def test_matches_reference_edge_for_edge(self, method, k):
        g = random_weighted_graph(18, 0.4, max_weight=25, seed=11)
        result = build_spanner(g, k, method=method, seed=5)
        reference = baswana_sen_reference(g, k, seed=5)
        assert np.array_equal(result.value, reference)

    def test_engines_agree_on_rows_and_edges(self):
        g = random_weighted_graph(20, 0.3, max_weight=40, seed=2)
        a = build_spanner(g, 3, method="semiring", seed=9)
        b = build_spanner(g, 3, method="naive", seed=9)
        assert np.array_equal(a.value, b.value)

    def test_k1_returns_the_graph(self):
        g = random_weighted_graph(12, 0.5, max_weight=9, seed=0)
        result = build_spanner(g, 1, seed=0)
        assert np.array_equal(result.value, g.adjacency)

    def test_deterministic_by_default(self):
        g = gnp_random_graph(15, 0.3, seed=4)
        first = build_spanner(g, 2)
        second = build_spanner(g, 2)
        assert np.array_equal(first.value, second.value)
        assert first.rounds == second.rounds

    def test_rejects_directed_and_bilinear(self):
        directed = Graph.from_edges(4, [(0, 1), (1, 2)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            build_spanner(directed, 2)
        g = gnp_random_graph(9, 0.4, seed=1)
        with pytest.raises(EngineBindingError):
            build_spanner(g, 2, method="bilinear")
        with pytest.raises(ValueError, match="k must be >= 1"):
            build_spanner(g, 0)


class TestSpannerStretch:
    @pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
    @pytest.mark.parametrize("k", [2, 3])
    def test_stretch_bound_weighted(self, seed, k):
        g = random_weighted_graph(22, 0.35, max_weight=50, seed=seed)
        result = build_spanner(g, k, seed=seed)
        assert result.extras["stretch_bound"] == 2 * k - 1
        assert spanner_stretch(g, result.value) <= 2 * k - 1 + 1e-9

    @pytest.mark.parametrize("seed", [5, 6, 7])
    def test_stretch_bound_unweighted(self, seed):
        g = gnp_random_graph(24, 0.25, seed=seed)
        result = build_spanner(g, 2, seed=seed)
        assert spanner_stretch(g, result.value) <= 3 + 1e-9

    def test_stretch_vs_networkx_shortest_paths(self):
        g = random_weighted_graph(18, 0.4, max_weight=30, seed=13)
        k = 2
        result = build_spanner(g, k, seed=13)
        sub = Graph(
            n=g.n,
            adjacency=result.value,
            weights=np.where(result.value > 0, g.weights, 0),
        )
        lengths = dict(nx.all_pairs_dijkstra_path_length(_nx_graph(sub)))
        w = g.weight_matrix()
        for u, v in zip(*np.nonzero(np.triu(g.adjacency))):
            assert lengths[int(u)][int(v)] <= (2 * k - 1) * int(w[u, v])

    def test_spanner_subgraph_and_size(self):
        # The spanner is a subgraph; on a sparse-ish graph the size stays
        # within a loose multiple of the k n^{1+1/k} expectation.
        g = gnp_random_graph(30, 0.3, seed=8)
        k = 3
        result = build_spanner(g, k, seed=8)
        assert not np.any((result.value > 0) & (g.adjacency == 0))
        bound = 4.0 * k * g.n ** (1.0 + 1.0 / k)
        assert result.extras["spanner_edges"] <= bound

    def test_disconnected_graph(self):
        g = gnp_random_graph(16, 0.08, seed=3)
        result = build_spanner(g, 2, seed=3)
        assert spanner_stretch(g, result.value) <= 3 + 1e-9


# --------------------------------------------------------------------- #
# MST
# --------------------------------------------------------------------- #


class TestMstOracle:
    @pytest.mark.parametrize("method", ["semiring", "naive"])
    @pytest.mark.parametrize("phases", [0, 1, 2])
    def test_matches_kruskal_edge_for_edge(self, method, phases):
        g = random_weighted_graph(18, 0.35, max_weight=40, seed=21)
        result = minimum_spanning_forest(
            g, method=method, seed=3, boruvka_phases=phases
        )
        edges, weight = mst_reference(g)
        assert result.extras["edges"] == edges
        assert result.extras["weight"] == weight

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_weight_matches_networkx(self, seed):
        g = random_weighted_graph(20, 0.3, max_weight=60, seed=seed)
        result = minimum_spanning_forest(g, seed=seed)
        tree = nx.minimum_spanning_tree(_nx_graph(g))
        nx_weight = sum(d["weight"] for _, _, d in tree.edges(data=True))
        assert result.extras["weight"] == nx_weight
        assert mst_weight(g) == nx_weight

    def test_equal_weights_still_unique_under_encoding(self):
        # All weights tie; the endpoint encode makes the order strict, so
        # the distributed run and the oracle still agree edge-for-edge.
        g = gnp_random_graph(16, 0.4, seed=6)
        result = minimum_spanning_forest(g, seed=6)
        edges, weight = mst_reference(g)
        assert result.extras["edges"] == edges
        assert weight == len(edges)  # unit weights

    def test_spanning_forest_on_disconnected_input(self):
        g = gnp_random_graph(18, 0.08, seed=9)
        result = minimum_spanning_forest(g, seed=9)
        edges, weight = mst_reference(g)
        assert result.extras["edges"] == edges
        components = nx.number_connected_components(_nx_graph(g))
        assert len(edges) == g.n - components

    def test_cycle_graph_drops_heaviest_edge(self):
        n = 12
        weights = np.zeros((n, n), dtype=np.int64)
        adj = np.zeros((n, n), dtype=np.int64)
        for i in range(n):
            j = (i + 1) % n
            adj[i, j] = adj[j, i] = 1
            weights[i, j] = weights[j, i] = i + 1
        g = Graph(n=n, adjacency=adj, weights=weights)
        result = minimum_spanning_forest(g, seed=0)
        assert result.extras["weight"] == sum(range(1, n))  # drops weight n

    def test_sampling_probability_does_not_change_answer(self):
        g = random_weighted_graph(16, 0.4, max_weight=20, seed=5)
        edges, _ = mst_reference(g)
        for p in (0.25, 0.5, 1.0):
            result = minimum_spanning_forest(
                g, seed=1, sample_probability=p, boruvka_phases=1
            )
            assert result.extras["edges"] == edges

    def test_input_validation(self):
        directed = Graph.from_edges(4, [(0, 1)], directed=True)
        with pytest.raises(ValueError, match="undirected"):
            minimum_spanning_forest(directed)
        g = gnp_random_graph(8, 0.4, seed=0)
        with pytest.raises(ValueError, match="boruvka_phases"):
            minimum_spanning_forest(g, boruvka_phases=-1)
        with pytest.raises(ValueError, match="sample_probability"):
            minimum_spanning_forest(g, sample_probability=0.0)
        negative = Graph.from_weighted_edges(3, [(0, 1, -2)])
        with pytest.raises(ValueError, match="non-negative"):
            minimum_spanning_forest(negative)
        huge = Graph.from_weighted_edges(3, [(0, 1, 2**60)])
        with pytest.raises(ValueError, match="too large to encode"):
            minimum_spanning_forest(huge)

    def test_encode_decode_roundtrip(self):
        g = random_weighted_graph(13, 0.5, max_weight=90, seed=7)
        enc = encode_weights(g, 27)
        w = g.weight_matrix()
        for u, v in zip(*np.nonzero(g.adjacency)):
            weight, lo, hi = decode_edge(enc[u, v], 27)
            assert weight == w[u, v]
            assert (lo, hi) == (min(u, v), max(u, v))


class TestMstConstantRoundPhases:
    """The O(1)-round pieces of the skeleton, pinned across input sizes.

    The label closures and contraction products scale with ``n`` (they are
    the parts Jurdzinski--Nowicki replace with sketching); the candidate
    broadcasts, label announcements and the F-light gather are the
    constant-round collectives, and their charges must not grow with the
    input.
    """

    @staticmethod
    def _run(n: int, seed: int):
        g = random_weighted_graph(n, 0.3, max_weight=20, seed=seed)
        return minimum_spanning_forest(g, seed=seed, boruvka_phases=1)

    def test_constant_phase_rounds_across_sizes(self):
        small = self._run(16, 2).extras["phase_rounds"]
        large = self._run(40, 2).extras["phase_rounds"]
        # One announcement round per labelling, independent of n.
        assert small["labels_announce"] == large["labels_announce"] == 2
        # One fixed-width candidate broadcast per Boruvka/KKT step.
        assert small["boruvka_candidates"] == large["boruvka_candidates"]
        # The gather is O(R/n) rounds; with R = O(n) survivors that is a
        # constant, not a function of n.
        for rounds in (small["flight_gather"], large["flight_gather"]):
            assert rounds <= 12
        # The n-dependent phases are exactly the closures + contractions.
        assert small["labels_closure"] < large["labels_closure"]

    def test_phase_count_constant(self):
        for n in (12, 24, 36):
            result = self._run(n, 1)
            assert result.extras["phases"] == 2  # 1 Boruvka + 1 KKT


# --------------------------------------------------------------------- #
# Serial vs sharded executors
# --------------------------------------------------------------------- #


@pytest.fixture(scope="module")
def sharded():
    executor = ShardedExecutor(2)
    yield executor
    executor.close()


def _clique_pair(n: int, method: str, sharded_executor):
    size = required_clique_size(n, method)
    return (
        CongestedClique(size, executor=SERIAL_EXECUTOR),
        CongestedClique(size, executor=sharded_executor),
    )


class TestShardedParity:
    def test_spanner_bit_identical(self, sharded):
        g = random_weighted_graph(14, 0.4, max_weight=15, seed=4)
        serial_clique, shard_clique = _clique_pair(14, "semiring", sharded)
        serial = build_spanner(g, 2, clique=serial_clique, seed=8)
        shard = build_spanner(g, 2, clique=shard_clique, seed=8)
        assert np.array_equal(serial.value, shard.value)
        assert serial.rounds == shard.rounds
        assert serial.meter.phases == shard.meter.phases

    def test_mst_bit_identical(self, sharded):
        g = random_weighted_graph(14, 0.35, max_weight=25, seed=6)
        serial_clique, shard_clique = _clique_pair(14, "semiring", sharded)
        serial = minimum_spanning_forest(g, clique=serial_clique, seed=2)
        shard = minimum_spanning_forest(g, clique=shard_clique, seed=2)
        assert np.array_equal(serial.value, shard.value)
        assert serial.rounds == shard.rounds
        assert serial.meter.phases == shard.meter.phases
        assert serial.extras["phase_rounds"] == shard.extras["phase_rounds"]


@pytest.mark.slow
class TestShardedParitySlow:
    """Bigger shard smoke, aligned with the executor-equivalence lane."""

    def test_spanner_and_mst_sharded(self):
        g = random_weighted_graph(40, 0.2, max_weight=40, seed=12)
        with ShardedExecutor(2) as executor:
            size = required_clique_size(40, "semiring")
            serial = build_spanner(
                g, 3, clique=CongestedClique(size, executor=SERIAL_EXECUTOR),
                seed=3,
            )
            shard = build_spanner(
                g, 3, clique=CongestedClique(size, executor=executor), seed=3
            )
            assert np.array_equal(serial.value, shard.value)
            assert serial.rounds == shard.rounds
            serial_mst = minimum_spanning_forest(
                g, clique=CongestedClique(size, executor=SERIAL_EXECUTOR),
                seed=3,
            )
            shard_mst = minimum_spanning_forest(
                g, clique=CongestedClique(size, executor=executor), seed=3
            )
            assert serial_mst.extras["edges"] == shard_mst.extras["edges"]
            assert serial_mst.rounds == shard_mst.rounds


# --------------------------------------------------------------------- #
# Round accounting sanity
# --------------------------------------------------------------------- #


class TestRoundAccounting:
    def test_spanner_charges_products_broadcasts_and_transposes(self):
        g = random_weighted_graph(12, 0.4, max_weight=10, seed=1)
        result = build_spanner(g, 3, seed=1)
        assert set(result.meter.by_phase_prefix()) == {"spanner"}
        labels = {p.phase for p in result.meter.phases}
        assert any(p.endswith("/recluster") for p in labels)
        assert any(p.endswith("/retire") for p in labels)
        assert "spanner/symmetrise" in labels
        # The recluster/retire collectives cost one round each, per level.
        for p in result.meter.phases:
            if p.phase.endswith(("/recluster", "/retire")):
                assert p.rounds == 1

    def test_mst_rounds_split_covers_total(self):
        g = random_weighted_graph(12, 0.4, max_weight=10, seed=2)
        result = minimum_spanning_forest(g, seed=2)
        assert result.rounds == sum(result.extras["phase_rounds"].values())

    def test_spanner_rounds_positive_and_metered(self):
        g = cycle_graph(10)
        result = build_spanner(g, 2, seed=0)
        assert result.rounds == result.meter.rounds
        assert result.rounds > 0

    def test_mst_vs_apsp_reference_connectivity(self):
        # The MSF connects exactly the pairs the graph connects.
        g = gnp_random_graph(15, 0.15, seed=14)
        result = minimum_spanning_forest(g, seed=14)
        original = apsp_reference(g)
        forest = apsp_reference(Graph(n=g.n, adjacency=result.value))
        from repro.constants import INF

        assert np.array_equal(original < INF, forest < INF)
