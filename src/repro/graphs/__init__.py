"""Graph substrate: containers, workload generators, reference oracles."""

from repro.graphs.generators import (
    bipartite_random_graph,
    cycle_graph,
    cycle_with_trees,
    dense_small_girth_graph,
    gnp_random_graph,
    grid_graph,
    planted_cycle_graph,
    preferential_attachment_graph,
    random_tree,
    random_weighted_digraph,
    random_weighted_graph,
    windmill_graph,
)
from repro.graphs.graphs import Graph
from repro.graphs.reference import (
    apsp_reference,
    bfs_distances_reference,
    count_cycles_brute,
    four_cycle_count_reference,
    girth_reference,
    has_k_cycle_reference,
    triangle_count_reference,
    validate_routing_table,
)

__all__ = [
    "Graph",
    "gnp_random_graph",
    "random_tree",
    "cycle_graph",
    "planted_cycle_graph",
    "windmill_graph",
    "bipartite_random_graph",
    "cycle_with_trees",
    "dense_small_girth_graph",
    "random_weighted_digraph",
    "random_weighted_graph",
    "grid_graph",
    "preferential_attachment_graph",
    "triangle_count_reference",
    "count_cycles_brute",
    "four_cycle_count_reference",
    "has_k_cycle_reference",
    "girth_reference",
    "bfs_distances_reference",
    "apsp_reference",
    "validate_routing_table",
]
