"""Load analysis for routed exchanges on the congested clique.

Separates the *accounting* of a communication phase (how many rounds a legal
schedule needs) from the *data movement* (which the simulator performs
directly).  Used by :class:`repro.clique.model.CongestedClique`.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass
from typing import Any, Sequence

import numpy as np

from repro.clique.scheduling import Demand
from repro.errors import LoadBoundExceededError

# outboxes[v] = list of (dst, payload, words) messages node v emits.
Outboxes = list[list[tuple[int, Any, int]]]


@dataclass(frozen=True)
class LoadProfile:
    """Communication loads induced by a set of outboxes.

    ``send_words[v]`` / ``recv_words[v]`` exclude self-addressed payloads,
    which are local moves and free in the model.
    """

    send_words: list[int]
    recv_words: list[int]
    total_words: int
    payloads: int
    demand: Demand

    @property
    def max_send(self) -> int:
        return max(self.send_words, default=0)

    @property
    def max_recv(self) -> int:
        return max(self.recv_words, default=0)

    @property
    def max_load(self) -> int:
        return max(self.max_send, self.max_recv)


def analyze(outboxes: Outboxes, n: int) -> LoadProfile:
    """Compute per-node and per-pair loads for a set of outboxes."""
    send = [0] * n
    recv = [0] * n
    demand: Demand = defaultdict(int)
    total = 0
    payloads = 0
    for v, box in enumerate(outboxes):
        for dst, _payload, words in box:
            payloads += 1
            if dst == v:
                continue  # local move, free
            send[v] += words
            recv[dst] += words
            demand[(v, dst)] += words
            total += words
    return LoadProfile(
        send_words=send,
        recv_words=recv,
        total_words=total,
        payloads=payloads,
        demand=dict(demand),
    )


def enforce_load_bound(profile: LoadProfile, expect_max_load: int | None) -> None:
    """Raise if the observed max per-node load exceeds an asserted bound.

    Algorithms pass the bound their analysis promises (e.g. the 3D matmul
    asserts ``2 n^{4/3}`` words per node); a violation indicates an
    implementation bug rather than a model violation.
    """
    if expect_max_load is not None and profile.max_load > expect_max_load:
        raise LoadBoundExceededError(
            f"max per-node load {profile.max_load} exceeds the asserted "
            f"bound {expect_max_load}"
        )


# --------------------------------------------------------------------- #
# Array-native exchanges
# --------------------------------------------------------------------- #
#
# The tuple path above pays a Python-level cost per *payload*; the array
# path pays it per *batch*.  A batch is, per node, a vector of destination
# ids plus a stacked block of equally-shaped int64 pieces; load accounting
# and delivery are then single vectorised passes (``np.bincount`` /
# stable argsort) over the concatenated batch.
#
# Exchanges whose destination pattern is *static* can go one step further
# and skip the per-exchange argsort and the fresh delivery arrays entirely:
# :meth:`repro.clique.model.CongestedClique.route_array_take` charges
# through the same accounting below but delivers by a precomputed gather
# into a caller-owned (arena) buffer -- what the engine plans
# (``CubePlan.take_st``/``take3``) use on every squaring.


@dataclass(frozen=True)
class ArrayInbox:
    """What one node receives from an array-native exchange.

    Attributes:
        sources: ``(p,)`` sender ids, ascending (ties in emission order --
            the same deterministic order :func:`deliver` produces).
        blocks: ``(p, *piece_shape)`` stacked received pieces.
        tags: ``(p,)`` caller-defined per-piece metadata ints, or ``None``.
            Tags ride along for free, like the tuple headers of the tuple
            path (headers were never charged words there either).
    """

    sources: np.ndarray
    blocks: np.ndarray
    tags: np.ndarray | None


@dataclass(frozen=True)
class ArrayBatch:
    """A flattened array-native exchange: one row per piece, all senders.

    Built once by :func:`flatten_array_batch` and shared by accounting and
    delivery.  ``src``/``dst``/``widths`` are ``(p,)`` vectors over every
    piece in the exchange; ``blocks`` stacks the pieces themselves.
    """

    n: int
    src: np.ndarray
    dst: np.ndarray
    widths: np.ndarray
    blocks: np.ndarray
    tags: np.ndarray | None

    @property
    def payloads(self) -> int:
        return int(self.src.shape[0])


def _flatten_uniform(
    dests: np.ndarray,
    blocks: np.ndarray,
    widths: np.ndarray,
    tags: np.ndarray | None,
    n: int,
) -> ArrayBatch:
    """Zero-copy flatten for the uniform case: every node sends ``p`` pieces.

    When the caller already holds whole-exchange ``(n, p, ...)`` arrays (the
    matmul engines do -- their exchange shapes are input-independent), the
    batch is a reshape, not a concatenation; contents and accounting are
    identical to the general path.
    """
    p = dests.shape[1]
    if blocks.shape[:2] != (n, p) or widths.shape != (n, p):
        raise ValueError("uniform batch: dests/blocks/widths disagree on shape")
    if tags is not None and tags.shape != (n, p):
        raise ValueError("uniform batch: tags disagree with dests on shape")
    dst = np.ascontiguousarray(dests, dtype=np.int64).reshape(-1)
    width_vec = np.ascontiguousarray(widths, dtype=np.int64).reshape(-1)
    block_mat = np.ascontiguousarray(blocks, dtype=np.int64).reshape(
        (n * p,) + blocks.shape[2:]
    )
    tag_vec = (
        np.ascontiguousarray(tags, dtype=np.int64).reshape(-1)
        if tags is not None
        else None
    )
    src = np.repeat(np.arange(n, dtype=np.int64), p)
    if dst.size:
        if int(dst.min()) < 0 or int(dst.max()) >= n:
            raise ValueError("array batch destination out of range")
        bad = np.nonzero((width_vec <= 0) & (dst != src))[0]
        if bad.size:
            raise ValueError(
                f"node {int(src[bad[0]])}: non-positive word count "
                f"{int(width_vec[bad[0]])} in array batch"
            )
    return ArrayBatch(
        n=n, src=src, dst=dst, widths=width_vec, blocks=block_mat, tags=tag_vec
    )


def flatten_array_batch(
    dests: Sequence[np.ndarray],
    blocks: Sequence[np.ndarray],
    widths: Sequence[np.ndarray],
    tags: Sequence[np.ndarray] | None,
    n: int,
) -> ArrayBatch:
    """Concatenate per-node piece vectors into one exchange-wide batch.

    ``dests[v]``, ``widths[v]`` (and ``tags[v]`` if given) are ``(p_v,)``
    vectors and ``blocks[v]`` is ``(p_v, *piece_shape)``; the piece shape
    must be uniform across the whole exchange.  Raises ``ValueError`` on
    malformed input (the caller wraps into ``CliqueModelError``).

    Callers that already hold whole-exchange ``(n, p, ...)`` arrays may pass
    them directly; that uniform case flattens by reshape with no
    per-node copies.
    """
    if (
        isinstance(dests, np.ndarray)
        and isinstance(blocks, np.ndarray)
        and isinstance(widths, np.ndarray)
        and (tags is None or isinstance(tags, np.ndarray))
        and dests.ndim == 2
        and dests.shape[0] == n
    ):
        return _flatten_uniform(dests, blocks, widths, tags, n)
    if len(dests) != n or len(blocks) != n or len(widths) != n:
        raise ValueError(f"expected {n} per-node batches")
    if tags is not None and len(tags) != n:
        raise ValueError(f"expected {n} per-node tag vectors")
    counts = []
    for v in range(n):
        d = np.asarray(dests[v])
        b = np.asarray(blocks[v])
        w = np.asarray(widths[v])
        if d.ndim != 1 or w.ndim != 1 or b.ndim < 1:
            raise ValueError(f"node {v}: malformed array batch")
        if d.shape[0] != b.shape[0] or d.shape[0] != w.shape[0]:
            raise ValueError(
                f"node {v}: dests/blocks/widths disagree on piece count"
            )
        if tags is not None:
            t = np.asarray(tags[v])
            if t.ndim != 1 or t.shape[0] != d.shape[0]:
                raise ValueError(
                    f"node {v}: tags disagree with dests on piece count"
                )
        counts.append(d.shape[0])
    src = np.repeat(np.arange(n, dtype=np.int64), counts)
    dst = np.concatenate([np.asarray(d, dtype=np.int64) for d in dests])
    width_vec = np.concatenate([np.asarray(w, dtype=np.int64) for w in widths])
    block_mat = np.concatenate([np.asarray(b, dtype=np.int64) for b in blocks])
    tag_vec = (
        np.concatenate([np.asarray(t, dtype=np.int64) for t in tags])
        if tags is not None
        else None
    )
    if dst.size:
        if int(dst.min()) < 0 or int(dst.max()) >= n:
            raise ValueError("array batch destination out of range")
        bad = np.nonzero((width_vec <= 0) & (dst != src))[0]
        if bad.size:
            raise ValueError(
                f"node {int(src[bad[0]])}: non-positive word count "
                f"{int(width_vec[bad[0]])} in array batch"
            )
    return ArrayBatch(
        n=n, src=src, dst=dst, widths=width_vec, blocks=block_mat, tags=tag_vec
    )


def analyze_array(batch: ArrayBatch, *, with_demand: bool = False) -> LoadProfile:
    """Vectorised :func:`analyze` for an array batch.

    Produces the same :class:`LoadProfile` numbers the tuple path computes
    piece by piece (self-addressed pieces excluded from loads, included in
    the payload count).  The per-pair ``demand`` map is only materialised
    when ``with_demand`` is set (EXACT scheduling); FAST-mode accounting
    needs only the per-node aggregates.
    """
    n = batch.n
    nonself = batch.src != batch.dst
    src = batch.src[nonself]
    dst = batch.dst[nonself]
    w = batch.widths[nonself]
    send = np.zeros(n, dtype=np.int64)
    recv = np.zeros(n, dtype=np.int64)
    np.add.at(send, src, w)
    np.add.at(recv, dst, w)
    demand: Demand = {}
    if with_demand and src.size:
        pair_keys = src * n + dst
        uniq, inverse = np.unique(pair_keys, return_inverse=True)
        pair_words = np.zeros(uniq.shape[0], dtype=np.int64)
        np.add.at(pair_words, inverse, w)
        demand = {
            (int(key) // n, int(key) % n): int(words)
            for key, words in zip(uniq, pair_words)
        }
    return LoadProfile(
        send_words=send.tolist(),
        recv_words=recv.tolist(),
        total_words=int(w.sum()),
        payloads=batch.payloads,
        demand=demand,
    )


@dataclass(frozen=True)
class FlatInboxes:
    """All inboxes of an array exchange as one destination-sorted batch.

    The flat counterpart of ``list[ArrayInbox]``: node ``u``'s inbox is the
    slice ``offsets[u]:offsets[u+1]`` of every array, in the same
    deterministic (sender id, emission order) order.  Exchanges whose inbox
    composition is uniform (every node receives ``p`` pieces -- true of all
    matmul-engine phases) can reshape ``blocks`` to ``(n, p, ...)`` and skip
    per-node restacking entirely.
    """

    n: int
    sources: np.ndarray
    blocks: np.ndarray
    tags: np.ndarray | None
    offsets: np.ndarray

    def inbox(self, u: int) -> ArrayInbox:
        """Node ``u``'s inbox as a (view-backed) :class:`ArrayInbox`."""
        lo, hi = int(self.offsets[u]), int(self.offsets[u + 1])
        return ArrayInbox(
            sources=self.sources[lo:hi],
            blocks=self.blocks[lo:hi],
            tags=self.tags[lo:hi] if self.tags is not None else None,
        )

    def uniform_blocks(self, pieces_per_node: int) -> np.ndarray:
        """``blocks`` as an ``(n, p, ...)`` array (uniform inboxes only)."""
        if self.blocks.shape[0] != self.n * pieces_per_node:
            raise ValueError(
                f"exchange is not uniform: {self.blocks.shape[0]} pieces != "
                f"{self.n} nodes x {pieces_per_node}"
            )
        return self.blocks.reshape(
            (self.n, pieces_per_node) + self.blocks.shape[1:]
        )


def deliver_array_flat(batch: ArrayBatch) -> FlatInboxes:
    """Vectorised delivery, returned as one :class:`FlatInboxes` batch.

    One stable sort by destination groups the batch; stability preserves
    the (sender id, emission order) order within each inbox, matching the
    tuple path's deterministic delivery order.
    """
    order = np.argsort(batch.dst, kind="stable")
    counts = np.bincount(batch.dst, minlength=batch.n)
    return FlatInboxes(
        n=batch.n,
        sources=batch.src[order],
        blocks=batch.blocks[order],
        tags=batch.tags[order] if batch.tags is not None else None,
        offsets=np.concatenate(([0], np.cumsum(counts))),
    )


def deliver_array(batch: ArrayBatch) -> list[ArrayInbox]:
    """Vectorised :func:`deliver`: route every piece to its destination inbox."""
    flat = deliver_array_flat(batch)
    return [flat.inbox(u) for u in range(batch.n)]


def deliver(outboxes: Outboxes, n: int) -> list[list[tuple[int, Any]]]:
    """Move every payload to its destination inbox.

    Returns ``inboxes`` with ``inboxes[u]`` a list of ``(src, payload)``
    pairs, ordered by source id and then by emission order -- a deterministic
    order so simulations are reproducible.
    """
    inboxes: list[list[tuple[int, Any]]] = [[] for _ in range(n)]
    for v, box in enumerate(outboxes):
        for dst, payload, _words in box:
            inboxes[dst].append((v, payload))
    for box in inboxes:
        box.sort(key=lambda item: item[0])
    return inboxes


__all__ = [
    "Outboxes",
    "LoadProfile",
    "analyze",
    "enforce_load_bound",
    "deliver",
    "ArrayInbox",
    "ArrayBatch",
    "FlatInboxes",
    "flatten_array_batch",
    "analyze_array",
    "deliver_array",
    "deliver_array_flat",
]
