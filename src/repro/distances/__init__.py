"""Distance computation: girth and the APSP family (paper §3.2-3.3)."""

from repro.distances.approx import apsp_approx, default_delta
from repro.distances.apsp import apsp_exact
from repro.distances.bottleneck import (
    apsp_bottleneck,
    bottleneck_reference,
    validate_bottleneck_routing,
)
from repro.distances.bounded import (
    apsp_bounded,
    apsp_small_diameter,
    apsp_up_to,
    reachability,
)
from repro.distances.girth import (
    default_cycle_length_cutoff,
    edge_threshold,
    girth_directed,
    girth_undirected,
)
from repro.distances.properties import (
    diameter_approx,
    diameter_exact,
    diameter_reference,
    diameter_unweighted,
)
from repro.distances.seidel import apsp_unweighted

__all__ = [
    "apsp_exact",
    "apsp_unweighted",
    "apsp_bounded",
    "apsp_small_diameter",
    "apsp_up_to",
    "apsp_approx",
    "apsp_bottleneck",
    "bottleneck_reference",
    "validate_bottleneck_routing",
    "default_delta",
    "reachability",
    "girth_undirected",
    "girth_directed",
    "default_cycle_length_cutoff",
    "edge_threshold",
    "diameter_exact",
    "diameter_unweighted",
    "diameter_approx",
    "diameter_reference",
]
