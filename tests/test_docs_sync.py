"""Documentation-sync checks.

Keeps DESIGN.md / EXPERIMENTS.md / README.md honest: every module the
design inventory names must import, every public symbol promised by the
README quickstart must exist, and every benchmark target named in the
per-experiment index must be a real file.
"""

from __future__ import annotations

import importlib
import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def _read(name: str) -> str:
    return (ROOT / name).read_text(encoding="utf-8")


class TestDesignInventory:
    def test_every_inventoried_module_imports(self):
        text = _read("DESIGN.md")
        modules = set(re.findall(r"`(repro(?:\.[a-z_0-9]+)+)`", text))
        assert len(modules) >= 20, "inventory should name the system's modules"
        for module in sorted(modules):
            importlib.import_module(module)

    def test_every_bench_target_exists(self):
        text = _read("DESIGN.md")
        targets = set(re.findall(r"`(benchmarks/[a-z_0-9]+\.py)`", text))
        assert targets, "the per-experiment index should name bench files"
        for target in sorted(targets):
            assert (ROOT / target).exists(), target

    def test_paper_identity_check_is_stated(self):
        text = _read("DESIGN.md")
        assert "identity check" in text.lower()
        assert "Censor-Hillel" in text


class TestExperimentsDoc:
    def test_every_table1_row_has_a_section(self):
        text = _read("EXPERIMENTS.md")
        for row in (
            "matrix multiplication (semiring)",
            "matrix multiplication (ring)",
            "triangle counting",
            "4-cycle detection",
            "4-cycle counting",
            "k-cycle detection",
            "girth",
            "weighted directed APSP",
            "weighted diameter U",
            "approximate APSP",
            "unweighted undirected APSP",
        ):
            assert row in text, row

    def test_figures_and_lower_bounds_covered(self):
        text = _read("EXPERIMENTS.md")
        assert "Figures 1-2" in text or "Figure 1" in text
        assert "Lemma 12 tiling" in text or "Figure 3" in text
        assert "lower bounds" in text.lower()

    def test_caveats_are_documented(self):
        text = _read("EXPERIMENTS.md")
        assert "Strassen" in text
        assert "caveat" in text.lower()


class TestReadme:
    def test_quickstart_symbols_exist(self):
        import repro

        text = _read("README.md")
        for symbol in re.findall(r"from repro import ([\w, ]+)", text):
            for name in symbol.split(","):
                assert hasattr(repro, name.strip()), name

    def test_cli_commands_in_readme_are_real(self):
        from repro.cli import build_parser

        text = _read("README.md")
        commands = set(re.findall(r"python -m repro (\w[\w-]*)", text))
        parser = build_parser()
        sub = next(
            a for a in parser._actions  # noqa: SLF001 - argparse introspection
            if hasattr(a, "choices") and a.choices
        )
        for command in commands:
            assert command in sub.choices, command

    def test_install_instructions_mention_offline_path(self):
        text = _read("README.md")
        assert "setup.py develop" in text


class TestExamplesListed:
    def test_every_example_file_is_mentioned_in_readme(self):
        text = _read("README.md")
        for path in sorted((ROOT / "examples").glob("*.py")):
            assert path.name in text, f"README should mention {path.name}"
