"""Integration test: the Table 1 harness runs end to end (quick scale)."""

from __future__ import annotations

import pytest

from repro.analysis import format_table1, run_table1
from repro.constants import RHO_IMPLEMENTED

# The quick Table 1 sweep still runs every algorithm end to end (~12s).
pytestmark = pytest.mark.slow


@pytest.fixture(scope="module")
def reports():
    return run_table1(scale="quick", seed=0)


class TestTable1Run:
    def test_all_rows_present(self, reports):
        problems = [r.problem for r in reports]
        for token in (
            "matrix multiplication (semiring)",
            "matrix multiplication (ring)",
            "triangle counting",
            "4-cycle detection",
            "4-cycle counting",
            "5-cycle detection",
            "girth",
            "weighted directed APSP",
            "diameter U=8",
            "approx APSP",
            "unweighted undirected APSP",
        ):
            assert any(token in p for p in problems), token

    def test_every_row_has_measurements(self, reports):
        for rep in reports:
            assert len(rep.sizes) == len(rep.rounds)
            assert all(r >= 0 for r in rep.rounds)

    def test_semiring_row_exponent_exact(self, reports):
        row = next(r for r in reports if "semiring" in r.problem)
        assert row.fitted_exponent == pytest.approx(1 / 3, abs=0.01)

    def test_four_cycle_rows_order_correctly(self, reports):
        row = next(r for r in reports if r.problem == "4-cycle detection")
        assert row.prior_rounds is not None
        # Theorem 4 beats the baseline at every measured size.
        assert all(o < p for o, p in zip(row.rounds, row.prior_rounds))
        assert row.fitted_exponent < 0.3
        assert row.prior_fitted_exponent > row.fitted_exponent

    def test_report_formats(self, reports):
        text = format_table1(reports)
        assert f"{RHO_IMPLEMENTED:.5f}" in text
        assert "fitted exp" in text
        assert "speedup" in text
