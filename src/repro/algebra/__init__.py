"""Algebraic foundations: semirings, bilinear algorithms, polynomial rings.

The paper's engine room.  §2.1 needs semirings with block products
(:mod:`repro.algebra.semirings`); §2.2 needs explicit bilinear algorithms
(:mod:`repro.algebra.bilinear`), instantiated with Strassen's ``<2,2,2;7>``
and its Kronecker powers; Lemma 18 needs capped polynomial arithmetic
(:mod:`repro.algebra.polynomial`).
"""

from repro.algebra.bilinear import (
    STRASSEN,
    BilinearAlgorithm,
    classical,
    largest_strassen_level,
    strassen_power,
    verify_bilinear,
)
from repro.algebra.semirings import (
    ALL_SEMIRINGS,
    BOOLEAN,
    MAX_MIN,
    MIN_PLUS,
    PLUS_TIMES,
    Semiring,
    reference_matmul,
)
from repro.algebra.strassen import strassen_multiply

__all__ = [
    "Semiring",
    "PLUS_TIMES",
    "BOOLEAN",
    "MIN_PLUS",
    "MAX_MIN",
    "ALL_SEMIRINGS",
    "reference_matmul",
    "BilinearAlgorithm",
    "STRASSEN",
    "classical",
    "strassen_power",
    "largest_strassen_level",
    "verify_bilinear",
    "strassen_multiply",
]
