"""k-cycle detection via colour coding (paper Lemma 11 + Theorem 3).

Given a colouring ``c : V -> [k]``, the matrices ``C(X)`` (Boolean; entry
``(u, v)`` set iff some path u ~> v of length ``|X| - 1`` uses each colour of
``X`` exactly once) satisfy the half-split recursion (paper eq. (3)):

    C(X) = OR over Y subset X, |Y| = ceil(|X|/2) of  C(Y) . A . C(X \\ Y)

with ``C({i})`` the diagonal indicator of colour ``i``.  A colourful k-cycle
exists iff ``C([k])[u, v] = 1`` for some edge ``(v, u)``.  Products are
Boolean (integer product + threshold) on the fast §2.2 engine, giving
``O(3^k n^rho)`` rounds per colouring; trying ``e^k ln(1/eps)`` random
colourings yields detection w.h.p. (Theorem 3's ``2^{O(k)} n^rho log n``).

Two constant-factor notes (asymptotics unchanged, see DESIGN.md):

* ``C(X)`` for singleton ``X`` is a colour mask and for ``|X| = 2`` is a
  row/column-masked copy of ``A``; both are local (zero rounds), so the
  first distributed product appears at ``|X| >= 3``.
* Detection is *certified*: a reported cycle follows from a genuine product
  chain, so false positives are impossible; only completeness is
  probabilistic (the paper derandomises with k-perfect hash families, which
  we replace by seeded trials -- the trial count is the same).
"""

from __future__ import annotations

import math
from itertools import combinations

import numpy as np

from repro.algebra.semirings import BOOLEAN
from repro.clique.model import CongestedClique, ScheduleMode
from repro.engine import EngineSession
from repro.graphs.graphs import Graph
from repro.runtime import (
    RunResult,
    make_clique,
    or_broadcast,
    pad_matrix,
    resolve_rng,
)


def default_trials(k: int, n: int, failure_probability: float = 0.01) -> int:
    """Paper trial budget: ``ceil(e^k ln(1/eps))`` random colourings."""
    if k < 3:
        raise ValueError(f"cycles need k >= 3, got {k}")
    return max(1, math.ceil(math.exp(k) * math.log(1.0 / failure_probability)))


def detect_colourful_cycle(
    clique: CongestedClique,
    adjacency: np.ndarray,
    colours: np.ndarray,
    k: int,
    *,
    method: str = "bilinear",
    session: EngineSession | None = None,
    phase: str = "colour-coding",
) -> bool:
    """Lemma 11: is there a cycle using each of the ``k`` colours once?

    ``adjacency`` is the (padded) 0/1 matrix, ``colours[v] in [0, k)`` the
    nodes' colours (padded nodes may carry any colour -- they have no edges).
    Callers running many trials pass one bound Boolean ``session`` so every
    product shares its cached plans.
    """
    n = clique.n
    session = session or EngineSession(clique, method, BOOLEAN)
    a = (np.asarray(adjacency) > 0).astype(np.int64)
    # Nodes announce their colours once so every node can build the masks.
    clique.broadcast(list(colours), words=1, phase=f"{phase}/colours")
    colour_mask = [colours == i for i in range(k)]

    memo: dict[frozenset[int], np.ndarray] = {}

    def cmat(x: frozenset[int]) -> np.ndarray:
        if x in memo:
            return memo[x]
        size = len(x)
        if size == 1:
            (i,) = x
            mat = np.zeros((n, n), dtype=np.int64)
            idx = np.nonzero(colour_mask[i])[0]
            mat[idx, idx] = 1
        elif size == 2:
            i, j = sorted(x)
            # C({i}) A C({j}) + C({j}) A C({i}): colourful paths of length 1.
            mat = np.zeros((n, n), dtype=np.int64)
            for left, right in ((i, j), (j, i)):
                masked = a * colour_mask[left][:, None] * colour_mask[right][None, :]
                mat |= masked
        else:
            half = math.ceil(size / 2)
            acc = np.zeros((n, n), dtype=np.int64)
            elements = sorted(x)
            for y_tuple in combinations(elements, half):
                y = frozenset(y_tuple)
                z = x - y
                left = cmat(y)
                right = cmat(z)
                if len(z) == 1:
                    (zc,) = z
                    # A C(z) is a column-masked A: one product suffices.
                    middle = a * colour_mask[zc][None, :]
                    term = session.multiply(left, middle, phase=f"{phase}/prod")
                elif len(y) == 1:
                    (yc,) = y
                    middle = a * colour_mask[yc][:, None]
                    term = session.multiply(middle, right, phase=f"{phase}/prod")
                else:
                    t1 = session.multiply(left, a, phase=f"{phase}/prod")
                    term = session.multiply(t1, right, phase=f"{phase}/prod")
                acc |= term
            mat = acc
        memo[x] = mat
        return mat

    full = cmat(frozenset(range(k)))
    # Node u checks C([k])[u, v] = 1 with (v, u) an edge.  Row u of C is
    # local; A[v, u] equals A[u, v] for undirected graphs, and for directed
    # graphs the nodes exchange the adjacency transpose in one round.
    if _needs_transpose(a):
        cols = clique.transpose(a, words_per_entry=1, phase=f"{phase}/transpose")
        closing = np.array(cols, dtype=np.int64)
    else:
        closing = a
    local_hits = [bool(np.any(full[u] & closing[u])) for u in range(n)]
    return or_broadcast(clique, local_hits, phase=f"{phase}/verdict")


def _needs_transpose(a: np.ndarray) -> bool:
    return not np.array_equal(a, a.T)


def detect_k_cycle(
    graph: Graph,
    k: int,
    *,
    method: str = "bilinear",
    trials: int | None = None,
    rng: np.random.Generator | None = None,
    seed: int | None = 0,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
    failure_probability: float = 0.01,
) -> RunResult:
    """Theorem 3: detect a ``k``-cycle w.h.p. in ``2^{O(k)} n^rho log n`` rounds.

    Soundness is unconditional (``value=True`` certifies a cycle);
    completeness holds with probability ``>= 1 - failure_probability`` under
    the default trial budget.

    Randomness follows :func:`repro.runtime.resolve_rng`: deterministic by
    default (``seed=0``), while ``seed=None`` draws from the shared
    module-level stream so *repeated* trial batches explore fresh
    colourings -- the ``e^k ln(1/eps)`` budget then buys real coverage
    across calls instead of replaying the first batch.
    """
    if k < 3:
        raise ValueError(f"cycles need k >= 3, got {k}")
    rng = resolve_rng(rng, seed)
    clique = clique or make_clique(graph.n, method, mode=mode)
    session = EngineSession(clique, method, BOOLEAN)
    a = pad_matrix(graph.adjacency, clique.n)
    budget = trials if trials is not None else default_trials(
        k, graph.n, failure_probability
    )
    used = 0
    found = False
    for _ in range(budget):
        used += 1
        colours = rng.integers(0, k, size=clique.n)
        if detect_colourful_cycle(
            clique, a, colours, k, session=session, phase=f"kcycle{k}"
        ):
            found = True
            break
    return RunResult(
        value=found,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"trials_used": used, "trial_budget": budget, "k": k},
    )


__all__ = ["detect_k_cycle", "detect_colourful_cycle", "default_trials"]
