"""Per-session exchange arenas: preallocated buffers for the engine hot paths.

Every squaring of an engine session runs the same input-independent
exchanges (the :class:`~repro.matmul.semiring3d.CubePlan` /
:class:`~repro.matmul.bilinear_clique.GridPlan` schedules), so the send
assembly and the delivered inboxes have the *same shapes every time*.  An
:class:`ExchangeArena` keeps one named buffer per role and hands it back on
every call, so the ``ceil(log n)`` squarings of a closure stop allocating
(and stop ``concatenate``/``stack``-copying) tens of megabytes per product
-- the engines write into reshaped views of arena buffers instead.

Aliasing and lifetime rules (see DESIGN.md "kernel generation 2"):

* A buffer is identified by ``(key, shape)``; asking for the same key with
  a different shape reallocates (ring products can widen trailing axes).
* Buffers are **zero-initialised once**.  Callers that rely on zero padding
  (the bilinear engine's padded operands and local cell grids) may only
  write positions they write on *every* call, so untouched padding stays
  zero across reuses.
* A buffer is valid until the same key is requested again -- engines may
  not return arena-backed arrays to callers (results handed out of a
  product must be freshly allocated) and may not hold a buffer across
  products.  Within one product, distinct roles use distinct keys, so no
  two live buffers alias.
* Arenas are single-session, single-thread objects, exactly like the
  simulator itself; sharing one across concurrently-running products is a
  caller bug.

The arena never touches the cost meter: it changes where delivered bytes
land, not what is charged (round/load accounting is bit-identical with or
without it, which the equivalence tests pin).
"""

from __future__ import annotations

import numpy as np


class ExchangeArena:
    """A pool of named, preallocated ``int64`` exchange buffers."""

    def __init__(self) -> None:
        self._buffers: dict[str, np.ndarray] = {}

    def buffer(self, key: str, shape: tuple[int, ...]) -> np.ndarray:
        """The arena buffer for ``key``, (re)allocated zeroed on first use.

        Returns the cached buffer when the shape matches; reallocates (and
        re-zeroes) when it does not, so shape changes (padding growth, ring
        trailing axes) are always safe, just not free.
        """
        shape = tuple(int(s) for s in shape)
        buf = self._buffers.get(key)
        if buf is None or buf.shape != shape:
            buf = np.zeros(shape, dtype=np.int64)
            self._buffers[key] = buf
        return buf

    def release(self) -> None:
        """Drop every held buffer (the arena stays usable).

        Engine sessions call this from their context-manager exit so a
        closed session frees its tens of megabytes deterministically
        instead of waiting for the arena to be garbage-collected.
        """
        self._buffers.clear()

    def __len__(self) -> int:
        return len(self._buffers)

    def nbytes(self) -> int:
        """Total bytes currently held (for introspection/benchmarks)."""
        return sum(b.nbytes for b in self._buffers.values())

    def __repr__(self) -> str:  # pragma: no cover - cosmetic
        return f"ExchangeArena(buffers={len(self)}, nbytes={self.nbytes()})"


__all__ = ["ExchangeArena"]
