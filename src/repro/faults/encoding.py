"""Vectorised majority decode for replication-coded exchanges.

The robust collectives ship ``c = 2T + 1`` copies of every piece through
pairwise-distinct relays (:func:`repro.clique.scheduling.disjoint_relays`).
Decoding is per-word majority with a *support threshold*: a word's value is
accepted only if at least ``threshold`` valid copies agree on it.  With
``threshold = T + 1`` this gives the two halves of detect-retry-degrade:

* **in budget** (at most ``T`` corrupt relays): at least ``T + 1`` honest
  copies agree on the truth, so every word decodes -- and decodes
  *correctly*, because flip corruption is pairwise distinct across relays
  (no wrong value can ever gather 2 agreeing copies) and drops are known
  erasures (invalid, excluded from support);
* **beyond budget**: the truth may lose its majority, but no wrong value
  can reach the threshold either -- the decode *fails loudly* (``ok`` is
  False) instead of returning a silently wrong word.  That detection is
  what the retry/degrade layer keys on.
"""

from __future__ import annotations

import numpy as np


def majority_decode(
    copies: np.ndarray, valid: np.ndarray, threshold: int
) -> tuple[np.ndarray, np.ndarray]:
    """Per-word supported-majority decode of a replicated exchange.

    Args:
        copies: ``(p, c, *piece_shape)`` int64 array -- ``c`` received
            copies of each of ``p`` pieces.
        valid: ``(p, c)`` bool -- False marks a known erasure (dropped /
            crashed relay); invalid copies neither vote nor win.
        threshold: minimum number of agreeing valid copies a word needs.

    Returns:
        ``(decoded, ok)``: ``decoded`` is ``(p, *piece_shape)`` int64 --
        per word, the value of the best-supported valid copy; ``ok`` is
        ``(p,)`` bool -- True iff *every* word of the piece reached the
        support threshold.  Pieces with ``ok`` False carry no guarantee
        (callers must retry or raise, never use them).
    """
    copies = np.asarray(copies)
    if copies.ndim < 2:
        raise ValueError("majority_decode expects a (pieces, copies, ...) stack")
    p, c = copies.shape[:2]
    valid = np.asarray(valid, dtype=bool)
    if valid.shape != (p, c):
        raise ValueError(f"validity mask must have shape {(p, c)}, got {valid.shape}")
    if threshold < 1:
        raise ValueError(f"support threshold must be positive, got {threshold}")
    flat = copies.reshape(p, c, -1)
    w = flat.shape[2]
    # support[i, j, k]: how many *valid* copies agree with copy j on word k.
    # Accumulated one copy at a time -- O(c) passes over (p, c, w) instead of
    # materialising the (p, c, c, w) pairwise-equality tensor (c is tiny,
    # w is the whole exchange).
    support = np.zeros((p, c, w), dtype=np.int16)
    for k in range(c):
        agree = flat == flat[:, k : k + 1, :]
        agree &= valid[:, k, None, None]
        support += agree
    # Invalid copies cannot win the argmax either.
    support[~valid] = 0
    best = support.argmax(axis=1)
    best_support = np.take_along_axis(support, best[:, None, :], axis=1)[:, 0, :]
    decoded = np.take_along_axis(flat, best[:, None, :], axis=1)[:, 0, :]
    ok = (best_support >= threshold).all(axis=1)
    return decoded.reshape((p,) + copies.shape[2:]), ok


__all__ = ["majority_decode"]
