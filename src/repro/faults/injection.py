"""Fault injection over the array collectives.

:func:`corrupt_pieces` applies a :class:`~repro.faults.plan.FaultPlan` to
the in-transit pieces of one exchange; :class:`FaultyClique` wires it into
the delivery-interception seams of
:class:`~repro.clique.model.CongestedClique` (``_tamper_batch`` /
``_tamper_broadcast``).  The wrapper is *pure interception*: it never
touches the charge path, so with no plan installed (or ``t = 0``) rounds,
words, and delivered contents are bit-identical to the base model -- the
equivalence the fault suite pins.

Relay attribution: piece ``i``'s copy ``j`` transits the intermediate node
``disjoint_relays(...)[i, j]`` -- the same public, input-oblivious
assignment the encoded collectives replicate over, so the adversary model
and the decoder's support argument talk about the same relays.  (For plain,
un-encoded exchanges ``copies = 1``: every piece has a single relay, and a
corrupt relay silently corrupts it -- that is exactly the vulnerability the
robust layer exists to close.)
"""

from __future__ import annotations

from dataclasses import replace

import numpy as np

from repro.clique.model import CongestedClique
from repro.clique.scheduling import disjoint_relays
from repro.faults.plan import FaultKind, FaultPlan

#: Odd 64-bit multiplier (splitmix64's golden-ratio constant).  Flip masks
#: are ``(relay + 1) * _FLIP_MULT`` in uint64: odd multipliers are units mod
#: ``2**64``, so masks are nonzero and pairwise distinct across relays --
#: a flipped word never equals the truth, and two corrupt relays never
#: produce the same wrong word.  The majority decoder's "no silent wrong
#: answers" guarantee rests on exactly these two properties.
_FLIP_MULT = np.uint64(0x9E3779B97F4A7C15)


def flip_masks(relays: np.ndarray) -> np.ndarray:
    """The per-relay corruption masks, as int64 (same bits as the uint64)."""
    return ((np.asarray(relays).astype(np.uint64) + np.uint64(1)) * _FLIP_MULT).view(
        np.int64
    )


def corrupt_pieces(
    plan: FaultPlan,
    exchange_id: int,
    n: int,
    blocks: np.ndarray,
    *,
    copies: int = 1,
    skip: np.ndarray | None = None,
) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Apply one exchange's worth of corruption to in-transit pieces.

    Args:
        plan: the adversary.
        exchange_id: monotone per-clique exchange counter (salts the relay
            assignment and, for FLIP/DROP, the corrupt-set redraw).
        n: clique size.
        blocks: ``(P, *piece_shape)`` int64 stack of in-transit pieces; for
            replicated exchanges copy ``j`` of piece ``i`` sits at row
            ``i * copies + j`` (``P`` must be a multiple of ``copies``).
        copies: replication degree of the exchange layout.
        skip: optional ``(P,)`` bool -- pieces that never leave their node
            (self-addressed) and therefore cannot be corrupted in transit.

    Returns:
        ``(tampered, hit, dropped)``: the (possibly shared, see below)
        piece stack, the ``(P,)`` bool mask of corrupted pieces, and the
        ``(P,)`` bool mask of known erasures (DROP/CRASH hits).  When no
        piece is hit the *input* ``blocks`` is returned unchanged and
        uncopied; when any piece is hit, ``tampered`` is a fresh copy --
        caller-owned and arena memory is never mutated in place.
    """
    total = blocks.shape[0]
    if copies < 1 or total % copies:
        raise ValueError(
            f"piece count {total} is not a multiple of the replication "
            f"degree {copies}"
        )
    no_drop = np.zeros(total, dtype=bool)
    corrupt = plan.corrupt_nodes(n, exchange_id)
    if corrupt.size == 0 or total == 0:
        return blocks, no_drop, no_drop
    relays = disjoint_relays(total // copies, copies, n, salt=exchange_id).reshape(-1)
    is_corrupt = np.zeros(n, dtype=bool)
    is_corrupt[corrupt] = True
    hit = is_corrupt[relays]
    if skip is not None:
        hit &= ~np.asarray(skip, dtype=bool)
    if not hit.any():
        return blocks, hit, no_drop
    tampered = blocks.copy()
    if plan.kind in (FaultKind.FLIP, FaultKind.BYZANTINE):
        masks = flip_masks(relays[hit]).reshape((-1,) + (1,) * (blocks.ndim - 1))
        tampered[hit] = (tampered[hit].view(np.uint64) ^ masks.view(np.uint64)).view(
            np.int64
        )
        dropped = no_drop
    else:  # DROP / CRASH: the piece is lost -- a known erasure.
        tampered[hit] = 0
        dropped = hit.copy()
    return tampered, hit, dropped


class FaultyClique(CongestedClique):
    """A congested clique whose array-collective deliveries may be corrupted.

    Overrides only the delivery-interception seams: the charge path, round
    counts, and (when ``plan`` is None or ``t = 0``) delivered contents are
    bit-identical to :class:`~repro.clique.model.CongestedClique`.  This is
    the *unprotected* wrapper -- corruption flows straight into the
    computation, demonstrating the silent-wrong-answer failure mode the
    robust layer (:class:`~repro.faults.protocol.RobustClique`) closes.

    Broadcast interception is a deliberate coarsening: the simulator shares
    one replica across receivers, so a corrupted broadcast piece is seen
    corrupted by *all* receivers (as if the sender's uplink were hit),
    rather than per-receiver.

    Attributes:
        plan: the installed :class:`~repro.faults.plan.FaultPlan`, or None.
        faults_injected: total pieces corrupted so far (diagnostics).
    """

    def __init__(
        self, n: int, *, plan: FaultPlan | None = None, **kwargs
    ) -> None:
        super().__init__(n, **kwargs)
        self.plan = plan
        self._exchange_index = 0
        self.faults_injected = 0

    def _next_exchange(self) -> int:
        """Draw the next monotone exchange id (salts relays + corrupt sets)."""
        index = self._exchange_index
        self._exchange_index += 1
        return index

    def _tamper_batch(self, batch, phase: str):
        if self.plan is None or self.plan.t == 0:
            return batch
        exchange_id = self._next_exchange()
        tampered, hit, _dropped = corrupt_pieces(
            self.plan,
            exchange_id,
            self.n,
            batch.blocks,
            skip=batch.dst == batch.src,
        )
        self.faults_injected += int(hit.sum())
        if not hit.any():
            return batch
        return replace(batch, blocks=tampered)

    def _tamper_broadcast(self, rows: np.ndarray, phase: str) -> np.ndarray:
        if self.plan is None or self.plan.t == 0:
            return rows
        exchange_id = self._next_exchange()
        tampered, hit, _dropped = corrupt_pieces(
            self.plan, exchange_id, self.n, rows
        )
        self.faults_injected += int(hit.sum())
        return tampered if hit.any() else rows


__all__ = ["FaultyClique", "corrupt_pieces", "flip_masks"]
