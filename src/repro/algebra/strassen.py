"""Local recursive Strassen multiplication (reference implementation).

The distributed algorithm of §2.2 consumes Strassen in *bilinear form*
(:func:`repro.algebra.bilinear.strassen_power`); this module provides the
textbook recursive executor, used (a) as an independent oracle for the
bilinear tensors in the test suite and (b) by nodes that prefer a fast local
multiply in the simulator.
"""

from __future__ import annotations

import numpy as np


def strassen_multiply(
    s: np.ndarray, t: np.ndarray, cutoff: int = 32
) -> np.ndarray:
    """Multiply two square integer matrices with recursive Strassen.

    Below ``cutoff`` the recursion falls back to NumPy's product.  Inputs of
    odd size are padded with zeros for the recursive step.
    """
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if s.shape != t.shape or s.shape[0] != s.shape[1]:
        raise ValueError("strassen_multiply expects equal square matrices")
    n = s.shape[0]
    if n <= cutoff:
        return s @ t
    half = (n + 1) // 2
    size = 2 * half

    sp = np.zeros((size, size), dtype=np.int64)
    tp = np.zeros((size, size), dtype=np.int64)
    sp[:n, :n] = s
    tp[:n, :n] = t

    a11, a12 = sp[:half, :half], sp[:half, half:]
    a21, a22 = sp[half:, :half], sp[half:, half:]
    b11, b12 = tp[:half, :half], tp[:half, half:]
    b21, b22 = tp[half:, :half], tp[half:, half:]

    m1 = strassen_multiply(a11 + a22, b11 + b22, cutoff)
    m2 = strassen_multiply(a21 + a22, b11, cutoff)
    m3 = strassen_multiply(a11, b12 - b22, cutoff)
    m4 = strassen_multiply(a22, b21 - b11, cutoff)
    m5 = strassen_multiply(a11 + a12, b22, cutoff)
    m6 = strassen_multiply(a21 - a11, b11 + b12, cutoff)
    m7 = strassen_multiply(a12 - a22, b21 + b22, cutoff)

    p = np.zeros((size, size), dtype=np.int64)
    p[:half, :half] = m1 + m4 - m5 + m7
    p[:half, half:] = m3 + m5
    p[half:, :half] = m2 + m4
    p[half:, half:] = m1 - m2 + m3 + m6
    return p[:n, :n]


__all__ = ["strassen_multiply"]
