"""E15 -- §4 lower bounds (Corollaries 22/23) as measured floors.

For each matmul engine: the measured per-node communication must sit above
the information-theoretic floor, and within a small constant of it (the
sense in which Theorem 1 is an "essentially optimal" implementation).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.analysis import (
    check_meter_against_floor,
    semiring_words_floor,
    strassen_like_words_floor,
)
from repro.clique import CongestedClique
from repro.constants import SIGMA_STRASSEN
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.semiring3d import semiring_matmul

from .conftest import run_once


@pytest.mark.parametrize("n", [27, 64, 125])
def test_semiring_sits_on_corollary22_floor(benchmark, n):
    rng = np.random.default_rng(n)
    s = rng.integers(0, 2, (n, n), dtype=np.int64)
    t = rng.integers(0, 2, (n, n), dtype=np.int64)

    def run():
        clique = CongestedClique(n)
        semiring_matmul(clique, s, t)
        return check_meter_against_floor(
            "semiring3d", clique.meter, semiring_words_floor(n)
        )

    check = run_once(benchmark, run)
    benchmark.extra_info["floor_words"] = check.floor_words
    benchmark.extra_info["measured_words"] = check.measured_max_node_words
    benchmark.extra_info["overhead"] = check.overhead
    assert check.satisfied
    assert check.overhead < 16


@pytest.mark.parametrize("n", [49, 100, 196])
def test_bilinear_sits_on_corollary23_floor(benchmark, n):
    rng = np.random.default_rng(n)
    s = rng.integers(0, 2, (n, n), dtype=np.int64)
    t = rng.integers(0, 2, (n, n), dtype=np.int64)

    def run():
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, default_algorithm(n))
        return check_meter_against_floor(
            "bilinear",
            clique.meter,
            strassen_like_words_floor(n, SIGMA_STRASSEN),
        )

    check = run_once(benchmark, run)
    benchmark.extra_info["floor_words"] = check.floor_words
    benchmark.extra_info["measured_words"] = check.measured_max_node_words
    benchmark.extra_info["overhead"] = check.overhead
    assert check.satisfied
    assert check.overhead < 64  # level quantisation + padding constants
