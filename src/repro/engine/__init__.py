"""The unified execution stack: engine sessions over pluggable executors.

One squaring pipeline from the runtime to every distance algorithm: an
:class:`EngineSession` binds a clique, a semiring/ring and a matmul method
once (layouts, routing plans, bilinear encode/decode tensors and the
executor's worker pool are cached across all products), and every §3
consumer -- APSP, girth, Seidel, bottleneck, components, subgraph counting
-- drives it through ``multiply`` / ``square`` / ``power`` / ``closure``.
Local block products run on the clique's
:class:`~repro.clique.executor.LocalExecutor` (serial, or sharded over node
ranges with shared-memory blocks) with bit-identical values and round
charges across backends.
"""

from repro.engine.session import (
    MATMUL_METHODS,
    EngineBindingError,
    EngineSession,
    ResidentClosure,
    default_steps,
    make_clique,
    open_session,
    required_clique_size,
)

__all__ = [
    "EngineSession",
    "EngineBindingError",
    "ResidentClosure",
    "open_session",
    "make_clique",
    "required_clique_size",
    "default_steps",
    "MATMUL_METHODS",
]
