"""Distance (min-plus) products on the clique (paper §3.3, Lemmas 18 & 20).

Three engines, mirroring the paper's trade-offs:

* :func:`distance_product` with ``method="semiring"`` -- the exact distance
  product via the §2.1 semiring engine: ``O(n^{1/3})`` rounds, witnesses for
  free (local arg-min).
* :func:`distance_product_ring` -- Lemma 18: for entries in
  ``{0..M} + {inf}``, embeds into the capped polynomial ring (entry ``w``
  becomes ``X^w``) and multiplies with the fast §2.2 engine:
  ``O(M n^{rho})`` rounds, the factor ``M`` being the polynomial width.
* :func:`approx_distance_product` -- Lemma 20: ``(1 + delta)``-approximate
  distance product via the scaling family ``S^{(i)} = ceil(S / (1+d)^i)``
  (entries capped at ``O(1/delta)``), one Lemma 18 product per scale, and an
  elementwise minimum of the rescaled results:
  ``O(n^{rho} log_{1+delta}(M) / delta)`` rounds.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.bilinear import BilinearAlgorithm
from repro.algebra.polynomial import decode_minplus, encode_minplus
from repro.algebra.semirings import MIN_PLUS
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.engine import EngineBindingError, EngineSession
from repro.matmul.bilinear_clique import bilinear_matmul
from repro.matmul.ringops import POLYNOMIAL_RING
from repro.matmul.semiring3d import semiring_matmul


def distance_product(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    *,
    with_witnesses: bool = False,
    phase: str = "distance-product",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Exact distance product via the 3D semiring engine (Theorem 1 + §3.3)."""
    return semiring_matmul(
        clique, s, t, MIN_PLUS, with_witnesses=with_witnesses, phase=phase
    )


class RingDistanceSession(EngineSession):
    """Lemma 18 as an engine session: min-plus products on the §2.2 engine.

    Binds the capped polynomial embedding once -- entries in
    ``{0..max_entry} + {inf}`` become monomials, products run on the
    bilinear ring engine, and results decode back to distances.  The
    session's ``closure``/``power`` loops then work unchanged with min-plus
    merge semantics, which is exactly how Lemma 19 iterates capped
    squarings.
    """

    def __init__(
        self,
        clique: CongestedClique,
        max_entry: int,
        *,
        algorithm: BilinearAlgorithm | None = None,
    ) -> None:
        if max_entry < 0:
            raise ValueError(f"max_entry must be >= 0, got {max_entry}")
        super().__init__(clique, "bilinear", POLYNOMIAL_RING, algorithm=algorithm)
        # The transport ring is internal; closure/power merge in min-plus.
        self._poly_ring = self._ring
        self._ring = None
        self.algebra = MIN_PLUS
        self.max_entry = max_entry

    def multiply(
        self,
        x: np.ndarray,
        y: np.ndarray,
        *,
        with_witnesses: bool = False,
        phase: str = "lemma18",
    ) -> np.ndarray:
        if with_witnesses:
            raise EngineBindingError(
                "Lemma 18 products have no native witnesses (Lemma 21 "
                "recovers them; see repro.matmul.witnesses)"
            )
        degree = self.max_entry + 1
        es = encode_minplus(np.asarray(x, dtype=np.int64), self.max_entry, degree)
        et = encode_minplus(np.asarray(y, dtype=np.int64), self.max_entry, degree)
        product = bilinear_matmul(
            self.clique, es, et, self.algorithm, ring=self._poly_ring, phase=phase
        )
        return decode_minplus(product)


def distance_product_ring(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    max_entry: int,
    algorithm: BilinearAlgorithm | None = None,
    *,
    phase: str = "lemma18",
) -> np.ndarray:
    """Lemma 18: distance product of small-entry matrices over a ring.

    Entries of ``s`` and ``t`` strictly above ``max_entry`` are treated as
    ``+inf`` (this is how the iterated-squaring callers cap distances).
    Output entries are exact distances ``<= 2 max_entry`` or ``INF``.
    One-shot wrapper over :class:`RingDistanceSession`.
    """
    return RingDistanceSession(clique, max_entry, algorithm=algorithm).multiply(
        s, t, phase=phase
    )


def scaling_levels(max_entry: int, delta: float) -> int:
    """Number of scales Lemma 20 needs: ``1 + ceil(log_{1+delta} M)``."""
    if delta <= 0:
        raise ValueError(f"delta must be positive, got {delta}")
    if max_entry <= 1:
        return 1
    return 1 + math.ceil(math.log(max_entry) / math.log(1.0 + delta))


def approx_distance_product(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    delta: float,
    algorithm: BilinearAlgorithm | None = None,
    *,
    phase: str = "lemma20",
) -> np.ndarray:
    """Lemma 20: ``(1 + delta)``-approximate distance product.

    Returns ``P~`` with ``P <= P~ <= (1 + delta) P`` entrywise, where ``P``
    is the true distance product.  Rounds:
    ``O(n^{rho} log_{1+delta}(M) / delta)`` -- one capped Lemma 18 product
    per scale ``i``, each with entries bounded by ``ceil(2 (1+delta)/delta)``.
    """
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    finite_max = 0
    for mat in (s, t):
        finite = mat[mat < INF]
        if finite.size:
            finite_max = max(finite_max, int(finite.max()))
    # Every node learns the global magnitude bound (1 broadcast round); the
    # scale family below is then agreed upon by all nodes.
    clique.broadcast([finite_max] * clique.n, words=1, phase=f"{phase}/max")

    levels = scaling_levels(finite_max, delta)
    capped = math.ceil(2.0 * (1.0 + delta) / delta)
    # One Lemma 18 session serves every scale: the cap (and so the
    # polynomial degree, layouts and plans) is scale-independent.
    session = RingDistanceSession(clique, capped, algorithm=algorithm)
    best = np.full(s.shape[:2], INF, dtype=np.int64)
    for i in range(levels):
        scale = (1.0 + delta) ** i
        bound = 2.0 * (1.0 + delta) ** (i + 1) / delta
        s_i = _scaled(s, scale, bound)
        t_i = _scaled(t, scale, bound)
        p_i = session.multiply(s_i, t_i, phase=f"{phase}/scale{i}")
        finite = p_i < INF
        candidate = np.full_like(best, INF)
        candidate[finite] = np.floor(scale * p_i[finite]).astype(np.int64)
        best = np.minimum(best, candidate)
    return best


def _scaled(matrix: np.ndarray, scale: float, bound: float) -> np.ndarray:
    """The Lemma 20 scaled matrix: ``ceil(x / scale)`` where ``x <= bound``."""
    out = np.full(matrix.shape, INF, dtype=np.int64)
    keep = (matrix < INF) & (matrix <= bound)
    out[keep] = np.ceil(matrix[keep] / scale).astype(np.int64)
    return out


__all__ = [
    "distance_product",
    "distance_product_ring",
    "RingDistanceSession",
    "approx_distance_product",
    "scaling_levels",
]
