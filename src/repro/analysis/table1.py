"""Regenerate the paper's Table 1 from measured simulation runs.

For every problem row, runs our implementation over a sweep of clique sizes,
records the metered round counts, fits the empirical growth exponent, and
prints it next to (a) the paper's bound, (b) the prior-work bound, and --
for the prior work we implemented (Dolev et al.) -- the prior work's
*measured* rounds, so the "who wins, by what factor" comparisons are
measured rather than asserted.

The paper's headline exponent ``rho <= 1 - 2/omega < 0.15715`` assumes
Le Gall's galactic algorithm; the code deploys Strassen, so the implemented
target exponent for the ``n^rho`` rows is ``1 - 2/log2(7) ~ 0.2876``
(:data:`repro.constants.RHO_IMPLEMENTED`).  See DESIGN.md.

Usage: ``python benchmarks/table1_harness.py [--full]`` or
:func:`run_table1` / :func:`format_table1` programmatically.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.baselines.dolev import dolev_four_cycle_detect, dolev_triangle_count
from repro.clique.model import CongestedClique
from repro.constants import RHO_IMPLEMENTED, RHO_PAPER
from repro.distances.approx import apsp_approx
from repro.distances.apsp import apsp_exact
from repro.distances.bounded import apsp_bounded
from repro.distances.girth import girth_undirected
from repro.distances.seidel import apsp_unweighted
from repro.graphs.generators import (
    bipartite_random_graph,
    dense_small_girth_graph,
    gnp_random_graph,
    planted_cycle_graph,
    random_weighted_digraph,
)
from repro.matmul.bilinear_clique import bilinear_matmul, default_algorithm
from repro.matmul.exponent import fit_exponent
from repro.matmul.semiring3d import semiring_matmul
from repro.subgraphs.colour_coding import detect_k_cycle
from repro.subgraphs.counting import count_four_cycles, count_triangles
from repro.subgraphs.four_cycle import detect_four_cycles


@dataclass
class ProblemReport:
    """One Table 1 row, measured."""

    problem: str
    sizes: list[int]
    rounds: list[int]
    paper_bound: str
    prior_bound: str
    prior_rounds: list[int] | None = None
    notes: str = ""
    extras: dict = field(default_factory=dict)

    @property
    def fitted_exponent(self) -> float:
        return fit_exponent(self.sizes, [max(1, r) for r in self.rounds])

    @property
    def prior_fitted_exponent(self) -> float | None:
        if self.prior_rounds is None:
            return None
        return fit_exponent(self.sizes, [max(1, r) for r in self.prior_rounds])


def _quick(scale: str, quick: list[int], full: list[int]) -> list[int]:
    return quick if scale == "quick" else quick + full


def run_table1(scale: str = "quick", seed: int = 0) -> list[ProblemReport]:
    """Run every Table 1 workload; ``scale`` is ``"quick"`` or ``"full"``."""
    if scale not in ("quick", "full"):
        raise ValueError(f"scale must be 'quick' or 'full', got {scale!r}")
    rng = np.random.default_rng(seed)
    reports: list[ProblemReport] = []

    # -- matrix multiplication (semiring), Theorem 1 / §2.1 -------------- #
    sizes = _quick(scale, [27, 64, 125], [216])
    rounds = []
    for n in sizes:
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        semiring_matmul(clique, s, t)
        rounds.append(clique.rounds)
    reports.append(
        ProblemReport(
            problem="matrix multiplication (semiring)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O(n^{1/3})  [exp 0.333]",
            prior_bound="-- (naive O(n))",
        )
    )

    # -- matrix multiplication (ring), Theorem 1 / §2.2 ------------------ #
    sizes = _quick(scale, [49, 100, 144], [196, 256])
    rounds = []
    for n in sizes:
        s = rng.integers(-9, 10, (n, n), dtype=np.int64)
        t = rng.integers(-9, 10, (n, n), dtype=np.int64)
        clique = CongestedClique(n)
        bilinear_matmul(clique, s, t, default_algorithm(n))
        rounds.append(clique.rounds)
    reports.append(
        ProblemReport(
            problem="matrix multiplication (ring)",
            sizes=sizes,
            rounds=rounds,
            paper_bound=f"O(n^0.158) w/ Le Gall; Strassen target {RHO_IMPLEMENTED:.3f}",
            prior_bound="O(n^0.373) [Drucker et al., analytic]",
        )
    )

    # -- triangle counting vs the Dolev baseline ------------------------- #
    sizes = _quick(scale, [16, 49, 100], [196])
    ours, prior = [], []
    for n in sizes:
        g = gnp_random_graph(n, 0.3, seed=seed + n)
        ours.append(count_triangles(g, method="bilinear").rounds)
        prior.append(dolev_triangle_count(g).rounds)
    reports.append(
        ProblemReport(
            problem="triangle counting",
            sizes=sizes,
            rounds=ours,
            paper_bound=f"O(n^rho)  [target {RHO_IMPLEMENTED:.3f}]",
            prior_bound="O(n^{1/3}/log n) [Dolev et al., measured]",
            prior_rounds=prior,
        )
    )

    # -- 4-cycle detection: Theorem 4 vs the Dolev baseline -------------- #
    # Constant average degree keeps the detector in the interesting tiling
    # branch (dense graphs short-circuit through the 2-round pigeonhole).
    sizes = _quick(scale, [16, 36, 64, 100], [144, 196])
    ours, prior = [], []
    for n in sizes:
        g = bipartite_random_graph(n, 4.0 / n, seed=seed + n)
        ours.append(detect_four_cycles(g).rounds)
        prior.append(dolev_four_cycle_detect(g).rounds)
    reports.append(
        ProblemReport(
            problem="4-cycle detection",
            sizes=sizes,
            rounds=ours,
            paper_bound="O(1)  [exp 0.0]",
            prior_bound="O(n^{1/2}/log n) [Dolev et al., measured]",
            prior_rounds=prior,
        )
    )

    # -- 4-cycle counting ------------------------------------------------- #
    sizes = _quick(scale, [16, 49, 100], [196])
    rounds = []
    for n in sizes:
        g = gnp_random_graph(n, 0.3, seed=seed + 7 * n)
        rounds.append(count_four_cycles(g, method="bilinear").rounds)
    reports.append(
        ProblemReport(
            problem="4-cycle counting",
            sizes=sizes,
            rounds=rounds,
            paper_bound=f"O(n^rho)  [target {RHO_IMPLEMENTED:.3f}]",
            prior_bound="O(n^{1/2}/log n) [Dolev et al.]",
        )
    )

    # -- k-cycle detection (k = 5, fixed trial budget) -------------------- #
    sizes = _quick(scale, [16, 49], [100])
    rounds = []
    for n in sizes:
        g = planted_cycle_graph(n, 5, seed=seed + n, extra_edge_prob=0.5)
        res = detect_k_cycle(g, 5, trials=2, rng=np.random.default_rng(seed))
        rounds.append(res.rounds)
    reports.append(
        ProblemReport(
            problem="5-cycle detection (2 colourings)",
            sizes=sizes,
            rounds=rounds,
            paper_bound=f"2^O(k) n^rho log n  [growth target {RHO_IMPLEMENTED:.3f}]",
            prior_bound="O(n^{1-2/k}/log n) [Dolev et al.]",
            notes="fixed 2-colouring budget isolates the n-growth",
        )
    )

    # -- girth ------------------------------------------------------------ #
    sizes = _quick(scale, [16, 25, 36], [64])
    rounds = []
    for n in sizes:
        g = dense_small_girth_graph(n, seed=seed + n)
        res = girth_undirected(
            g, trials_per_k=8, rng=np.random.default_rng(seed + n)
        )
        rounds.append(res.rounds)
    reports.append(
        ProblemReport(
            problem="girth (undirected)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O~(n^rho)",
            prior_bound="-- (first algorithm)",
            notes="dense branch; trials capped at 8/length",
        )
    )

    # -- weighted directed APSP (exact, Corollary 6) ----------------------- #
    sizes = _quick(scale, [27, 64], [125])
    rounds = []
    for n in sizes:
        g = random_weighted_digraph(n, 0.3, 9, seed=seed + n)
        rounds.append(apsp_exact(g).rounds)
    reports.append(
        ProblemReport(
            problem="weighted directed APSP (exact)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O(n^{1/3} log n)  [exp ~0.333+]",
            prior_bound="-- (none)",
        )
    )

    # -- APSP with weighted diameter U (Corollary 8 workload) -------------- #
    sizes = _quick(scale, [16, 49], [100])
    rounds = []
    for n in sizes:
        g = random_weighted_digraph(n, 0.6, 3, seed=seed + n)
        rounds.append(apsp_bounded(g, 8).rounds)
    reports.append(
        ProblemReport(
            problem="weighted APSP, diameter U=8 (Lemma 19)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O(U n^rho)",
            prior_bound="-- (none)",
        )
    )

    # -- (1 + o(1))-approximate APSP (Theorem 9) --------------------------- #
    sizes = _quick(scale, [16], [49])
    rounds = []
    ratio = []
    for n in sizes:
        g = random_weighted_digraph(n, 0.4, 20, seed=seed + n)
        res = apsp_approx(g, delta=0.25)
        rounds.append(res.rounds)
        ratio.append(res.extras["ratio_bound"])
    reports.append(
        ProblemReport(
            problem="(1+o(1))-approx APSP (delta=0.25)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O(n^{rho+o(1)})",
            prior_bound="(2+o(1))-approx in O~(n^{1/2}) [Nanongkai, analytic]",
            extras={"ratio_bounds": ratio},
        )
    )

    # -- unweighted undirected APSP (Corollary 7, Seidel) ------------------ #
    sizes = _quick(scale, [16, 49, 100], [196])
    rounds = []
    for n in sizes:
        g = gnp_random_graph(n, 0.2, seed=seed + n)
        rounds.append(apsp_unweighted(g).rounds)
    reports.append(
        ProblemReport(
            problem="unweighted undirected APSP (Seidel)",
            sizes=sizes,
            rounds=rounds,
            paper_bound="O~(n^rho)",
            prior_bound="(2+o(1))-approx in O~(n^{1/2}) [Nanongkai, analytic]",
        )
    )
    return reports


def format_table1(reports: list[ProblemReport]) -> str:
    """Render the measured Table 1 as aligned text."""
    lines = [
        "=" * 100,
        "Table 1 (reproduced): measured round counts on the congested-clique simulator",
        f"paper rho = {RHO_PAPER:.5f} (Le Gall);  implemented rho = "
        f"{RHO_IMPLEMENTED:.5f} (Strassen)",
        "=" * 100,
    ]
    for rep in reports:
        lines.append(f"\n{rep.problem}")
        lines.append(f"  paper bound : {rep.paper_bound}")
        lines.append(f"  prior work  : {rep.prior_bound}")
        size_row = "  ".join(f"{n:>7d}" for n in rep.sizes)
        our_row = "  ".join(f"{r:>7d}" for r in rep.rounds)
        lines.append(f"  n           : {size_row}")
        lines.append(f"  rounds      : {our_row}")
        lines.append(f"  fitted exp  : {rep.fitted_exponent:+.3f}")
        if rep.prior_rounds is not None:
            prior_row = "  ".join(f"{r:>7d}" for r in rep.prior_rounds)
            lines.append(f"  prior rounds: {prior_row}")
            lines.append(f"  prior exp   : {rep.prior_fitted_exponent:+.3f}")
            at_max = rep.sizes.index(max(rep.sizes))
            ours, theirs = rep.rounds[at_max], rep.prior_rounds[at_max]
            if ours and theirs:
                lines.append(
                    f"  speedup at n={rep.sizes[at_max]}: "
                    f"{theirs / max(1, ours):.2f}x"
                )
        if rep.notes:
            lines.append(f"  notes       : {rep.notes}")
    lines.append("")
    return "\n".join(lines)


__all__ = ["ProblemReport", "run_table1", "format_table1"]
