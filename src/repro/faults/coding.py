"""Systematic Reed-Solomon striping over GF(2^16) for encoded exchanges.

The replication scheme (:class:`~repro.faults.protocol.RobustClique`) buys
fault tolerance with ``c = 2t + 1`` full copies of every piece -- a
``2t + 1``-factor round overhead.  This module implements the shape the
LDC-based robust-computation compilers (Censor-Hillel-Fischer-Gelles-Soto,
arXiv:2508.08740) point at: *encode* the exchange with an error-correcting
code so tolerance costs a constant rate factor instead.

Every int64 word is four GF(2^16) symbols.  A piece of ``W`` words is cut
into ``k`` data stripes of ``S = ceil(W / (n - 2t))`` words each
(``k = ceil(W / S)``), and ``2t`` parity stripes are appended -- a
systematic Reed-Solomon code of length ``m = k + 2t <= n``, applied
column-wise across stripes (symbol position ``s`` of all ``m`` stripes is
one RS codeword).  Each stripe transits a distinct relay
(:func:`repro.clique.scheduling.disjoint_relays` with ``copies = m``), so
``t`` corrupt relay *nodes* touch at most ``t`` stripes of any piece:

* ``t`` corrupted stripes (flip / byzantine) are *corrected* -- located by
  Peterson-Gorenstein-Zierler over aggregated syndromes, valued by a
  Vandermonde solve, and verified by a full syndrome recheck;
* ``2t`` dropped stripes (drop / crash) are known erasures and are
  recovered directly;
* anything beyond the budget fails the (vectorised) syndrome check loudly
  -- ``ok`` comes back False and the caller re-ships or raises, never
  returning an unverified word.

The round bill per piece drops from ``(2t + 1) * w`` to
``m * ceil(w / k) ~ w * n / (n - 2t)``.

Decoding guarantees: with at most ``t`` corrupted stripes and ``f``
dropped stripes satisfying ``2t_err + f <= 2t``, the decode is exact
(classical RS unique decoding).  Error *location* aggregates the per-column
syndromes with two independent multiplier vectors; a corrupted stripe
escapes both aggregations only if its error values satisfy two independent
GF(2^16) linear relations, in which case the final syndrome recheck still
fails loudly and the exchange is retried through fresh relays -- the
detect-retry-degrade contract, never a silent wrong word.
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

# --------------------------------------------------------------------- #
# GF(2^16) arithmetic
# --------------------------------------------------------------------- #

#: x^16 + x^12 + x^3 + x + 1 -- a primitive polynomial over GF(2), so
#: alpha = x (= 2) generates the full multiplicative group of order 2^16-1.
_GF_POLY = 0x1100B
GF_ORDER = (1 << 16) - 1

#: Log sentinel for 0: big enough that (sentinel + any valid log) indexes
#: the zero region of the product table, so multiplication needs no mask.
_LOG_ZERO = 1 << 17


def _build_tables() -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
    exp = np.zeros(2 * GF_ORDER, dtype=np.uint16)
    log = np.zeros(1 << 16, dtype=np.int32)
    x = 1
    for i in range(GF_ORDER):
        exp[i] = x
        log[x] = i
        x <<= 1
        if x & 0x10000:
            x ^= _GF_POLY
    assert x == 1, "generator must have full order (primitive polynomial)"
    exp[GF_ORDER:] = exp[:GF_ORDER]
    logz = log.copy()
    logz[0] = _LOG_ZERO
    # mult[i + j] for i, j log-or-sentinel values: products of two nonzero
    # elements land below 2 * (GF_ORDER - 1) < _LOG_ZERO; anything
    # involving the sentinel lands in the zero-initialised tail.
    mult = np.zeros(2 * _LOG_ZERO + 1, dtype=np.uint16)
    mult[: 2 * GF_ORDER] = exp
    return exp, log, logz, mult


_EXP, _LOG, _LOGZ, _MULT = _build_tables()


def gf_mul(a: np.ndarray, b: np.ndarray) -> np.ndarray:
    """Elementwise GF(2^16) product of two uint16 arrays (broadcasting)."""
    return _MULT[_LOGZ[a] + _LOGZ[b]]


def _mul(a: int, b: int) -> int:
    return int(_MULT[int(_LOGZ[a]) + int(_LOGZ[b])])


def _inv(a: int) -> int:
    if a == 0:
        raise ZeroDivisionError("GF(2^16) inverse of 0")
    return int(_EXP[GF_ORDER - int(_LOG[a])])


def _alpha_pow(e: int) -> int:
    return int(_EXP[e % GF_ORDER])


def _poly_eval(coeffs: list[int], x: int) -> int:
    """Evaluate sum_i coeffs[i] * x^i (coefficients low to high)."""
    acc = 0
    for c in reversed(coeffs):
        acc = _mul(acc, x) ^ c
    return acc


def _gf_solve(rows: list[list[int]], rhs: list[int]) -> list[int] | None:
    """Solve a tiny dense GF(2^16) linear system; None when singular."""
    z = len(rhs)
    a = [list(r) + [v] for r, v in zip(rows, rhs)]
    for col in range(z):
        pivot = next((r for r in range(col, z) if a[r][col]), None)
        if pivot is None:
            return None
        a[col], a[pivot] = a[pivot], a[col]
        piv_inv = _inv(a[col][col])
        a[col] = [_mul(v, piv_inv) for v in a[col]]
        for r in range(z):
            if r != col and a[r][col]:
                factor = a[r][col]
                a[r] = [v ^ _mul(factor, p) for v, p in zip(a[r], a[col])]
    return [a[r][z] for r in range(z)]


# --------------------------------------------------------------------- #
# Code construction (cached per (k, t))
# --------------------------------------------------------------------- #


@lru_cache(maxsize=256)
def _generator_poly(t: int) -> tuple[int, ...]:
    """g(x) = prod_{r=1..2t} (x - alpha^r), coefficients low to high, monic."""
    g = [1]
    for r in range(1, 2 * t + 1):
        root = _alpha_pow(r)
        nxt = [0] * (len(g) + 1)
        for i, c in enumerate(g):
            nxt[i + 1] ^= c
            nxt[i] ^= _mul(c, root)
        g = nxt
    return tuple(g)


@lru_cache(maxsize=256)
def _parity_row_logs(k: int, t: int) -> np.ndarray:
    """``(k, 2t)`` log-or-sentinel of the systematic parity coefficients.

    Row ``j`` holds the coefficients of ``x^{2t+j} mod g(x)``: parity
    symbol ``u`` of a codeword is ``XOR_j data_j * rows[j, u]``, making
    ``c(x) = d(x) x^{2t} + p(x)`` divisible by ``g`` -- the systematic
    BCH-view Reed-Solomon encoding.
    """
    g = _generator_poly(t)
    d = 2 * t
    rows = np.zeros((k, d), dtype=np.uint16)
    rem = list(g[:d])
    for j in range(k):
        rows[j] = rem
        carry = rem[d - 1]
        rem = [0] + rem[: d - 1]
        if carry:
            for u in range(d):
                rem[u] ^= _mul(carry, g[u])
    return _LOGZ[rows]


def _coeff_positions(k: int, t: int) -> np.ndarray:
    """Codeword coefficient position of each shipped stripe.

    Shipped stripe order is data first (coefficients ``2t .. 2t+k-1``),
    then parity (coefficients ``0 .. 2t-1``).
    """
    return np.concatenate(
        [np.arange(k, dtype=np.int64) + 2 * t, np.arange(2 * t, dtype=np.int64)]
    )


@lru_cache(maxsize=256)
def _syndrome_logs(k: int, t: int) -> np.ndarray:
    """``(m, 2t)`` logs of alpha^{pos_j * r} for syndrome roots r = 1..2t."""
    pos = _coeff_positions(k, t)
    r = np.arange(1, 2 * t + 1, dtype=np.int64)
    return ((pos[:, None] * r[None, :]) % GF_ORDER).astype(np.int32)


@lru_cache(maxsize=64)
def _gamma_logs(length: int, stride: int) -> np.ndarray:
    """Aggregation multipliers gamma_s = alpha^{stride * s} as logs."""
    return ((np.arange(length, dtype=np.int64) * stride) % GF_ORDER).astype(
        np.int32
    )


# --------------------------------------------------------------------- #
# Striping plans
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class StripePlan:
    """How one exchange's pieces are striped: RS(m, k) over GF(2^16).

    Attributes:
        width: words per (padded) piece, ``W``.
        k: data stripes per piece.
        t: tolerated corrupt relays (``2t`` parity stripes).
        stripe_words: int64 words per stripe, ``S = ceil(W / k)``.
    """

    width: int
    k: int
    t: int
    stripe_words: int

    @property
    def m(self) -> int:
        """Total stripes per piece (code length)."""
        return self.k + 2 * self.t

    @property
    def symbols(self) -> int:
        """GF(2^16) symbols per stripe."""
        return 4 * self.stripe_words


@lru_cache(maxsize=4096)
def stripe_plan(width: int, n: int, tolerance: int) -> StripePlan:
    """The widest striping that keeps ``m <= n`` distinct relays per piece.

    ``S = ceil(W / (n - 2t))`` minimises the padded overhead
    ``m * S / W = 1 + 2t * S / W`` subject to the relay-disjointness bound;
    for ``W >= n - 2t`` this approaches the information-theoretic rate
    ``n / (n - 2t)``, and for tiny pieces it degrades gracefully to
    ``(W + 2t) / W`` (equal to replication only at ``W = 1``).
    """
    if tolerance < 1:
        raise ValueError(f"coded striping needs tolerance >= 1, got {tolerance}")
    if n - 2 * tolerance < 1:
        raise ValueError(
            f"RS striping needs n - 2t >= 1 data stripes "
            f"(n = {n}, t = {tolerance})"
        )
    if width < 0:
        raise ValueError(f"piece width must be non-negative, got {width}")
    if width == 0:
        return StripePlan(width=0, k=1, t=tolerance, stripe_words=0)
    stripe_words = -(-width // (n - 2 * tolerance))
    k = -(-width // stripe_words)
    return StripePlan(width=width, k=k, t=tolerance, stripe_words=stripe_words)


def _as_symbols(words: np.ndarray) -> np.ndarray:
    """View an int64 array as uint16 symbols on the last axis (x4)."""
    return np.ascontiguousarray(words).view(np.uint16)


def encode_stripes(blocks: np.ndarray, plan: StripePlan) -> np.ndarray:
    """Encode ``(P, ...)`` int64 pieces into ``(P * m, S)`` int64 stripes.

    Stripe ``i * m + j`` is stripe ``j`` of piece ``i``: data stripes
    ``j < k`` carry words ``[j*S, (j+1)*S)`` of the (zero-padded) piece,
    stripes ``j >= k`` carry the ``2t`` Reed-Solomon parity words.
    """
    p = blocks.shape[0]
    width = int(np.prod(blocks.shape[1:], dtype=np.int64))
    if width != plan.width:
        raise ValueError(
            f"pieces have {width} words but the plan stripes {plan.width}"
        )
    k, t, s = plan.k, plan.t, plan.stripe_words
    if s == 0 or p == 0:
        return np.zeros((p * plan.m, s), dtype=np.int64)
    sym = _as_symbols(blocks.reshape(p, width))
    data = np.zeros((p, k, 4 * s), dtype=np.uint16)
    data.reshape(p, -1)[:, : 4 * width] = sym
    row_logs = _parity_row_logs(k, t)
    data_logs = _LOGZ[data]
    parity = np.zeros((p, 2 * t, 4 * s), dtype=np.uint16)
    for j in range(k):
        contrib = _MULT[data_logs[:, j, None, :] + row_logs[j][None, :, None]]
        parity ^= contrib
    out = np.concatenate([data, parity], axis=1)
    return out.view(np.int64).reshape(p * plan.m, s)


def _syndromes(symbol_logs: np.ndarray, k: int, t: int) -> np.ndarray:
    """``(P, 2t, 4S)`` syndromes of ``(P, m, 4S)`` received symbol logs."""
    syn_logs = _syndrome_logs(k, t)
    p, m, cols = symbol_logs.shape
    syn = np.zeros((p, 2 * t, cols), dtype=np.uint16)
    for j in range(m):
        syn ^= _MULT[symbol_logs[:, j, None, :] + syn_logs[j][None, :, None]]
    return syn


def _pgz_locate(syndromes: tuple[int, ...], k: int, t: int) -> list[int] | None:
    """Peterson-Gorenstein-Zierler: corrupt stripe indices, or None.

    ``syndromes`` are the 2t aggregated syndromes S_1..S_2t.  Finds the
    largest ``nu <= t`` with a nonsingular Hankel system, solves the error
    locator ``sigma(x) = 1 + sigma_1 x + ... + sigma_nu x^nu``, and Chien-
    searches its roots over the ``m`` stripe locators.  Returns None when
    no consistent locator exists (location failed -- caller retries).
    """
    pos = _coeff_positions(k, t)
    for nu in range(t, 0, -1):
        rows = [
            [syndromes[j - i - 1] for i in range(1, nu + 1)]
            for j in range(nu + 1, 2 * nu + 1)
        ]
        rhs = [syndromes[j - 1] for j in range(nu + 1, 2 * nu + 1)]
        sigma = _gf_solve(rows, rhs)
        if sigma is None:
            continue
        locator = [1] + sigma
        roots = [
            j
            for j in range(len(pos))
            if _poly_eval(locator, _alpha_pow(-int(pos[j]))) == 0
        ]
        if len(roots) == nu:
            return roots
    return None


def _solve_values(
    syn: np.ndarray, stripes: list[int], k: int, t: int
) -> np.ndarray | None:
    """Per-column error values at known stripe positions.

    ``syn`` is ``(P, 2t, C)``; returns ``(P, z, C)`` uint16 corrections to
    XOR into the ``z`` named stripes, solved from the first ``z`` syndromes
    (the remaining ``2t - z`` act as the verification margin).  None when
    ``z`` exceeds the 2t-equation budget.
    """
    z = len(stripes)
    if z > 2 * t:
        return None
    pos = _coeff_positions(k, t)
    rows = [
        [_alpha_pow(int(pos[j]) * r) for j in stripes]
        for r in range(1, z + 1)
    ]
    inv = _gf_inv_matrix(rows)
    if inv is None:  # distinct positions => Vandermonde-like, never singular
        return None  # pragma: no cover - defensive
    p, _, cols = syn.shape
    syn_logs = _LOGZ[syn]
    out = np.zeros((p, z, cols), dtype=np.uint16)
    for l in range(z):
        for r in range(z):
            coeff = inv[l][r]
            if coeff:
                out[:, l, :] ^= _MULT[syn_logs[:, r, :] + int(_LOGZ[coeff])]
    return out


def _gf_inv_matrix(rows: list[list[int]]) -> list[list[int]] | None:
    """Invert a tiny GF(2^16) matrix via per-column solves."""
    z = len(rows)
    cols = []
    for c in range(z):
        rhs = [1 if r == c else 0 for r in range(z)]
        col = _gf_solve(rows, rhs)
        if col is None:
            return None
        cols.append(col)
    return [[cols[c][r] for c in range(z)] for r in range(z)]


def _aggregate(syn: np.ndarray, stride: int) -> np.ndarray:
    """``(P, 2t)`` aggregated syndromes ``T_r = XOR_s gamma_s * S_r[s]``."""
    gamma = _gamma_logs(syn.shape[2], stride)
    terms = _MULT[_LOGZ[syn] + gamma[None, None, :]]
    return np.bitwise_xor.reduce(terms, axis=2)


#: Aggregation strides tried in order; a corrupted stripe evades location
#: only if its error column-values satisfy one independent GF linear
#: relation per stride -- and even then the syndrome recheck fails loudly.
_AGGREGATION_STRIDES = (1, 7)


def decode_stripes(
    stripes: np.ndarray, dropped: np.ndarray, plan: StripePlan
) -> tuple[np.ndarray, np.ndarray]:
    """Decode one striped exchange back to pieces.

    Args:
        stripes: ``(P * m, S)`` (or ``(P, m, S)``) int64 received stripes.
        dropped: ``(P * m,)`` (or ``(P, m)``) bool known-erasure flags.
        plan: the :class:`StripePlan` the exchange was encoded with.

    Returns:
        ``(decoded, ok)``: ``decoded`` is ``(P, k * S)`` int64 -- the data
        words (callers trim to ``plan.width`` and reshape); ``ok`` is
        ``(P,)`` bool.  Pieces with ``ok`` False carry no guarantee and
        must be retried or raised on, never used.
    """
    k, t, s, m = plan.k, plan.t, plan.stripe_words, plan.m
    dropped = np.asarray(dropped, dtype=bool)
    p = dropped.size // m
    stripes = np.asarray(stripes).reshape(p, m, s)
    valid = ~dropped.reshape(p, m)
    ok = np.ones(p, dtype=bool)
    if s == 0 or p == 0:
        return np.zeros((p, k * s), dtype=np.int64), ok
    symbols = _as_symbols(stripes).reshape(p, m, 4 * s).copy()
    symbols[~valid] = 0
    syn = _syndromes(_LOGZ[symbols], k, t)
    clean = ~syn.reshape(p, -1).any(axis=1)
    erasures = (~valid).sum(axis=1)
    # A clean syndrome with f <= 2t erasures is already the unique
    # codeword within the erasure ball (the dropped stripes were zero).
    ok &= erasures <= 2 * t
    settled = (clean & ok) | ~ok

    # Known erasures: recover the dropped stripes per erasure pattern.
    erased = ~settled & (erasures > 0)
    if erased.any():
        idx = np.flatnonzero(erased)
        patterns, inverse = np.unique(valid[idx], axis=0, return_inverse=True)
        for g, pattern in enumerate(patterns):
            grp = idx[inverse == g]
            holes = [int(j) for j in np.flatnonzero(~pattern)]
            fixes = _solve_values(syn[grp], holes, k, t)
            if fixes is None:
                ok[grp] = False
                continue
            for l, j in enumerate(holes):
                symbols[grp, j, :] ^= fixes[:, l, :]
        redo = idx[ok[idx]]
        if redo.size:
            residual = _syndromes(_LOGZ[symbols[redo]], k, t)
            bad = residual.reshape(redo.size, -1).any(axis=1)
            # Errors on top of erasures: out of this decoder's sequential
            # budget -- fail loudly, the exchange layer re-ships.
            ok[redo[bad]] = False
        settled |= erased

    # Unknown error locations: locate (PGZ on aggregated syndromes),
    # correct, and verify with a full syndrome recheck.
    pending = np.flatnonzero(~settled)
    for stride in _AGGREGATION_STRIDES:
        if pending.size == 0:
            break
        agg = _aggregate(syn[pending], stride)
        patterns, inverse = np.unique(agg, axis=0, return_inverse=True)
        unresolved: list[np.ndarray] = []
        for g in range(patterns.shape[0]):
            grp = pending[inverse == g]
            located = _pgz_locate(tuple(int(v) for v in patterns[g]), k, t)
            fixes = (
                _solve_values(syn[grp], located, k, t)
                if located is not None
                else None
            )
            if fixes is None:
                unresolved.append(grp)
                continue
            for l, j in enumerate(located):
                symbols[grp, j, :] ^= fixes[:, l, :]
            residual = _syndromes(_LOGZ[symbols[grp]], k, t)
            bad = residual.reshape(grp.size, -1).any(axis=1)
            if bad.any():
                # Mislocated or partially located (aggregation collision):
                # XOR the attempted correction back out so the next stride
                # works on the pristine received word.
                for l, j in enumerate(located):
                    symbols[grp[bad], j, :] ^= fixes[bad, l, :]
                unresolved.append(grp[bad])
        pending = (
            np.concatenate(unresolved)
            if unresolved
            else np.zeros(0, dtype=np.int64)
        )
    ok[pending] = False

    data = symbols[:, :k, :].reshape(p, 4 * k * s)
    return np.ascontiguousarray(data).view(np.int64), ok


__all__ = [
    "GF_ORDER",
    "StripePlan",
    "decode_stripes",
    "encode_stripes",
    "gf_mul",
    "stripe_plan",
]
