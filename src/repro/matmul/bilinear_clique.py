"""Fast (bilinear) matrix multiplication on the clique (paper §2.2, Lemma 10).

Given any bilinear algorithm ``<d, d, d; m>`` with ``m <= n``, computes the
ring product ``P = S T`` on an ``n = q^2``-node clique in ``O(n^{1 - 2/sigma})``
rounds, where ``m = O(d^sigma)``.  The matrices are viewed as ``d x d`` block
matrices over the ring of ``(M/d) x (M/d)`` matrices; the bilinear
algorithm's ``m`` block products are farmed out one per node; the encode /
decode linear combinations (equations (1) and (2)) are computed locally
under a two-level partition in which node ``(x1, x2)`` owns cell
``(x1, x2)`` of every block (the paper's Figure 2).

Deviations from the paper's indexing, and why they are harmless:

* The paper takes a mixed-radix node id ``v1 v2 v3`` with ``v1 in [d]``,
  which needs ``d | sqrt(n)``.  We instead pad the *matrix* to
  ``M = d * q * c`` with ``c = ceil(q / d)`` and use the plain label
  ``(v div q, v mod q)``; padded rows/columns are identically zero and are
  materialised locally by receivers, so they cost no communication and only
  inflate local arithmetic by a ``(1 + d/q)^2`` factor.
* Strassen's algorithm (sigma = log2 7) stands in for the asymptotically
  best known bilinear algorithms, so the exponent realised by the running
  code is ``1 - 2/log2(7) ~ 0.2876`` rather than the paper's headline
  ``0.158`` (see DESIGN.md).

The algorithm is generic over :class:`repro.matmul.ringops.RingOps`; with
:data:`~repro.matmul.ringops.POLYNOMIAL_RING` it implements the Lemma 18
embedding (entries become coefficient vectors and widths are charged with
the ``O(M)`` blow-up).

Implementation note: all four communication phases run on the simulator's
**array-native fast path** -- :meth:`~repro.clique.model.CongestedClique.
route_array` for the entry distribution and row re-assembly and the block
all-to-alls :meth:`~repro.clique.model.CongestedClique.scatter_blocks` /
:meth:`~repro.clique.model.CongestedClique.gather_blocks` for the farm-out
and collection of the ``m`` block products.  The original per-payload tuple
formulation is retained as :func:`bilinear_matmul_tuple` -- the baseline the
perf report measures against and the oracle the equivalence tests charge
both paths against (rounds must be bit-identical).
"""

from __future__ import annotations

from dataclasses import dataclass
from functools import lru_cache

import numpy as np

from repro.algebra.bilinear import (
    BilinearAlgorithm,
    largest_strassen_level,
    strassen_power,
)
from repro.clique.arena import ExchangeArena
from repro.clique.messages import block_widths
from repro.clique.model import CongestedClique
from repro.errors import CliqueSizeError
from repro.matmul.layout import GridLayout
from repro.matmul.ringops import INTEGER_RING, RingOps


def default_algorithm(n: int) -> BilinearAlgorithm:
    """The deepest Strassen power whose product count fits the clique."""
    return strassen_power(largest_strassen_level(n))


@dataclass(frozen=True)
class GridPlan:
    """Input-independent schedule of one §2.2 product on an ``n``-clique.

    All destination/index arrays of the four exchanges are pure functions of
    ``(n, d)``; memoised via :func:`grid_plan` so iterated ring products
    (Lemma 19 squarings, Seidel levels, Boolean closures) replan nothing.
    """

    layout: GridLayout
    #: cell-column membership, ``(q, d*c)``: padded columns of cell-col x2.
    col_index: np.ndarray
    #: cell-row of each real matrix row, ``(n,)``.
    x1_of_row: np.ndarray
    #: step-1 destinations, ``(n, q)``: the q cell owners of each row.
    dests1: np.ndarray
    #: row offsets for cell-row 0 in (block, offset) emission order, ``(d*c,)``.
    r_grid: np.ndarray
    #: step-7 destinations per node (real rows only), ragged tuple of arrays.
    dests7: tuple[np.ndarray, ...]
    #: step-7 keep-mask per node (which of the d*c candidate rows are real).
    keep7: tuple[np.ndarray, ...]


@lru_cache(maxsize=None)
def grid_plan(n: int, d: int) -> GridPlan:
    """The memoised :class:`GridPlan` for an ``n = q^2``-clique and grid ``d``."""
    layout = GridLayout.for_clique(n, d)
    q, c = layout.q, layout.c
    block_rows = c * q
    rows = np.arange(n, dtype=np.int64)
    x1_of_row = (rows % block_rows) // c
    col_index = np.stack(
        [layout.indices_of_cell_axis(x2) for x2 in range(q)]
    )
    dests1 = x1_of_row[:, None] * q + np.arange(q, dtype=np.int64)[None, :]
    r_grid = (
        np.arange(d, dtype=np.int64)[:, None] * block_rows
        + np.arange(c, dtype=np.int64)[None, :]
    ).reshape(-1)
    dests7: list[np.ndarray] = []
    keep7: list[np.ndarray] = []
    for u in range(n):
        r_vals = r_grid + (u // q) * c
        keep = r_vals < n
        dests7.append(r_vals[keep])
        keep7.append(keep)
    return GridPlan(
        layout=layout,
        col_index=col_index,
        x1_of_row=x1_of_row,
        dests1=dests1,
        r_grid=r_grid,
        dests7=tuple(dests7),
        keep7=tuple(keep7),
    )


def phase_load_bounds(
    layout: GridLayout,
    m: int,
    *,
    entry_words: int,
    hat_words: int,
    prod_words: int,
    out_words: int | None = None,
) -> dict[str, int]:
    """Exact per-node load ceilings for the four §2.2 exchanges.

    Derived from the layout instead of a magic slack constant; a violation
    is an implementation bug, not padding noise.  With ``dc = m_padded / q``
    rows per cell-row and each width taken at the widest entry actually
    shipped in that phase (inputs for step 1, encoded combinations for
    step 3, block products for step 5, and *decoded* output cells for
    step 7 -- the equation-(2) sums can be a word wider than the products
    they combine):

    * **step 1** -- every node ships ``q`` pieces of ``2 dc`` entries
      (``2 m_padded`` entries sent); node ``(x1, x2)`` receives from the
      ``<= dc`` real rows in cell-row ``x1``, ``2 dc`` entries each.
    * **step 3** -- every node ships ``2 c^2`` entries to each of the ``m``
      product nodes; a product node receives ``2 c^2`` entries from all
      ``n = q^2`` nodes.
    * **step 5** -- each product node returns ``c^2`` entries to all ``n``
      nodes; every node receives ``c^2`` entries from the ``m`` workers.
    * **step 7** -- node ``(x1, x2)`` ships ``<= dc`` pieces of ``dc``
      entries; a row owner receives ``dc`` entries from each of its ``q``
      cell owners.

    The send/receive maxima are exactly the loads
    :func:`repro.matmul.exponent.predicted_bilinear_rounds` charges.
    """
    q, c, mm = layout.q, layout.c, layout.m_padded
    dc = mm // q  # = d * c, rows per cell-row
    if out_words is None:
        out_words = prod_words
    return {
        "step1": max(2 * mm, 2 * dc * dc) * entry_words,
        "step3": 2 * max(m, q * q) * c * c * hat_words,
        "step5": max(m, q * q) * c * c * prod_words,
        "step7": max(dc * dc, q * dc) * out_words,
    }


def _check_operands(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    algorithm: BilinearAlgorithm | None,
) -> tuple[BilinearAlgorithm, GridLayout]:
    n = clique.n
    if algorithm is None:
        algorithm = default_algorithm(n)
    if algorithm.m > n:
        raise CliqueSizeError(
            f"bilinear algorithm {algorithm.name} needs m={algorithm.m} <= n={n}"
        )
    layout = GridLayout.for_clique(n, algorithm.d)
    if np.asarray(s).shape[:2] != (n, n) or np.asarray(t).shape[:2] != (n, n):
        raise ValueError(f"operands must be {n} x {n} (+ ring axes)")
    return algorithm, layout


def bilinear_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    algorithm: BilinearAlgorithm | None = None,
    *,
    ring: RingOps = INTEGER_RING,
    phase: str = "bilinear",
    arena: ExchangeArena | None = None,
) -> np.ndarray:
    """Multiply over a ring with a bilinear algorithm (Theorem 1, ring part).

    Args:
        clique: an ``n``-node clique with ``n`` a perfect square.
        s: left operand, shape ``(n, n)`` (+ trailing ring axes); row ``v``
            owned by node ``v``.
        t: right operand, same convention.
        algorithm: the bilinear algorithm to deploy; defaults to the deepest
            Strassen power with ``7^l <= n``.
        ring: local block arithmetic and word-width rules.
        phase: cost-meter label prefix.
        arena: per-session :class:`~repro.clique.arena.ExchangeArena` for
            the GridPlan-sized padded operands, send stacks and local cell
            grids; ``None`` uses a fresh throwaway arena (identical results
            and charges).  Zero padding is written once at buffer birth and
            preserved across reuses (only real positions are rewritten).

    Returns:
        ``P = S T`` with the same shape convention as the inputs.
    """
    n = clique.n
    algorithm, layout = _check_operands(clique, s, t, algorithm)
    plan = grid_plan(n, algorithm.d)
    q, d, c, mm = layout.q, layout.d, layout.c, layout.m_padded
    m = algorithm.m
    trailing = np.asarray(s).shape[2:]
    nt = len(trailing)
    word_bits = clique.word_bits
    block_rows = c * q
    side = q * c
    if arena is None:
        arena = ExchangeArena()

    # Padded operands: the padding rows/columns are identically zero; arena
    # buffers are born zeroed and only the real [:n, :n] region is ever
    # rewritten, so the invariant survives reuse.
    sp = arena.buffer("grid/sp", (mm, mm) + trailing)
    tp = arena.buffer("grid/tp", (mm, mm) + trailing)
    sp[:n, :n] = s
    tp[:n, :n] = t

    # col_index[x2] = the d*c padded columns in cell-column x2.
    col_index = plan.col_index  # (q, d*c)
    dc = d * c

    # -------- Step 1: distribute the entries (2 M words per node). ------ #
    # Node v ships, for each x2, the (S, T) column slices of its row that
    # land in cell (x1(v), x2) -- one (2, d*c) piece per destination.
    s_pieces = sp[:n][:, col_index]  # (n, q, dc) + trailing
    t_pieces = tp[:n][:, col_index]
    widths1 = np.maximum(
        1,
        block_widths(s_pieces.reshape(n * q, -1), word_bits).reshape(n, q)
        + block_widths(t_pieces.reshape(n * q, -1), word_bits).reshape(n, q),
    )
    blocks1 = arena.buffer("grid/blocks1", (n, q, 2, dc) + trailing)
    blocks1[:, :, 0] = s_pieces
    blocks1[:, :, 1] = t_pieces
    entry_w = max(
        1, ring.entry_words(sp, word_bits), ring.entry_words(tp, word_bits)
    )
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=1, prod_words=1
    )
    inboxes = clique.route_array(
        plan.dests1,
        blocks1,
        widths=widths1,
        phase=f"{phase}/step1-distribute",
        expect_max_load=bounds["step1"],
    )

    # Assemble the local cell grid LS/LT[i, j] in (d, d, c, c, ...) layout.
    # The scatter pattern below is static (same real-sender positions every
    # product), so the zero padding of the arena grids persists.
    local_s = arena.buffer("grid/local_s", (n, d, d, c, c) + trailing)
    local_t = arena.buffer("grid/local_t", (n, d, d, c, c) + trailing)
    for u in range(n):
        inbox = inboxes[u]
        src = inbox.sources
        i_arr = src // block_rows
        tt_arr = (src % block_rows) % c
        pieces = inbox.blocks.reshape((src.shape[0], 2, d, c) + trailing)
        local_s[u][i_arr, :, tt_arr] = pieces[:, 0]
        local_t[u][i_arr, :, tt_arr] = pieces[:, 1]

    # -------- Step 2: encode (equation (1)) -- local. ------------------- #
    enc_a, enc_b = algorithm.encode_matrices()
    flat_s = local_s.reshape((n, d * d, c, c) + trailing)
    flat_t = local_t.reshape((n, d * d, c, c) + trailing)
    # (m, n, c, c, ...) -> (n, m, c, c, ...): cell (x1, x2) of each S^(w).
    s_hats = np.tensordot(enc_a, flat_s, axes=([1], [1])).swapaxes(0, 1)
    t_hats = np.tensordot(enc_b, flat_t, axes=([1], [1])).swapaxes(0, 1)

    # -------- Step 3: farm the linear combinations out to the workers. --- #
    # Node (x1, x2) sends cell (x1, x2) of S^(w), T^(w) to node w;
    # O(n^{2-2/sigma}) words per node.  A block all-to-all onto nodes < m.
    hat_entry_w = max(
        ring.entry_words(s_hats, word_bits), ring.entry_words(t_hats, word_bits)
    )
    widths3 = np.maximum(
        1,
        block_widths(s_hats.reshape(n * m, -1), word_bits).reshape(n, m)
        + block_widths(t_hats.reshape(n * m, -1), word_bits).reshape(n, m),
    )
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w, prod_words=1
    )
    # (m, n, 2, c, c, ...): worker w's cells from every node.
    hats = clique.scatter_blocks(
        np.stack([s_hats, t_hats], axis=2),
        widths=list(widths3),
        phase=f"{phase}/step3-scatter-hats",
        expect_max_load=bounds["step3"],
    )

    # -------- Step 4: the m block products -- local at nodes w < m. ----- #
    # Sender u = (x1, x2) owns cell (x1, x2): un-interleave the (q, q) grid
    # of (c, c) cells into full (side, side) operands.  The m products run
    # as one batched executor call (sharded backends partition the worker
    # range).
    grid_axes = (0, 2, 1, 3) + tuple(range(4, 4 + nt))
    full = (
        hats.reshape((m, q, q, 2, c, c) + trailing)
        .transpose((0, 3, 1, 4, 2, 5) + tuple(range(6, 6 + nt)))
        .reshape((m, 2, side, side) + trailing)
    )
    p_hat = clique.executor.ring_products(
        ring, np.ascontiguousarray(full[:, 0]), np.ascontiguousarray(full[:, 1])
    )
    # Ring products may widen the entry representation (the polynomial ring's
    # degree grows under convolution), so downstream buffers use the output
    # trailing shape.
    trailing_out = p_hat.shape[3:]
    nto = len(trailing_out)

    # -------- Step 5: collect the products back at the cell owners. ------ #
    cells_back = (
        p_hat.reshape((m, q, c, q, c) + trailing_out)
        .transpose((0, 1, 3, 2, 4) + tuple(range(5, 5 + nto)))
        .reshape((m, n, c, c) + trailing_out)
    )
    prod_entry_w = ring.entry_words(p_hat, word_bits)
    widths5 = np.maximum(
        1, block_widths(cells_back.reshape(m * n, -1), word_bits).reshape(m, n)
    )
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w,
        prod_words=prod_entry_w,
    )
    # (n, m, c, c, ...): node u's stack of product cells, indexed by w.
    stacks = clique.gather_blocks(
        cells_back,
        widths=list(widths5),
        phase=f"{phase}/step5-scatter-products",
        expect_max_load=bounds["step5"],
    )

    # -------- Step 6: decode (equation (2)) -- local. ------------------- #
    dec = algorithm.decode_matrix()  # (d*d, m)
    p_cells = (
        np.tensordot(dec, stacks, axes=([1], [1]))
        .swapaxes(0, 1)
        .reshape((n, d, d, c, c) + trailing_out)
    )

    # -------- Step 7: re-assemble rows at their owners. ------------------ #
    # Node (x1, x2) owns cell rows {i * block_rows + x1 c + tt}; each piece
    # is the (d, c) slab of columns the cell contributes to that row.
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w,
        prod_words=prod_entry_w,
        out_words=ring.entry_words(p_cells, word_bits),
    )
    blocks7: list[np.ndarray] = []
    widths7: list[np.ndarray] = []
    for u in range(n):
        pieces = (
            p_cells[u]
            .transpose(grid_axes)
            .reshape((dc, d, c) + trailing_out)[plan.keep7[u]]
        )
        blocks7.append(pieces)
        widths7.append(
            np.maximum(
                1,
                block_widths(pieces.reshape(pieces.shape[0], -1), word_bits),
            )
        )
    inboxes = clique.route_array(
        list(plan.dests7),
        blocks7,
        widths=widths7,
        phase=f"{phase}/step7-assemble",
        expect_max_load=bounds["step7"],
    )

    p = np.zeros((n, n) + trailing_out, dtype=np.int64)
    row = np.zeros((mm,) + trailing_out, dtype=np.int64)
    for v in range(n):
        inbox = inboxes[v]
        x2_arr = inbox.sources % q  # one distinct cell column per sender
        cols = col_index[x2_arr].reshape(-1)
        row[:] = 0
        row[cols] = inbox.blocks.reshape((cols.shape[0],) + trailing_out)
        p[v] = row[:n]
    return p


def bilinear_matmul_tuple(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    algorithm: BilinearAlgorithm | None = None,
    *,
    ring: RingOps = INTEGER_RING,
    phase: str = "bilinear",
) -> np.ndarray:
    """The retained per-payload tuple formulation of :func:`bilinear_matmul`.

    Charges bit-identical rounds to the array path (equivalence-tested) but
    pays a Python-level cost per payload; kept as the perf-report baseline
    and the round-accounting oracle, exactly like the cube kernels in
    :mod:`repro.algebra.semirings`.
    """
    n = clique.n
    algorithm, layout = _check_operands(clique, s, t, algorithm)
    q, d, c, mm = layout.q, layout.d, layout.c, layout.m_padded
    trailing = np.asarray(s).shape[2:]
    word_bits = clique.word_bits

    sp = np.zeros((mm, mm) + trailing, dtype=np.int64)
    tp = np.zeros((mm, mm) + trailing, dtype=np.int64)
    sp[:n, :n] = s
    tp[:n, :n] = t

    cols_of = [layout.indices_of_cell_axis(x2) for x2 in range(q)]

    # -------- Step 1: distribute the entries (2 M words per node). ------ #
    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(n)]
    for v in range(n):
        i, x1, tt = layout.row_position(v)
        for x2 in range(q):
            dest = layout.node_of_label(x1, x2)
            s_piece = sp[v, cols_of[x2]]
            t_piece = tp[v, cols_of[x2]]
            width = ring.array_words(s_piece, word_bits) + ring.array_words(
                t_piece, word_bits
            )
            outboxes[v].append((dest, (v, s_piece, t_piece), max(1, width)))
    entry_w = max(
        1, ring.entry_words(sp, word_bits), ring.entry_words(tp, word_bits)
    )
    bounds = phase_load_bounds(
        layout, algorithm.m, entry_words=entry_w, hat_words=1, prod_words=1
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step1-distribute",
        expect_max_load=bounds["step1"],
    )

    # Assemble the local cell grid LS/LT[i, j] in (d, d, c, c, ...) layout.
    block_rows = c * q
    local_s: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    local_t: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for u in range(n):
        ls = np.zeros((d, d, c, c) + trailing, dtype=np.int64)
        lt = np.zeros((d, d, c, c) + trailing, dtype=np.int64)
        for _src, (v, s_piece, t_piece) in inboxes[u]:
            i = v // block_rows
            tt = (v % block_rows) % c
            ls[i, :, tt, :] = s_piece.reshape((d, c) + trailing)
            lt[i, :, tt, :] = t_piece.reshape((d, c) + trailing)
        local_s[u] = ls
        local_t[u] = lt

    # -------- Step 2: encode (equation (1)) -- local. ------------------- #
    enc_a, enc_b = algorithm.encode_matrices()
    m = algorithm.m
    s_hats: list[np.ndarray] = []
    t_hats: list[np.ndarray] = []
    for u in range(n):
        flat_s = local_s[u].reshape((d * d,) + (c, c) + trailing)
        flat_t = local_t[u].reshape((d * d,) + (c, c) + trailing)
        s_hats.append(np.tensordot(enc_a, flat_s, axes=1))
        t_hats.append(np.tensordot(enc_b, flat_t, axes=1))

    # -------- Step 3: distribute the linear combinations. --------------- #
    # Node (x1, x2) sends cell (x1, x2) of S^(w), T^(w) to node w;
    # O(n^{2-2/sigma}) words per node.
    outboxes = [[] for _ in range(n)]
    for u in range(n):
        for w in range(m):
            s_cell = s_hats[u][w]
            t_cell = t_hats[u][w]
            width = ring.array_words(s_cell, word_bits) + ring.array_words(
                t_cell, word_bits
            )
            outboxes[u].append((w, (u, s_cell, t_cell), max(1, width)))
    hat_entry_w = max(
        max(ring.entry_words(sh, word_bits) for sh in s_hats),
        max(ring.entry_words(th, word_bits) for th in t_hats),
    )
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w, prod_words=1
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step3-scatter-hats",
        expect_max_load=bounds["step3"],
    )

    # -------- Step 4: the m block products -- local at nodes w < m. ----- #
    side = q * c
    p_hat_full: list[np.ndarray | None] = [None] * n
    for w in range(m):
        s_full = np.zeros((side, side) + trailing, dtype=np.int64)
        t_full = np.zeros((side, side) + trailing, dtype=np.int64)
        for _src, (u, s_cell, t_cell) in inboxes[w]:
            x1, x2 = layout.label(u)
            s_full[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c] = s_cell
            t_full[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c] = t_cell
        p_hat_full[w] = ring.matmul(s_full, t_full)
    # Ring products may widen the entry representation (the polynomial ring's
    # degree grows under convolution), so downstream buffers use the output
    # trailing shape.
    trailing_out = p_hat_full[0].shape[2:]

    # -------- Step 5: scatter the products back to cell owners. --------- #
    outboxes = [[] for _ in range(n)]
    for w in range(m):
        prod = p_hat_full[w]
        for u in range(n):
            x1, x2 = layout.label(u)
            cell = prod[x1 * c : (x1 + 1) * c, x2 * c : (x2 + 1) * c]
            width = ring.array_words(cell, word_bits)
            outboxes[w].append((u, (w, cell), max(1, width)))
    prod_entry_w = max(
        ring.entry_words(p, word_bits) for p in p_hat_full if p is not None
    )
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w,
        prod_words=prod_entry_w,
    )
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step5-scatter-products",
        expect_max_load=bounds["step5"],
    )

    # -------- Step 6: decode (equation (2)) -- local. ------------------- #
    dec = algorithm.decode_matrix()  # (d*d, m)
    p_cells: list[np.ndarray] = [None] * n  # type: ignore[list-item]
    for u in range(n):
        stack = np.zeros((m, c, c) + trailing_out, dtype=np.int64)
        for _src, (w, cell) in inboxes[u]:
            stack[w] = cell
        cells = np.tensordot(dec, stack, axes=1)
        p_cells[u] = cells.reshape((d, d, c, c) + trailing_out)

    # -------- Step 7: re-assemble rows at their owners. ------------------ #
    bounds = phase_load_bounds(
        layout, m, entry_words=entry_w, hat_words=hat_entry_w,
        prod_words=prod_entry_w,
        out_words=max(ring.entry_words(pc, word_bits) for pc in p_cells),
    )
    outboxes = [[] for _ in range(n)]
    for u in range(n):
        x1, x2 = layout.label(u)
        for i in range(d):
            for tt in range(c):
                r = i * block_rows + x1 * c + tt
                if r >= n:
                    continue
                piece = p_cells[u][i, :, tt, :]
                width = ring.array_words(piece, word_bits)
                outboxes[u].append((r, (x2, piece), max(1, width)))
    inboxes = clique.route(
        outboxes,
        phase=f"{phase}/step7-assemble",
        expect_max_load=bounds["step7"],
    )

    p = np.zeros((n, n) + trailing_out, dtype=np.int64)
    for v in range(n):
        row = np.zeros((mm,) + trailing_out, dtype=np.int64)
        for _src, (x2, piece) in inboxes[v]:
            row[cols_of[x2]] = piece.reshape((d * c,) + trailing_out)
        p[v] = row[:n]
    return p


__all__ = [
    "bilinear_matmul",
    "bilinear_matmul_tuple",
    "default_algorithm",
    "phase_load_bounds",
    "GridPlan",
    "grid_plan",
]
