"""Tests for graph containers and workload generators."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.constants import INF
from repro.graphs import (
    Graph,
    bipartite_random_graph,
    cycle_graph,
    cycle_with_trees,
    gnp_random_graph,
    grid_graph,
    planted_cycle_graph,
    preferential_attachment_graph,
    random_tree,
    random_weighted_digraph,
    random_weighted_graph,
    windmill_graph,
)
from repro.graphs.reference import girth_reference, has_k_cycle_reference


class TestGraphContainer:
    def test_from_edges(self):
        g = Graph.from_edges(4, [(0, 1), (1, 2)])
        assert g.edge_count == 2
        assert g.adjacency[1, 0] == 1  # symmetric closure

    def test_directed_edges_not_mirrored(self):
        g = Graph.from_edges(3, [(0, 1)], directed=True)
        assert g.adjacency[0, 1] == 1
        assert g.adjacency[1, 0] == 0

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError):
            Graph.from_edges(3, [(1, 1)])

    def test_asymmetric_undirected_rejected(self):
        adj = np.zeros((3, 3), dtype=np.int64)
        adj[0, 1] = 1
        with pytest.raises(ValueError):
            Graph(n=3, adjacency=adj, directed=False)

    def test_diagonal_rejected(self):
        adj = np.eye(3, dtype=np.int64)
        with pytest.raises(ValueError):
            Graph(n=3, adjacency=adj)

    def test_weight_matrix_conventions(self):
        g = Graph.from_weighted_edges(3, [(0, 1, 5)])
        w = g.weight_matrix()
        assert w[0, 1] == 5
        assert w[1, 0] == 5
        assert w[0, 2] == INF
        assert w[0, 0] == 0

    def test_unweighted_weight_matrix_is_unit(self):
        g = Graph.from_edges(3, [(0, 2)])
        w = g.weight_matrix()
        assert w[0, 2] == 1

    def test_edges_canonical(self):
        g = Graph.from_edges(4, [(2, 1), (0, 3)])
        assert sorted(g.edges()) == [(0, 3), (1, 2)]

    def test_degrees_and_neighbors(self):
        g = Graph.from_edges(4, [(0, 1), (0, 2)])
        assert g.degrees().tolist() == [2, 1, 1, 0]
        assert g.neighbors(0).tolist() == [1, 2]

    def test_max_abs_weight(self):
        g = Graph.from_weighted_edges(3, [(0, 1, -7)], directed=True)
        assert g.max_abs_weight() == 7


class TestGenerators:
    @settings(max_examples=10, deadline=None)
    @given(st.integers(min_value=0, max_value=1000))
    def test_gnp_valid(self, seed):
        g = gnp_random_graph(20, 0.3, seed=seed)
        assert np.array_equal(g.adjacency, g.adjacency.T)
        assert not np.any(np.diag(g.adjacency))

    def test_gnp_deterministic(self):
        a = gnp_random_graph(15, 0.4, seed=3)
        b = gnp_random_graph(15, 0.4, seed=3)
        assert np.array_equal(a.adjacency, b.adjacency)

    def test_tree_is_acyclic(self):
        g = random_tree(25, seed=1)
        assert g.edge_count == 24
        assert girth_reference(g) >= INF

    def test_cycle_graph_girth(self):
        assert girth_reference(cycle_graph(9)) == 9

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=1000),
        st.integers(min_value=3, max_value=8),
    )
    def test_planted_cycle_present(self, seed, k):
        g = planted_cycle_graph(20, k, seed=seed, extra_edge_prob=0.5)
        assert has_k_cycle_reference(g, k)
        # Tree attachments cannot create shorter cycles.
        assert girth_reference(g) == k

    def test_windmill_has_no_c4(self):
        g = windmill_graph(21)
        assert girth_reference(g) == 3
        assert not has_k_cycle_reference(g, 4)

    def test_bipartite_has_no_odd_cycles(self):
        g = bipartite_random_graph(20, 0.5, seed=2)
        assert not has_k_cycle_reference(g, 3)
        assert not has_k_cycle_reference(g, 5)

    def test_cycle_with_trees_girth(self):
        g = cycle_with_trees(25, 6, seed=0)
        assert girth_reference(g) == 6

    def test_weighted_digraph_weights_in_range(self):
        g = random_weighted_digraph(15, 0.4, 9, seed=1)
        edge = g.adjacency == 1
        assert g.weights[edge].min() >= 1
        assert g.weights[edge].max() <= 9
        assert g.directed

    def test_weighted_graph_symmetric(self):
        g = random_weighted_graph(12, 0.4, 9, seed=1)
        assert np.array_equal(g.weights, g.weights.T)

    def test_grid_graph_structure(self):
        g = grid_graph(3, 4, max_weight=5, seed=0)
        assert g.n == 12
        assert g.edge_count == 3 * 3 + 2 * 4  # horizontal + vertical

    def test_preferential_attachment_connected_ish(self):
        g = preferential_attachment_graph(30, attach=2, seed=3)
        assert g.degrees().max() >= 4  # a hub emerges

    def test_planted_cycle_validates_k(self):
        with pytest.raises(ValueError):
            planted_cycle_graph(5, 9)
