"""Tests for the command-line interface."""

from __future__ import annotations

import subprocess
import sys

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_matmul_defaults(self):
        args = build_parser().parse_args(["matmul", "49"])
        assert args.n == 49
        assert args.engine == "bilinear"

    def test_unknown_engine_rejected(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matmul", "49", "--engine", "quantum"])

    def test_shards_flag_parsed(self):
        args = build_parser().parse_args(["matmul", "49", "--shards", "4"])
        assert args.shards == 4
        args = build_parser().parse_args(["apsp", "10"])
        assert args.shards == 1 and args.engine is None


class TestEngineShardValidation:
    def test_shards_beyond_clique_size_rejected(self, capsys):
        with pytest.raises(SystemExit):
            main(["matmul", "16", "--shards", "99"])
        assert "shards must be in [1, clique size 16]" in capsys.readouterr().err

    #: Every subcommand carrying the shared engine/shard flags.
    SHARDED_COMMANDS = [
        ["matmul", "16"],
        ["triangles", "12"],
        ["apsp", "10"],
        ["girth", "12"],
        ["spanner", "12"],
        ["mst", "12"],
    ]

    @pytest.mark.parametrize("argv", SHARDED_COMMANDS)
    @pytest.mark.parametrize("shards", ["0", "-3"])
    def test_non_positive_shards_rejected_at_parse_time(
        self, argv, shards, capsys
    ):
        """``--shards 0``/negative dies in argparse, before any simulation."""
        with pytest.raises(SystemExit):
            build_parser().parse_args(argv + ["--shards", shards])
        assert "--shards must be >= 1" in capsys.readouterr().err

    def test_garbage_shards_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["matmul", "16", "--shards", "two"])
        assert "invalid shard count" in capsys.readouterr().err

    @pytest.mark.parametrize("argv", SHARDED_COMMANDS)
    def test_shards_beyond_clique_rejected_everywhere(self, argv, capsys):
        with pytest.raises(SystemExit):
            main(argv + ["--shards", "99"])
        assert "shards must be in [1, clique size" in capsys.readouterr().err

    @pytest.mark.parametrize("command", ["spanner", "mst"])
    def test_spanning_commands_reject_bilinear(self, command, capsys):
        with pytest.raises(SystemExit):
            main([command, "12", "--engine", "bilinear"])
        assert "selection-semiring engine" in capsys.readouterr().err

    def test_negative_mst_phases_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["mst", "12", "--phases", "-1"])
        assert "--phases must be >= 0" in capsys.readouterr().err

    def test_exact_apsp_rejects_bilinear_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["apsp", "10", "--variant", "exact", "--engine", "bilinear"])
        assert "selection-semiring engine" in capsys.readouterr().err

    def test_approx_apsp_rejects_semiring_engine(self, capsys):
        with pytest.raises(SystemExit):
            main(["apsp", "10", "--variant", "approx", "--engine", "semiring"])
        assert "bilinear ring engine" in capsys.readouterr().err

    def test_sharded_matmul_runs(self, capsys):
        assert main(["matmul", "16", "--engine", "bilinear", "--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "shards=2" in out and "correct=True" in out

    def test_apsp_engine_naive_runs(self, capsys):
        assert main(["apsp", "8", "--variant", "exact", "--engine", "naive"]) == 0
        assert "exact match" in capsys.readouterr().out


class TestCommands:
    @pytest.mark.parametrize(
        "argv",
        [
            ["matmul", "16", "--engine", "bilinear"],
            ["matmul", "20", "--engine", "semiring"],
            ["matmul", "10", "--engine", "naive"],
            ["triangles", "18", "--baseline"],
            ["triangles", "18", "--engine", "semiring"],
            ["four-cycles", "20", "--baseline"],
            ["girth", "20", "--family", "sparse", "--girth", "6"],
            ["girth", "14", "--family", "directed"],
            ["apsp", "10", "--variant", "exact"],
            ["apsp", "12", "--variant", "unweighted"],
            ["spanner", "14", "--k", "2"],
            ["spanner", "12", "--k", "3", "--engine", "naive"],
            ["mst", "14"],
            ["mst", "12", "--phases", "1", "--engine", "naive"],
        ],
    )
    def test_commands_succeed(self, argv, capsys):
        assert main(argv) == 0
        out = capsys.readouterr().out
        assert out.strip()

    def test_matmul_prints_meter(self, capsys):
        main(["matmul", "16"])
        out = capsys.readouterr().out
        assert "rounds" in out
        assert "TOTAL" in out

    def test_seed_changes_workload(self, capsys):
        main(["--seed", "1", "triangles", "18"])
        first = capsys.readouterr().out
        main(["--seed", "2", "triangles", "18"])
        second = capsys.readouterr().out
        assert first != second

    def test_module_entry_point(self):
        result = subprocess.run(
            [sys.executable, "-m", "repro", "girth", "16"],
            capture_output=True,
            text=True,
            timeout=300,
        )
        assert result.returncode == 0
        assert "girth=" in result.stdout


class TestFaultFlags:
    """PR 6 satellite: --faults / --fault-seed / --fault-kind wiring."""

    def test_defaults_off(self):
        args = build_parser().parse_args(["apsp", "16"])
        assert args.faults == 0
        assert args.fault_seed == 0
        assert args.fault_kind == "flip"

    def test_flags_parsed_on_all_three_commands(self):
        for command in ("matmul", "apsp", "mst"):
            args = build_parser().parse_args(
                [command, "16", "--faults", "2", "--fault-seed", "9",
                 "--fault-kind", "drop"]
            )
            assert args.faults == 2
            assert args.fault_seed == 9
            assert args.fault_kind == "drop"

    def test_negative_budget_rejected_at_parse_time(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["apsp", "16", "--faults", "-1"])
        assert "must be >= 0" in capsys.readouterr().err

    def test_unknown_kind_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["apsp", "16", "--fault-kind", "emp"])
        capsys.readouterr()

    @pytest.mark.parametrize("kind", ["flip", "drop", "crash"])
    def test_robust_apsp_runs_and_reports_overhead(self, kind, capsys):
        assert main(["apsp", "16", "--faults", "1", "--fault-kind", kind]) == 0
        out = capsys.readouterr().out
        assert f"faults: kind={kind} t=1" in out
        assert "overhead" in out

    def test_robust_matmul_runs(self, capsys):
        assert main(["matmul", "16", "--faults", "1", "--fault-seed", "3"]) == 0
        assert "encoded rounds" in capsys.readouterr().out

    def test_robust_mst_runs(self, capsys):
        assert main(["mst", "14", "--faults", "1", "--fault-kind", "crash"]) == 0
        assert "faults: kind=crash" in capsys.readouterr().out

    def test_fault_free_commands_print_no_fault_summary(self, capsys):
        assert main(["apsp", "16"]) == 0
        assert "faults:" not in capsys.readouterr().out

    def test_under_provisioned_tolerance_exits_2(self, capsys):
        # 5 corrupt relays against a deliberately 1-tolerant code: decodes
        # lose their majority, retries exhaust, and the CLI maps
        # FaultToleranceExceeded to a dedicated non-zero exit code.
        code = main(
            ["apsp", "16", "--faults", "5", "--fault-tolerance", "1"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "fault tolerance exceeded" in captured.err
        assert "support threshold" in captured.err

    def test_matching_tolerance_always_survives(self, capsys):
        # The headline guarantee at the CLI surface: a code sized to the
        # adversary budget decodes every exchange, any seed, any kind.
        assert main(["apsp", "16", "--faults", "2", "--fault-seed", "11"]) == 0
        out = capsys.readouterr().out
        assert "exact match with Floyd-Warshall oracle: True" in out


class TestFaultFlagValidationSweep:
    """PR 9 satellite: --fault-tolerance / --fault-seed validated at parse
    time across every fault-capable subcommand (the --shards treatment),
    plus the --fault-scheme / byzantine wiring."""

    FAULT_ARGV = {
        "matmul": ["matmul", "16"],
        "apsp": ["apsp", "16"],
        "mst": ["mst", "14"],
        "build-artifact": ["build-artifact", "16", "/tmp/pr9-artifact"],
        "update": ["update", "/tmp/pr9-artifact", "--edge", "0,1,1"],
    }

    @pytest.mark.parametrize("command", sorted(FAULT_ARGV))
    @pytest.mark.parametrize(
        "flag", ["--faults", "--fault-tolerance", "--fault-seed"]
    )
    def test_negative_values_rejected_at_parse_time(self, command, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.FAULT_ARGV[command] + [flag, "-2"])
        assert f"{flag} must be >= 0" in capsys.readouterr().err

    @pytest.mark.parametrize("command", sorted(FAULT_ARGV))
    @pytest.mark.parametrize(
        "flag", ["--faults", "--fault-tolerance", "--fault-seed"]
    )
    def test_non_integer_values_rejected_at_parse_time(self, command, flag, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(self.FAULT_ARGV[command] + [flag, "many"])
        assert "invalid" in capsys.readouterr().err

    @pytest.mark.parametrize("command", sorted(FAULT_ARGV))
    def test_scheme_and_byzantine_parse_everywhere(self, command):
        args = build_parser().parse_args(
            self.FAULT_ARGV[command]
            + ["--faults", "1", "--fault-scheme", "coded",
               "--fault-kind", "byzantine"]
        )
        assert args.fault_scheme == "coded"
        assert args.fault_kind == "byzantine"

    def test_scheme_defaults_to_replicate(self):
        args = build_parser().parse_args(["apsp", "16"])
        assert args.fault_scheme == "replicate"

    def test_unknown_scheme_rejected(self, capsys):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["apsp", "16", "--fault-scheme", "parrot"])
        capsys.readouterr()


class TestCodedSchemeCli:
    """The coded scheme end to end at the CLI surface."""

    @pytest.mark.parametrize("kind", ["flip", "drop", "crash", "byzantine"])
    def test_coded_apsp_matches_oracle(self, kind, capsys):
        assert main(
            ["apsp", "16", "--faults", "1", "--fault-scheme", "coded",
             "--fault-kind", kind]
        ) == 0
        out = capsys.readouterr().out
        assert "scheme=coded" in out
        assert "RS-coded" in out
        assert "exact match with Floyd-Warshall oracle: True" in out

    def test_coded_under_provisioned_exits_2(self, capsys):
        code = main(
            ["apsp", "16", "--faults", "5", "--fault-tolerance", "1",
             "--fault-scheme", "coded"]
        )
        captured = capsys.readouterr()
        assert code == 2
        assert "fault tolerance exceeded" in captured.err
        assert "Reed-Solomon" in captured.err

    def test_coded_overhead_strictly_below_replication(self, capsys):
        import re

        def factor(out: str) -> float:
            return float(re.search(r"overhead (\d+\.\d+)x", out).group(1))

        assert main(
            ["apsp", "16", "--faults", "1", "--fault-scheme", "coded"]
        ) == 0
        coded = factor(capsys.readouterr().out)
        assert main(["apsp", "16", "--faults", "1"]) == 0
        replicated = factor(capsys.readouterr().out)
        assert coded < replicated
