"""APSP for small distances / small weighted diameter (Lemma 19, Corollary 8).

Lemma 19: with positive integer weights, every path of weight at most ``M``
has at most ``M`` hops, so ``ceil(log2 M)`` capped squarings (entries above
``M`` replaced by ``inf`` before each Lemma 18 ring product) compute all
distances up to ``M`` in ``O(M n^rho)`` rounds.

Corollary 8: when the weighted diameter ``U`` is unknown, first compute the
reachability matrix (Boolean transitive closure, ``O(log n)`` Boolean
products), then guess ``U = 1, 2, 4, ...`` and re-run Lemma 19 until every
reachable pair has a finite distance -- a geometric series summing to
``O~(U n^rho)``.
"""

from __future__ import annotations

import math

import numpy as np

from repro.algebra.semirings import BOOLEAN
from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.engine import EngineSession, default_steps
from repro.graphs.graphs import Graph
from repro.matmul.distance import RingDistanceSession
from repro.runtime import (
    RunResult,
    make_clique,
    or_broadcast,
    pad_matrix,
    resolve_rng,
)


def apsp_up_to(
    clique: CongestedClique,
    weight_matrix: np.ndarray,
    max_distance: int,
    *,
    with_routing_tables: bool = False,
    witness_rng: np.random.Generator | None = None,
    phase: str = "lemma19",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Lemma 19: all distances up to ``max_distance``, ``INF`` beyond.

    ``weight_matrix`` follows the §3.3 convention (0 diagonal, INF
    non-edges) with positive integer edge weights.

    With ``with_routing_tables``, the fast ring engine's missing arg-min is
    recovered by the §3.4 witness machinery (Lemma 21): after every
    squaring, a witness matrix for the distance product is found with
    ``polylog(n)`` extra masked products and the next-hop table updated as
    in Corollary 6.  Returns ``(dist, next_hop)`` in that case.
    """
    if max_distance < 1:
        raise ValueError(f"max_distance must be >= 1, got {max_distance}")
    session = RingDistanceSession(clique, max_distance)
    dist = np.where(weight_matrix <= max_distance, weight_matrix, INF)
    np.fill_diagonal(dist, 0)
    iterations = max(1, math.ceil(math.log2(max(2, max_distance))))

    def cap(step: int, accum: np.ndarray) -> np.ndarray:
        accum = np.where(accum <= max_distance, accum, INF)
        np.fill_diagonal(accum, 0)
        return accum

    if not with_routing_tables:
        # The plain Lemma 19 loop is the shared session closure with a
        # per-step cap: entries above the bound return to INF before the
        # next capped squaring.
        return session.closure(
            dist, steps=iterations, on_step=cap, phase=phase, step_label="square"
        )

    # With routing tables the fast engine's missing arg-min is recovered by
    # the §3.4 witness machinery (Lemma 21): after every squaring, a witness
    # matrix for the distance product is found with polylog(n) extra masked
    # products and the next-hop table updated as in Corollary 6.
    from repro.matmul.witnesses import find_witnesses

    witness_rng = resolve_rng(witness_rng, 0)
    next_hop = np.full(dist.shape, -1, dtype=np.int64)
    rows, cols = np.nonzero(dist < INF)
    next_hop[rows, cols] = cols
    for step in range(iterations):
        product = session.multiply(dist, dist, phase=f"{phase}/square{step}")

        def engine(a, b, sub_phase):
            return session.multiply(a, b, phase=sub_phase)

        witness = find_witnesses(
            clique,
            dist,
            dist,
            engine,
            p=product,
            rng=witness_rng,
            phase=f"{phase}/witness{step}",
        ).witnesses
        improved = product < dist
        rows, cols = np.nonzero(improved)
        mids = witness[rows, cols]
        assert (mids >= 0).all()
        next_hop[rows, cols] = next_hop[rows, mids]
        dist = cap(step, np.minimum(dist, product))
    next_hop = np.where(dist < INF, next_hop, -1)
    np.fill_diagonal(next_hop, -1)
    return dist, next_hop


def apsp_bounded(
    graph: Graph,
    max_distance: int,
    *,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Lemma 19 wrapper: distances up to ``max_distance`` for a graph."""
    _require_positive_weights(graph)
    clique = clique or make_clique(graph.n, "bilinear", mode=mode)
    w = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)
    dist = apsp_up_to(clique, w, max_distance)
    return RunResult(
        value=dist[: graph.n, : graph.n],
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"max_distance": max_distance},
    )


def reachability(
    clique: CongestedClique,
    adjacency: np.ndarray,
    *,
    method: str = "bilinear",
    session: EngineSession | None = None,
    phase: str = "reachability",
) -> np.ndarray:
    """Boolean transitive closure by repeated squaring (incl. self-reach).

    The shared session closure over the Boolean semiring: with the diagonal
    pre-set, ``B <- B^2 (+) B`` doubles the reachability radius per step.
    """
    n = adjacency.shape[0]
    session = session or EngineSession(clique, method, BOOLEAN)
    reach = (adjacency > 0).astype(np.int64)
    np.fill_diagonal(reach, 1)
    return session.closure(
        reach, steps=default_steps(n), phase=phase, step_label="square"
    )


def apsp_small_diameter(
    graph: Graph,
    *,
    method: str = "bilinear",
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
    initial_guess: int = 1,
) -> RunResult:
    """Corollary 8: exact APSP in ``O~(U n^rho)`` rounds, ``U`` unknown.

    ``extras["diameter_guess"]`` records the final (smallest successful)
    power-of-two guess for the weighted diameter.
    """
    _require_positive_weights(graph)
    n = graph.n
    clique = clique or make_clique(n, "bilinear", mode=mode)
    adjacency = pad_matrix(graph.adjacency, clique.n)
    reach = reachability(clique, adjacency, method=method)
    w = pad_matrix(graph.weight_matrix(), clique.n, fill=INF)

    guess = max(1, initial_guess)
    while True:
        dist = apsp_up_to(clique, w, guess, phase=f"cor8/U{guess}")
        # Done iff every reachable pair has a finite distance; each node
        # checks its row, then one OR-broadcast.
        local_missing = [
            bool(np.any((reach[v] == 1) & (dist[v] >= INF)))
            for v in range(clique.n)
        ]
        if not or_broadcast(clique, local_missing, phase=f"cor8/check{guess}"):
            break
        guess *= 2
    return RunResult(
        value=dist[:n, :n],
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"diameter_guess": guess},
    )


def _require_positive_weights(graph: Graph) -> None:
    edge = graph.adjacency == 1
    if graph.weights is not None and edge.any() and int(graph.weights[edge].min()) < 1:
        raise ValueError("Lemma 19 / Corollary 8 need positive integer weights")


__all__ = ["apsp_up_to", "apsp_bounded", "apsp_small_diameter", "reachability"]
