"""Exception hierarchy for the congested-clique reproduction."""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CliqueModelError(ReproError):
    """A primitive was used in a way that violates the communication model.

    Examples: a node addressing a message to itself, a payload with a
    non-positive word count, or a malformed outbox structure.
    """


class CliqueSizeError(ReproError):
    """The clique size does not satisfy an algorithm's shape requirement.

    The 3D semiring algorithm needs ``n`` to be a perfect cube and the
    bilinear algorithm needs ``n`` to be a perfect square; use the padding
    helpers in :mod:`repro.matmul.layout` to lift arbitrary problem sizes.
    """


class LoadBoundExceededError(ReproError):
    """A routed exchange exceeded a load bound the calling algorithm asserted.

    The model itself permits any load (rounds are charged accordingly); this
    error is raised only when an algorithm declares the load bound its
    analysis promises (e.g. ``2 n^{4/3}`` words for the 3D algorithm) and the
    actual load exceeds it -- i.e. it signals an implementation bug, and is
    used by the failure-injection tests.
    """


class ScheduleValidationError(ReproError):
    """An EXACT-mode communication schedule violated the model constraints.

    Raised when a constructed schedule ships more than one word across some
    ordered node pair in a single round, or fails to deliver every message.
    """


class NegativeCycleError(ReproError):
    """A shortest-path computation encountered a negative-weight cycle."""


class AlgorithmFailureError(ReproError):
    """A Las-Vegas style algorithm exhausted its trial budget.

    Used by the randomised witness search (Section 3.4) when no witness is
    found within the configured number of repetitions.
    """


class FaultToleranceExceeded(ReproError):
    """An encoded exchange could not be decoded within the retry budget.

    Raised by the robust collectives (:mod:`repro.faults`) when, after the
    bounded number of retries, some piece still lacks the support threshold
    of agreeing valid copies -- i.e. the adversary corrupted more relays
    than the replication degree tolerates.  This is the *degrade* arm of
    detect-retry-degrade: the computation stops loudly instead of returning
    a silently wrong answer.
    """


__all__ = [
    "ReproError",
    "CliqueModelError",
    "CliqueSizeError",
    "LoadBoundExceededError",
    "ScheduleValidationError",
    "NegativeCycleError",
    "AlgorithmFailureError",
    "FaultToleranceExceeded",
]
