"""Tests for Corollary 2: distributed triangle/4-cycle/5-cycle counting."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique.model import ScheduleMode
from repro.graphs import (
    Graph,
    bipartite_random_graph,
    count_cycles_brute,
    cycle_graph,
    four_cycle_count_reference,
    gnp_random_graph,
    preferential_attachment_graph,
    random_tree,
    triangle_count_reference,
    windmill_graph,
)
from repro.runtime import make_clique
from repro.subgraphs import count_five_cycles, count_four_cycles, count_triangles


class TestTriangles:
    @settings(max_examples=8, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from(["bilinear", "semiring", "naive"]),
    )
    def test_random_graphs_all_engines(self, seed, method):
        g = gnp_random_graph(14, 0.35, seed=seed)
        result = count_triangles(g, method=method)
        assert result.value == triangle_count_reference(g)

    def test_directed(self, rng):
        g = gnp_random_graph(13, 0.3, seed=11, directed=True)
        result = count_triangles(g)
        assert result.value == triangle_count_reference(g)

    def test_triangle_free(self):
        g = bipartite_random_graph(16, 0.4, seed=0)
        assert count_triangles(g).value == 0

    def test_windmill_count(self):
        g = windmill_graph(21)  # 10 triangles
        assert count_triangles(g).value == 10

    def test_rounds_charged(self):
        g = gnp_random_graph(16, 0.3, seed=1)
        result = count_triangles(g)
        assert result.rounds > 0
        assert result.clique_size == 16

    def test_exact_schedule_mode(self):
        g = gnp_random_graph(9, 0.4, seed=2)
        clique = make_clique(g.n, "bilinear", mode=ScheduleMode.EXACT)
        result = count_triangles(g, clique=clique)
        assert result.value == triangle_count_reference(g)


class TestFourCycles:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_graphs(self, seed):
        g = gnp_random_graph(13, 0.3, seed=seed)
        result = count_four_cycles(g)
        assert result.value == four_cycle_count_reference(g)

    def test_directed(self):
        g = gnp_random_graph(12, 0.3, seed=4, directed=True)
        result = count_four_cycles(g)
        assert result.value == count_cycles_brute(g, 4)

    def test_c4_itself(self):
        assert count_four_cycles(cycle_graph(4)).value == 1

    def test_windmill_is_c4_free(self):
        assert count_four_cycles(windmill_graph(17)).value == 0

    def test_social_network_workload(self):
        g = preferential_attachment_graph(24, attach=3, seed=9)
        result = count_four_cycles(g)
        assert result.value == four_cycle_count_reference(g)

    def test_semiring_engine(self):
        g = gnp_random_graph(14, 0.3, seed=6)
        result = count_four_cycles(g, method="semiring")
        assert result.value == four_cycle_count_reference(g)


class TestFiveCycles:
    @settings(max_examples=6, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_random_graphs(self, seed):
        g = gnp_random_graph(12, 0.3, seed=seed)
        result = count_five_cycles(g)
        assert result.value == count_cycles_brute(g, 5)

    def test_c5_itself(self):
        assert count_five_cycles(cycle_graph(5)).value == 1

    def test_k4_has_none(self):
        g = Graph.from_edges(4, [(i, j) for i in range(4) for j in range(i + 1, 4)])
        assert count_five_cycles(g).value == 0

    def test_tree_has_none(self):
        assert count_five_cycles(random_tree(18, 2)).value == 0

    def test_directed_rejected(self):
        g = gnp_random_graph(8, 0.3, seed=0, directed=True)
        with pytest.raises(ValueError):
            count_five_cycles(g)

    def test_petersen_graph(self):
        # The Petersen graph famously has 12 five-cycles.
        edges = [
            (0, 1), (1, 2), (2, 3), (3, 4), (4, 0),
            (5, 7), (7, 9), (9, 6), (6, 8), (8, 5),
            (0, 5), (1, 6), (2, 7), (3, 8), (4, 9),
        ]
        g = Graph.from_edges(10, edges)
        assert count_five_cycles(g).value == 12
