"""Zero-engine-work queries over a memory-mapped closure artifact.

Point queries touch O(1) memmap entries (``dist``) or O(path length)
entries (``path``, witness-chasing through the routing table).  The perf
headline is the **batch** interface: ``dist_batch`` answers thousands of
pairs as one fancy-index gather, and ``path_batch`` chases all live
queries level-synchronously -- one gather per path *level*, not per
(query, hop) pair -- so serving cost is a handful of numpy ops instead of
thousands of Python round trips.
"""

from __future__ import annotations

import numpy as np

from repro.constants import INF
from repro.serve.artifact import ClosureArtifact


class RoutingCycleError(RuntimeError):
    """Witness chasing exceeded ``n`` hops: the routing table is corrupt.

    A valid next-hop table strictly decreases the remaining distance each
    hop, so no shortest path has more than ``n - 1`` edges; exceeding that
    (or stepping onto a ``-1`` entry mid-chase) means the artifact's blocks
    are inconsistent, and the guard turns a would-be infinite loop into a
    loud error.
    """


class QueryEngine:
    """Answers distance/path/eccentricity queries from an artifact.

    Holds only the artifact's memmap views; construction does no work, and
    no query ever touches the engine.
    """

    def __init__(self, artifact: ClosureArtifact) -> None:
        self.artifact = artifact
        self.n = artifact.n
        self._dist = artifact.dist
        self._hops = artifact.next_hop

    # ------------------------------------------------------------------ #
    # Point queries
    # ------------------------------------------------------------------ #

    def _check_node(self, u: int) -> int:
        u = int(u)
        if not 0 <= u < self.n:
            raise ValueError(f"node {u} out of range [0, {self.n})")
        return u

    def dist(self, u: int, v: int) -> int:
        """Shortest-path distance ``u -> v`` (``INF`` if unreachable)."""
        u, v = self._check_node(u), self._check_node(v)
        return int(self._dist[u, v])

    def path(self, u: int, v: int) -> list[int]:
        """One shortest ``u -> v`` path as a node list, by witness chasing.

        ``[u]`` when ``u == v``; the empty list when ``v`` is unreachable
        (INF distance is an answer, not an exception).  O(path length)
        memmap gathers, cycle-guarded.
        """
        u, v = self._check_node(u), self._check_node(v)
        if u == v:
            return [u]
        if int(self._dist[u, v]) >= INF:
            return []
        nodes = [u]
        cur = u
        for _ in range(self.n):
            nxt = int(self._hops[cur, v])
            if nxt < 0:
                raise RoutingCycleError(
                    f"routing table dead-ends at {cur} while chasing "
                    f"{u} -> {v}"
                )
            nodes.append(nxt)
            if nxt == v:
                return nodes
            cur = nxt
        raise RoutingCycleError(
            f"witness chase {u} -> {v} exceeded {self.n} hops"
        )

    def row(self, u: int) -> np.ndarray:
        """All distances from ``u`` (a fresh array, not the memmap)."""
        return np.array(self._dist[self._check_node(u)])

    def ecc(self, u: int) -> int:
        """Eccentricity of ``u``: max distance to any node (INF if cut off)."""
        return int(self._dist[self._check_node(u)].max())

    # ------------------------------------------------------------------ #
    # Batched queries -- the hot path
    # ------------------------------------------------------------------ #

    def _check_batch(
        self, us: np.ndarray, vs: np.ndarray
    ) -> tuple[np.ndarray, np.ndarray]:
        us = np.asarray(us, dtype=np.int64)
        vs = np.asarray(vs, dtype=np.int64)
        if us.shape != vs.shape or us.ndim != 1:
            raise ValueError(
                f"batch endpoints must be equal-length vectors, got "
                f"{us.shape} and {vs.shape}"
            )
        for arr in (us, vs):
            if arr.size and (arr.min() < 0 or arr.max() >= self.n):
                raise ValueError(f"batch node id out of range [0, {self.n})")
        return us, vs

    def dist_batch(self, us: np.ndarray, vs: np.ndarray) -> np.ndarray:
        """Distances for all pairs ``(us[i], vs[i])`` as one gather."""
        us, vs = self._check_batch(us, vs)
        return np.asarray(self._dist[us, vs])

    def path_batch(self, us: np.ndarray, vs: np.ndarray) -> list[list[int]]:
        """Shortest paths for all pairs, chased level-synchronously.

        All still-live queries advance one hop per iteration through a
        single fancy-index gather; a query drops out when it reaches its
        target.  Unreachable pairs return empty lists, ``u == v`` returns
        ``[u]``, and the same cycle guard as :meth:`path` applies to the
        whole batch.
        """
        us, vs = self._check_batch(us, vs)
        dists = self._dist[us, vs]
        paths: list[list[int]] = []
        for u, v, d in zip(us, vs, dists):
            if u == v:
                paths.append([int(u)])
            elif d >= INF:
                paths.append([])
            else:
                paths.append([int(u)])
        cur = us.copy()
        live = np.nonzero((us != vs) & (dists < INF))[0]
        for _ in range(self.n):
            if not live.size:
                return paths
            hops = np.asarray(self._hops[cur[live], vs[live]])
            if np.any(hops < 0):
                bad = int(live[np.argmax(hops < 0)])
                raise RoutingCycleError(
                    f"routing table dead-ends while chasing "
                    f"{int(us[bad])} -> {int(vs[bad])}"
                )
            for idx, hop in zip(live, hops):
                paths[idx].append(int(hop))
            cur[live] = hops
            live = live[hops != vs[live]]
        raise RoutingCycleError(
            f"batched witness chase exceeded {self.n} hops"
        )

    def ecc_batch(self, us: np.ndarray) -> np.ndarray:
        """Eccentricities for all ``us`` as one row gather + reduce."""
        us = np.asarray(us, dtype=np.int64)
        if us.size and (us.min() < 0 or us.max() >= self.n):
            raise ValueError(f"batch node id out of range [0, {self.n})")
        return np.asarray(self._dist[us].max(axis=1))


__all__ = ["QueryEngine", "RoutingCycleError"]
