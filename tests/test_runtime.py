"""Tests for the shared runtime glue (padding, dispatch, broadcasts)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.clique import CongestedClique
from repro.constants import INF
from repro.runtime import (
    boolean_product,
    integer_product,
    make_clique,
    or_broadcast,
    pad_matrix,
    required_clique_size,
    resolve_rng,
    sum_broadcast,
)


class TestRequiredCliqueSize:
    def test_semiring_needs_cubes(self):
        assert required_clique_size(20, "semiring") == 27
        assert required_clique_size(27, "semiring") == 27

    def test_bilinear_needs_squares(self):
        assert required_clique_size(20, "bilinear") == 25
        assert required_clique_size(49, "bilinear") == 49

    def test_naive_takes_anything(self):
        assert required_clique_size(13, "naive") == 13

    def test_unknown_method(self):
        with pytest.raises(ValueError):
            required_clique_size(10, "quantum")


class TestPadMatrix:
    def test_zero_padding(self):
        mat = np.arange(4, dtype=np.int64).reshape(2, 2)
        out = pad_matrix(mat, 4)
        assert out.shape == (4, 4)
        assert np.array_equal(out[:2, :2], mat)
        assert not out[2:, :].any()

    def test_inf_padding_keeps_zero_diagonal(self):
        mat = np.zeros((2, 2), dtype=np.int64)
        out = pad_matrix(mat, 4, fill=INF)
        assert out[2, 3] == INF
        assert out[2, 2] == 0
        assert out[3, 3] == 0

    def test_no_op_copy(self):
        mat = np.ones((3, 3), dtype=np.int64)
        out = pad_matrix(mat, 3)
        out[0, 0] = 9
        assert mat[0, 0] == 1

    def test_shrink_rejected(self):
        with pytest.raises(ValueError):
            pad_matrix(np.ones((4, 4), dtype=np.int64), 2)


class TestProducts:
    def test_all_engines_agree(self, rng):
        base_x = rng.integers(0, 3, (20, 20), dtype=np.int64)
        base_y = rng.integers(0, 3, (20, 20), dtype=np.int64)
        results = {}
        for method in ("bilinear", "semiring", "naive"):
            n = required_clique_size(20, method)
            x = pad_matrix(base_x, n)
            y = pad_matrix(base_y, n)
            clique = CongestedClique(n)
            results[method] = integer_product(clique, x, y, method, phase="t")[
                :20, :20
            ]
        assert np.array_equal(results["bilinear"], results["semiring"])
        assert np.array_equal(results["bilinear"], results["naive"])
        assert np.array_equal(results["naive"], base_x @ base_y)

    def test_boolean_product_thresholds(self, rng):
        n = 16
        x = (rng.random((n, n)) < 0.5).astype(np.int64) * 7  # non-binary input
        y = (rng.random((n, n)) < 0.5).astype(np.int64)
        clique = CongestedClique(n)
        got = boolean_product(clique, x, y, "bilinear", phase="t")
        want = (((x > 0).astype(np.int64) @ y) > 0).astype(np.int64)
        assert np.array_equal(got, want)

    def test_unknown_method_rejected(self, rng):
        clique = CongestedClique(16)
        mat = rng.integers(0, 2, (16, 16), dtype=np.int64)
        with pytest.raises(ValueError):
            integer_product(clique, mat, mat, "fft", phase="t")


class TestBroadcastHelpers:
    def test_or_broadcast(self):
        clique = CongestedClique(5)
        assert or_broadcast(clique, [False, False, True, False, False], "t")
        assert not or_broadcast(clique, [False] * 5, "t")
        assert clique.rounds == 2

    def test_sum_broadcast(self):
        clique = CongestedClique(4)
        assert sum_broadcast(clique, [1, 2, 3, 4], "t") == 10

    def test_make_clique_padding(self):
        clique = make_clique(20, "semiring")
        assert clique.n == 27


class TestResolveRng:
    def test_explicit_rng_wins(self):
        rng = np.random.default_rng(123)
        assert resolve_rng(rng, seed=5) is rng
        assert resolve_rng(rng, seed=None) is rng

    def test_deterministic_by_default(self):
        a = resolve_rng().integers(0, 1000, 16)
        b = resolve_rng().integers(0, 1000, 16)
        assert np.array_equal(a, b)

    def test_seed_selects_stream(self):
        a = resolve_rng(seed=7).integers(0, 1000, 16)
        b = resolve_rng(seed=7).integers(0, 1000, 16)
        c = resolve_rng(seed=8).integers(0, 1000, 16)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_shared_stream_advances_across_calls(self):
        """``seed=None`` is the fix for replayed trial batches: the shared
        module-level generator keeps advancing, so two successive calls
        draw different randomness."""
        first = resolve_rng(seed=None)
        second = resolve_rng(seed=None)
        assert first is second  # one shared stream, not two fresh ones
        a = first.integers(0, 2**30, 32)
        b = second.integers(0, 2**30, 32)
        assert not np.array_equal(a, b)


class TestSharedRngSnapshot:
    """PR 6 satellite: snapshot/restore/reseed of the shared stream."""

    def test_restore_replays_exactly(self):
        from repro.runtime import restore_shared_rng, snapshot_shared_rng

        shared = resolve_rng(seed=None)
        state = snapshot_shared_rng()
        first = shared.integers(0, 1 << 30, 16)
        restore_shared_rng(state)
        replay = shared.integers(0, 1 << 30, 16)
        assert np.array_equal(first, replay)

    def test_snapshot_is_a_deep_copy(self):
        from repro.runtime import restore_shared_rng, snapshot_shared_rng

        shared = resolve_rng(seed=None)
        state = snapshot_shared_rng()
        draw = shared.integers(0, 1 << 30, 8)
        # Advancing the stream must not invalidate the earlier capture.
        restore_shared_rng(state)
        assert np.array_equal(draw, shared.integers(0, 1 << 30, 8))

    def test_restore_preserves_generator_identity(self):
        from repro.runtime import restore_shared_rng, snapshot_shared_rng

        shared = resolve_rng(seed=None)
        restore_shared_rng(snapshot_shared_rng())
        assert resolve_rng(seed=None) is shared

    def test_reseed_returns_previous_state(self):
        from repro.runtime import reseed_shared_rng, restore_shared_rng

        shared = resolve_rng(seed=None)
        previous = reseed_shared_rng(1234)
        seeded = shared.integers(0, 1 << 30, 8)
        assert np.array_equal(
            seeded, np.random.default_rng(1234).integers(0, 1 << 30, 8)
        )
        # Handing back the returned state resumes the old stream.
        restore_shared_rng(previous)
        resumed_a = shared.integers(0, 1 << 30, 8)
        restore_shared_rng(previous)
        resumed_b = shared.integers(0, 1 << 30, 8)
        assert np.array_equal(resumed_a, resumed_b)

    def test_reseed_is_reproducible(self):
        from repro.runtime import reseed_shared_rng, restore_shared_rng

        shared = resolve_rng(seed=None)
        keep = reseed_shared_rng(7)
        a = shared.integers(0, 1 << 30, 8)
        reseed_shared_rng(7)
        b = shared.integers(0, 1 << 30, 8)
        restore_shared_rng(keep)
        assert np.array_equal(a, b)
