"""Witness detection for distance products (paper §3.4, Lemma 21).

The §2.2 ring engine computes distance *values* but not the minimising inner
index, which the routing-table construction of §3.3 needs.  Following the
paper (after Seidel [65], Zwick [76], Alon-Naor [4]):

* **Unique witnesses** -- for each bit position ``i``, compute the masked
  product ``S(*, V_i) * T(V_i, *)`` where ``V_i`` is the set of indices with
  bit ``i`` set; where the masked product equals the full product, some
  witness has bit ``i`` set.  A pair with a *unique* witness reads that
  witness off bitwise.  ``O(log n)`` products.

* **General case** -- for each scale ``i`` sample ``O(log n)`` random subsets
  of size ``2^i``; a pair with ``r`` witnesses, ``n/2^{i+1} <= r < n/2^i``,
  sees exactly one of them in a sample with constant probability, reducing
  to the unique case.  ``O(log^3 n)`` products in total, matching the
  ``M polylog(n)`` bound of Lemma 21.

Candidate validation is itself distributed: checking ``S[u,w] + T[w,v] =
P[u,v]`` needs ``T[w, v]``, which lives at node ``w``; nodes exchange
(request, response) pairs through the router and the rounds are charged to
the meter like everything else.  Both routed hops run on the simulator's
array-native fast path (:meth:`~repro.clique.model.CongestedClique.
route_array`): requests and responses are ``(p_v, 1)`` / ``(p_v, 2)`` index
batches instead of per-pair Python tuples.  The tuple formulation is
retained as :func:`validate_candidates_tuple` -- the oracle the equivalence
tests charge both paths against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable

import numpy as np

from repro.algebra.semirings import saturating_add
from repro.clique.model import CongestedClique
from repro.constants import INF
from repro.errors import AlgorithmFailureError

#: A distributed distance-product engine: ``(s, t, phase) -> P``.
ProductFn = Callable[[np.ndarray, np.ndarray, str], np.ndarray]


@dataclass
class WitnessResult:
    """Outcome of a witness search.

    Attributes:
        witnesses: ``W[u, v]`` = witness index, or ``-1`` where ``P[u,v]``
            is infinite (no witness exists) or unresolved.
        resolved: boolean mask of pairs with a verified witness (infinite
            pairs count as resolved).
        products_used: how many distance products were spent.
    """

    witnesses: np.ndarray
    resolved: np.ndarray
    products_used: int


def _mask_columns(s: np.ndarray, keep: np.ndarray) -> np.ndarray:
    masked = np.full_like(s, INF)
    masked[:, keep] = s[:, keep]
    return masked


def _mask_rows(t: np.ndarray, keep: np.ndarray) -> np.ndarray:
    masked = np.full_like(t, INF)
    masked[keep, :] = t[keep, :]
    return masked


def _validate_candidates(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    p: np.ndarray,
    candidates: np.ndarray,
    needed: np.ndarray,
    phase: str,
) -> np.ndarray:
    """Distributed check that candidate witnesses attain ``P``.

    Node ``u`` holds rows ``s[u]``, ``p[u]`` and the candidate row; it must
    learn ``t[w, v]`` for each needed pair ``(u, v)`` with candidate ``w``.
    Two routed hops: requests ``u -> w`` carrying ``v``, responses ``w -> u``
    carrying ``t[w, v]``.  Array-native: node ``u``'s requests are one
    ``(p_u, 1)`` batch of column ids (one word each, like the tuple pairs),
    responses one ``(p_w, 2)`` batch of ``(v, t[w, v])`` rows.
    """
    n = clique.n
    req_dests: list[np.ndarray] = []
    req_blocks: list[np.ndarray] = []
    req_widths: list[np.ndarray] = []
    for u in range(n):
        cols = np.nonzero(needed[u])[0].astype(np.int64)
        w_arr = candidates[u, cols]
        keep = (w_arr >= 0) & (w_arr < n)
        cols = cols[keep]
        req_dests.append(w_arr[keep])
        req_blocks.append(cols[:, None])
        req_widths.append(np.ones(cols.shape[0], dtype=np.int64))
    inboxes = clique.route_array(
        req_dests, req_blocks, widths=req_widths, phase=f"{phase}/requests"
    )
    resp_dests: list[np.ndarray] = []
    resp_blocks: list[np.ndarray] = []
    resp_widths: list[np.ndarray] = []
    for w in range(n):
        inbox = inboxes[w]
        v_arr = inbox.blocks[:, 0]
        resp_dests.append(inbox.sources)
        resp_blocks.append(np.stack([v_arr, t[w, v_arr]], axis=1))
        resp_widths.append(np.ones(v_arr.shape[0], dtype=np.int64))
    inboxes = clique.route_array(
        resp_dests, resp_blocks, widths=resp_widths, phase=f"{phase}/responses"
    )
    ok = np.zeros_like(needed)
    for u in range(n):
        inbox = inboxes[u]
        if inbox.sources.shape[0] == 0:
            continue
        v_arr = inbox.blocks[:, 0]
        t_arr = inbox.blocks[:, 1]
        w_arr = candidates[u, v_arr]
        assert np.array_equal(w_arr, inbox.sources)
        s_arr = s[u, w_arr]
        good = (
            (t_arr < INF)
            & (s_arr < INF)
            & (saturating_add(s_arr, t_arr) == p[u, v_arr])
        )
        ok[u, v_arr[good]] = True
    return ok


def validate_candidates_tuple(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    p: np.ndarray,
    candidates: np.ndarray,
    needed: np.ndarray,
    phase: str,
) -> np.ndarray:
    """The retained per-payload tuple formulation of candidate validation.

    Charges bit-identical rounds to :func:`_validate_candidates` for the
    same instance (equivalence-tested); kept as the round-accounting oracle.
    """
    n = clique.n
    requests: list[list[tuple[int, object, int]]] = [[] for _ in range(n)]
    for u in range(n):
        cols = np.nonzero(needed[u])[0]
        for v in cols:
            w = int(candidates[u, v])
            if 0 <= w < n:
                requests[u].append((w, (u, int(v)), 1))
    inboxes = clique.route(requests, phase=f"{phase}/requests")
    responses: list[list[tuple[int, object, int]]] = [[] for _ in range(n)]
    for w in range(n):
        for _src, (u, v) in inboxes[w]:
            responses[w].append((u, (v, int(t[w, v])), 1))
    inboxes = clique.route(responses, phase=f"{phase}/responses")
    ok = np.zeros_like(needed)
    for u in range(n):
        for w_node, (v, t_wv) in inboxes[u]:
            w = int(candidates[u, v])
            assert w == w_node
            if t_wv < INF and s[u, w] < INF and s[u, w] + t_wv == p[u, v]:
                ok[u, v] = True
    return ok


def unique_witnesses(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    p: np.ndarray,
    product: ProductFn,
    *,
    phase: str = "witness/unique",
) -> tuple[np.ndarray, int]:
    """Bitwise candidate extraction (§3.4 "finding unique witnesses").

    Returns ``(candidates, products_used)``; candidates are exact for every
    pair whose witness is unique, arbitrary otherwise (callers validate).
    """
    n = clique.n
    bits = max(1, math.ceil(math.log2(n)))
    candidates = np.zeros((n, n), dtype=np.int64)
    used = 0
    indices = np.arange(n)
    for bit in range(bits):
        keep = (indices >> bit) & 1 == 1
        if not keep.any():
            continue
        masked = product(
            _mask_columns(s, keep), _mask_rows(t, keep), f"{phase}/bit{bit}"
        )
        used += 1
        candidates |= ((masked == p).astype(np.int64)) << bit
    return candidates, used


def find_witnesses(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    product: ProductFn,
    *,
    p: np.ndarray | None = None,
    rng: np.random.Generator | None = None,
    trials_per_scale: int | None = None,
    on_failure: str = "raise",
    phase: str = "witness",
) -> WitnessResult:
    """Lemma 21: witness matrix for the distance product ``S * T``.

    Args:
        clique: the clique to charge.
        s, t: operands (row-distribution convention).
        product: the distance-product engine to use for the ``polylog(n)``
            masked products (e.g. a Lemma 18 closure).
        p: the full product, if already computed (else one more product).
        rng: randomness source for the sampling stage.
        trials_per_scale: samples per witness-count scale; default
            ``2 ceil(log2 n)`` as in the paper's ``c log n``.
        on_failure: ``"raise"`` (default) raises
            :class:`~repro.errors.AlgorithmFailureError` if pairs stay
            unresolved after the trial budget; ``"partial"`` returns with the
            ``resolved`` mask showing the gaps.
        phase: cost-meter label prefix.
    """
    n = clique.n
    rng = rng if rng is not None else np.random.default_rng(0)
    used = 0
    if p is None:
        p = product(s, t, f"{phase}/full")
        used += 1
    witnesses = np.full((n, n), -1, dtype=np.int64)
    resolved = p >= INF  # infinite entries need no witness

    def absorb(candidates: np.ndarray, sub_phase: str) -> None:
        nonlocal witnesses, resolved
        needed = ~resolved
        if not needed.any():
            return
        ok = _validate_candidates(clique, s, t, p, candidates, needed, sub_phase)
        newly = needed & ok
        witnesses[newly] = candidates[newly]
        resolved |= newly

    candidates, n_used = unique_witnesses(clique, s, t, p, product, phase=f"{phase}/unique")
    used += n_used
    absorb(candidates, f"{phase}/unique-validate")

    scales = max(1, math.ceil(math.log2(n)))
    trials = trials_per_scale if trials_per_scale is not None else 2 * scales
    for i in range(scales):
        if resolved.all():
            break
        sample_size = 1 << i
        for j in range(trials):
            if resolved.all():
                break
            chosen = rng.integers(0, n, size=sample_size)
            keep = np.zeros(n, dtype=bool)
            keep[chosen] = True
            s_sub = _mask_columns(s, keep)
            t_sub = _mask_rows(t, keep)
            p_sub = product(s_sub, t_sub, f"{phase}/scale{i}t{j}")
            used += 1
            candidates, n_used = unique_witnesses(
                clique, s_sub, t_sub, p_sub, product, phase=f"{phase}/scale{i}t{j}"
            )
            used += n_used
            # A candidate found in the subsample is only useful if the
            # subsample attains the true minimum there.
            candidates = np.where(p_sub == p, candidates, -1)
            absorb(candidates, f"{phase}/scale{i}t{j}-validate")

    if not resolved.all() and on_failure == "raise":
        missing = int((~resolved).sum())
        raise AlgorithmFailureError(
            f"witness search left {missing} pairs unresolved after "
            f"{used} products; increase trials_per_scale"
        )
    return WitnessResult(witnesses=witnesses, resolved=resolved, products_used=used)


__all__ = [
    "WitnessResult",
    "unique_witnesses",
    "find_witnesses",
    "validate_candidates_tuple",
    "ProductFn",
]
