"""Deep property-based tests across the whole stack.

These are the heavyweight invariants: random demands through the EXACT
scheduler at word granularity, random matrices through every engine x
semiring combination, and cross-checks that schedule mode never changes
any *answer* (only the round accounting discipline).
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.algebra.semirings import BOOLEAN, MAX_MIN, MIN_PLUS, PLUS_TIMES
from repro.clique import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.matmul.naive import broadcast_matmul
from repro.matmul.semiring3d import semiring_matmul


def _random_for(semiring, rng, n):
    if semiring is BOOLEAN:
        return (rng.random((n, n)) < 0.4).astype(np.int64)
    if semiring is MIN_PLUS:
        mat = rng.integers(0, 25, (n, n), dtype=np.int64)
        mat[rng.random((n, n)) < 0.15] = INF
        return mat
    if semiring is MAX_MIN:
        return rng.integers(-15, 15, (n, n), dtype=np.int64)
    return rng.integers(-8, 9, (n, n), dtype=np.int64)


class TestEngineSemiringMatrix:
    """The 3D engine equals the naive engine equals the local product,
    for every semiring, on random inputs."""

    @settings(max_examples=10, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([PLUS_TIMES, BOOLEAN, MIN_PLUS, MAX_MIN]),
    )
    def test_three_way_agreement(self, seed, semiring):
        rng = np.random.default_rng(seed)
        n = 8
        s = _random_for(semiring, rng, n)
        t = _random_for(semiring, rng, n)
        local = semiring.matmul(s, t)
        dist3d = semiring_matmul(CongestedClique(n), s, t, semiring)
        naive = broadcast_matmul(CongestedClique(n), s, t, semiring)
        assert np.array_equal(dist3d, local)
        assert np.array_equal(naive, local)

    @settings(max_examples=6, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.sampled_from([MIN_PLUS, MAX_MIN]),
    )
    def test_witnesses_from_both_engines_are_valid(self, seed, semiring):
        rng = np.random.default_rng(seed)
        n = 8
        s = _random_for(semiring, rng, n)
        t = _random_for(semiring, rng, n)
        for engine_out in (
            semiring_matmul(
                CongestedClique(n), s, t, semiring, with_witnesses=True
            ),
            broadcast_matmul(
                CongestedClique(n), s, t, semiring, with_witnesses=True
            ),
        ):
            product, witness = engine_out
            for u in range(n):
                for v in range(n):
                    k = int(witness[u, v])
                    if k < 0:
                        continue
                    if semiring is MIN_PLUS:
                        if product[u, v] < INF:
                            assert s[u, k] + t[k, v] == product[u, v]
                    else:
                        assert min(s[u, k], t[k, v]) == product[u, v]


class TestScheduleModeNeverChangesAnswers:
    @settings(max_examples=8, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_semiring3d(self, seed):
        rng = np.random.default_rng(seed)
        n = 8
        s = rng.integers(0, 4, (n, n), dtype=np.int64)
        t = rng.integers(0, 4, (n, n), dtype=np.int64)
        fast = semiring_matmul(CongestedClique(n, mode=ScheduleMode.FAST), s, t)
        exact = semiring_matmul(CongestedClique(n, mode=ScheduleMode.EXACT), s, t)
        assert np.array_equal(fast, exact)

    @settings(max_examples=5, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_applications(self, seed):
        from repro.graphs import gnp_random_graph
        from repro.runtime import make_clique
        from repro.subgraphs import count_triangles

        g = gnp_random_graph(9, 0.4, seed=seed)
        fast = count_triangles(
            g, clique=make_clique(g.n, "bilinear", mode=ScheduleMode.FAST)
        )
        exact = count_triangles(
            g, clique=make_clique(g.n, "bilinear", mode=ScheduleMode.EXACT)
        )
        assert fast.value == exact.value


class TestWordGranularExactRouting:
    """Fuzz the EXACT router with adversarial width distributions."""

    @settings(max_examples=12, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.integers(min_value=3, max_value=8),
        st.integers(min_value=1, max_value=12),
    )
    def test_delivery_and_bounds(self, seed, n, max_width):
        rng = np.random.default_rng(seed)
        outboxes = [[] for _ in range(n)]
        sent = []
        for v in range(n):
            for _ in range(int(rng.integers(0, 10))):
                dst = int(rng.integers(0, n))
                payload = (v, int(rng.integers(10**6)))
                width = int(rng.integers(1, max_width + 1))
                outboxes[v].append((dst, payload, width))
                sent.append((dst, payload))
        clique = CongestedClique(n, mode=ScheduleMode.EXACT)
        inboxes = clique.route([list(b) for b in outboxes])
        received = [
            (dst, payload)
            for dst in range(n)
            for _src, payload in inboxes[dst]
        ]
        assert sorted(received) == sorted(sent)

    def test_single_hot_receiver(self):
        # Every node floods node 0: the classic skew case.
        n = 6
        outboxes = [[] for _ in range(n)]
        for v in range(1, n):
            outboxes[v] = [(0, (v, i), 3) for i in range(7)]
        exact = CongestedClique(n, mode=ScheduleMode.EXACT)
        exact.route([list(b) for b in outboxes])
        fast = CongestedClique(n, mode=ScheduleMode.FAST)
        fast.route([list(b) for b in outboxes])
        assert exact.rounds <= 2 * fast.rounds + 2

    def test_widths_matter_for_rounds(self):
        n = 6
        thin = CongestedClique(n)
        thin.route([[(1, "x", 1)] if v == 0 else [] for v in range(n)])
        wide = CongestedClique(n)
        wide.route([[(1, "x", 100)] if v == 0 else [] for v in range(n)])
        assert wide.rounds > thin.rounds
