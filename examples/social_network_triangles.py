#!/usr/bin/env python
"""Subgraph analytics on a social network (the paper's §3.1 applications).

Workload: a preferential-attachment "social graph" with heavy-tailed
degrees.  We count triangles and 4-cycles with the algebraic algorithms
(Corollary 2), detect 4-cycles in O(1) rounds (Theorem 4), and compare
against the combinatorial prior work (Dolev et al.) on the same graph.

Run: ``python examples/social_network_triangles.py [n]`` (default 100).
"""

from __future__ import annotations

import sys

from repro import (
    count_four_cycles,
    count_triangles,
    detect_four_cycles,
    dolev_triangle_count,
)
from repro.graphs import preferential_attachment_graph, triangle_count_reference


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 100
    graph = preferential_attachment_graph(n, attach=3, seed=42)
    print(f"Social network: {graph}\n")

    tri = count_triangles(graph, method="bilinear")
    print(f"triangles (Corollary 2, ring matmul) : {tri.value:6d}"
          f"   [{tri.rounds} rounds on {tri.clique_size} nodes]")
    assert tri.value == triangle_count_reference(graph)

    prior = dolev_triangle_count(graph)
    print(f"triangles (Dolev et al. baseline)    : {prior.value:6d}"
          f"   [{prior.rounds} rounds]")
    assert prior.value == tri.value

    c4 = count_four_cycles(graph, method="bilinear")
    print(f"4-cycles  (Corollary 2)              : {c4.value:6d}"
          f"   [{c4.rounds} rounds]")

    detect = detect_four_cycles(graph)
    print(f"4-cycle existence (Theorem 4, O(1))  : {str(detect.value):>6s}"
          f"   [{detect.rounds} rounds, branch: {detect.extras['phase']}]")

    # The detector runs on the array-native fast path; the retained tuple
    # formulation must charge the identical round count (model equivalence).
    tuple_detect = detect_four_cycles(graph, engine="tuple")
    assert tuple_detect.value == detect.value
    assert tuple_detect.rounds == detect.rounds
    print(f"engine check: 4-cycle array path rounds == tuple path rounds"
          f" ({detect.rounds})")

    print("\nTheorem 4's round count is independent of n -- rerun with a"
          " larger n and watch the last line stay flat.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
