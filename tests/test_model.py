"""Tests for the CongestedClique simulator primitives."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.clique import CongestedClique, ScheduleMode
from repro.errors import CliqueModelError, LoadBoundExceededError


class TestConstruction:
    def test_needs_two_nodes(self):
        with pytest.raises(CliqueModelError):
            CongestedClique(1)

    def test_default_word_bits(self):
        assert CongestedClique(64).word_bits == 16

    def test_custom_word_bits(self):
        assert CongestedClique(8, word_bits=32).word_bits == 32

    def test_bad_word_bits(self):
        with pytest.raises(CliqueModelError):
            CongestedClique(8, word_bits=0)


class TestBroadcast:
    def test_one_round_for_unit_payloads(self):
        clique = CongestedClique(5)
        received = clique.broadcast(list(range(5)))
        assert clique.rounds == 1
        assert received[2] == [0, 1, 2, 3, 4]

    def test_rounds_follow_max_width(self):
        clique = CongestedClique(4)
        clique.broadcast(["a", "b", "c", "d"], words=[1, 7, 2, 1])
        assert clique.rounds == 7

    def test_wrong_payload_count(self):
        clique = CongestedClique(4)
        with pytest.raises(CliqueModelError):
            clique.broadcast([1, 2])

    def test_wrong_width_count(self):
        clique = CongestedClique(4)
        with pytest.raises(CliqueModelError):
            clique.broadcast([1, 2, 3, 4], words=[1, 2])

    def test_negative_width(self):
        clique = CongestedClique(3)
        with pytest.raises(CliqueModelError):
            clique.broadcast([1, 2, 3], words=[-1, 1, 1])

    def test_every_node_sees_same_order(self):
        clique = CongestedClique(6)
        received = clique.broadcast([f"p{v}" for v in range(6)])
        for u in range(6):
            assert received[u] == [f"p{v}" for v in range(6)]


class TestSend:
    def test_transposes_in_one_round(self):
        clique = CongestedClique(4)
        cols = clique.transpose([[10 * v + u for u in range(4)] for v in range(4)])
        assert clique.rounds == 1
        assert cols[1][3] == 31

    def test_rounds_equal_max_pair_traffic(self):
        clique = CongestedClique(4)
        clique.send([[(1, "a", 3), (1, "b", 2)], [], [], []])
        assert clique.rounds == 5  # 5 words over the (0, 1) link

    def test_self_messages_free(self):
        clique = CongestedClique(3)
        inboxes = clique.send([[(0, "self", 100)], [], []])
        assert clique.rounds == 0
        assert inboxes[0] == [(0, "self")]

    def test_expect_max_pair_enforced(self):
        clique = CongestedClique(3)
        with pytest.raises(LoadBoundExceededError):
            clique.send([[(1, "x", 9)], [], []], expect_max_pair=8)

    def test_bad_destination(self):
        clique = CongestedClique(3)
        with pytest.raises(CliqueModelError):
            clique.send([[(7, "x", 1)], [], []])

    def test_inboxes_sorted_by_source(self):
        clique = CongestedClique(4)
        inboxes = clique.send(
            [[(3, "from0", 1)], [(3, "from1", 1)], [(3, "from2", 1)], []]
        )
        assert [src for src, _ in inboxes[3]] == [0, 1, 2]


class TestRoute:
    def test_balanced_load_costs_two_rounds(self):
        n = 8
        clique = CongestedClique(n)
        outboxes = [[((v + 1) % n, "x", 1)] for v in range(n)]
        clique.route(outboxes)
        assert clique.rounds == 2

    def test_rounds_scale_with_load(self):
        n = 8
        clique = CongestedClique(n)
        # Node 0 receives 4n words -> 2 * ceil(4n/n) = 8 rounds.
        outboxes = [[] for _ in range(n)]
        for v in range(1, n):
            outboxes[v].append((0, "x", 32 // (n - 1) + 1))
        clique.route(outboxes)
        assert clique.rounds == 2 * ((max(32 // (n - 1) + 1, 0) * (n - 1) + n - 1) // n)

    def test_expect_max_load_enforced(self):
        clique = CongestedClique(4)
        with pytest.raises(LoadBoundExceededError):
            clique.route([[(1, "x", 100)], [], [], []], expect_max_load=50)

    @settings(max_examples=15, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6))
    def test_exact_mode_delivers_identically(self, seed):
        rng = np.random.default_rng(seed)
        n = 7
        outboxes = [[] for _ in range(n)]
        for v in range(n):
            for _ in range(int(rng.integers(0, 12))):
                outboxes[v].append(
                    (int(rng.integers(0, n)), (v, int(rng.integers(100))), 1)
                )
        fast = CongestedClique(n, mode=ScheduleMode.FAST)
        exact = CongestedClique(n, mode=ScheduleMode.EXACT)
        got_fast = fast.route([list(b) for b in outboxes])
        got_exact = exact.route([list(b) for b in outboxes])
        assert got_fast == got_exact
        assert exact.rounds <= 2 * fast.rounds + 2

    def test_empty_route_is_free(self):
        clique = CongestedClique(4)
        clique.route([[], [], [], []])
        assert clique.rounds == 0


class TestAllgather:
    def test_replicates_all_records(self):
        clique = CongestedClique(5)
        records = [[(v, i) for i in range(v + 1)] for v in range(5)]
        combined = clique.allgather_records(records)
        assert sorted(combined) == sorted(
            (v, i) for v in range(5) for i in range(v + 1)
        )

    def test_rounds_scale_with_volume(self):
        n = 8
        small = CongestedClique(n)
        small.allgather_records([[1]] * n)
        big = CongestedClique(n)
        big.allgather_records([[1] * 10] * n)
        assert big.rounds > small.rounds

    def test_empty(self):
        clique = CongestedClique(4)
        assert clique.allgather_records([[], [], [], []]) == []

    def test_wrong_shape(self):
        clique = CongestedClique(4)
        with pytest.raises(CliqueModelError):
            clique.allgather_records([[], []])


class TestTranspose:
    def test_shape_validation(self):
        clique = CongestedClique(3)
        with pytest.raises(CliqueModelError):
            clique.transpose([[1, 2], [3, 4]])

    def test_wide_entries_cost_more(self):
        clique = CongestedClique(3)
        clique.transpose(np.ones((3, 3), dtype=np.int64), words_per_entry=4)
        assert clique.rounds == 4
