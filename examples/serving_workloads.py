#!/usr/bin/env python
"""The serving layer end to end: build, memory-map, query, update.

The PR 8 workload demo: one engine session squares a road-network-style
weighted graph to its min-plus closure and materialises it as a
memory-mapped artifact; a query engine then answers batched distance and
path queries with zero engine work, and an edge update is folded in by
re-squaring only the dirty strips -- verified against a from-scratch
rebuild, edge for edge, at a fraction of the rounds.

Run: ``python examples/serving_workloads.py [n]`` (default 24).
"""

from __future__ import annotations

import sys
import tempfile
from pathlib import Path

import numpy as np

from repro import INF, ClosureArtifact, QueryEngine, apply_edge_updates
from repro.algebra.semirings import MIN_PLUS
from repro.engine import EngineSession, make_clique
from repro.graphs import apsp_reference, random_weighted_graph


def main() -> int:
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 24
    graph = random_weighted_graph(n, 0.25, max_weight=50, seed=17)
    print(f"Weighted network: {graph}\n")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "closure"

        # Build side: resident closure -> versioned on-disk artifact.
        session = EngineSession(make_clique(n, "semiring"), "semiring", MIN_PLUS)
        artifact = ClosureArtifact.build(session, graph, path)
        assert np.array_equal(artifact.dist, apsp_reference(graph))
        print(
            f"artifact build                : {artifact.rounds:6d} rounds   "
            f"[n={n}, clique {session.n}, generation {artifact.generation}, "
            f"oracle check: edge-for-edge]"
        )

        # Hot side: memory-mapped batch serving, zero engine work.
        engine = QueryEngine(ClosureArtifact.open(path))
        rng = np.random.default_rng(17)
        us = rng.integers(0, n, 2000)
        vs = rng.integers(0, n, 2000)
        dists = engine.dist_batch(us, vs)
        for u, v, d in zip(us[:200], vs[:200], dists[:200]):
            assert int(d) == engine.dist(int(u), int(v))
        reachable = int(np.sum(dists < INF))
        print(
            f"memory-mapped batch serving   : {0:6d} rounds   "
            f"[{us.size} pairs in one gather, {reachable} reachable, "
            f"point-query parity on 200 samples]"
        )
        idx = int(np.argmax(dists < INF))  # first reachable sample pair
        u, v = int(us[idx]), int(vs[idx])
        path_uv = engine.path(u, v)
        shown = " -> ".join(map(str, path_uv)) if path_uv else "(unreachable)"
        print(f"    sample path {u} -> {v}: {shown}")
        old_dist = engine.dist(u, v)

        # Delta side: fold edge updates into the resident closure by
        # re-squaring only the dirty strips, against a full rebuild oracle.
        writable = ClosureArtifact.open(path, writable=True)
        maintainer = EngineSession(
            make_clique(n, "semiring"), "semiring", MIN_PLUS
        )
        dist0, hops0 = writable.resident_arrays(maintainer.n)
        maintainer.seed_resident(dist0, next_hop=hops0)
        weights = writable.padded_weights(maintainer.n)
        # Unit-weight shortcuts: always decreases/insertions, so the fast
        # dirty-strip arm runs.
        updates = [(0, n // 2, 1), (1, n - 1, 1)]
        report = apply_edge_updates(
            maintainer, weights, updates, artifact=writable
        )

        oracle = EngineSession(make_clique(n, "semiring"), "semiring", MIN_PLUS)
        oracle.seed_resident(weights)
        oracle.resident_closure()
        assert np.array_equal(maintainer.resident.dist, oracle.resident.dist)
        speedup = artifact.rounds / max(1, report.rounds)
        print(
            f"delta edge update ({report.mode:7s})  : {report.rounds:6d} rounds   "
            f"[{report.updates} edges, dirty set {report.dirty}, "
            f"{speedup:.1f}x fewer rounds than rebuild, "
            f"generation {report.generation}, rebuild check: edge-for-edge]"
        )

        updated = QueryEngine(ClosureArtifact.open(path, verify_hash=True))
        print(
            f"    re-opened generation {updated.artifact.generation}: "
            f"dist({u}, {v}) = {updated.dist(u, v)} "
            f"(was {old_dist})"
        )
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
