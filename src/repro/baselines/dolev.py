"""Prior-work baselines: Dolev, Lenzen & Peled [24] ("Tri, tri again").

The combinatorial algorithms the paper's Table 1 compares against:

* **Triangle counting in ``O(n^{1/3})`` rounds** -- partition ``V`` into
  ``q ~ n^{1/3}`` groups; each of the ``q^3`` ordered group triples is
  assigned to a node, which learns the three bipartite edge sets between its
  groups (``O(n^{4/3})`` words per node, routed in ``O(n^{1/3})`` rounds)
  and counts the triangles ``a < b < c`` falling in its triple.  Because the
  groups are contiguous ranges, each triangle is counted by exactly one
  triple.

* **k-node subgraph detection in ``O(n^{1-2/k})`` rounds**, instantiated at
  ``k = 4`` for 4-cycle detection (the ``O(n^{1/2})`` Table 1 entry):
  partition into ``r ~ n^{1/4}`` groups, assign the ``r^4`` group 4-tuples
  to nodes, ship the four cyclically-adjacent bipartite edge sets
  (``O(n^{3/2})`` words per node -> ``O(n^{1/2})`` rounds), and test each
  tuple locally with two rectangular co-degree products.

These baselines give the benchmark harness its "prior work" round counts,
so the crossovers in Table 1 are measured rather than asserted.
"""

from __future__ import annotations

import math

import numpy as np

from repro.clique.messages import words_for_array
from repro.clique.model import CongestedClique, ScheduleMode
from repro.graphs.graphs import Graph
from repro.runtime import RunResult, or_broadcast, sum_broadcast


def _contiguous_groups(n: int, count: int) -> list[np.ndarray]:
    """Split ``0..n-1`` into ``count`` contiguous, nearly equal groups."""
    return [np.asarray(g, dtype=np.int64) for g in np.array_split(np.arange(n), count)]


def dolev_triangle_count(
    graph: Graph,
    *,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Dolev et al. deterministic triangle counting, ``O(n^{1/3})`` rounds."""
    if graph.directed:
        raise ValueError("the Dolev baseline is implemented for undirected graphs")
    n = graph.n
    clique = clique or CongestedClique(max(2, n), mode=mode)
    q = max(1, round(n ** (1.0 / 3.0)))
    groups = _contiguous_groups(n, q)
    triples = [(i, j, k) for i in range(q) for j in range(q) for k in range(q)]
    # Round-robin triple ownership: node v handles triples v, v + n, ...
    owner = {t: idx % clique.n for idx, t in enumerate(triples)}

    # Each row owner ships its row slice A[u, V_b] to every triple that
    # needs the pair (group(u), b) in one of its three slots.
    group_of = np.zeros(n, dtype=np.int64)
    for g_idx, members in enumerate(groups):
        group_of[members] = g_idx
    a = graph.adjacency
    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(clique.n)]
    for t_idx, t in enumerate(triples):
        i, j, k = t
        dest = owner[t]
        for pair_tag, (ga, gb) in enumerate(((i, j), (j, k), (i, k))):
            for u in groups[ga]:
                piece = a[u][groups[gb]]
                width = max(1, words_for_array(piece, clique.word_bits))
                outboxes[int(u)].append(
                    (dest, (t_idx, pair_tag, int(u), piece), width)
                )
    inboxes = clique.route(outboxes, phase="dolev-tri/distribute")

    local_counts = [0] * clique.n
    for v in range(clique.n):
        if not inboxes[v]:
            continue
        per_triple: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        for _src, (t_idx, pair_tag, u, piece) in inboxes[v]:
            per_triple.setdefault((t_idx, pair_tag), {})[u] = piece
        # Re-identify which triples this node owns and count each.
        count = 0
        for t_idx, t in enumerate(triples):
            if owner[t] != v:
                continue
            i, j, k = t
            ab = np.array([per_triple[(t_idx, 0)][int(u)] for u in groups[i]])
            bc = np.array([per_triple[(t_idx, 1)][int(u)] for u in groups[j]])
            ac = np.array([per_triple[(t_idx, 2)][int(u)] for u in groups[i]])
            count += _count_ordered_triangles(groups[i], groups[j], groups[k], ab, bc, ac)
        local_counts[v] = count
    total = sum_broadcast(clique, local_counts, phase="dolev-tri/sum", words=3)
    return RunResult(
        value=total,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"groups": q},
    )


def _count_ordered_triangles(
    ga: np.ndarray,
    gb: np.ndarray,
    gc: np.ndarray,
    ab: np.ndarray,
    bc: np.ndarray,
    ac: np.ndarray,
) -> int:
    """Triangles ``a < b < c`` with ``a in ga, b in gb, c in gc``.

    ``ab[x, y] = A[ga[x], gb[y]]`` etc.  Vectorised over the group blocks
    with explicit ordering masks, so overlapping groups never double count.
    """
    lt_ab = ga[:, None] < gb[None, :]
    lt_bc = gb[:, None] < gc[None, :]
    total = 0
    for x in range(len(ga)):
        row_ab = ab[x] * lt_ab[x]
        if not row_ab.any():
            continue
        row_ac = ac[x]
        # For each b adjacent to a (with a < b), count c > b adjacent to both.
        valid_b = np.nonzero(row_ab)[0]
        for y in valid_b:
            total += int(np.sum(bc[y] * lt_bc[y] * row_ac))
    return total


def dolev_four_cycle_detect(
    graph: Graph,
    *,
    clique: CongestedClique | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Dolev et al. 4-node subgraph detection at C4: ``O(n^{1/2})`` rounds."""
    if graph.directed:
        raise ValueError("the Dolev baseline is implemented for undirected graphs")
    n = graph.n
    clique = clique or CongestedClique(max(2, n), mode=mode)
    r = max(1, round(n ** 0.25))
    groups = _contiguous_groups(n, r)
    tuples = [
        (i, j, k, l)
        for i in range(r)
        for j in range(r)
        for k in range(r)
        for l in range(r)
    ]
    owner = {t: idx % clique.n for idx, t in enumerate(tuples)}
    a = graph.adjacency

    outboxes: list[list[tuple[int, object, int]]] = [[] for _ in range(clique.n)]
    for t_idx, t in enumerate(tuples):
        i, j, k, l = t
        dest = owner[t]
        # The cycle's four bipartite edge sets: (i,j), (j,k), (k,l), (l,i).
        for pair_tag, (ga, gb) in enumerate(((i, j), (j, k), (k, l), (l, i))):
            for u in groups[ga]:
                piece = a[u][groups[gb]]
                width = max(1, words_for_array(piece, clique.word_bits))
                outboxes[int(u)].append(
                    (dest, (t_idx, pair_tag, int(u), piece), width)
                )
    inboxes = clique.route(outboxes, phase="dolev-c4/distribute")

    found = [False] * clique.n
    for v in range(clique.n):
        if not inboxes[v]:
            continue
        per: dict[tuple[int, int], dict[int, np.ndarray]] = {}
        for _src, (t_idx, pair_tag, u, piece) in inboxes[v]:
            per.setdefault((t_idx, pair_tag), {})[u] = piece
        for t_idx, t in enumerate(tuples):
            if owner[t] != v:
                continue
            i, j, k, l = t
            ab = np.array([per[(t_idx, 0)][int(u)] for u in groups[i]])
            bc = np.array([per[(t_idx, 1)][int(u)] for u in groups[j]])
            cd = np.array([per[(t_idx, 2)][int(u)] for u in groups[k]])
            da = np.array([per[(t_idx, 3)][int(u)] for u in groups[l]])
            if _tuple_has_c4(groups[i], groups[k], j == l, ab, bc, cd, da):
                found[v] = True
                break
    verdict = or_broadcast(clique, found, phase="dolev-c4/verdict")
    return RunResult(
        value=verdict,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"groups": r},
    )


def _tuple_has_c4(
    gi: np.ndarray,
    gk: np.ndarray,
    same_bd_group: bool,
    ab: np.ndarray,
    bc: np.ndarray,
    cd: np.ndarray,
    da: np.ndarray,
) -> bool:
    """C4 test within one group tuple via two co-degree products.

    ``w1[a, c]`` counts ``b in Vj`` adjacent to both; ``w2[a, c]`` counts
    ``d in Vl`` adjacent to both.  A 4-cycle needs ``a != c`` and two
    *distinct* middle nodes; when ``Vj == Vl`` the two counts range over the
    same candidate set, so at least two candidates are required.
    """
    w1 = ab @ bc  # (a, c) via b
    w2 = (cd @ da).T  # (a, c) via d
    distinct = gi[:, None] != gk[None, :]
    if same_bd_group:
        return bool(np.any((w1 >= 2) & distinct))
    return bool(np.any((w1 >= 1) & (w2 >= 1) & distinct))


__all__ = ["dolev_triangle_count", "dolev_four_cycle_detect"]
