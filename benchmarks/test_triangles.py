"""E3 -- Table 1 "triangle counting": ours (O(n^rho)) vs Dolev (O(n^{1/3})).

Both implementations run on the same G(n, p) workloads; the reported
speedups and crossovers are measured, not asserted from the bounds.
"""

from __future__ import annotations

import pytest

from repro.baselines import dolev_triangle_count
from repro.graphs import gnp_random_graph, triangle_count_reference
from repro.matmul.exponent import fit_exponent
from repro.subgraphs import count_triangles

from .conftest import run_once

SIZES = [16, 49, 100, 196]


@pytest.mark.parametrize("n", SIZES)
def test_triangle_counting_ours(benchmark, n):
    g = gnp_random_graph(n, 0.3, seed=n)

    def run():
        return count_triangles(g, method="bilinear")

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == triangle_count_reference(g)


@pytest.mark.parametrize("n", SIZES)
def test_triangle_counting_dolev_baseline(benchmark, n):
    g = gnp_random_graph(n, 0.3, seed=n)

    def run():
        return dolev_triangle_count(g)

    result = run_once(benchmark, run)
    benchmark.extra_info["clique_rounds"] = result.rounds
    assert result.value == triangle_count_reference(g)


def test_triangle_exponents_and_winner(benchmark):
    """The Table 1 growth comparison, honestly measured.

    Finding (see EXPERIMENTS.md): with Strassen standing in for Le Gall's
    algorithm the exponent gap is 0.288 vs 0.333, which is too thin for the
    algebraic algorithm to overtake Dolev et al. at simulable sizes -- the
    measured crossover extrapolates to n ~ 3e5.  The *asymptotic* ordering
    of the two growth exponents is checked from the exact round predictors
    at level-matched sizes, where quantisation noise vanishes.
    """
    import math

    from repro.matmul.exponent import predicted_bilinear_rounds

    def run():
        ours, prior = [], []
        for n in SIZES:
            g = gnp_random_graph(n, 0.3, seed=n)
            ours.append(count_triangles(g, method="bilinear").rounds)
            prior.append(dolev_triangle_count(g).rounds)
        return ours, prior

    ours, prior = run_once(benchmark, run)
    benchmark.extra_info["our_rounds"] = ours
    benchmark.extra_info["dolev_rounds"] = prior
    benchmark.extra_info["our_exponent_measured"] = fit_exponent(SIZES, ours)
    benchmark.extra_info["dolev_exponent_measured"] = fit_exponent(SIZES, prior)

    # Asymptotic comparison from the predictors (one product dominates the
    # triangle count; Dolev ships 3 n^{4/3} words -> 2*ceil(3 n^{1/3})).
    big_sizes = [7 ** (2 * k) for k in range(4, 8)]
    bil = [
        predicted_bilinear_rounds(n, d=2 ** round(math.log(n, 7)), m=n)
        for n in big_sizes
    ]
    dol = [2 * math.ceil(3 * n ** (1 / 3)) for n in big_sizes]
    our_exp = fit_exponent(big_sizes, bil)
    dol_exp = fit_exponent(big_sizes, dol)
    benchmark.extra_info["our_exponent_asymptotic"] = our_exp
    benchmark.extra_info["dolev_exponent_asymptotic"] = dol_exp
    assert our_exp < dol_exp
