"""End-to-end integration tests across the whole stack.

These exercise the composition paths a downstream user hits: different
matmul engines feeding the same application, the EXACT schedule validator
underneath a full application run, witness machinery driving routing tables
on the ring engine, and the cost meter surviving multi-algorithm pipelines.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    INF,
    CongestedClique,
    ScheduleMode,
    apsp_exact,
    apsp_unweighted,
    count_triangles,
    detect_four_cycles,
    girth_undirected,
    make_clique,
)
from repro.graphs import (
    apsp_reference,
    bfs_distances_reference,
    cycle_with_trees,
    gnp_random_graph,
    grid_graph,
    preferential_attachment_graph,
    random_weighted_digraph,
    triangle_count_reference,
    validate_routing_table,
)
from repro.matmul.distance import distance_product_ring
from repro.matmul.witnesses import find_witnesses


class TestCrossEngineAgreement:
    def test_triangles_same_answer_all_engines(self):
        g = gnp_random_graph(22, 0.3, seed=17)
        want = triangle_count_reference(g)
        for method in ("bilinear", "semiring", "naive"):
            assert count_triangles(g, method=method).value == want

    def test_engines_differ_in_rounds_at_scale(self):
        g = gnp_random_graph(100, 0.1, seed=3)
        fast = count_triangles(g, method="bilinear")
        naive = count_triangles(g, method="naive")
        assert fast.value == naive.value
        assert fast.rounds < naive.rounds


class TestExactScheduleUnderApplications:
    def test_triangle_count_on_exact_schedules(self):
        g = gnp_random_graph(12, 0.35, seed=5)
        clique = make_clique(g.n, "bilinear", mode=ScheduleMode.EXACT)
        result = count_triangles(g, clique=clique)
        assert result.value == triangle_count_reference(g)

    def test_four_cycle_detection_on_exact_schedules(self):
        g = gnp_random_graph(14, 0.3, seed=8)
        from repro.graphs import four_cycle_count_reference

        clique = CongestedClique(g.n, mode=ScheduleMode.EXACT)
        result = detect_four_cycles(g, clique=clique)
        assert result.value == (four_cycle_count_reference(g) > 0)


class TestRingEngineRoutingTables:
    def test_witnesses_build_valid_one_hop_tables(self):
        """§3.3 + §3.4 end to end on the ring engine.

        One distance-product squaring of a small-weight digraph, witnesses
        extracted by Lemma 21, and the resulting midpoints verified to lie
        on optimal two-hop paths.
        """
        n = 16
        g = random_weighted_digraph(n, 0.4, 3, seed=21)
        w = g.weight_matrix()
        clique = CongestedClique(n)

        def engine(a, b, phase):
            return distance_product_ring(clique, a, b, 6, phase=phase)

        product = engine(w, w, "full")
        result = find_witnesses(
            clique, w, w, engine, p=product, rng=np.random.default_rng(4)
        )
        assert result.resolved.all()
        for u in range(n):
            for v in range(n):
                if product[u, v] < INF:
                    mid = int(result.witnesses[u, v])
                    assert w[u, mid] + w[mid, v] == product[u, v]


class TestRealisticWorkloads:
    def test_social_network_pipeline(self):
        """The paper's motivating workload: subgraph stats on a social graph."""
        g = preferential_attachment_graph(36, attach=2, seed=11)
        tri = count_triangles(g)
        c4 = detect_four_cycles(g)
        assert tri.value == triangle_count_reference(g)
        assert isinstance(c4.value, bool)
        assert tri.rounds > 0 and c4.rounds > 0

    def test_road_network_pipeline(self):
        g = grid_graph(4, 4, max_weight=9, seed=7)
        exact = apsp_exact(g)
        assert np.array_equal(exact.value, apsp_reference(g))
        assert validate_routing_table(g, exact.value, exact.extras["next_hop"])

    def test_unweighted_vs_weighted_consistency(self):
        g = gnp_random_graph(20, 0.25, seed=13)
        seidel = apsp_unweighted(g)
        exact = apsp_exact(g, with_routing_tables=False)
        assert np.array_equal(seidel.value, exact.value)
        assert np.array_equal(seidel.value, bfs_distances_reference(g))

    def test_girth_pipeline_sparse(self):
        g = cycle_with_trees(40, 9, seed=19)
        result = girth_undirected(g)
        assert result.value == 9


class TestMeterHygiene:
    def test_phases_compose_across_algorithms(self):
        g = gnp_random_graph(16, 0.3, seed=2)
        clique = make_clique(g.n, "bilinear")
        count_triangles(g, clique=clique)
        mark = clique.meter.snapshot()
        count_triangles(g, clique=clique)
        # Re-running the same algorithm on the same clique charges the same.
        assert clique.meter.rounds_since(mark) * 2 == clique.rounds

    def test_phase_labels_group(self):
        g = gnp_random_graph(16, 0.3, seed=2)
        result = count_triangles(g)
        groups = result.meter.by_phase_prefix()
        assert any(key.startswith("triangles") for key in groups)

    def test_deterministic_rounds(self):
        g = gnp_random_graph(25, 0.3, seed=4)
        a = count_triangles(g)
        b = count_triangles(g)
        assert a.rounds == b.rounds
        assert a.value == b.value
