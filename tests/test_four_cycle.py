"""Tests for Theorem 4: O(1)-round 4-cycle detection and the Lemma 12 tiling."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graphs import (
    Graph,
    bipartite_random_graph,
    cycle_graph,
    four_cycle_count_reference,
    gnp_random_graph,
    grid_graph,
    planted_cycle_graph,
    preferential_attachment_graph,
    random_tree,
    windmill_graph,
)
from repro.subgraphs import build_tiling, detect_four_cycles, tile_side


class TestTileSide:
    def test_zero_degree_no_tile(self):
        assert tile_side(0) == 0

    def test_small_degrees_get_unit_tiles(self):
        for deg in (1, 2, 3):
            assert tile_side(deg) == 1

    @given(st.integers(min_value=1, max_value=10**6))
    def test_side_bounds(self, deg):
        side = tile_side(deg)
        assert side >= max(1, deg / 8.0)  # Lemma 12: f(y) >= deg/8
        assert side <= max(1, deg / 4.0) or deg < 4
        assert side & (side - 1) == 0  # power of two

    @given(st.integers(min_value=1, max_value=10**6))
    def test_chunks_at_most_8(self, deg):
        import math

        side = tile_side(deg)
        assert math.ceil(deg / side) <= 8


class TestTiling:
    @settings(max_examples=20, deadline=None)
    @given(st.integers(min_value=0, max_value=10**6), st.integers(min_value=4, max_value=40))
    def test_tiles_disjoint_and_in_bounds(self, seed, n):
        g = gnp_random_graph(n, 0.4, seed=seed)
        degrees = g.degrees()
        if degrees.sum() == 0:
            return
        # The tiling is only promised under the pigeonhole precondition of
        # Theorem 4 (sum of deg^2 < 2 n^2); G(n, .4) satisfies it easily.
        if int((degrees**2).sum()) >= 2 * n * n:
            return
        tiles = build_tiling(degrees, n)
        k = 1 << (n.bit_length() - 1)
        occupied: set[tuple[int, int]] = set()
        for tile in tiles:
            assert tile.side == tile_side(int(degrees[tile.y]))
            for r in tile.rows:
                for c in tile.cols:
                    assert 0 <= r < k and 0 <= c < k
                    assert (r, c) not in occupied
                    occupied.add((r, c))

    def test_star_graph_tiling(self):
        # A hub of degree n-1 stresses the large-tile path.
        n = 32
        g = Graph.from_edges(n, [(0, v) for v in range(1, n)])
        tiles = build_tiling(g.degrees(), n)
        hub = next(t for t in tiles if t.y == 0)
        assert hub.side >= (n - 1) / 8

    def test_every_positive_degree_gets_a_tile(self):
        g = gnp_random_graph(20, 0.3, seed=1)
        tiles = build_tiling(g.degrees(), 20)
        tiled = {t.y for t in tiles}
        for y in range(20):
            if g.degrees()[y] > 0:
                assert y in tiled


class TestDetection:
    @settings(max_examples=15, deadline=None)
    @given(
        st.integers(min_value=0, max_value=10**6),
        st.floats(min_value=0.05, max_value=0.5),
    )
    def test_agrees_with_oracle_on_random_graphs(self, seed, p):
        g = gnp_random_graph(20, p, seed=seed)
        want = four_cycle_count_reference(g) > 0
        assert detect_four_cycles(g).value == want

    def test_negative_families(self):
        for g in (
            random_tree(40, seed=2),
            windmill_graph(33),
            cycle_graph(7),
        ):
            assert not detect_four_cycles(g).value

    def test_positive_families(self):
        for g in (
            cycle_graph(4),
            grid_graph(3, 3, max_weight=1, seed=0),
            planted_cycle_graph(50, 4, seed=1, extra_edge_prob=0.5),
        ):
            assert detect_four_cycles(g).value

    def test_dense_graph_uses_pigeonhole(self):
        g = gnp_random_graph(24, 0.9, seed=0)
        result = detect_four_cycles(g)
        assert result.value
        assert result.extras["phase"] == "pigeonhole"
        assert result.rounds <= 2

    def test_rounds_are_constant_in_n(self):
        rounds = []
        for n in (16, 32, 64, 128):
            g = bipartite_random_graph(n, 3.0 / n, seed=7)
            rounds.append(detect_four_cycles(g).rounds)
        # O(1): no growth trend; allow small wobble from degree profiles.
        assert max(rounds) <= min(rounds) + 12
        assert max(rounds) <= 40

    def test_high_degree_hub_without_c4(self):
        g = windmill_graph(65)
        result = detect_four_cycles(g)
        assert not result.value
        assert result.extras["phase"] == "tiling"

    def test_directed_rejected(self):
        g = gnp_random_graph(8, 0.3, seed=0, directed=True)
        with pytest.raises(ValueError):
            detect_four_cycles(g)

    def test_two_parallel_paths(self):
        # The smallest C4 witness: two length-2 paths between x and z.
        g = Graph.from_edges(4, [(0, 1), (1, 2), (0, 3), (3, 2)])
        assert detect_four_cycles(g).value
