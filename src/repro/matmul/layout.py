"""Index partitioning schemes for the distributed matmul algorithms.

Reproduces the paper's Figures 1 and 2 as code:

* :class:`CubeLayout` -- §2.1's view of each node ``v`` as a three-digit
  base-``n^{1/3}`` number ``v1 v2 v3``, with the wild-card index sets
  ``x**`` (all nodes whose first digit is ``x``, a contiguous range of ids).
* :class:`GridLayout` -- §2.2's two-level partition: a ``d x d`` grid of
  blocks, each subdivided into a ``q x q`` grid of ``c x c`` cells, with
  node ``v`` labelled ``(x1, x2) = (v div q, v mod q)`` and owning cell
  ``(x1, x2)`` of every block.

The paper assumes "for convenience" that ``n^{1/3}`` (resp. ``n^{1/2}`` with
``d`` dividing it) is an integer.  We keep the clique-size requirements
(:func:`next_cube`, :func:`next_square` lift arbitrary problem sizes by
padding onto a slightly larger clique) but drop the divisibility requirement
``d | q`` by padding the *matrix* to ``M = d * q * c`` with ``c = ceil(q/d)``;
padded rows and columns are all-zero and are materialised locally by
receivers, so the padding costs no communication.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np


def exact_cbrt(n: int) -> int | None:
    """The integer cube root of ``n``, or ``None`` if ``n`` is not a cube."""
    q = round(n ** (1.0 / 3.0))
    for candidate in (q - 1, q, q + 1):
        if candidate >= 1 and candidate**3 == n:
            return candidate
    return None


def exact_sqrt(n: int) -> int | None:
    """The integer square root of ``n``, or ``None`` if not a square."""
    q = math.isqrt(n)
    return q if q * q == n else None


def next_cube(n: int) -> int:
    """Smallest perfect cube ``>= n`` (the clique size §2.1 runs on)."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    q = 1
    while q**3 < n:
        q += 1
    return q**3


def next_square(n: int) -> int:
    """Smallest perfect square ``>= n`` (the clique size §2.2 runs on)."""
    if n < 1:
        raise ValueError(f"n must be positive, got {n}")
    q = math.isqrt(n - 1) + 1
    return q * q


@dataclass(frozen=True)
class CubeLayout:
    """§2.1 node indexing on a clique of ``n = q^3`` nodes.

    Node ``v`` has digits ``(v1, v2, v3)`` in base ``q`` (``v1`` most
    significant).  The index set ``x**`` -- all nodes with first digit
    ``x`` -- is the contiguous range ``[x q^2, (x+1) q^2)``; because all
    submatrices §2.1 ships are indexed by such sets, every payload is a
    contiguous NumPy slice.
    """

    n: int
    q: int

    @classmethod
    def for_clique(cls, n: int) -> "CubeLayout":
        # Memoised: repeated squarings (APSP runs O(log n) products on the
        # same clique) share one immutable layout instead of re-deriving it.
        return _cube_layout_for_clique(n)

    def digits(self, v: int) -> tuple[int, int, int]:
        """The base-``q`` digits ``(v1, v2, v3)`` of node ``v``."""
        q = self.q
        return v // (q * q), (v // q) % q, v % q

    def node(self, v1: int, v2: int, v3: int) -> int:
        """Node id with the given digits."""
        return (v1 * self.q + v2) * self.q + v3

    def first_digit_range(self, x: int) -> tuple[int, int]:
        """The contiguous id range of the set ``x**`` as ``(start, stop)``."""
        q2 = self.q * self.q
        return x * q2, (x + 1) * q2

    def block_slice(self, x: int) -> slice:
        """``x**`` as a slice, for indexing matrix rows/columns."""
        start, stop = self.first_digit_range(x)
        return slice(start, stop)


@lru_cache(maxsize=None)
def _cube_layout_for_clique(n: int) -> "CubeLayout":
    q = exact_cbrt(n)
    if q is None:
        from repro.errors import CliqueSizeError

        raise CliqueSizeError(
            f"the 3D semiring algorithm needs a perfect-cube clique; "
            f"got n={n} (use next_cube({n})={next_cube(n)})"
        )
    return CubeLayout(n=n, q=q)


@dataclass(frozen=True)
class GridLayout:
    """§2.2 two-level partition on a clique of ``n = q^2`` nodes.

    Attributes:
        n: clique size, a perfect square.
        q: ``sqrt(n)``; node ``v`` has label ``(v div q, v mod q)``.
        d: block grid dimension of the bilinear algorithm.
        c: cell side, ``ceil(q / d)``.
        m_padded: padded matrix dimension ``d * q * c >= n``.
    """

    n: int
    q: int
    d: int
    c: int
    m_padded: int

    @classmethod
    def for_clique(cls, n: int, d: int) -> "GridLayout":
        # Memoised like CubeLayout.for_clique: iterated ring products reuse
        # the same immutable grid description.
        return _grid_layout_for_clique(n, d)

    def label(self, v: int) -> tuple[int, int]:
        """The secondary label ``(x1, x2)`` of node ``v``."""
        return v // self.q, v % self.q

    def node_of_label(self, x1: int, x2: int) -> int:
        """Node id carrying label ``(x1, x2)``."""
        return x1 * self.q + x2

    def row_position(self, r: int) -> tuple[int, int, int]:
        """Decompose padded row ``r`` into ``(block i, cell-row x1, offset t)``."""
        block_rows = self.c * self.q
        i = r // block_rows
        within = r % block_rows
        return i, within // self.c, within % self.c

    def indices_of_cell_axis(self, x: int) -> np.ndarray:
        """All padded rows (equivalently columns) in cell-row/col ``x``.

        Shape ``(d * c,)``, ordered by block index then offset, which is the
        payload layout used throughout §2.2's steps.
        """
        block_rows = self.c * self.q
        offsets = np.arange(self.c)
        blocks = np.arange(self.d) * block_rows
        return (blocks[:, None] + x * self.c + offsets[None, :]).reshape(-1)

    def cell_slice(self, x: int) -> tuple[slice, ...]:
        """Row range of cell ``x`` *within one block*: ``x*c .. (x+1)*c``."""
        return (slice(x * self.c, (x + 1) * self.c),)


@lru_cache(maxsize=None)
def _grid_layout_for_clique(n: int, d: int) -> "GridLayout":
    q = exact_sqrt(n)
    if q is None:
        from repro.errors import CliqueSizeError

        raise CliqueSizeError(
            f"the bilinear algorithm needs a perfect-square clique; "
            f"got n={n} (use next_square({n})={next_square(n)})"
        )
    if d < 1 or d > q:
        from repro.errors import CliqueSizeError

        raise CliqueSizeError(
            f"block dimension d={d} must satisfy 1 <= d <= sqrt(n)={q}"
        )
    c = math.ceil(q / d)
    return GridLayout(n=n, q=q, d=d, c=c, m_padded=d * q * c)


__all__ = [
    "exact_cbrt",
    "exact_sqrt",
    "next_cube",
    "next_square",
    "CubeLayout",
    "GridLayout",
]
