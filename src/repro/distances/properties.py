"""Distance-derived graph properties: eccentricities, diameter, radius.

Once APSP is solved (any of the §3.3 variants), the classical distance
properties are one local reduction plus one broadcast away: node ``v``
computes its eccentricity from its own distance row, broadcasts one word,
and every node folds the extrema locally.  The round cost is therefore
APSP + 1 -- which is how the congested-clique literature states diameter
bounds, and the reason the paper's APSP improvements transfer verbatim to
diameter/radius computation.
"""

from __future__ import annotations

import numpy as np

from repro.clique.model import CongestedClique, ScheduleMode
from repro.constants import INF
from repro.distances.apsp import apsp_exact
from repro.distances.approx import apsp_approx
from repro.distances.seidel import apsp_unweighted
from repro.graphs.graphs import Graph
from repro.runtime import RunResult


def _fold_eccentricities(
    clique: CongestedClique, distances: np.ndarray, n: int, phase: str
) -> tuple[np.ndarray, int, int]:
    """Per-node eccentricities + global diameter/radius via one broadcast."""
    ecc = []
    for v in range(clique.n):
        if v < n:
            row = distances[v, :n]
            finite = row[row < INF]
            ecc.append(int(finite.max()) if finite.size else 0)
        else:
            ecc.append(-1)  # padded nodes abstain
    received = clique.broadcast(ecc, words=1, phase=phase)
    real = [received[0][v] for v in range(n)]
    diameter = max(real) if real else 0
    radius = min(real) if real else 0
    return np.array(real, dtype=np.int64), diameter, radius


def diameter_exact(
    graph: Graph,
    *,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Exact diameter/radius/eccentricities of a weighted graph.

    Cost: Corollary 6 APSP + one broadcast round.  ``value`` is the
    diameter; ``extras`` carries ``radius`` and the eccentricity vector.
    Unreachable pairs are ignored (per-component eccentricities), matching
    the usual convention for possibly-disconnected inputs.
    """
    apsp = apsp_exact(graph, with_routing_tables=False, mode=mode)
    clique_n = apsp.clique_size
    clique = CongestedClique(clique_n, mode=mode)
    clique.meter.phases.extend(apsp.meter.phases)
    padded = np.full((clique_n, clique_n), INF, dtype=np.int64)
    padded[: graph.n, : graph.n] = apsp.value
    ecc, diameter, radius = _fold_eccentricities(
        clique, padded, graph.n, "diameter/fold"
    )
    return RunResult(
        value=diameter,
        rounds=clique.rounds,
        clique_size=clique_n,
        meter=clique.meter,
        extras={"radius": radius, "eccentricities": ecc},
    )


def diameter_unweighted(
    graph: Graph,
    *,
    method: str = "bilinear",
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """Unweighted diameter via Seidel (Corollary 7) + one broadcast."""
    apsp = apsp_unweighted(graph, method=method, mode=mode)
    clique = CongestedClique(apsp.clique_size, mode=mode)
    clique.meter.phases.extend(apsp.meter.phases)
    padded = np.full((clique.n, clique.n), INF, dtype=np.int64)
    padded[: graph.n, : graph.n] = apsp.value
    ecc, diameter, radius = _fold_eccentricities(
        clique, padded, graph.n, "diameter/fold"
    )
    return RunResult(
        value=diameter,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={"radius": radius, "eccentricities": ecc},
    )


def diameter_approx(
    graph: Graph,
    *,
    delta: float | None = None,
    mode: ScheduleMode = ScheduleMode.FAST,
) -> RunResult:
    """(1+o(1))-approximate weighted diameter via Theorem 9.

    The broadcast congested clique needs ``Omega~(n)`` rounds for any
    better-than-3/2 diameter approximation (§4 / [31]); in the unicast
    model this inherits Theorem 9's ``O(n^{rho+o(1)})`` with the same
    ``(1 + delta)^{ceil(log n)}`` overestimate bound, reported in extras.
    """
    apsp = apsp_approx(graph, delta=delta, mode=mode)
    clique = CongestedClique(apsp.clique_size, mode=mode)
    clique.meter.phases.extend(apsp.meter.phases)
    padded = np.full((clique.n, clique.n), INF, dtype=np.int64)
    padded[: graph.n, : graph.n] = apsp.value
    ecc, diameter, radius = _fold_eccentricities(
        clique, padded, graph.n, "diameter/fold"
    )
    return RunResult(
        value=diameter,
        rounds=clique.rounds,
        clique_size=clique.n,
        meter=clique.meter,
        extras={
            "radius": radius,
            "eccentricities": ecc,
            "ratio_bound": apsp.extras["ratio_bound"],
        },
    )


def diameter_reference(graph: Graph) -> tuple[int, int]:
    """Centralised (diameter, radius) oracle, unreachable pairs ignored."""
    from repro.graphs.reference import apsp_reference

    dist = apsp_reference(graph)
    ecc = []
    for v in range(graph.n):
        finite = dist[v][dist[v] < INF]
        ecc.append(int(finite.max()) if finite.size else 0)
    return max(ecc), min(ecc)


__all__ = [
    "diameter_exact",
    "diameter_unweighted",
    "diameter_approx",
    "diameter_reference",
]
