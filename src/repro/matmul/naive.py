"""Naive O(n)-round matrix multiplication baseline.

The obvious congested-clique algorithm: every node broadcasts its row of the
right operand (``n`` words per node, hence ``n`` rounds at unit width), after
which each node multiplies its own row of ``S`` against the fully replicated
``T`` locally.  Table 1 lists no prior work for semiring matmul -- this
baseline is the implicit comparison point the paper's ``O(n^{1/3})`` improves
on, and the benchmark harness uses it to show the crossover.

The replication step runs on the simulator's array-native fast path
(:meth:`~repro.clique.model.CongestedClique.broadcast_rows`): ``T`` moves as
one ``(n, n)`` array with per-row honest widths instead of ``n`` tuple
payloads, and the local per-node products ``S[v] . T`` are evaluated as one
batched kernel call (row ``v`` of the batch is exactly node ``v``'s local
computation, so simulated costs are unchanged).
"""

from __future__ import annotations

import numpy as np

from repro.algebra.semirings import PLUS_TIMES, Semiring
from repro.clique.messages import words_for_array
from repro.clique.model import CongestedClique


def broadcast_matmul(
    clique: CongestedClique,
    s: np.ndarray,
    t: np.ndarray,
    semiring: Semiring = PLUS_TIMES,
    *,
    with_witnesses: bool = False,
    phase: str = "naive-matmul",
) -> np.ndarray | tuple[np.ndarray, np.ndarray]:
    """Multiply via full replication of ``T``: ``O(n)`` rounds.

    Same input/output convention as
    :func:`repro.matmul.semiring3d.semiring_matmul`.
    """
    n = clique.n
    s = np.asarray(s, dtype=np.int64)
    t = np.asarray(t, dtype=np.int64)
    if s.shape != (n, n) or t.shape != (n, n):
        raise ValueError(f"operands must be {n} x {n} matrices")
    word_bits = clique.word_bits
    widths = [words_for_array(t[v], word_bits) for v in range(n)]
    t_full = clique.broadcast_rows(t, widths=widths, phase=f"{phase}/replicate-T")
    if with_witnesses:
        return semiring.matmul_with_witness(s, t_full)
    return semiring.matmul(s, t_full)


__all__ = ["broadcast_matmul"]
